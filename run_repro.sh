#!/bin/sh
# Full-fidelity reproduction: every table and figure at the paper's
# horizon (4e6 s) and replication count (10). Results land in results/.
#
# The ablations run at reduced fidelity by design:
#   * ablation_discipline includes a 10 ms round-robin quantum, which
#     multiplies the event count ~100x — a full-horizon run would take
#     hours; 5% of the horizon already gives tight intervals.
#   * the remaining ablations sweep wide, qualitative effects; half the
#     horizon with 5 replications resolves them comfortably.
set -e
cd "$(dirname "$0")"
mkdir -p results
for bin in table1 table2 table3 fig2 fig3 fig4 fig5 fig6; do
    echo "=== $bin (--full) ==="
    ./target/release/$bin --full --json "results/$bin.json" > "results/$bin.txt" 2> "results/$bin.log"
    echo "    done: results/$bin.txt"
done
echo "=== ablation_discipline (--scale 0.05) ==="
./target/release/ablation_discipline --scale 0.05 --reps 5 \
    --json results/ablation_discipline.json \
    > results/ablation_discipline.txt 2> results/ablation_discipline.log
echo "    done: results/ablation_discipline.txt"
for bin in ablation_sizes ablation_burstiness ablation_dispatcher extra_baselines; do
    echo "=== $bin (--scale 0.5) ==="
    ./target/release/$bin --scale 0.5 --reps 5 --json "results/$bin.json" \
        > "results/$bin.txt" 2> "results/$bin.log"
    echo "    done: results/$bin.txt"
done
echo "=== fig_kernel (event-list backends) ==="
./target/release/fig_kernel --scale 0.1 --reps 3 --bench-json results/BENCH_kernel.json \
    > results/fig_kernel.txt 2> results/fig_kernel.log
echo "    done: results/fig_kernel.txt"
echo ALL_DONE

//! Workspace root crate: hosts the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. The public API
//! lives in the [`hetsched`] crate, re-exported here for convenience.

pub use hetsched::*;

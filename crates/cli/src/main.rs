//! `hetsched` binary entry point.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match hetsched_cli::parse_args(&args) {
        Ok(cmd) => hetsched_cli::run(cmd),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", hetsched_cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}

//! # hetsched-cli — command-line front end
//!
//! Four subcommands wrap the library's planning, simulation, and
//! observability layers for operators who don't want to write Rust:
//!
//! ```text
//! hetsched allocate --speeds 1,1.5,10 --rho 0.7
//!     Print the optimized vs weighted allocation and the analytic
//!     performance predictions for a fleet.
//!
//! hetsched simulate --spec experiment.json [--out results.json]
//!                   [--policy dynamic-idx] [--event-list heap|calendar]
//!                   [--dispatchers 4] [--sync-interval 500]
//!                   [--sync-latency 10] [--sim-threads 4] [--loss 0.01]
//!                   [--retry-timeout 30] [--hedge-delay 10]
//!                   [--malleable-fraction 0.5] [--speedup-exp 0.5]
//!     Run a full replicated simulation experiment described by a JSON
//!     spec (see `hetsched template`). `--policy` overrides the spec's
//!     policy by name (`orr`, `dynamic`, `dynamic-idx`,
//!     `dynamic-sa[:window]`, `pod:2`, `pod-het:2`, `jiq`, …; see
//!     `PolicySpec::from_cli_name`). `--event-list` overrides the
//!     spec's future-event-list backend; results are bit-identical
//!     either way. `--dispatchers` shards the front end across D
//!     dispatcher instances; `--sync-interval` (with an optional
//!     `--sync-latency`) turns on the tier's periodic state-sync.
//!     `--sim-threads` selects the conservative parallel engine (one
//!     event kernel per dispatch shard, capped at D worker threads);
//!     results are bit-identical at every thread count. `--loss`
//!     makes every message plane drop that fraction of messages;
//!     `--retry-timeout` arms ack-based dispatch with exponential
//!     backoff, and `--hedge-delay` (requires `--retry-timeout`)
//!     duplicates slow dispatches to a backup server.
//!     `--malleable-fraction` stamps that share of arrivals as
//!     malleable (power-law speedup, exponent `--speedup-exp`,
//!     default 0.5) — pair it with `--policy hesrpt` to activate the
//!     server-allocation tier and read the mean-slowdown rows.
//!
//! hetsched observe --spec experiment.json [--interval 120]
//!                  [--out series.jsonl] [--csv series.csv]
//!                  [--replication 0] [--event-list heap|calendar]
//!     Run one replication with the time-series probe plane enabled and
//!     export per-window queue lengths, utilizations, rates, response
//!     quantiles, and the Fig. 2 deviation, plus the event-kernel
//!     counters. Probes never perturb the run: the headline statistics
//!     are bit-identical to `simulate` on the same seed.
//!
//! hetsched template
//!     Print a commented example experiment spec to adapt.
//! ```
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! admits no CLI crates); [`parse_args`] is exposed for testing.

#![warn(missing_docs)]

use hetsched::experiment::Experiment;
use hetsched::prelude::*;
use hetsched::queueing::AllocationReport;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `allocate`: analytic planning for a fleet.
    Allocate {
        /// Machine speeds.
        speeds: Vec<f64>,
        /// System utilization in (0, 1).
        rho: f64,
    },
    /// `simulate`: run an experiment spec.
    Simulate {
        /// Path to the JSON spec.
        spec: String,
        /// Optional path for the JSON results.
        out: Option<String>,
        /// Optional policy override by CLI name (see
        /// [`PolicySpec::from_cli_name`]).
        policy: Option<String>,
        /// Optional future-event-list backend override.
        event_list: Option<EventListBackend>,
        /// Optional dispatcher-shard-count override.
        dispatchers: Option<usize>,
        /// Optional state-sync interval override (seconds; enables the
        /// sync plane).
        sync_interval: Option<f64>,
        /// Optional one-way sync latency (seconds; requires
        /// `sync_interval`).
        sync_latency: Option<f64>,
        /// Enables coordinated (phase-preserving) sharding: sequence-
        /// stamped splitting, level-reconciling sync merges, and
        /// rate-driven Algorithm-1 re-optimization.
        coordinated: bool,
        /// Optional parallel-engine worker-thread count (None = classic
        /// sequential engine; `Some(n)` runs one event kernel per
        /// dispatch shard on up to `n` threads, bit-identical to the
        /// classic engine for a single shard and to itself at every
        /// thread count).
        sim_threads: Option<usize>,
        /// Optional uniform message-loss probability applied to all
        /// three message planes (dispatch, load updates, shard sync).
        loss: Option<f64>,
        /// Optional ack timeout (seconds) enabling dispatch
        /// retransmission with exponential backoff.
        retry_timeout: Option<f64>,
        /// Optional hedge delay (seconds; requires `retry_timeout`):
        /// un-acked dispatches are duplicated to a backup server after
        /// this long, first landing wins.
        hedge_delay: Option<f64>,
        /// Optional malleable-class arrival fraction in [0, 1]: that
        /// share of jobs is stamped malleable and every job is held by
        /// the server-allocation tier (use with `--policy hesrpt`).
        malleable_fraction: Option<f64>,
        /// Optional power-law speedup exponent in (0, 1] for the
        /// malleable class (requires `malleable_fraction`; default 0.5).
        speedup_exp: Option<f64>,
    },
    /// `observe`: run one replication with the probe plane enabled.
    Observe {
        /// Path to the JSON spec.
        spec: String,
        /// Optional sampling-interval override (seconds).
        interval: Option<f64>,
        /// Optional path for the JSONL time series.
        out: Option<String>,
        /// Optional path for the CSV time series.
        csv: Option<String>,
        /// Replication index to observe (seed derives from it).
        replication: u64,
        /// Optional future-event-list backend override.
        event_list: Option<EventListBackend>,
    },
    /// `template`: print an example spec.
    Template,
    /// `help`: print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
hetsched — optimized static job scheduling (Tang & Chanson, ICPP 2000)

USAGE:
  hetsched allocate --speeds 1,1.5,10 --rho 0.7
  hetsched simulate --spec experiment.json [--out results.json]
                    [--policy dynamic-idx] [--event-list heap|calendar]
                    [--dispatchers 4] [--sync-interval 500]
                    [--sync-latency 10] [--coordinated]
                    [--sim-threads 4] [--loss 0.01]
                    [--retry-timeout 30] [--hedge-delay 10]
                    [--malleable-fraction 0.5] [--speedup-exp 0.5]
  hetsched observe --spec experiment.json [--interval 120]
                   [--out series.jsonl] [--csv series.csv]
                   [--replication 0] [--event-list heap|calendar]
  hetsched template
  hetsched help
";

/// Parses the argument list (without the program name).
///
/// # Errors
/// Returns a human-readable message for malformed input.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "template" => Ok(Command::Template),
        "allocate" => {
            let mut speeds: Option<Vec<f64>> = None;
            let mut rho: Option<f64> = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--speeds" => {
                        let v = it.next().ok_or("--speeds needs a comma-separated list")?;
                        let parsed: Result<Vec<f64>, _> =
                            v.split(',').map(|x| x.trim().parse::<f64>()).collect();
                        speeds = Some(parsed.map_err(|e| format!("bad speed list: {e}"))?);
                    }
                    "--rho" => {
                        let v = it.next().ok_or("--rho needs a value")?;
                        rho = Some(v.parse().map_err(|e| format!("bad rho: {e}"))?);
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            let speeds = speeds.ok_or("allocate requires --speeds")?;
            let rho = rho.ok_or("allocate requires --rho")?;
            if speeds.is_empty() || speeds.iter().any(|&s| !(s.is_finite() && s > 0.0)) {
                return Err("speeds must be positive numbers".into());
            }
            if !(rho > 0.0 && rho < 1.0) {
                return Err("rho must lie in (0, 1)".into());
            }
            Ok(Command::Allocate { speeds, rho })
        }
        "simulate" => {
            let mut spec = None;
            let mut out = None;
            let mut policy = None;
            let mut event_list = None;
            let mut dispatchers = None;
            let mut sync_interval = None;
            let mut sync_latency = None;
            let mut coordinated = false;
            let mut sim_threads = None;
            let mut loss = None;
            let mut retry_timeout = None;
            let mut hedge_delay = None;
            let mut malleable_fraction = None;
            let mut speedup_exp = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--spec" => spec = Some(it.next().ok_or("--spec needs a path")?.clone()),
                    "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
                    "--policy" => {
                        let v = it.next().ok_or("--policy needs a name, e.g. dynamic-idx")?;
                        // Validate eagerly so typos fail at parse time.
                        PolicySpec::from_cli_name(v).map_err(|e| e.to_string())?;
                        policy = Some(v.clone());
                    }
                    "--event-list" => {
                        let v = it.next().ok_or("--event-list needs 'heap' or 'calendar'")?;
                        event_list = Some(v.parse::<EventListBackend>()?);
                    }
                    "--dispatchers" => {
                        let v = it.next().ok_or("--dispatchers needs a count")?;
                        let d: usize = v.parse().map_err(|e| format!("bad dispatchers: {e}"))?;
                        if d == 0 {
                            return Err("need at least one dispatcher".into());
                        }
                        dispatchers = Some(d);
                    }
                    "--sync-interval" => {
                        let v = it.next().ok_or("--sync-interval needs seconds")?;
                        let iv: f64 = v.parse().map_err(|e| format!("bad sync interval: {e}"))?;
                        if !(iv.is_finite() && iv > 0.0) {
                            return Err(format!("sync interval must be positive, got {v}"));
                        }
                        sync_interval = Some(iv);
                    }
                    "--sync-latency" => {
                        let v = it.next().ok_or("--sync-latency needs seconds")?;
                        let lat: f64 = v.parse().map_err(|e| format!("bad sync latency: {e}"))?;
                        if !(lat.is_finite() && lat >= 0.0) {
                            return Err(format!("sync latency must be ≥ 0, got {v}"));
                        }
                        sync_latency = Some(lat);
                    }
                    "--coordinated" => {
                        coordinated = true;
                    }
                    "--sim-threads" => {
                        let v = it.next().ok_or("--sim-threads needs a count")?;
                        let n: usize = v.parse().map_err(|e| format!("bad sim-threads: {e}"))?;
                        if n == 0 {
                            return Err("need at least one simulation thread".into());
                        }
                        sim_threads = Some(n);
                    }
                    "--loss" => {
                        let v = it.next().ok_or("--loss needs a probability")?;
                        let p: f64 = v.parse().map_err(|e| format!("bad loss: {e}"))?;
                        if !(p.is_finite() && (0.0..1.0).contains(&p)) {
                            return Err(format!("loss must lie in [0, 1), got {v}"));
                        }
                        loss = Some(p);
                    }
                    "--retry-timeout" => {
                        let v = it.next().ok_or("--retry-timeout needs seconds")?;
                        let t: f64 = v.parse().map_err(|e| format!("bad retry timeout: {e}"))?;
                        if !(t.is_finite() && t > 0.0) {
                            return Err(format!("retry timeout must be positive, got {v}"));
                        }
                        retry_timeout = Some(t);
                    }
                    "--hedge-delay" => {
                        let v = it.next().ok_or("--hedge-delay needs seconds")?;
                        let h: f64 = v.parse().map_err(|e| format!("bad hedge delay: {e}"))?;
                        if !(h.is_finite() && h > 0.0) {
                            return Err(format!("hedge delay must be positive, got {v}"));
                        }
                        hedge_delay = Some(h);
                    }
                    "--malleable-fraction" => {
                        let v = it.next().ok_or("--malleable-fraction needs a fraction")?;
                        let f: f64 = v
                            .parse()
                            .map_err(|e| format!("bad malleable fraction: {e}"))?;
                        if !(f.is_finite() && (0.0..=1.0).contains(&f)) {
                            return Err(format!("malleable fraction must lie in [0, 1], got {v}"));
                        }
                        malleable_fraction = Some(f);
                    }
                    "--speedup-exp" => {
                        let v = it.next().ok_or("--speedup-exp needs an exponent")?;
                        let p: f64 = v
                            .parse()
                            .map_err(|e| format!("bad speedup exponent: {e}"))?;
                        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
                            return Err(format!("speedup exponent must lie in (0, 1], got {v}"));
                        }
                        speedup_exp = Some(p);
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if sync_latency.is_some() && sync_interval.is_none() {
                return Err("--sync-latency requires --sync-interval".into());
            }
            if hedge_delay.is_some() && retry_timeout.is_none() {
                return Err("--hedge-delay requires --retry-timeout".into());
            }
            if speedup_exp.is_some() && malleable_fraction.is_none() {
                return Err("--speedup-exp requires --malleable-fraction".into());
            }
            Ok(Command::Simulate {
                spec: spec.ok_or("simulate requires --spec")?,
                out,
                policy,
                event_list,
                dispatchers,
                sync_interval,
                sync_latency,
                coordinated,
                sim_threads,
                loss,
                retry_timeout,
                hedge_delay,
                malleable_fraction,
                speedup_exp,
            })
        }
        "observe" => {
            let mut spec = None;
            let mut interval = None;
            let mut out = None;
            let mut csv = None;
            let mut replication = 0;
            let mut event_list = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--spec" => spec = Some(it.next().ok_or("--spec needs a path")?.clone()),
                    "--interval" => {
                        let v = it.next().ok_or("--interval needs seconds")?;
                        let iv: f64 = v.parse().map_err(|e| format!("bad interval: {e}"))?;
                        if !(iv.is_finite() && iv > 0.0) {
                            return Err(format!("interval must be positive, got {v}"));
                        }
                        interval = Some(iv);
                    }
                    "--out" => out = Some(it.next().ok_or("--out needs a path")?.clone()),
                    "--csv" => csv = Some(it.next().ok_or("--csv needs a path")?.clone()),
                    "--replication" => {
                        let v = it.next().ok_or("--replication needs an index")?;
                        replication = v.parse().map_err(|e| format!("bad replication: {e}"))?;
                    }
                    "--event-list" => {
                        let v = it.next().ok_or("--event-list needs 'heap' or 'calendar'")?;
                        event_list = Some(v.parse::<EventListBackend>()?);
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Command::Observe {
                spec: spec.ok_or("observe requires --spec")?,
                interval,
                out,
                csv,
                replication,
                event_list,
            })
        }
        other => Err(format!("unknown command {other}; try `hetsched help`")),
    }
}

/// Executes a parsed command, returning the process exit code.
pub fn run(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::Template => {
            println!("{}", template_spec());
            0
        }
        Command::Allocate { speeds, rho } => match allocate_report(&speeds, rho) {
            Ok(text) => {
                println!("{text}");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Command::Simulate {
            spec,
            out,
            policy,
            event_list,
            dispatchers,
            sync_interval,
            sync_latency,
            coordinated,
            sim_threads,
            loss,
            retry_timeout,
            hedge_delay,
            malleable_fraction,
            speedup_exp,
        } => match simulate(
            &spec,
            out.as_deref(),
            policy.as_deref(),
            event_list,
            dispatchers,
            sync_interval,
            sync_latency,
            coordinated,
            sim_threads,
            channel_spec(loss, retry_timeout, hedge_delay),
            malleable_spec(malleable_fraction, speedup_exp),
        ) {
            Ok(text) => {
                println!("{text}");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
        Command::Observe {
            spec,
            interval,
            out,
            csv,
            replication,
            event_list,
        } => match observe(
            &spec,
            interval,
            out.as_deref(),
            csv.as_deref(),
            replication,
            event_list,
        ) {
            Ok(text) => {
                println!("{text}");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                1
            }
        },
    }
}

/// Renders the `allocate` subcommand's report.
///
/// # Errors
/// Propagates validation errors.
pub fn allocate_report(speeds: &[f64], rho: f64) -> Result<String, String> {
    let sys = HetSystem::from_utilization(speeds, rho).map_err(|e| e.to_string())?;
    let optimized = closed_form::optimized_allocation(&sys);
    let weighted = sys.weighted_allocation();
    let opt_report =
        AllocationReport::build(&sys, &optimized).ok_or("infeasible optimized allocation")?;
    let w_report =
        AllocationReport::build(&sys, &weighted).ok_or("infeasible weighted allocation")?;

    let mut t = Table::new(["machine", "speed", "optimized α", "weighted α", "opt. util"]);
    for (i, m) in opt_report.machines.iter().enumerate() {
        t.row([
            format!("{i}"),
            format!("{}", m.speed),
            format!("{:.4}", m.alpha),
            format!("{:.4}", weighted[i]),
            format!("{:.3}", m.utilization),
        ]);
    }
    Ok(format!(
        "fleet: {speeds:?} at rho = {rho}\n\n{}\npredicted mean response ratio: optimized {:.4}, weighted {:.4} ({:.0}% better)\n",
        t.render(),
        opt_report.mean_response_ratio,
        w_report.mean_response_ratio,
        100.0 * (w_report.mean_response_ratio - opt_report.mean_response_ratio)
            / w_report.mean_response_ratio
    ))
}

/// Builds the `--loss`/`--retry-timeout`/`--hedge-delay` channel
/// override (`None` when no channel flag was given, so the spec's own
/// `channels` section — or its absence — stands).
pub fn channel_spec(
    loss: Option<f64>,
    retry_timeout: Option<f64>,
    hedge_delay: Option<f64>,
) -> Option<ChannelSpec> {
    if loss.is_none() && retry_timeout.is_none() && hedge_delay.is_none() {
        return None;
    }
    let mut spec = match loss {
        Some(p) => ChannelSpec::uniform_loss(p),
        None => ChannelSpec::reliable(),
    };
    if let Some(t) = retry_timeout {
        spec = spec.with_retry(RetrySpec::after(t));
    }
    if let Some(h) = hedge_delay {
        spec = spec.with_hedge(HedgeSpec { delay: h });
    }
    Some(spec)
}

/// Builds the `--malleable-fraction`/`--speedup-exp` override (`None`
/// when neither flag was given, so the spec's own `malleable` section —
/// or its absence — stands). The exponent defaults to 0.5, the
/// square-root speedup curve of the heSRPT literature.
pub fn malleable_spec(fraction: Option<f64>, speedup_exp: Option<f64>) -> Option<MalleableSpec> {
    fraction.map(|f| MalleableSpec::power_law(f, speedup_exp.unwrap_or(0.5)))
}

/// Runs the `simulate` subcommand.
///
/// # Errors
/// Propagates IO, parsing, and validation errors.
#[allow(clippy::too_many_arguments)]
pub fn simulate(
    spec_path: &str,
    out: Option<&str>,
    policy: Option<&str>,
    event_list: Option<EventListBackend>,
    dispatchers: Option<usize>,
    sync_interval: Option<f64>,
    sync_latency: Option<f64>,
    coordinated: bool,
    sim_threads: Option<usize>,
    channels: Option<ChannelSpec>,
    malleable: Option<MalleableSpec>,
) -> Result<String, String> {
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;
    let mut exp: Experiment =
        serde_json::from_str(&text).map_err(|e| format!("parsing spec: {e}"))?;
    if let Some(name) = policy {
        exp.policy = PolicySpec::from_cli_name(name).map_err(|e| e.to_string())?;
    }
    if let Some(backend) = event_list {
        exp.cluster.event_list = backend;
    }
    if let Some(d) = dispatchers {
        exp.cluster.dispatch.dispatchers = d;
    }
    if coordinated {
        exp.cluster.dispatch.coordination = Coordination::PhasePreserving;
    }
    if let Some(iv) = sync_interval {
        let mut sync = SyncSpec::every(iv);
        if let Some(lat) = sync_latency {
            sync = sync.with_latency(lat);
        }
        exp.cluster.dispatch.sync = Some(sync);
    }
    if let Some(n) = sim_threads {
        exp.sim_threads = n;
    }
    if let Some(spec) = channels {
        exp.cluster.channels = Some(spec);
    }
    if let Some(spec) = malleable {
        exp.cluster.malleable = Some(spec);
    }
    let result = exp.run()?;
    if let Some(path) = out {
        hetsched::report::save_json(path, &result)?;
    }
    let mut t = Table::new(["metric", "mean ± 95% CI"]);
    t.row([
        "mean response time".to_string(),
        format!("{}", result.mean_response_time),
    ]);
    t.row([
        "mean response ratio".to_string(),
        format!("{}", result.mean_response_ratio),
    ]);
    t.row(["fairness".to_string(), format!("{}", result.fairness)]);
    t.row([
        "p95 response ratio".to_string(),
        format!("{}", result.p95_response_ratio),
    ]);
    t.row([
        "mean slowdown".to_string(),
        format!("{}", result.mean_slowdown),
    ]);
    let mut report = format!(
        "experiment '{}' with policy {} ({} replications)\n\n{}",
        result.name,
        result.policy,
        result.runs.len(),
        t.render()
    );
    if let Some(classes) = class_table(&result.runs) {
        report.push_str("\n\nper-class breakdown (averaged across replications)\n\n");
        report.push_str(&classes.render());
    }
    Ok(report)
}

/// Builds the per-class slowdown breakdown table, or `None` when no run
/// recorded malleable classes (rigid experiments print nothing extra).
/// Counts are summed across replications; the means are job-weighted.
fn class_table(runs: &[RunStats]) -> Option<Table> {
    if runs.iter().all(|r| r.classes.is_empty()) {
        return None;
    }
    // Fold per-replication class rows by class id (the layout is
    // identical across replications of one experiment).
    let mut by_class: std::collections::BTreeMap<u16, (u64, f64, f64)> =
        std::collections::BTreeMap::new();
    for r in runs {
        for c in &r.classes {
            let e = by_class.entry(c.class).or_insert((0, 0.0, 0.0));
            e.0 += c.count;
            e.1 += c.count as f64 * c.mean_slowdown;
            e.2 += c.count as f64 * c.mean_response;
        }
    }
    let mut t = Table::new(["class", "jobs", "mean slowdown", "mean response"]);
    for (class, (count, slow_sum, resp_sum)) in by_class {
        let label = if class == 0 {
            "0 (rigid)".to_string()
        } else {
            class.to_string()
        };
        let (slow, resp) = if count > 0 {
            (slow_sum / count as f64, resp_sum / count as f64)
        } else {
            (0.0, 0.0)
        };
        t.row([
            label,
            count.to_string(),
            format!("{slow:.4}"),
            format!("{resp:.4}"),
        ]);
    }
    Some(t)
}

/// Runs the `observe` subcommand: a single replication with the probe
/// plane enabled, exported as JSONL and/or CSV.
///
/// The spec's own `cluster.obs` block (if any) supplies the defaults;
/// `--interval` overrides the window length. Enabling the probes does
/// not change the run itself, so the printed headline statistics match
/// `simulate` on the same replication.
///
/// # Errors
/// Propagates IO, parsing, and validation errors.
pub fn observe(
    spec_path: &str,
    interval: Option<f64>,
    out: Option<&str>,
    csv: Option<&str>,
    replication: u64,
    event_list: Option<EventListBackend>,
) -> Result<String, String> {
    let text =
        std::fs::read_to_string(spec_path).map_err(|e| format!("reading {spec_path}: {e}"))?;
    let mut exp: Experiment =
        serde_json::from_str(&text).map_err(|e| format!("parsing spec: {e}"))?;
    if let Some(backend) = event_list {
        exp.cluster.event_list = backend;
    }
    let mut spec = exp.cluster.obs.take().unwrap_or_default();
    if let Some(iv) = interval {
        spec.sample_interval = iv;
    }
    spec.validate().map_err(String::from)?;
    exp.cluster.obs = Some(spec);

    let mut stats = exp.run_single(replication).map_err(String::from)?;
    let report = stats.obs.take().expect("observability was enabled");
    if let Some(path) = out {
        let jsonl = report.to_jsonl().map_err(String::from)?;
        std::fs::write(path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = csv {
        std::fs::write(path, report.to_csv()).map_err(|e| format!("writing {path}: {e}"))?;
    }

    let k = &report.kernel;
    let mut t = Table::new(["kernel counter", "value"]);
    t.row(["events scheduled".to_string(), k.scheduled.to_string()]);
    t.row(["events delivered".to_string(), k.popped.to_string()]);
    t.row(["events cancelled".to_string(), k.cancelled.to_string()]);
    t.row([
        "live-event high-water".to_string(),
        k.high_water.to_string(),
    ]);
    t.row(["calendar resizes".to_string(), k.resizes.to_string()]);
    Ok(format!(
        "experiment '{}' replication {replication} with policy {}\n\
         {} windows of {} s across {} columns; mean response ratio {:.4}\n\n{}",
        exp.name,
        stats.policy,
        report.len(),
        report.sample_interval,
        report.columns.len(),
        stats.mean_response_ratio,
        t.render()
    ))
}

/// An example experiment spec (JSON) for `hetsched template`.
pub fn template_spec() -> String {
    let mut cfg = ClusterConfig::paper_default(&[1.0, 1.0, 4.0, 8.0]);
    cfg.horizon = 400_000.0;
    cfg.warmup = 100_000.0;
    let mut exp = Experiment::new("my-experiment", cfg, PolicySpec::orr());
    exp.replications = 5;
    serde_json::to_string_pretty(&exp).expect("template serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_allocate() {
        let cmd = parse_args(&args(&["allocate", "--speeds", "1,2,10", "--rho", "0.7"])).unwrap();
        assert_eq!(
            cmd,
            Command::Allocate {
                speeds: vec![1.0, 2.0, 10.0],
                rho: 0.7
            }
        );
    }

    #[test]
    fn parses_simulate_with_out() {
        let cmd = parse_args(&args(&["simulate", "--spec", "a.json", "--out", "b.json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                spec: "a.json".into(),
                out: Some("b.json".into()),
                policy: None,
                event_list: None,
                dispatchers: None,
                sync_interval: None,
                sync_latency: None,
                coordinated: false,
                sim_threads: None,
                loss: None,
                retry_timeout: None,
                hedge_delay: None,
                malleable_fraction: None,
                speedup_exp: None,
            }
        );
    }

    #[test]
    fn parses_simulate_dispatch_overrides() {
        let cmd = parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--dispatchers",
            "4",
            "--sync-interval",
            "500",
            "--sync-latency",
            "10",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                spec: "a.json".into(),
                out: None,
                policy: None,
                event_list: None,
                dispatchers: Some(4),
                sync_interval: Some(500.0),
                sync_latency: Some(10.0),
                coordinated: false,
                sim_threads: None,
                loss: None,
                retry_timeout: None,
                hedge_delay: None,
                malleable_fraction: None,
                speedup_exp: None,
            }
        );
        // Zero dispatchers, negative knobs, and a latency without an
        // interval are rejected at parse time.
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--dispatchers",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--sync-interval",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--sync-latency",
            "-1"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--sync-latency",
            "5"
        ]))
        .is_err());
    }

    #[test]
    fn parses_simulate_coordinated_flag() {
        let cmd = parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--dispatchers",
            "16",
            "--coordinated",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate {
                dispatchers,
                coordinated,
                ..
            } => {
                assert_eq!(dispatchers, Some(16));
                assert!(coordinated);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parses_simulate_sim_threads() {
        let cmd = parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--sim-threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                spec: "a.json".into(),
                out: None,
                policy: None,
                event_list: None,
                dispatchers: None,
                sync_interval: None,
                sync_latency: None,
                coordinated: false,
                sim_threads: Some(4),
                loss: None,
                retry_timeout: None,
                hedge_delay: None,
                malleable_fraction: None,
                speedup_exp: None,
            }
        );
        // Zero or garbage thread counts are rejected at parse time.
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--sim-threads",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--sim-threads",
            "x"
        ]))
        .is_err());
    }

    #[test]
    fn parses_simulate_policy_override() {
        let cmd = parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--policy",
            "dynamic-idx",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate { policy, .. } => assert_eq!(policy.as_deref(), Some("dynamic-idx")),
            other => panic!("expected simulate, got {other:?}"),
        }
        // Typos fail at parse time, not after the spec loads.
        let e = parse_args(&args(&[
            "simulate", "--spec", "a.json", "--policy", "magic",
        ]))
        .unwrap_err();
        assert!(e.contains("unknown policy"), "{e}");
    }

    #[test]
    fn simulate_applies_policy_override() {
        let dir = std::env::temp_dir().join("hetsched_cli_policy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        let mut exp: Experiment = serde_json::from_str(&template_spec()).unwrap();
        exp.cluster.horizon = 20_000.0;
        exp.cluster.warmup = 2_000.0;
        exp.replications = 1;
        std::fs::write(&spec_path, serde_json::to_string(&exp).unwrap()).unwrap();

        let report = simulate(
            spec_path.to_str().unwrap(),
            None,
            Some("jiq"),
            None,
            None,
            None,
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(report.contains("JIQ"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_simulate_channel_flags() {
        let cmd = parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--loss",
            "0.01",
            "--retry-timeout",
            "30",
            "--hedge-delay",
            "10",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate {
                loss,
                retry_timeout,
                hedge_delay,
                ..
            } => {
                assert_eq!(loss, Some(0.01));
                assert_eq!(retry_timeout, Some(30.0));
                assert_eq!(hedge_delay, Some(10.0));
            }
            other => panic!("expected simulate, got {other:?}"),
        }
        // Out-of-range knobs and a hedge without retries are rejected
        // at parse time.
        assert!(parse_args(&args(&["simulate", "--spec", "a.json", "--loss", "1.0"])).is_err());
        assert!(parse_args(&args(&["simulate", "--spec", "a.json", "--loss", "-0.1"])).is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--retry-timeout",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--hedge-delay",
            "10"
        ]))
        .is_err());
    }

    #[test]
    fn parses_simulate_malleable_flags() {
        let cmd = parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--malleable-fraction",
            "0.5",
            "--speedup-exp",
            "0.8",
        ]))
        .unwrap();
        match cmd {
            Command::Simulate {
                malleable_fraction,
                speedup_exp,
                ..
            } => {
                assert_eq!(malleable_fraction, Some(0.5));
                assert_eq!(speedup_exp, Some(0.8));
            }
            other => panic!("expected simulate, got {other:?}"),
        }
        // Out-of-range knobs and an exponent without a fraction are
        // rejected at parse time.
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--malleable-fraction",
            "1.5"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--malleable-fraction",
            "-0.1"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--malleable-fraction",
            "0.5",
            "--speedup-exp",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--malleable-fraction",
            "0.5",
            "--speedup-exp",
            "1.2"
        ]))
        .is_err());
        assert!(parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--speedup-exp",
            "0.5"
        ]))
        .is_err());
    }

    #[test]
    fn malleable_spec_builds_the_expected_override() {
        assert_eq!(malleable_spec(None, None), None);
        assert_eq!(malleable_spec(None, Some(0.8)), None);
        let m = malleable_spec(Some(0.5), None).unwrap();
        assert_eq!(m, MalleableSpec::power_law(0.5, 0.5));
        assert!(m.active());
        let m = malleable_spec(Some(0.25), Some(0.8)).unwrap();
        assert_eq!(m, MalleableSpec::power_law(0.25, 0.8));
        // A zero fraction builds an inactive section — the rigid run.
        assert!(!malleable_spec(Some(0.0), None).unwrap().active());
    }

    #[test]
    fn simulate_runs_the_malleable_tier_end_to_end() {
        let dir = std::env::temp_dir().join("hetsched_cli_malleable_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        let mut exp: Experiment = serde_json::from_str(&template_spec()).unwrap();
        exp.cluster.horizon = 20_000.0;
        exp.cluster.warmup = 2_000.0;
        exp.replications = 1;
        std::fs::write(&spec_path, serde_json::to_string(&exp).unwrap()).unwrap();

        let report = simulate(
            spec_path.to_str().unwrap(),
            None,
            Some("hesrpt"),
            None,
            None,
            None,
            None,
            false,
            None,
            None,
            malleable_spec(Some(0.5), None),
        )
        .unwrap();
        assert!(report.contains("HESRPT"), "{report}");
        assert!(report.contains("mean slowdown"), "{report}");
        assert!(report.contains("per-class breakdown"), "{report}");
        assert!(report.contains("0 (rigid)"), "{report}");

        // Without the malleable override the hesrpt policy is rejected
        // with a message that names the missing section.
        let e = simulate(
            spec_path.to_str().unwrap(),
            None,
            Some("hesrpt"),
            None,
            None,
            None,
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(e.contains("malleable"), "{e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn channel_spec_builds_the_expected_override() {
        assert_eq!(channel_spec(None, None, None), None);
        let lossy = channel_spec(Some(0.05), None, None).unwrap();
        assert_eq!(lossy, ChannelSpec::uniform_loss(0.05));
        assert!(lossy.validate().is_ok());
        let full = channel_spec(Some(0.05), Some(30.0), Some(10.0)).unwrap();
        assert_eq!(full.retry, Some(RetrySpec::after(30.0)));
        assert_eq!(full.hedge, Some(HedgeSpec { delay: 10.0 }));
        assert!(full.validate().is_ok());
        // Retry without loss still builds a valid, active spec (the
        // planes are reliable but the ack machinery runs).
        let retry_only = channel_spec(None, Some(30.0), None).unwrap();
        assert!(!retry_only.is_reliable());
        assert!(retry_only.validate().is_ok());
    }

    #[test]
    fn parses_simulate_event_list_override() {
        let cmd = parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--event-list",
            "calendar",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                spec: "a.json".into(),
                out: None,
                policy: None,
                event_list: Some(EventListBackend::Calendar),
                dispatchers: None,
                sync_interval: None,
                sync_latency: None,
                coordinated: false,
                sim_threads: None,
                loss: None,
                retry_timeout: None,
                hedge_delay: None,
                malleable_fraction: None,
                speedup_exp: None,
            }
        );
        let e = parse_args(&args(&[
            "simulate",
            "--spec",
            "a.json",
            "--event-list",
            "splay",
        ]))
        .unwrap_err();
        assert!(e.contains("unknown event-list backend"), "{e}");
    }

    #[test]
    fn parses_observe() {
        let cmd = parse_args(&args(&[
            "observe",
            "--spec",
            "a.json",
            "--interval",
            "60",
            "--out",
            "series.jsonl",
            "--csv",
            "series.csv",
            "--replication",
            "3",
            "--event-list",
            "calendar",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Observe {
                spec: "a.json".into(),
                interval: Some(60.0),
                out: Some("series.jsonl".into()),
                csv: Some("series.csv".into()),
                replication: 3,
                event_list: Some(EventListBackend::Calendar),
            }
        );
        // Defaults: replication 0, spec-provided interval.
        let cmd = parse_args(&args(&["observe", "--spec", "a.json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Observe {
                spec: "a.json".into(),
                interval: None,
                out: None,
                csv: None,
                replication: 0,
                event_list: None,
            }
        );
    }

    #[test]
    fn observe_rejects_bad_input() {
        assert!(parse_args(&args(&["observe"])).is_err());
        assert!(parse_args(&args(&["observe", "--spec", "a.json", "--interval", "0"])).is_err());
        assert!(parse_args(&args(&["observe", "--spec", "a.json", "--interval", "x"])).is_err());
        assert!(parse_args(&args(&["observe", "--spec", "a.json", "--frob"])).is_err());
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&["allocate", "--rho", "0.7"])).is_err());
        assert!(parse_args(&args(&["allocate", "--speeds", "1,x", "--rho", "0.5"])).is_err());
        assert!(parse_args(&args(&["allocate", "--speeds", "1,2", "--rho", "1.5"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["simulate"])).is_err());
    }

    #[test]
    fn allocate_report_renders() {
        let r = allocate_report(&[1.0, 2.0, 10.0], 0.6).unwrap();
        assert!(r.contains("optimized α"));
        assert!(r.contains("% better"));
    }

    #[test]
    fn allocate_report_propagates_errors() {
        assert!(allocate_report(&[], 0.5).is_err());
    }

    #[test]
    fn template_round_trips_and_simulates() {
        let dir = std::env::temp_dir().join("hetsched_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        let out_path = dir.join("out.json");

        // Shrink the template so the test is quick.
        let mut exp: Experiment = serde_json::from_str(&template_spec()).unwrap();
        exp.cluster.horizon = 20_000.0;
        exp.cluster.warmup = 2_000.0;
        exp.replications = 2;
        std::fs::write(&spec_path, serde_json::to_string(&exp).unwrap()).unwrap();

        let report = simulate(
            spec_path.to_str().unwrap(),
            Some(out_path.to_str().unwrap()),
            None,
            Some(EventListBackend::Calendar),
            None,
            None,
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(report.contains("ORR"));
        assert!(report.contains("mean response ratio"));
        let saved: hetsched::experiment::ExperimentResult =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(saved.runs.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn observe_exports_monotone_series() {
        let dir = std::env::temp_dir().join("hetsched_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        let jsonl_path = dir.join("series.jsonl");
        let csv_path = dir.join("series.csv");

        let mut exp: Experiment = serde_json::from_str(&template_spec()).unwrap();
        exp.cluster.horizon = 20_000.0;
        exp.cluster.warmup = 2_000.0;
        std::fs::write(&spec_path, serde_json::to_string(&exp).unwrap()).unwrap();

        let report = observe(
            spec_path.to_str().unwrap(),
            Some(500.0),
            Some(jsonl_path.to_str().unwrap()),
            Some(csv_path.to_str().unwrap()),
            0,
            None,
        )
        .unwrap();
        assert!(report.contains("windows of 500 s"));
        assert!(report.contains("events scheduled"));

        // The JSONL is non-empty, one `{"t":...}` object per window,
        // with strictly increasing timestamps.
        let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
        let times: Vec<f64> = jsonl
            .lines()
            .map(|l| {
                assert!(l.starts_with("{\"t\":") && l.ends_with('}'), "line: {l}");
                l["{\"t\":".len()..l.find(',').unwrap()].parse().unwrap()
            })
            .collect();
        assert_eq!(times.len(), 40, "20 000 s / 500 s windows");
        assert!(times.windows(2).all(|w| w[0] < w[1]), "monotone timestamps");

        // The CSV agrees on shape: header plus one row per window.
        let csv = std::fs::read_to_string(&csv_path).unwrap();
        assert!(csv.starts_with("t,"));
        assert_eq!(csv.lines().count(), 41);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_reports_missing_file() {
        let e = simulate(
            "/definitely/not/here.json",
            None,
            None,
            None,
            None,
            None,
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(e.contains("reading"));
    }

    #[test]
    fn simulate_applies_dispatch_overrides() {
        let dir = std::env::temp_dir().join("hetsched_cli_dispatch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        let out_path = dir.join("out.json");
        let mut exp: Experiment = serde_json::from_str(&template_spec()).unwrap();
        exp.cluster.horizon = 20_000.0;
        exp.cluster.warmup = 2_000.0;
        exp.replications = 2;
        std::fs::write(&spec_path, serde_json::to_string(&exp).unwrap()).unwrap();

        let report = simulate(
            spec_path.to_str().unwrap(),
            Some(out_path.to_str().unwrap()),
            None,
            None,
            Some(2),
            Some(1_000.0),
            Some(5.0),
            false,
            None,
            None,
            None,
        )
        .unwrap();
        assert!(report.contains("ORR"));
        let saved: hetsched::experiment::ExperimentResult =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        for run in &saved.runs {
            assert_eq!(run.shards.len(), 2, "two dispatcher shards");
            assert!(run.syncs_applied > 0, "sync plane was enabled");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_parallel_engine_is_bit_identical() {
        let dir = std::env::temp_dir().join("hetsched_cli_pdes_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("spec.json");
        let classic_path = dir.join("classic.json");
        let pdes_path = dir.join("pdes.json");
        let mut exp: Experiment = serde_json::from_str(&template_spec()).unwrap();
        exp.cluster.horizon = 20_000.0;
        exp.cluster.warmup = 2_000.0;
        exp.replications = 2;
        std::fs::write(&spec_path, serde_json::to_string(&exp).unwrap()).unwrap();

        let spec = spec_path.to_str().unwrap();
        simulate(
            spec,
            Some(classic_path.to_str().unwrap()),
            None,
            None,
            None,
            None,
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap();
        simulate(
            spec,
            Some(pdes_path.to_str().unwrap()),
            None,
            None,
            None,
            None,
            None,
            false,
            Some(2),
            None,
            None,
        )
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&classic_path).unwrap(),
            std::fs::read_to_string(&pdes_path).unwrap(),
            "parallel engine output differs from the classic engine"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn simulate_reports_contextual_validation_error() {
        let dir = std::env::temp_dir().join("hetsched_cli_err_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec_path = dir.join("bad.json");
        let mut exp: Experiment = serde_json::from_str(&template_spec()).unwrap();
        exp.cluster.utilization = 1.5;
        std::fs::write(&spec_path, serde_json::to_string(&exp).unwrap()).unwrap();
        let e = simulate(
            spec_path.to_str().unwrap(),
            None,
            None,
            None,
            None,
            None,
            None,
            false,
            None,
            None,
            None,
        )
        .unwrap_err();
        assert!(e.contains("utilization"), "message names the bad knob: {e}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_help_returns_zero() {
        assert_eq!(run(Command::Help), 0);
        assert_eq!(run(Command::Template), 0);
    }
}

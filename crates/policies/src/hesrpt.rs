//! heSRPT-style malleable server allocation (extension).
//!
//! The paper's schemes dispatch each job to exactly one computer. The
//! malleable extension instead lets the *simulator's allocation tier*
//! divide every dispatch shard's servers among its in-flight jobs each
//! time the job set changes. A policy opts into that tier by returning
//! an [`AllocatorKind`] from [`Policy::malleable_allocator`]; the two
//! policies here are thin declarations of the allocation rule:
//!
//! * [`HesrptPolicy`] — the heSRPT closed form (Berg, Vesilo &
//!   Harchol-Balter, *heSRPT: Parallel scheduling to minimize mean
//!   slowdown*, PEVA 2020): jobs ranked by ascending remaining work;
//!   the rank-`r` job of `M` receives the share
//!   `(M−r+1)^{1/p} − (M−r)^{1/p}` of the shard's cores, favoring
//!   short jobs without starving long ones.
//! * [`HesrptStaticPolicy`] — the equal-split baseline: every job gets
//!   `cores / M` regardless of remaining work. The gap between the two
//!   isolates the value of size-ordered allocation.
//!
//! When the allocation tier is active the simulator never consults
//! [`Policy::choose`]; the fallback below (deterministic fastest-live
//! scan) only matters if a spec is built against a rigid configuration,
//! which [`crate::combo::PolicySpec::build`] rejects up front.

use hetsched_cluster::malleable::AllocatorKind;
use hetsched_cluster::{DispatchCtx, Policy};
use hetsched_desim::Rng64;

/// Declares the heSRPT allocation rule to the simulator's tier.
#[derive(Debug, Clone, Default)]
pub struct HesrptPolicy {
    /// Believed membership from the fault layer; empty means all up.
    up: Vec<bool>,
}

impl HesrptPolicy {
    /// Creates the heSRPT allocator declaration.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Declares the static equal-split allocation rule (per-class baseline).
#[derive(Debug, Clone, Default)]
pub struct HesrptStaticPolicy {
    /// Believed membership from the fault layer; empty means all up.
    up: Vec<bool>,
}

impl HesrptStaticPolicy {
    /// Creates the equal-split allocator declaration.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Deterministic rigid fallback: the fastest believed-up server (ties
/// to the lowest index). Only reachable when the allocation tier is
/// inactive.
fn fastest_live(speeds: &[f64], up: &[bool]) -> usize {
    let mut best = 0;
    let mut best_speed = f64::NEG_INFINITY;
    for (i, &s) in speeds.iter().enumerate() {
        if !up.get(i).copied().unwrap_or(true) {
            continue;
        }
        if s > best_speed {
            best_speed = s;
            best = i;
        }
    }
    if best_speed.is_finite() {
        best
    } else {
        0 // stale all-down belief: dispatch anyway, the loss is recorded
    }
}

impl Policy for HesrptPolicy {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        fastest_live(ctx.speeds, &self.up)
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        self.up = up.to_vec();
    }

    fn malleable_allocator(&self) -> Option<AllocatorKind> {
        Some(AllocatorKind::Hesrpt)
    }

    fn name(&self) -> String {
        "HESRPT".into()
    }
}

impl Policy for HesrptStaticPolicy {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        fastest_live(ctx.speeds, &self.up)
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        self.up = up.to_vec();
    }

    fn malleable_allocator(&self) -> Option<AllocatorKind> {
        Some(AllocatorKind::StaticClass)
    }

    fn name(&self) -> String {
        "HESRPT-STATIC".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(speeds: &'a [f64], qlens: &'a [usize]) -> DispatchCtx<'a> {
        DispatchCtx {
            now: 0.0,
            job_size: 1.0,
            queue_lens: qlens,
            speeds,
            true_load_index: None,
        }
    }

    #[test]
    fn declares_allocator_kinds() {
        assert_eq!(
            HesrptPolicy::new().malleable_allocator(),
            Some(AllocatorKind::Hesrpt)
        );
        assert_eq!(
            HesrptStaticPolicy::new().malleable_allocator(),
            Some(AllocatorKind::StaticClass)
        );
        assert_eq!(HesrptPolicy::new().name(), "HESRPT");
        assert_eq!(HesrptStaticPolicy::new().name(), "HESRPT-STATIC");
    }

    #[test]
    fn fallback_picks_fastest_live() {
        let speeds = [1.0, 10.0, 2.0];
        let qlens = [0, 0, 0];
        let mut p = HesrptPolicy::new();
        let mut rng = Rng64::from_seed(0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        p.on_membership_change(&[true, false, true], 0.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 2);
        // Stale all-down belief: still dispatches (to index 0).
        p.on_membership_change(&[false, false, false], 1.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 0);
    }

    #[test]
    fn no_load_updates_needed() {
        assert!(!HesrptPolicy::new().needs_load_updates());
        assert!(!HesrptStaticPolicy::new().needs_load_updates());
    }
}

//! Round-robin based job dispatching — **Algorithm 2** of the paper.
//!
//! The strategy equalizes the number of *global* inter-arrival intervals
//! between successive jobs sent to the same computer, which smooths each
//! computer's substream without measuring time. Each computer carries two
//! attributes:
//!
//! * `assign` — jobs sent so far;
//! * `next` — expected number of incoming jobs before its next
//!   assignment.
//!
//! On each arrival the computer with the minimum `next` wins (ties go to
//! the smallest `(assign + 1)/α`), its `next` is credited `1/α`, and
//! every computer that has started receiving jobs pays 1 (the arrival
//! that just happened). Computers that have not received any job keep
//! `next` at the guard value 1 so their first jobs spread out over a
//! cycle — the paper's §3.2 start-up rule, implemented verbatim
//! (steps 1, 2.b–2.h).
//!
//! With equal fractions the scheme degenerates to classic round-robin
//! (verified by test). For the paper's 1/8,1/8,1/4,1/2 example the
//! realized 8-job cycle contains exactly {4, 2, 1, 1} jobs per computer —
//! the ideal *counts*, though not necessarily the ideal *order* (the
//! paper itself notes perfect spreading "may not always be possible").

use hetsched_cluster::{DispatchCtx, Policy, SyncState};
use hetsched_desim::Rng64;

/// Tolerance for `next`-value ties. Fraction reciprocals are rarely
/// representable exactly, so exact float equality would make tie-breaking
/// depend on rounding noise.
const TIE_EPS: f64 = 1e-9;

/// Algorithm 2: round-robin based job dispatching.
///
/// ```
/// use hetsched_policies::RoundRobinDispatch;
///
/// // The paper's §3.2 example: fractions 1/8, 1/8, 1/4, 1/2.
/// let mut rr = RoundRobinDispatch::new(&[0.125, 0.125, 0.25, 0.5], "RR");
/// // Every 8-job cycle delivers exactly {1, 1, 2, 4} jobs per computer.
/// let mut counts = [0u32; 4];
/// for _ in 0..8 {
///     counts[rr.dispatch()] += 1;
/// }
/// assert_eq!(counts, [1, 1, 2, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobinDispatch {
    fractions: Vec<f64>,
    assign: Vec<u64>,
    next: Vec<f64>,
    /// Believed membership from the fault layer; down computers are
    /// skipped by the scan and frozen out of the pay loop so their
    /// credit/debit state is preserved across the outage.
    up: Vec<bool>,
    label: String,
}

impl RoundRobinDispatch {
    /// Creates the dispatcher for the given fractions (step 1 initializes
    /// every `assign` to 0 and every `next` to the guard value 1).
    ///
    /// # Panics
    /// Panics unless the fractions are a probability vector with at least
    /// one positive entry.
    pub fn new(fractions: &[f64], label: impl Into<String>) -> Self {
        assert!(!fractions.is_empty(), "no fractions");
        assert!(
            fractions.iter().all(|&a| (0.0..=1.0).contains(&a)),
            "fractions must lie in [0,1]: {fractions:?}"
        );
        let sum: f64 = fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {sum}"
        );
        assert!(
            fractions.iter().any(|&a| a > 0.0),
            "at least one fraction must be positive"
        );
        RoundRobinDispatch {
            fractions: fractions.to_vec(),
            assign: vec![0; fractions.len()],
            next: vec![1.0; fractions.len()],
            up: vec![true; fractions.len()],
            label: label.into(),
        }
    }

    /// Updates the believed membership (see
    /// [`Policy::on_membership_change`]). Down computers stop receiving
    /// jobs and stop paying for arrivals, so gap equalization continues
    /// over the live set and a repaired computer resumes exactly where
    /// it left off.
    pub fn set_membership(&mut self, up: &[bool]) {
        debug_assert_eq!(up.len(), self.up.len());
        self.up.copy_from_slice(up);
    }

    /// The configured fractions.
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// Jobs assigned to each computer so far.
    pub fn assignments(&self) -> &[u64] {
        &self.assign
    }

    /// Replaces the target fractions while keeping the credit state
    /// (`next`/`assign`) and the membership mask — the phase-preserving
    /// re-allocation used when a rate-aware tier re-solves Algorithm 1
    /// mid-run: the rotation continues where it was, and the new `1/α`
    /// credits steer it toward the new allocation from the next win on.
    ///
    /// # Panics
    /// Panics under the same probability-vector checks as
    /// [`RoundRobinDispatch::new`], or on a length mismatch.
    pub fn retarget(&mut self, fractions: &[f64]) {
        assert_eq!(
            fractions.len(),
            self.fractions.len(),
            "retarget must keep the computer count"
        );
        assert!(
            fractions.iter().all(|&a| (0.0..=1.0).contains(&a)),
            "fractions must lie in [0,1]: {fractions:?}"
        );
        let sum: f64 = fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {sum}"
        );
        self.fractions.copy_from_slice(fractions);
    }

    /// Steps 2.b–2.c: the selection scan for the minimum `next`,
    /// breaking ties by the smallest normalized assignment count
    /// `(assign+1)/α`. Read-only; `None` when every positive-fraction
    /// computer is believed down.
    fn scan_select(&self) -> Option<usize> {
        let mut select: Option<usize> = None;
        let mut minnext = f64::INFINITY;
        let mut norassign = f64::INFINITY;
        for i in 0..self.fractions.len() {
            let a = self.fractions[i];
            if a == 0.0 || !self.up[i] {
                continue; // step 2.c.1, extended to down computers
            }
            let cand_nor = (self.assign[i] + 1) as f64 / a;
            if select.is_none() || self.next[i] < minnext - TIE_EPS {
                select = Some(i);
                minnext = self.next[i];
                norassign = cand_nor;
            } else if (self.next[i] - minnext).abs() <= TIE_EPS && cand_nor < norassign - TIE_EPS {
                select = Some(i);
                norassign = cand_nor;
            }
        }
        select
    }

    /// One dispatch decision (steps 2.b–2.h), independent of the cluster
    /// context — also used directly by the Figure-2 harness.
    pub fn dispatch(&mut self) -> usize {
        let Some(s) = self.scan_select() else {
            // Every positive-fraction computer is believed down. Return a
            // deterministic last resort without touching the credit state
            // (the simulation will lose the job if the pick really is
            // down; if the belief is stale, the job survives).
            return self.up.iter().position(|&u| u).unwrap_or_else(|| {
                self.fractions
                    .iter()
                    .position(|&a| a > 0.0)
                    .expect("checked")
            });
        };

        // Step 2.d: a computer selected for the first time resets its
        // guard before the normal update.
        if self.assign[s] == 0 {
            self.next[s] = 0.0;
        }
        // Steps 2.e–2.f.
        self.next[s] += 1.0 / self.fractions[s];
        self.assign[s] += 1;
        // Step 2.h: every computer that has started receiving jobs pays
        // for the arrival that was just dispatched. Down computers are
        // frozen: they neither receive nor pay, so the gap structure of
        // the live set is undisturbed and a repaired computer rejoins
        // with the credit it had at crash time.
        for i in 0..self.fractions.len() {
            if self.assign[i] != 0 && self.up[i] {
                self.next[i] -= 1.0;
            }
        }
        s
    }
}

impl Policy for RoundRobinDispatch {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        self.dispatch()
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        self.set_membership(up);
    }

    fn expected_fractions(&self) -> Option<Vec<f64>> {
        Some(self.fractions.clone())
    }

    fn sync_state(&self) -> Option<SyncState> {
        // The `next` credit vector IS the algorithm's mergeable state:
        // `assign` only matters through the start-up guard and the tie
        // rule, and averaging monotone counters across shards would
        // corrupt them.
        Some(SyncState::with_credits(self.next.clone()))
    }

    fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
        if consensus.phase_preserving {
            // Level reconciliation: shift every credit by the mean gap
            // to the consensus level. A constant shift preserves all
            // within-shard credit differences — the rotation offset —
            // exactly in real arithmetic; the scan guard below reverts
            // the shift in the (measure-zero) event that f64 rounding
            // at a TIE_EPS boundary would move the selection anyway.
            let Some(delta) = hetsched_cluster::level_shift(consensus, &self.next) else {
                return; // foreign-width consensus: ignore
            };
            let before = self.scan_select();
            let saved = self.next.clone();
            for c in &mut self.next {
                *c += delta;
            }
            if self.scan_select() != before {
                self.next = saved;
            }
            return;
        }
        // Naive mode: adopting the tier-mean credits re-aligns the
        // shards' gap structure — and their phases, which is exactly the
        // phase-locking failure the coordinated mode exists to avoid.
        // Kept bit-for-bit as the historical baseline. A length mismatch
        // (foreign consensus) is ignored.
        if consensus.credits.len() == self.next.len() {
            self.next.copy_from_slice(&consensus.credits);
        }
    }

    fn advance_rotation(&mut self, steps: u64) {
        // A virtual step is a full Algorithm-2 step for an arrival a
        // peer shard handled: the winner is credited and everyone pays,
        // exactly as if this dispatcher had dispatched it. Replaying
        // peers' steps keeps this machine on the *global* credit
        // trajectory, so its real decisions interleave correctly with
        // the other shards'.
        for _ in 0..steps {
            self.dispatch();
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn counts_after(p: &mut RoundRobinDispatch, n: usize) -> Vec<u64> {
        let mut counts = vec![0u64; p.fractions().len()];
        for _ in 0..n {
            counts[p.dispatch()] += 1;
        }
        counts
    }

    #[test]
    fn equal_fractions_degenerate_to_classic_round_robin() {
        // §3.2: "When each computer shares the same fraction of workload,
        // this scheme degenerates to the traditional round-robin
        // strategy."
        let mut p = RoundRobinDispatch::new(&[0.25; 4], "RR");
        let seq: Vec<usize> = (0..12).map(|_| p.dispatch()).collect();
        // Every window of 4 consecutive dispatches covers all servers.
        for w in seq.chunks(4) {
            let mut seen = [false; 4];
            for &s in w {
                seen[s] = true;
            }
            assert!(seen.iter().all(|&b| b), "window {w:?} not a permutation");
        }
    }

    #[test]
    fn paper_example_cycle_counts() {
        // §3.2 example: fractions 1/8, 1/8, 1/4, 1/2. The ideal spreads 8
        // jobs as {1, 1, 2, 4}; Algorithm 2 realizes exactly those counts
        // each cycle.
        let mut p = RoundRobinDispatch::new(&[0.125, 0.125, 0.25, 0.5], "RR");
        for cycle in 0..10 {
            let counts = counts_after(&mut p, 8);
            assert_eq!(counts, vec![1, 1, 2, 4], "cycle {cycle}");
        }
    }

    #[test]
    fn first_job_goes_to_largest_fraction() {
        // §3.2: "Initially, computers allocated larger fractions of
        // workload are selected first."
        let mut p = RoundRobinDispatch::new(&[0.125, 0.125, 0.25, 0.5], "RR");
        assert_eq!(p.dispatch(), 3);
        assert_eq!(p.dispatch(), 2);
    }

    #[test]
    fn zero_fraction_servers_never_selected() {
        let mut p = RoundRobinDispatch::new(&[0.0, 0.5, 0.0, 0.5], "RR");
        for _ in 0..100 {
            let s = p.dispatch();
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn long_run_fractions_converge() {
        // The paper's Figure-2 fractions.
        let fractions = [0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04];
        let mut p = RoundRobinDispatch::new(&fractions, "RR");
        let n = 100_000;
        let counts = counts_after(&mut p, n);
        for (i, (&c, &a)) in counts.iter().zip(&fractions).enumerate() {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - a).abs() < 0.001,
                "server {i}: freq {freq} vs fraction {a}"
            );
        }
    }

    #[test]
    fn short_window_proportionality_beats_random() {
        // The whole point of Algorithm 2: even short windows track the
        // fractions. Over any 100-job window the realized counts must be
        // within ±2 of the expectation for these fractions.
        let fractions = [0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04];
        let mut p = RoundRobinDispatch::new(&fractions, "RR");
        // Skip the start-up transient.
        for _ in 0..1000 {
            p.dispatch();
        }
        for _ in 0..50 {
            let counts = counts_after(&mut p, 100);
            for (i, (&c, &a)) in counts.iter().zip(&fractions).enumerate() {
                let expected = 100.0 * a;
                assert!(
                    (c as f64 - expected).abs() <= 2.0,
                    "server {i}: {c} jobs in a 100-window, expected {expected}"
                );
            }
        }
    }

    #[test]
    fn never_assigned_guard_defers_small_fractions() {
        // With a dominant computer, tiny-fraction computers must not get
        // their first job until the cycle reaches them.
        let mut p = RoundRobinDispatch::new(&[0.9, 0.05, 0.05], "RR");
        let first_ten: Vec<usize> = (0..10).map(|_| p.dispatch()).collect();
        // Computer 0 must take the lion's share immediately.
        let c0 = first_ten.iter().filter(|&&s| s == 0).count();
        assert!(c0 >= 8, "computer 0 got only {c0} of the first 10");
    }

    #[test]
    fn assignments_accessor_tracks() {
        let mut p = RoundRobinDispatch::new(&[0.5, 0.5], "RR");
        p.dispatch();
        p.dispatch();
        p.dispatch();
        assert_eq!(p.assignments().iter().sum::<u64>(), 3);
    }

    #[test]
    fn down_servers_are_skipped_and_rejoin_smoothly() {
        let fractions = [0.25; 4];
        let mut p = RoundRobinDispatch::new(&fractions, "RR");
        for _ in 0..8 {
            p.dispatch(); // settle into the cycle
        }
        p.set_membership(&[true, true, false, true]);
        let counts = counts_after(&mut p, 30);
        assert_eq!(counts[2], 0, "down server must not be selected");
        // The live set keeps round-robin order: counts stay balanced.
        assert!(counts[..2].iter().chain(&counts[3..]).all(|&c| c == 10));
        p.set_membership(&[true, true, true, true]);
        // The repaired server kept its frozen credit, so it briefly wins
        // back-to-back turns to catch up, then rotation resumes — no
        // server ends up far from its fair share of the next 40 jobs.
        let counts = counts_after(&mut p, 40);
        assert!(counts[2] >= 10, "repaired server under-served: {counts:?}");
        for (i, &c) in counts.iter().enumerate() {
            assert!((8..=14).contains(&c), "server {i} got {c} of 40");
        }
    }

    #[test]
    fn all_down_falls_back_deterministically() {
        let mut p = RoundRobinDispatch::new(&[0.5, 0.5], "RR");
        p.set_membership(&[false, false]);
        // Stale all-down belief: a deterministic pick, no panic, no
        // credit-state mutation.
        let before_next = p.next.clone();
        assert_eq!(p.dispatch(), 0);
        assert_eq!(p.next, before_next);
        p.set_membership(&[false, true]);
        assert_eq!(p.dispatch(), 1);
    }

    #[test]
    fn sync_state_round_trips_credits() {
        let fractions = [0.25, 0.25, 0.5];
        let mut a = RoundRobinDispatch::new(&fractions, "RR");
        let mut b = RoundRobinDispatch::new(&fractions, "RR");
        // Shard a runs ahead of shard b.
        for _ in 0..7 {
            a.dispatch();
        }
        for _ in 0..2 {
            b.dispatch();
        }
        let sa = a.sync_state().expect("mergeable");
        let sb = b.sync_state().expect("mergeable");
        assert_eq!(sa.credits, a.next);
        assert!(sa.loads.is_empty(), "nothing in the load lane");
        // Elementwise-mean consensus, as the naive tier computes it.
        let merged = SyncState::with_credits(
            sa.credits
                .iter()
                .zip(&sb.credits)
                .map(|(x, y)| (x + y) / 2.0)
                .collect(),
        );
        a.merge_sync(&merged, 10.0);
        b.merge_sync(&merged, 10.0);
        assert_eq!(a.next, b.next, "shards agree after a sync round");
        assert_eq!(a.next, merged.credits);
        // A foreign-length consensus is ignored, not misapplied.
        let before = a.next.clone();
        a.merge_sync(&SyncState::with_credits(vec![1.0; 5]), 11.0);
        assert_eq!(a.next, before);
    }

    #[test]
    fn phase_preserving_merge_shifts_levels_without_moving_rotation() {
        let fractions = [0.25, 0.25, 0.5];
        let mut a = RoundRobinDispatch::new(&fractions, "RR");
        let mut b = RoundRobinDispatch::new(&fractions, "RR");
        for _ in 0..7 {
            a.dispatch();
        }
        for _ in 0..2 {
            b.dispatch();
        }
        let merged = hetsched_cluster::consensus_coordinated(&[
            a.sync_state().unwrap(),
            b.sync_state().unwrap(),
        ])
        .unwrap();
        // The merged credits keep each shard's own rotation: the next
        // K decisions are exactly what an unmerged clone would make.
        let mut a_clone = a.clone();
        let mut b_clone = b.clone();
        a.merge_sync(&merged, 10.0);
        b.merge_sync(&merged, 10.0);
        for k in 0..24 {
            assert_eq!(a.dispatch(), a_clone.dispatch(), "shard a step {k}");
            assert_eq!(b.dispatch(), b_clone.dispatch(), "shard b step {k}");
        }
    }

    #[test]
    fn retarget_keeps_credit_state() {
        let mut p = RoundRobinDispatch::new(&[0.25, 0.25, 0.5], "RR");
        for _ in 0..5 {
            p.dispatch();
        }
        let next = p.next.clone();
        let assign = p.assign.clone();
        p.retarget(&[0.5, 0.25, 0.25]);
        assert_eq!(p.next, next, "credits must survive a retarget");
        assert_eq!(p.assign, assign);
        assert_eq!(p.fractions(), &[0.5, 0.25, 0.25]);
        // The rotation steers to the new allocation.
        let counts = counts_after(&mut p, 4000);
        let freq0 = counts[0] as f64 / 4000.0;
        assert!((freq0 - 0.5).abs() < 0.02, "freq {freq0} after retarget");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn retarget_rejects_unnormalized() {
        let mut p = RoundRobinDispatch::new(&[0.5, 0.5], "RR");
        p.retarget(&[0.3, 0.3]);
    }

    #[test]
    fn advance_rotation_matches_explicit_dispatches() {
        let fractions = [0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04];
        let mut by_steps = RoundRobinDispatch::new(&fractions, "RR");
        let mut by_calls = RoundRobinDispatch::new(&fractions, "RR");
        by_steps.advance_rotation(137);
        for _ in 0..137 {
            by_calls.dispatch();
        }
        assert_eq!(by_steps.next, by_calls.next);
        assert_eq!(by_steps.assign, by_calls.assign);
        // Interleaved real/virtual steps reproduce the global sequence:
        // a 2-shard tier where shard 0 takes even and shard 1 odd
        // arrivals dispatches, in union, exactly the D=1 sequence.
        let mut global = RoundRobinDispatch::new(&fractions, "RR");
        let mut s0 = RoundRobinDispatch::new(&fractions, "RR");
        let mut s1 = RoundRobinDispatch::new(&fractions, "RR");
        s1.advance_rotation(1); // shard 1's first arrival is global #2
        let mut union = Vec::new();
        for _ in 0..50 {
            union.push(s0.dispatch());
            s0.advance_rotation(1);
            union.push(s1.dispatch());
            s1.advance_rotation(1);
        }
        let want: Vec<usize> = (0..100).map(|_| global.dispatch()).collect();
        assert_eq!(union, want, "sharded union must replay the global order");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_all_zero() {
        // All-zero fractions fail the Σα = 1 check (positivity is then
        // implied for any vector that passes it).
        RoundRobinDispatch::new(&[0.0, 0.0], "RR");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized() {
        RoundRobinDispatch::new(&[0.3, 0.3], "RR");
    }

    proptest! {
        /// For any probability vector, the realized frequency over a long
        /// horizon converges to the fractions.
        #[test]
        fn converges_for_random_fractions(raw in prop::collection::vec(0.01f64..1.0, 2..10)) {
            let total: f64 = raw.iter().sum();
            let fractions: Vec<f64> = raw.iter().map(|x| x / total).collect();
            let mut p = RoundRobinDispatch::new(&fractions, "RR");
            let n = 20_000;
            let mut counts = vec![0u64; fractions.len()];
            for _ in 0..n {
                counts[p.dispatch()] += 1;
            }
            for (&c, &a) in counts.iter().zip(&fractions) {
                let freq = c as f64 / n as f64;
                prop_assert!((freq - a).abs() < 0.01, "freq {freq} vs {a}");
            }
        }

        /// `next` values stay bounded (no drift): with n computers, a
        /// computer can fall at most ~n arrivals behind schedule (each
        /// arrival decrements everyone but credits only the winner), and
        /// can never be scheduled further out than one full period ahead.
        #[test]
        fn next_values_bounded(raw in prop::collection::vec(0.05f64..1.0, 2..8)) {
            let total: f64 = raw.iter().sum();
            let fractions: Vec<f64> = raw.iter().map(|x| x / total).collect();
            let n = fractions.len() as f64;
            let mut p = RoundRobinDispatch::new(&fractions, "RR");
            for _ in 0..5000 {
                p.dispatch();
            }
            for (i, &a) in fractions.iter().enumerate() {
                let nx = p.next[i];
                prop_assert!(
                    nx > -(n + 1.0) && nx < 1.0 / a + n + 1.0,
                    "server {} next {} out of range for α={}",
                    i, nx, a
                );
            }
        }
    }
}

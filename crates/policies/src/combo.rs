//! Policy combinations — the paper's Table 2 and the full roster.
//!
//! | | weighted allocation | optimized allocation |
//! |---|---|---|
//! | **random dispatching** | WRAN | ORAN |
//! | **round-robin dispatching** | WRR | ORR |
//!
//! [`PolicySpec`] is the serde-friendly description used by experiment
//! configurations; [`PolicySpec::build`] materializes a boxed
//! [`Policy`] for a concrete cluster configuration.

use hetsched_cluster::{ClusterConfig, Policy};
use hetsched_dist::{BoundedPareto, DistSpec};
use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationSpec;
use crate::dynamic::LeastLoadPolicy;
use crate::extra::{JsqPolicy, SitaEPolicy};
use crate::hesrpt::{HesrptPolicy, HesrptStaticPolicy};
use crate::random::RandomDispatch;
use crate::reopt::ReoptimizingOrr;
use crate::round_robin::RoundRobinDispatch;
use crate::scalable::{IndexedJsq, IndexedLeastLoad, IndexedStaleAware, Jiq, JsqFull, PowerOfD};

/// Job dispatching strategies for static policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DispatcherSpec {
    /// Random based dispatching (§3.1).
    Random,
    /// Round-robin based dispatching, Algorithm 2 (§3.2).
    RoundRobin,
}

impl DispatcherSpec {
    fn tag(&self) -> &'static str {
        match self {
            DispatcherSpec::Random => "RAN",
            DispatcherSpec::RoundRobin => "RR",
        }
    }
}

/// Declarative policy description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PolicySpec {
    /// A static scheme: allocation × dispatcher (Table 2).
    Static {
        /// Workload allocation scheme.
        allocation: AllocationSpec,
        /// Job dispatching strategy.
        dispatcher: DispatcherSpec,
    },
    /// Dynamic Least-Load with delayed feedback (the yardstick).
    DynamicLeastLoad,
    /// Dynamic Least-Load with staleness-aware graceful degradation: a
    /// load index older than the confidence window decays toward the
    /// optimized-allocation prior instead of being trusted (robustness
    /// extension for lossy/partitioned load-update planes).
    StaleAwareDynamic {
        /// Seconds a load index stays fully trusted.
        confidence_window: f64,
    },
    /// Power-of-d-choices on true instantaneous loads (clairvoyant
    /// extension baseline).
    Jsq {
        /// Number of probed machines per job.
        d: usize,
    },
    /// Size-interval assignment with equalized load (clairvoyant
    /// extension baseline; requires Bounded Pareto job sizes).
    SitaE,
    /// Burst-per-cycle weighted round-robin over the *optimized*
    /// fractions — the dispatcher ablation strawman (extension).
    BurstyWrr {
        /// Length of the dispatch cycle in jobs.
        cycle_len: u32,
    },
    /// ORR with an online EWMA utilization estimator (extension): the
    /// allocation is recomputed every `recompute_every` seconds from the
    /// observed arrival rate, inflated by `safety_margin`.
    AdaptiveOrr {
        /// Seconds between allocation recomputations.
        recompute_every: f64,
        /// Relative overestimation margin (paper §5.4 recommends slight
        /// conservatism).
        safety_margin: f64,
    },
    /// ORR that re-solves Algorithm 1 over the surviving machines on
    /// every membership change (fault-tolerance extension). Identical to
    /// ORR when no machine ever fails.
    ReoptimizingOrr,
    /// Dynamic Least-Load over a tournament-tree argmin index: decisions
    /// bit-identical to [`PolicySpec::DynamicLeastLoad`] at O(log N) per
    /// state change instead of O(N) per dispatch (scale axis).
    IndexedDynamic,
    /// Staleness-aware Dynamic over a fresh/stale split index:
    /// bit-identical to [`PolicySpec::StaleAwareDynamic`] without the
    /// O(N) effective-load scan (scale axis).
    IndexedStaleAware {
        /// Seconds a load index stays fully trusted.
        confidence_window: f64,
    },
    /// Full-information JSQ — the d = N clairvoyant bound, as an
    /// explicit O(N) scan (scale axis).
    JsqFull,
    /// Full-information JSQ over the simulation's shared true-load
    /// index: bit-identical to [`PolicySpec::JsqFull`] at O(1) per
    /// decision while all servers are up (scale axis).
    IndexedJsq,
    /// Power-of-d-choices over believed loads: O(d) per decision, no
    /// index (scale axis).
    PowerOfD {
        /// Number of sampled machines per job (1..=8).
        d: usize,
        /// Speed-normalize the sampled believed loads (heterogeneity
        /// awareness). Serde-defaulted to `false` — the homogeneous
        /// literature's raw queue-length comparison.
        #[serde(default)]
        het_aware: bool,
    },
    /// Join-Idle-Queue: O(1) idle-stack pop per decision, power-of-2
    /// sampling fallback when no server is believed idle (scale axis).
    Jiq,
    /// heSRPT malleable server allocation (slowdown axis): every job
    /// is held by the simulator's allocation tier, which divides each
    /// dispatch shard's cores among its in-flight jobs by the heSRPT
    /// closed form — size-ordered water-filled shares that minimize
    /// mean slowdown. Requires an active `malleable` section in the
    /// cluster configuration.
    Hesrpt,
    /// Equal-split malleable allocation (slowdown axis): like
    /// [`PolicySpec::Hesrpt`] but every in-flight job receives the
    /// same core share regardless of remaining work — the EQUI
    /// baseline that isolates the value of size ordering.
    HesrptStatic,
}

impl PolicySpec {
    /// Weighted Random — the simplest speed-aware static scheme.
    pub fn wran() -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::Weighted,
            dispatcher: DispatcherSpec::Random,
        }
    }

    /// Optimized Random.
    pub fn oran() -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::optimized(),
            dispatcher: DispatcherSpec::Random,
        }
    }

    /// Weighted Round-Robin.
    pub fn wrr() -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::Weighted,
            dispatcher: DispatcherSpec::RoundRobin,
        }
    }

    /// Optimized Round-Robin — the paper's headline algorithm.
    pub fn orr() -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::optimized(),
            dispatcher: DispatcherSpec::RoundRobin,
        }
    }

    /// ORR with a relative utilization-estimation error (§5.4).
    pub fn orr_with_error(rho_error: f64) -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::Optimized { rho_error },
            dispatcher: DispatcherSpec::RoundRobin,
        }
    }

    /// The four static schemes of Table 2, in the paper's order.
    pub fn table2() -> [PolicySpec; 4] {
        [Self::wran(), Self::oran(), Self::wrr(), Self::orr()]
    }

    /// ORR that re-optimizes the allocation over the surviving machines.
    pub fn reopt_orr() -> Self {
        PolicySpec::ReoptimizingOrr
    }

    /// Staleness-aware Dynamic with the given confidence window.
    pub fn stale_aware_dynamic(confidence_window: f64) -> Self {
        PolicySpec::StaleAwareDynamic { confidence_window }
    }

    /// The policy's display name (WRAN/ORAN/WRR/ORR/DYNAMIC/…).
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Static {
                allocation,
                dispatcher,
            } => format!("{}{}", allocation.tag(), dispatcher.tag()),
            PolicySpec::DynamicLeastLoad => "DYNAMIC".into(),
            PolicySpec::StaleAwareDynamic { .. } => "DYNAMIC-SA".into(),
            PolicySpec::Jsq { d } => format!("JSQ({d})"),
            PolicySpec::SitaE => "SITA-E".into(),
            PolicySpec::BurstyWrr { .. } => "BWRR".into(),
            PolicySpec::AdaptiveOrr { .. } => "AORR".into(),
            PolicySpec::ReoptimizingOrr => "ReORR".into(),
            PolicySpec::IndexedDynamic => "DYNAMIC-IDX".into(),
            PolicySpec::IndexedStaleAware { .. } => "DYNAMIC-SA-IDX".into(),
            PolicySpec::JsqFull => "JSQ-FULL".into(),
            PolicySpec::IndexedJsq => "JSQ-IDX".into(),
            PolicySpec::PowerOfD { d, het_aware } => {
                if *het_aware {
                    format!("POD({d})-HET")
                } else {
                    format!("POD({d})")
                }
            }
            PolicySpec::Jiq => "JIQ".into(),
            PolicySpec::Hesrpt => "HESRPT".into(),
            PolicySpec::HesrptStatic => "HESRPT-STATIC".into(),
        }
    }

    /// Parses a CLI-friendly policy name into a spec.
    ///
    /// Accepted (case-insensitive): `wran`, `oran`, `wrr`, `orr`,
    /// `dynamic`, `dynamic-idx`, `dynamic-sa[:window]`,
    /// `dynamic-sa-idx[:window]`, `jsq:<d>`, `jsq-full`, `jsq-idx`,
    /// `pod:<d>`, `pod-het:<d>`, `jiq`, `sita-e`, `reopt-orr`,
    /// `hesrpt`, `hesrpt-static`. The staleness window defaults to
    /// 500 seconds when omitted.
    ///
    /// # Errors
    /// [`HetschedError::InvalidPolicy`] on an unknown name or an
    /// unparsable numeric argument.
    pub fn from_cli_name(name: &str) -> Result<Self, HetschedError> {
        let lower = name.to_ascii_lowercase();
        let (head, arg) = match lower.split_once(':') {
            Some((h, a)) => (h, Some(a)),
            None => (lower.as_str(), None),
        };
        let window = |arg: Option<&str>| -> Result<f64, HetschedError> {
            match arg {
                None => Ok(500.0),
                Some(a) => a.parse().map_err(|_| {
                    HetschedError::InvalidPolicy(format!("bad confidence window {a:?} in {name:?}"))
                }),
            }
        };
        let probes = |arg: Option<&str>| -> Result<usize, HetschedError> {
            arg.ok_or_else(|| {
                HetschedError::InvalidPolicy(format!("{name:?} needs a probe count, e.g. {head}:2"))
            })?
            .parse()
            .map_err(|_| HetschedError::InvalidPolicy(format!("bad probe count in {name:?}")))
        };
        let spec = match head {
            "wran" => Self::wran(),
            "oran" => Self::oran(),
            "wrr" => Self::wrr(),
            "orr" => Self::orr(),
            "dynamic" => PolicySpec::DynamicLeastLoad,
            "dynamic-idx" => PolicySpec::IndexedDynamic,
            "dynamic-sa" => PolicySpec::StaleAwareDynamic {
                confidence_window: window(arg)?,
            },
            "dynamic-sa-idx" => PolicySpec::IndexedStaleAware {
                confidence_window: window(arg)?,
            },
            "jsq" => PolicySpec::Jsq { d: probes(arg)? },
            "jsq-full" => PolicySpec::JsqFull,
            "jsq-idx" => PolicySpec::IndexedJsq,
            "pod" => PolicySpec::PowerOfD {
                d: probes(arg)?,
                het_aware: false,
            },
            "pod-het" => PolicySpec::PowerOfD {
                d: probes(arg)?,
                het_aware: true,
            },
            "jiq" => PolicySpec::Jiq,
            "sita-e" => PolicySpec::SitaE,
            "reopt-orr" => PolicySpec::ReoptimizingOrr,
            "hesrpt" => PolicySpec::Hesrpt,
            "hesrpt-static" => PolicySpec::HesrptStatic,
            _ => {
                return Err(HetschedError::InvalidPolicy(format!(
                    "unknown policy name {name:?}"
                )))
            }
        };
        Ok(spec)
    }

    /// Materializes the policy for a cluster configuration.
    ///
    /// # Errors
    /// [`HetschedError::InvalidPolicy`] when the spec's parameters are
    /// out of range or incompatible with the configuration (e.g. `SitaE`
    /// without Bounded Pareto job sizes).
    pub fn build(&self, cfg: &ClusterConfig) -> Result<Box<dyn Policy>, HetschedError> {
        match self {
            PolicySpec::Static {
                allocation,
                dispatcher,
            } => {
                if !(cfg.utilization.is_finite() && cfg.utilization > 0.0 && cfg.utilization < 1.0)
                {
                    return Err(HetschedError::InvalidPolicy(format!(
                        "static policies need utilization in (0,1), got {}",
                        cfg.utilization
                    )));
                }
                let fractions = allocation.fractions(&cfg.speeds, cfg.utilization);
                let label = self.label();
                Ok(match dispatcher {
                    DispatcherSpec::Random => Box::new(RandomDispatch::new(&fractions, label)),
                    DispatcherSpec::RoundRobin => {
                        Box::new(RoundRobinDispatch::new(&fractions, label))
                    }
                })
            }
            PolicySpec::DynamicLeastLoad => Ok(Box::new(LeastLoadPolicy::new(&cfg.speeds))),
            PolicySpec::StaleAwareDynamic { confidence_window } => {
                let prior = stale_prior(cfg, *confidence_window, "DYNAMIC-SA")?;
                Ok(Box::new(crate::dynamic::StaleAwareLeastLoad::new(
                    &cfg.speeds,
                    &prior,
                    *confidence_window,
                )))
            }
            PolicySpec::Jsq { d } => {
                if *d == 0 {
                    return Err(HetschedError::InvalidPolicy("JSQ requires d ≥ 1".into()));
                }
                Ok(Box::new(JsqPolicy::new(*d)))
            }
            PolicySpec::SitaE => match cfg.job_sizes {
                DistSpec::BoundedPareto { k, p, alpha } => Ok(Box::new(SitaEPolicy::new(
                    &cfg.speeds,
                    BoundedPareto::new(k, p, alpha),
                ))),
                other => Err(HetschedError::InvalidPolicy(format!(
                    "SITA-E needs Bounded Pareto job sizes, got {other:?}"
                ))),
            },
            PolicySpec::BurstyWrr { cycle_len } => {
                if !(cfg.utilization.is_finite() && cfg.utilization > 0.0 && cfg.utilization < 1.0)
                {
                    return Err(HetschedError::InvalidPolicy(
                        "BWRR needs utilization in (0,1)".into(),
                    ));
                }
                if *cycle_len == 0 {
                    return Err(HetschedError::InvalidPolicy(
                        "BWRR needs a positive cycle length".into(),
                    ));
                }
                let fractions = crate::allocation::AllocationSpec::optimized()
                    .fractions(&cfg.speeds, cfg.utilization);
                Ok(Box::new(crate::bursty_wrr::BurstyWeightedRr::new(
                    &fractions, *cycle_len, "BWRR",
                )))
            }
            PolicySpec::AdaptiveOrr {
                recompute_every,
                safety_margin,
            } => {
                if !(*recompute_every > 0.0 && recompute_every.is_finite()) {
                    return Err(HetschedError::InvalidPolicy(
                        "AORR needs a positive recompute period".into(),
                    ));
                }
                if !(*safety_margin >= 0.0 && safety_margin.is_finite()) {
                    return Err(HetschedError::InvalidPolicy(
                        "AORR needs a non-negative safety margin".into(),
                    ));
                }
                Ok(Box::new(crate::adaptive::AdaptiveOrr::new(
                    &cfg.speeds,
                    cfg.mean_job_size(),
                    *recompute_every,
                    *safety_margin,
                    0.01,
                )))
            }
            PolicySpec::ReoptimizingOrr => {
                if !(cfg.utilization.is_finite() && cfg.utilization > 0.0 && cfg.utilization < 1.0)
                {
                    return Err(HetschedError::InvalidPolicy(
                        "ReORR needs utilization in (0,1)".into(),
                    ));
                }
                let policy = ReoptimizingOrr::new(&cfg.speeds, cfg.utilization);
                // In a coordinated sharded tier the sync consensus
                // carries the realized arrival rate; let ReORR re-solve
                // Algorithm 1 from it. Naive tiers (and D = 1) keep the
                // historical membership-only behavior bit-for-bit.
                let policy = if cfg.dispatch.coordination
                    == hetsched_cluster::Coordination::PhasePreserving
                    && cfg.dispatch.dispatchers > 1
                {
                    policy.with_rate_reopt(cfg.mean_job_size())
                } else {
                    policy
                };
                Ok(Box::new(policy))
            }
            PolicySpec::IndexedDynamic => Ok(Box::new(IndexedLeastLoad::new(&cfg.speeds))),
            PolicySpec::IndexedStaleAware { confidence_window } => {
                let prior = stale_prior(cfg, *confidence_window, "DYNAMIC-SA-IDX")?;
                Ok(Box::new(IndexedStaleAware::new(
                    &cfg.speeds,
                    &prior,
                    *confidence_window,
                )))
            }
            PolicySpec::JsqFull => Ok(Box::new(JsqFull::new())),
            PolicySpec::IndexedJsq => Ok(Box::new(IndexedJsq::new())),
            PolicySpec::PowerOfD { d, het_aware } => {
                if !(1..=8).contains(d) {
                    return Err(HetschedError::InvalidPolicy(format!(
                        "power-of-d needs d in 1..=8, got {d}"
                    )));
                }
                Ok(Box::new(PowerOfD::new(&cfg.speeds, *d, *het_aware)))
            }
            PolicySpec::Jiq => Ok(Box::new(Jiq::new(&cfg.speeds))),
            PolicySpec::Hesrpt => {
                require_malleable(cfg, "HESRPT")?;
                Ok(Box::new(HesrptPolicy::new()))
            }
            PolicySpec::HesrptStatic => {
                require_malleable(cfg, "HESRPT-STATIC")?;
                Ok(Box::new(HesrptStaticPolicy::new()))
            }
        }
    }
}

/// The malleable allocators are declarations to the simulator's
/// allocation tier; without an active `malleable` section that tier
/// never forms and the policy would silently degenerate to its rigid
/// fallback. Reject the combination up front instead.
fn require_malleable(cfg: &ClusterConfig, label: &str) -> Result<(), HetschedError> {
    if cfg.malleable.as_ref().is_some_and(|m| m.active()) {
        Ok(())
    } else {
        Err(HetschedError::InvalidPolicy(format!(
            "{label} needs an active malleable section in the cluster \
             configuration (e.g. --malleable-fraction 0.5); without one \
             there are no malleable classes to allocate cores to"
        )))
    }
}

/// Validates the staleness-aware parameters and computes the static
/// prior: the M/M/1-PS mean queue length each server would carry under
/// the paper's optimized allocation — ρ_i = α_i λ / (μ s_i) =
/// α_i ρ Σs / s_i and E[N_i] = ρ_i / (1 − ρ_i).
fn stale_prior(
    cfg: &ClusterConfig,
    confidence_window: f64,
    label: &str,
) -> Result<Vec<f64>, HetschedError> {
    if !(confidence_window.is_finite() && confidence_window > 0.0) {
        return Err(HetschedError::InvalidPolicy(format!(
            "{label} needs a positive confidence window, got {confidence_window}"
        )));
    }
    if !(cfg.utilization.is_finite() && cfg.utilization > 0.0 && cfg.utilization < 1.0) {
        return Err(HetschedError::InvalidPolicy(format!(
            "{label} needs utilization in (0,1) for its static prior"
        )));
    }
    let fractions =
        crate::allocation::AllocationSpec::optimized().fractions(&cfg.speeds, cfg.utilization);
    let total_speed: f64 = cfg.speeds.iter().sum();
    Ok(fractions
        .iter()
        .zip(&cfg.speeds)
        .map(|(&alpha, &s)| {
            let rho_i = (alpha * cfg.utilization * total_speed / s).min(0.999);
            rho_i / (1.0 - rho_i)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::paper_default(&[1.0, 2.0, 10.0])
    }

    #[test]
    fn labels_match_table2() {
        assert_eq!(PolicySpec::wran().label(), "WRAN");
        assert_eq!(PolicySpec::oran().label(), "ORAN");
        assert_eq!(PolicySpec::wrr().label(), "WRR");
        assert_eq!(PolicySpec::orr().label(), "ORR");
        assert_eq!(PolicySpec::DynamicLeastLoad.label(), "DYNAMIC");
        assert_eq!(PolicySpec::stale_aware_dynamic(500.0).label(), "DYNAMIC-SA");
        assert_eq!(PolicySpec::orr_with_error(0.05).label(), "O(+5%)RR");
    }

    #[test]
    fn table2_has_four_distinct_entries() {
        let t = PolicySpec::table2();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(t[i], t[j]);
            }
        }
    }

    #[test]
    fn builds_every_spec() {
        let cfg = cfg();
        for spec in [
            PolicySpec::wran(),
            PolicySpec::oran(),
            PolicySpec::wrr(),
            PolicySpec::orr(),
            PolicySpec::DynamicLeastLoad,
            PolicySpec::stale_aware_dynamic(500.0),
            PolicySpec::Jsq { d: 2 },
            PolicySpec::SitaE,
            PolicySpec::BurstyWrr { cycle_len: 100 },
            PolicySpec::AdaptiveOrr {
                recompute_every: 500.0,
                safety_margin: 0.05,
            },
            PolicySpec::reopt_orr(),
            PolicySpec::IndexedDynamic,
            PolicySpec::IndexedStaleAware {
                confidence_window: 500.0,
            },
            PolicySpec::JsqFull,
            PolicySpec::IndexedJsq,
            PolicySpec::PowerOfD {
                d: 2,
                het_aware: false,
            },
            PolicySpec::PowerOfD {
                d: 2,
                het_aware: true,
            },
            PolicySpec::Jiq,
        ] {
            let p = spec.build(&cfg).unwrap();
            assert_eq!(p.name(), spec.label());
        }
    }

    #[test]
    fn scale_axis_labels() {
        assert_eq!(PolicySpec::IndexedDynamic.label(), "DYNAMIC-IDX");
        assert_eq!(
            PolicySpec::IndexedStaleAware {
                confidence_window: 500.0
            }
            .label(),
            "DYNAMIC-SA-IDX"
        );
        assert_eq!(PolicySpec::JsqFull.label(), "JSQ-FULL");
        assert_eq!(PolicySpec::IndexedJsq.label(), "JSQ-IDX");
        assert_eq!(
            PolicySpec::PowerOfD {
                d: 2,
                het_aware: true
            }
            .label(),
            "POD(2)-HET"
        );
        assert_eq!(PolicySpec::Jiq.label(), "JIQ");
    }

    #[test]
    fn scale_axis_specs_validate() {
        let cfg = cfg();
        assert!(PolicySpec::PowerOfD {
            d: 0,
            het_aware: false
        }
        .build(&cfg)
        .is_err());
        assert!(PolicySpec::PowerOfD {
            d: 9,
            het_aware: true
        }
        .build(&cfg)
        .is_err());
        assert!(PolicySpec::IndexedStaleAware {
            confidence_window: 0.0
        }
        .build(&cfg)
        .is_err());
    }

    #[test]
    fn cli_names_parse() {
        for (name, spec) in [
            ("orr", PolicySpec::orr()),
            ("WRAN", PolicySpec::wran()),
            ("dynamic", PolicySpec::DynamicLeastLoad),
            ("dynamic-idx", PolicySpec::IndexedDynamic),
            ("dynamic-sa", PolicySpec::stale_aware_dynamic(500.0)),
            ("dynamic-sa-idx:250", {
                PolicySpec::IndexedStaleAware {
                    confidence_window: 250.0,
                }
            }),
            ("jsq:3", PolicySpec::Jsq { d: 3 }),
            ("jsq-full", PolicySpec::JsqFull),
            ("jsq-idx", PolicySpec::IndexedJsq),
            (
                "pod:2",
                PolicySpec::PowerOfD {
                    d: 2,
                    het_aware: false,
                },
            ),
            (
                "pod-het:4",
                PolicySpec::PowerOfD {
                    d: 4,
                    het_aware: true,
                },
            ),
            ("jiq", PolicySpec::Jiq),
            ("sita-e", PolicySpec::SitaE),
            ("reopt-orr", PolicySpec::ReoptimizingOrr),
            ("hesrpt", PolicySpec::Hesrpt),
            ("HESRPT-STATIC", PolicySpec::HesrptStatic),
        ] {
            assert_eq!(PolicySpec::from_cli_name(name).unwrap(), spec, "{name}");
        }
        assert!(PolicySpec::from_cli_name("nope").is_err());
        assert!(PolicySpec::from_cli_name("pod").is_err());
        assert!(PolicySpec::from_cli_name("jsq:many").is_err());
        assert!(PolicySpec::from_cli_name("dynamic-sa:soon").is_err());
    }

    #[test]
    fn build_errors_are_typed() {
        let cfg = cfg();
        let err = PolicySpec::Jsq { d: 0 }
            .build(&cfg)
            .err()
            .expect("JSQ with d = 0 must be rejected");
        assert!(matches!(
            err,
            hetsched_error::HetschedError::InvalidPolicy(_)
        ));
        assert!(err.to_string().contains("JSQ"));
    }

    #[test]
    fn extension_specs_validate() {
        let cfg = cfg();
        assert!(PolicySpec::stale_aware_dynamic(0.0).build(&cfg).is_err());
        assert!(PolicySpec::stale_aware_dynamic(f64::NAN)
            .build(&cfg)
            .is_err());
        assert!(PolicySpec::BurstyWrr { cycle_len: 0 }.build(&cfg).is_err());
        assert!(PolicySpec::AdaptiveOrr {
            recompute_every: 0.0,
            safety_margin: 0.0
        }
        .build(&cfg)
        .is_err());
        assert!(PolicySpec::AdaptiveOrr {
            recompute_every: 10.0,
            safety_margin: -0.5
        }
        .build(&cfg)
        .is_err());
    }

    #[test]
    fn only_dynamic_needs_load_updates() {
        let cfg = cfg();
        assert!(PolicySpec::DynamicLeastLoad
            .build(&cfg)
            .unwrap()
            .needs_load_updates());
        for spec in PolicySpec::table2() {
            assert!(!spec.build(&cfg).unwrap().needs_load_updates());
        }
    }

    #[test]
    fn sita_requires_bounded_pareto() {
        let mut c = cfg();
        c.job_sizes = hetsched_dist::DistSpec::Exponential { mean: 10.0 };
        assert!(PolicySpec::SitaE.build(&c).is_err());
    }

    #[test]
    fn jsq_rejects_zero_d() {
        assert!(PolicySpec::Jsq { d: 0 }.build(&cfg()).is_err());
    }

    #[test]
    fn hesrpt_requires_active_malleable_section() {
        // No malleable section at all.
        let plain = cfg();
        for spec in [PolicySpec::Hesrpt, PolicySpec::HesrptStatic] {
            let err = spec.build(&plain).err().expect("must be rejected");
            assert!(matches!(err, HetschedError::InvalidPolicy(_)));
            assert!(err.to_string().contains("malleable"));
        }
        // An inactive section (zero fraction) is just as rigid.
        let mut inactive = cfg();
        inactive.malleable = Some(hetsched_cluster::MalleableSpec::power_law(0.0, 0.5));
        assert!(PolicySpec::Hesrpt.build(&inactive).is_err());
        // An active section builds, and the name matches the label.
        let mut active = cfg();
        active.malleable = Some(hetsched_cluster::MalleableSpec::power_law(0.5, 0.5));
        for spec in [PolicySpec::Hesrpt, PolicySpec::HesrptStatic] {
            let p = spec.build(&active).unwrap();
            assert_eq!(p.name(), spec.label());
            assert!(p.malleable_allocator().is_some());
            assert!(!p.needs_load_updates());
        }
    }

    #[test]
    fn serde_round_trip() {
        for spec in [
            PolicySpec::orr(),
            PolicySpec::DynamicLeastLoad,
            PolicySpec::stale_aware_dynamic(500.0),
            PolicySpec::Jsq { d: 2 },
            PolicySpec::ReoptimizingOrr,
            PolicySpec::IndexedDynamic,
            PolicySpec::IndexedStaleAware {
                confidence_window: 250.0,
            },
            PolicySpec::JsqFull,
            PolicySpec::IndexedJsq,
            PolicySpec::PowerOfD {
                d: 2,
                het_aware: true,
            },
            PolicySpec::Jiq,
            PolicySpec::Hesrpt,
            PolicySpec::HesrptStatic,
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn pod_het_aware_defaults_to_false() {
        let back: PolicySpec = serde_json::from_str(r#"{"kind": "power_of_d", "d": 2}"#).unwrap();
        assert_eq!(
            back,
            PolicySpec::PowerOfD {
                d: 2,
                het_aware: false
            }
        );
    }
}

//! Policy combinations — the paper's Table 2 and the full roster.
//!
//! | | weighted allocation | optimized allocation |
//! |---|---|---|
//! | **random dispatching** | WRAN | ORAN |
//! | **round-robin dispatching** | WRR | ORR |
//!
//! [`PolicySpec`] is the serde-friendly description used by experiment
//! configurations; [`PolicySpec::build`] materializes a boxed
//! [`Policy`] for a concrete cluster configuration.

use hetsched_cluster::{ClusterConfig, Policy};
use hetsched_dist::{BoundedPareto, DistSpec};
use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationSpec;
use crate::dynamic::LeastLoadPolicy;
use crate::extra::{JsqPolicy, SitaEPolicy};
use crate::random::RandomDispatch;
use crate::reopt::ReoptimizingOrr;
use crate::round_robin::RoundRobinDispatch;

/// Job dispatching strategies for static policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DispatcherSpec {
    /// Random based dispatching (§3.1).
    Random,
    /// Round-robin based dispatching, Algorithm 2 (§3.2).
    RoundRobin,
}

impl DispatcherSpec {
    fn tag(&self) -> &'static str {
        match self {
            DispatcherSpec::Random => "RAN",
            DispatcherSpec::RoundRobin => "RR",
        }
    }
}

/// Declarative policy description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum PolicySpec {
    /// A static scheme: allocation × dispatcher (Table 2).
    Static {
        /// Workload allocation scheme.
        allocation: AllocationSpec,
        /// Job dispatching strategy.
        dispatcher: DispatcherSpec,
    },
    /// Dynamic Least-Load with delayed feedback (the yardstick).
    DynamicLeastLoad,
    /// Dynamic Least-Load with staleness-aware graceful degradation: a
    /// load index older than the confidence window decays toward the
    /// optimized-allocation prior instead of being trusted (robustness
    /// extension for lossy/partitioned load-update planes).
    StaleAwareDynamic {
        /// Seconds a load index stays fully trusted.
        confidence_window: f64,
    },
    /// Power-of-d-choices on true instantaneous loads (clairvoyant
    /// extension baseline).
    Jsq {
        /// Number of probed machines per job.
        d: usize,
    },
    /// Size-interval assignment with equalized load (clairvoyant
    /// extension baseline; requires Bounded Pareto job sizes).
    SitaE,
    /// Burst-per-cycle weighted round-robin over the *optimized*
    /// fractions — the dispatcher ablation strawman (extension).
    BurstyWrr {
        /// Length of the dispatch cycle in jobs.
        cycle_len: u32,
    },
    /// ORR with an online EWMA utilization estimator (extension): the
    /// allocation is recomputed every `recompute_every` seconds from the
    /// observed arrival rate, inflated by `safety_margin`.
    AdaptiveOrr {
        /// Seconds between allocation recomputations.
        recompute_every: f64,
        /// Relative overestimation margin (paper §5.4 recommends slight
        /// conservatism).
        safety_margin: f64,
    },
    /// ORR that re-solves Algorithm 1 over the surviving machines on
    /// every membership change (fault-tolerance extension). Identical to
    /// ORR when no machine ever fails.
    ReoptimizingOrr,
}

impl PolicySpec {
    /// Weighted Random — the simplest speed-aware static scheme.
    pub fn wran() -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::Weighted,
            dispatcher: DispatcherSpec::Random,
        }
    }

    /// Optimized Random.
    pub fn oran() -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::optimized(),
            dispatcher: DispatcherSpec::Random,
        }
    }

    /// Weighted Round-Robin.
    pub fn wrr() -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::Weighted,
            dispatcher: DispatcherSpec::RoundRobin,
        }
    }

    /// Optimized Round-Robin — the paper's headline algorithm.
    pub fn orr() -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::optimized(),
            dispatcher: DispatcherSpec::RoundRobin,
        }
    }

    /// ORR with a relative utilization-estimation error (§5.4).
    pub fn orr_with_error(rho_error: f64) -> Self {
        PolicySpec::Static {
            allocation: AllocationSpec::Optimized { rho_error },
            dispatcher: DispatcherSpec::RoundRobin,
        }
    }

    /// The four static schemes of Table 2, in the paper's order.
    pub fn table2() -> [PolicySpec; 4] {
        [Self::wran(), Self::oran(), Self::wrr(), Self::orr()]
    }

    /// ORR that re-optimizes the allocation over the surviving machines.
    pub fn reopt_orr() -> Self {
        PolicySpec::ReoptimizingOrr
    }

    /// Staleness-aware Dynamic with the given confidence window.
    pub fn stale_aware_dynamic(confidence_window: f64) -> Self {
        PolicySpec::StaleAwareDynamic { confidence_window }
    }

    /// The policy's display name (WRAN/ORAN/WRR/ORR/DYNAMIC/…).
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Static {
                allocation,
                dispatcher,
            } => format!("{}{}", allocation.tag(), dispatcher.tag()),
            PolicySpec::DynamicLeastLoad => "DYNAMIC".into(),
            PolicySpec::StaleAwareDynamic { .. } => "DYNAMIC-SA".into(),
            PolicySpec::Jsq { d } => format!("JSQ({d})"),
            PolicySpec::SitaE => "SITA-E".into(),
            PolicySpec::BurstyWrr { .. } => "BWRR".into(),
            PolicySpec::AdaptiveOrr { .. } => "AORR".into(),
            PolicySpec::ReoptimizingOrr => "ReORR".into(),
        }
    }

    /// Materializes the policy for a cluster configuration.
    ///
    /// # Errors
    /// [`HetschedError::InvalidPolicy`] when the spec's parameters are
    /// out of range or incompatible with the configuration (e.g. `SitaE`
    /// without Bounded Pareto job sizes).
    pub fn build(&self, cfg: &ClusterConfig) -> Result<Box<dyn Policy>, HetschedError> {
        match self {
            PolicySpec::Static {
                allocation,
                dispatcher,
            } => {
                if !(cfg.utilization.is_finite() && cfg.utilization > 0.0 && cfg.utilization < 1.0)
                {
                    return Err(HetschedError::InvalidPolicy(format!(
                        "static policies need utilization in (0,1), got {}",
                        cfg.utilization
                    )));
                }
                let fractions = allocation.fractions(&cfg.speeds, cfg.utilization);
                let label = self.label();
                Ok(match dispatcher {
                    DispatcherSpec::Random => Box::new(RandomDispatch::new(&fractions, label)),
                    DispatcherSpec::RoundRobin => {
                        Box::new(RoundRobinDispatch::new(&fractions, label))
                    }
                })
            }
            PolicySpec::DynamicLeastLoad => Ok(Box::new(LeastLoadPolicy::new(&cfg.speeds))),
            PolicySpec::StaleAwareDynamic { confidence_window } => {
                if !(confidence_window.is_finite() && *confidence_window > 0.0) {
                    return Err(HetschedError::InvalidPolicy(format!(
                        "DYNAMIC-SA needs a positive confidence window, got {confidence_window}"
                    )));
                }
                if !(cfg.utilization.is_finite() && cfg.utilization > 0.0 && cfg.utilization < 1.0)
                {
                    return Err(HetschedError::InvalidPolicy(
                        "DYNAMIC-SA needs utilization in (0,1) for its static prior".into(),
                    ));
                }
                // The static prior is the M/M/1-PS mean queue length each
                // server would carry under the paper's optimized
                // allocation: ρ_i = α_i λ / (μ s_i) = α_i ρ Σs / s_i and
                // E[N_i] = ρ_i / (1 − ρ_i).
                let fractions = crate::allocation::AllocationSpec::optimized()
                    .fractions(&cfg.speeds, cfg.utilization);
                let total_speed: f64 = cfg.speeds.iter().sum();
                let prior: Vec<f64> = fractions
                    .iter()
                    .zip(&cfg.speeds)
                    .map(|(&alpha, &s)| {
                        let rho_i = (alpha * cfg.utilization * total_speed / s).min(0.999);
                        rho_i / (1.0 - rho_i)
                    })
                    .collect();
                Ok(Box::new(crate::dynamic::StaleAwareLeastLoad::new(
                    &cfg.speeds,
                    &prior,
                    *confidence_window,
                )))
            }
            PolicySpec::Jsq { d } => {
                if *d == 0 {
                    return Err(HetschedError::InvalidPolicy("JSQ requires d ≥ 1".into()));
                }
                Ok(Box::new(JsqPolicy::new(*d)))
            }
            PolicySpec::SitaE => match cfg.job_sizes {
                DistSpec::BoundedPareto { k, p, alpha } => Ok(Box::new(SitaEPolicy::new(
                    &cfg.speeds,
                    BoundedPareto::new(k, p, alpha),
                ))),
                other => Err(HetschedError::InvalidPolicy(format!(
                    "SITA-E needs Bounded Pareto job sizes, got {other:?}"
                ))),
            },
            PolicySpec::BurstyWrr { cycle_len } => {
                if !(cfg.utilization.is_finite() && cfg.utilization > 0.0 && cfg.utilization < 1.0)
                {
                    return Err(HetschedError::InvalidPolicy(
                        "BWRR needs utilization in (0,1)".into(),
                    ));
                }
                if *cycle_len == 0 {
                    return Err(HetschedError::InvalidPolicy(
                        "BWRR needs a positive cycle length".into(),
                    ));
                }
                let fractions = crate::allocation::AllocationSpec::optimized()
                    .fractions(&cfg.speeds, cfg.utilization);
                Ok(Box::new(crate::bursty_wrr::BurstyWeightedRr::new(
                    &fractions, *cycle_len, "BWRR",
                )))
            }
            PolicySpec::AdaptiveOrr {
                recompute_every,
                safety_margin,
            } => {
                if !(*recompute_every > 0.0 && recompute_every.is_finite()) {
                    return Err(HetschedError::InvalidPolicy(
                        "AORR needs a positive recompute period".into(),
                    ));
                }
                if !(*safety_margin >= 0.0 && safety_margin.is_finite()) {
                    return Err(HetschedError::InvalidPolicy(
                        "AORR needs a non-negative safety margin".into(),
                    ));
                }
                Ok(Box::new(crate::adaptive::AdaptiveOrr::new(
                    &cfg.speeds,
                    cfg.mean_job_size(),
                    *recompute_every,
                    *safety_margin,
                    0.01,
                )))
            }
            PolicySpec::ReoptimizingOrr => {
                if !(cfg.utilization.is_finite() && cfg.utilization > 0.0 && cfg.utilization < 1.0)
                {
                    return Err(HetschedError::InvalidPolicy(
                        "ReORR needs utilization in (0,1)".into(),
                    ));
                }
                Ok(Box::new(ReoptimizingOrr::new(&cfg.speeds, cfg.utilization)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ClusterConfig {
        ClusterConfig::paper_default(&[1.0, 2.0, 10.0])
    }

    #[test]
    fn labels_match_table2() {
        assert_eq!(PolicySpec::wran().label(), "WRAN");
        assert_eq!(PolicySpec::oran().label(), "ORAN");
        assert_eq!(PolicySpec::wrr().label(), "WRR");
        assert_eq!(PolicySpec::orr().label(), "ORR");
        assert_eq!(PolicySpec::DynamicLeastLoad.label(), "DYNAMIC");
        assert_eq!(PolicySpec::stale_aware_dynamic(500.0).label(), "DYNAMIC-SA");
        assert_eq!(PolicySpec::orr_with_error(0.05).label(), "O(+5%)RR");
    }

    #[test]
    fn table2_has_four_distinct_entries() {
        let t = PolicySpec::table2();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(t[i], t[j]);
            }
        }
    }

    #[test]
    fn builds_every_spec() {
        let cfg = cfg();
        for spec in [
            PolicySpec::wran(),
            PolicySpec::oran(),
            PolicySpec::wrr(),
            PolicySpec::orr(),
            PolicySpec::DynamicLeastLoad,
            PolicySpec::stale_aware_dynamic(500.0),
            PolicySpec::Jsq { d: 2 },
            PolicySpec::SitaE,
            PolicySpec::BurstyWrr { cycle_len: 100 },
            PolicySpec::AdaptiveOrr {
                recompute_every: 500.0,
                safety_margin: 0.05,
            },
            PolicySpec::reopt_orr(),
        ] {
            let p = spec.build(&cfg).unwrap();
            assert_eq!(p.name(), spec.label());
        }
    }

    #[test]
    fn build_errors_are_typed() {
        let cfg = cfg();
        let err = PolicySpec::Jsq { d: 0 }
            .build(&cfg)
            .err()
            .expect("JSQ with d = 0 must be rejected");
        assert!(matches!(
            err,
            hetsched_error::HetschedError::InvalidPolicy(_)
        ));
        assert!(err.to_string().contains("JSQ"));
    }

    #[test]
    fn extension_specs_validate() {
        let cfg = cfg();
        assert!(PolicySpec::stale_aware_dynamic(0.0).build(&cfg).is_err());
        assert!(PolicySpec::stale_aware_dynamic(f64::NAN)
            .build(&cfg)
            .is_err());
        assert!(PolicySpec::BurstyWrr { cycle_len: 0 }.build(&cfg).is_err());
        assert!(PolicySpec::AdaptiveOrr {
            recompute_every: 0.0,
            safety_margin: 0.0
        }
        .build(&cfg)
        .is_err());
        assert!(PolicySpec::AdaptiveOrr {
            recompute_every: 10.0,
            safety_margin: -0.5
        }
        .build(&cfg)
        .is_err());
    }

    #[test]
    fn only_dynamic_needs_load_updates() {
        let cfg = cfg();
        assert!(PolicySpec::DynamicLeastLoad
            .build(&cfg)
            .unwrap()
            .needs_load_updates());
        for spec in PolicySpec::table2() {
            assert!(!spec.build(&cfg).unwrap().needs_load_updates());
        }
    }

    #[test]
    fn sita_requires_bounded_pareto() {
        let mut c = cfg();
        c.job_sizes = hetsched_dist::DistSpec::Exponential { mean: 10.0 };
        assert!(PolicySpec::SitaE.build(&c).is_err());
    }

    #[test]
    fn jsq_rejects_zero_d() {
        assert!(PolicySpec::Jsq { d: 0 }.build(&cfg()).is_err());
    }

    #[test]
    fn serde_round_trip() {
        for spec in [
            PolicySpec::orr(),
            PolicySpec::DynamicLeastLoad,
            PolicySpec::stale_aware_dynamic(500.0),
            PolicySpec::Jsq { d: 2 },
            PolicySpec::ReoptimizingOrr,
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }
}

//! Naive weighted round-robin (burst-per-cycle) — a dispatcher ablation.
//!
//! Classic router-style WRR converts the fractions into integer weights
//! and serves each computer its whole weight in *consecutive* jobs:
//! `c1 c1 c1 c2 c2 c3 …`. Long-run proportions match Algorithm 2's, but
//! each computer's substream arrives in bursts — exactly the burstiness
//! Algorithm 2's interleaving is designed to remove (§3.2's "equalize
//! the number of original inter-arrival intervals"). Comparing the two
//! isolates *interleaving* as the mechanism behind round-robin's gain,
//! beyond mere determinism.

use hetsched_cluster::{DispatchCtx, Policy};
use hetsched_desim::Rng64;

/// Burst-per-cycle weighted round-robin over integer weights.
#[derive(Debug, Clone)]
pub struct BurstyWeightedRr {
    /// Flattened dispatch cycle: server index repeated `weight` times.
    cycle: Vec<u32>,
    pos: usize,
    /// Believed membership from the fault layer. The cycle itself is
    /// never mutated: down servers' slots are skipped in place, so the
    /// burst structure resumes intact on repair.
    up: Vec<bool>,
    label: String,
}

impl BurstyWeightedRr {
    /// Builds the dispatcher with a cycle of (approximately)
    /// `cycle_len` jobs, apportioned by largest remainder so the integer
    /// weights sum exactly to the cycle length.
    ///
    /// # Panics
    /// Panics unless the fractions are a probability vector and
    /// `cycle_len ≥ 1`.
    pub fn new(fractions: &[f64], cycle_len: u32, label: impl Into<String>) -> Self {
        assert!(!fractions.is_empty(), "no fractions");
        assert!(cycle_len >= 1, "cycle length must be at least 1");
        assert!(
            fractions.iter().all(|&a| (0.0..=1.0).contains(&a)),
            "fractions must lie in [0,1]: {fractions:?}"
        );
        let sum: f64 = fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {sum}"
        );

        // Largest-remainder apportionment of `cycle_len` slots.
        let ideal: Vec<f64> = fractions.iter().map(|a| a * cycle_len as f64).collect();
        let mut weights: Vec<u32> = ideal.iter().map(|x| x.floor() as u32).collect();
        let mut leftover = cycle_len - weights.iter().sum::<u32>();
        let mut order: Vec<usize> = (0..fractions.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = ideal[a] - ideal[a].floor();
            let rb = ideal[b] - ideal[b].floor();
            rb.partial_cmp(&ra).expect("finite remainders")
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            weights[i] += 1;
            leftover -= 1;
        }

        let mut cycle = Vec::with_capacity(cycle_len as usize);
        for (i, &w) in weights.iter().enumerate() {
            cycle.extend(std::iter::repeat_n(i as u32, w as usize));
        }
        assert!(
            !cycle.is_empty(),
            "cycle is empty — fractions too small for the cycle length"
        );
        BurstyWeightedRr {
            cycle,
            pos: 0,
            up: vec![true; fractions.len()],
            label: label.into(),
        }
    }

    /// The realized integer weights per server.
    pub fn weights(&self) -> Vec<u32> {
        let n = 1 + *self.cycle.iter().max().expect("non-empty cycle") as usize;
        let mut w = vec![0u32; n];
        for &s in &self.cycle {
            w[s as usize] += 1;
        }
        w
    }

    /// One dispatch decision. Scans forward past slots belonging to
    /// believed-down servers (at most one full cycle); if every slot is
    /// down the current slot is served anyway — the simulation records
    /// the loss.
    pub fn dispatch(&mut self) -> usize {
        for _ in 0..self.cycle.len() {
            let s = self.cycle[self.pos] as usize;
            if self.up.get(s).copied().unwrap_or(true) {
                self.pos = (self.pos + 1) % self.cycle.len();
                return s;
            }
            self.pos = (self.pos + 1) % self.cycle.len();
        }
        // Stale all-down belief: fall through to plain cycling.
        let s = self.cycle[self.pos] as usize;
        self.pos = (self.pos + 1) % self.cycle.len();
        s
    }
}

impl Policy for BurstyWeightedRr {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        self.dispatch()
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        let n = self.up.len();
        if up.len() >= n {
            self.up.copy_from_slice(&up[..n]);
        }
    }

    fn expected_fractions(&self) -> Option<Vec<f64>> {
        let w = self.weights();
        let total: f64 = w.iter().map(|&x| x as f64).sum();
        Some(w.iter().map(|&x| x as f64 / total).collect())
    }

    fn advance_rotation(&mut self, steps: u64) {
        // WRR's whole state is the cycle position, so replaying peer
        // arrivals is just stepping it — the sharded ablation keeps its
        // burst structure aligned with the global stream.
        for _ in 0..steps {
            self.dispatch();
        }
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_match_fractions() {
        let p = BurstyWeightedRr::new(&[0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04], 100, "b");
        assert_eq!(p.weights(), vec![35, 22, 15, 12, 4, 4, 4, 4]);
    }

    #[test]
    fn largest_remainder_rounds_fairly() {
        // 1/3 each over a 10-cycle: 4+3+3.
        let p = BurstyWeightedRr::new(&[1.0 / 3.0; 3], 10, "b");
        let mut w = p.weights();
        w.sort_unstable();
        assert_eq!(w, vec![3, 3, 4]);
        assert_eq!(w.iter().sum::<u32>(), 10);
    }

    #[test]
    fn dispatch_is_bursty() {
        let mut p = BurstyWeightedRr::new(&[0.5, 0.5], 8, "b");
        let seq: Vec<usize> = (0..8).map(|_| p.dispatch()).collect();
        assert_eq!(seq, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn cycle_repeats() {
        let mut p = BurstyWeightedRr::new(&[0.75, 0.25], 4, "b");
        let first: Vec<usize> = (0..4).map(|_| p.dispatch()).collect();
        let second: Vec<usize> = (0..4).map(|_| p.dispatch()).collect();
        assert_eq!(first, second);
        assert_eq!(first, vec![0, 0, 0, 1]);
    }

    #[test]
    fn long_run_frequencies_converge() {
        let fractions = [0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04];
        let mut p = BurstyWeightedRr::new(&fractions, 100, "b");
        let n = 10_000;
        let mut counts = vec![0u64; fractions.len()];
        for _ in 0..n {
            counts[p.dispatch()] += 1;
        }
        for (&c, &a) in counts.iter().zip(&fractions) {
            assert!(((c as f64 / n as f64) - a).abs() < 0.005);
        }
    }

    #[test]
    fn zero_fraction_server_excluded() {
        let mut p = BurstyWeightedRr::new(&[0.0, 1.0], 10, "b");
        for _ in 0..20 {
            assert_eq!(p.dispatch(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized() {
        BurstyWeightedRr::new(&[0.4, 0.4], 10, "b");
    }

    #[test]
    fn down_slots_are_skipped_in_place() {
        use hetsched_cluster::Policy;
        let mut p = BurstyWeightedRr::new(&[0.5, 0.5], 8, "b");
        p.on_membership_change(&[false, true], 0.0);
        // The cycle is 0 0 0 0 1 1 1 1; server 0's burst is skipped.
        for _ in 0..8 {
            assert_eq!(p.dispatch(), 1);
        }
        // Repair restores the original burst structure, picking up at
        // whatever slot the position reached.
        p.on_membership_change(&[true, true], 1.0);
        let mut seen0 = 0;
        let mut seen1 = 0;
        for _ in 0..16 {
            match p.dispatch() {
                0 => seen0 += 1,
                _ => seen1 += 1,
            }
        }
        assert_eq!((seen0, seen1), (8, 8), "burst weights survive repair");
    }

    #[test]
    fn advance_rotation_steps_the_cycle() {
        use hetsched_cluster::Policy;
        let mut by_steps = BurstyWeightedRr::new(&[0.75, 0.25], 4, "b");
        let mut by_calls = BurstyWeightedRr::new(&[0.75, 0.25], 4, "b");
        by_steps.advance_rotation(3);
        for _ in 0..3 {
            by_calls.dispatch();
        }
        assert_eq!(by_steps.dispatch(), by_calls.dispatch());
        assert_eq!(by_steps.pos, by_calls.pos);
    }

    #[test]
    fn all_down_belief_falls_back_to_plain_cycling() {
        use hetsched_cluster::Policy;
        let mut p = BurstyWeightedRr::new(&[0.75, 0.25], 4, "b");
        p.on_membership_change(&[false, false], 0.0);
        let seq: Vec<usize> = (0..4).map(|_| p.dispatch()).collect();
        assert_eq!(seq, vec![0, 0, 0, 1]);
    }
}

//! # hetsched-policies — workload allocation and job dispatching
//!
//! A static job scheduling policy has two components (§1 of the paper):
//!
//! * a **workload allocation scheme** computing the fractions
//!   `{α_1 … α_n}` of the job stream each computer should receive
//!   ([`allocation`]): *simple weighted* (`α_i ∝ s_i`), the paper's
//!   *optimized* scheme (Algorithm 1, via `hetsched-queueing`), or an
//!   equal split;
//! * a **job dispatching strategy** realizing those fractions in real
//!   time: *random* ([`random`]) or the paper's *round-robin based*
//!   strategy, Algorithm 2 ([`round_robin`]), which smooths each
//!   computer's arrival substream.
//!
//! Their four combinations are the paper's Table 2 — WRAN, ORAN, WRR, ORR
//! — built by [`combo::PolicySpec`]. The *Dynamic Least-Load* yardstick
//! ([`dynamic`]) and two extension baselines (power-of-d JSQ and the
//! clairvoyant SITA-E, [`extra`]) complete the roster.
//!
//! All dispatchers are **failure-aware**: they receive up/down membership
//! events from the fault layer (`hetsched-cluster::faults`) and stop
//! routing jobs to believed-down machines. [`reopt::ReoptimizingOrr`]
//! goes further and re-solves Algorithm 1 over the surviving subset on
//! every membership change.
//!
//! The **scale axis** ([`scalable`]) re-implements the load-directed
//! yardsticks with O(log N) indexed argmins (bit-identical to the scans)
//! and adds O(1)-per-decision policies — power-of-d choices and
//! join-idle-queue — for fleets up to 10,000 servers.
//!
//! The **malleable axis** ([`hesrpt`]) leaves single-server dispatch
//! behind entirely: with malleable job classes configured, [`hesrpt`]'s
//! policies hand every job to the simulator's server-allocation tier,
//! which divides each dispatch shard's cores among its in-flight jobs
//! by the heSRPT closed form (or a static equal split) to minimize
//! mean *slowdown* rather than mean response time.

#![warn(missing_docs)]

pub mod adaptive;
pub mod allocation;
pub mod bursty_wrr;
pub mod combo;
pub mod dynamic;
pub mod extra;
pub mod hesrpt;
pub mod random;
pub mod reopt;
pub mod round_robin;
pub mod scalable;

pub use adaptive::AdaptiveOrr;
pub use allocation::AllocationSpec;
pub use bursty_wrr::BurstyWeightedRr;
pub use combo::{DispatcherSpec, PolicySpec};
pub use dynamic::{LeastLoadPolicy, StaleAwareLeastLoad};
pub use extra::{JsqPolicy, SitaEPolicy};
pub use hesrpt::{HesrptPolicy, HesrptStaticPolicy};
pub use random::RandomDispatch;
pub use reopt::ReoptimizingOrr;
pub use round_robin::RoundRobinDispatch;
pub use scalable::{IndexedJsq, IndexedLeastLoad, IndexedStaleAware, Jiq, JsqFull, PowerOfD};

//! Dynamic Least-Load scheduling (§2.2, §4.2) — the paper's yardstick.
//!
//! The central scheduler tracks a *believed* run-queue length per
//! computer. A new job goes to the machine with the least normalized load
//! `(queue_len + 1) / speed`. The believed load is updated in two
//! situations:
//!
//! * **job arrival** — incremented immediately after dispatching (no
//!   rescheduling is allowed, so the scheduler knows the job went there);
//! * **job departure** — only via the delayed update messages modelled in
//!   `hetsched-cluster::network` (U(0,1) detection + Exp(0.05 s)
//!   transfer), which is why the policy must *not* peek at
//!   [`DispatchCtx::queue_lens`]: its whole point is operating on stale
//!   information, at the cost the paper calls "high system overhead".

use hetsched_cluster::{DispatchCtx, Policy, SyncState};
use hetsched_desim::Rng64;

/// Dynamic Least-Load with stale believed loads.
#[derive(Debug, Clone)]
pub struct LeastLoadPolicy {
    speeds: Vec<f64>,
    believed: Vec<f64>,
    /// Believed membership from the fault layer; down machines are
    /// excluded from the argmin.
    up: Vec<bool>,
}

impl LeastLoadPolicy {
    /// Creates the policy for the given machine speeds, believing every
    /// queue empty.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or contains non-positive entries.
    pub fn new(speeds: &[f64]) -> Self {
        assert!(!speeds.is_empty(), "no computers");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive"
        );
        LeastLoadPolicy {
            speeds: speeds.to_vec(),
            believed: vec![0.0; speeds.len()],
            up: vec![true; speeds.len()],
        }
    }

    /// Current believed queue lengths (diagnostics).
    pub fn believed(&self) -> &[f64] {
        &self.believed
    }
}

impl Policy for LeastLoadPolicy {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        // argmin over normalized believed load (q + 1) / s; the first
        // minimum wins, which is deterministic and unbiased across
        // machines of equal load-and-speed in the long run because
        // believed loads immediately diverge after a dispatch.
        let mut best: Option<usize> = None;
        let mut best_load = f64::INFINITY;
        for (i, (&q, &s)) in self.believed.iter().zip(&self.speeds).enumerate() {
            if !self.up[i] {
                continue; // believed dead: a job sent there is lost
            }
            let load = (q + 1.0) / s;
            if load < best_load {
                best_load = load;
                best = Some(i);
            }
        }
        // With a stale all-down belief, fall back to the fastest machine
        // without inflating its believed load (the job likely dies).
        let Some(best) = best else {
            return self
                .speeds
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty");
        };
        // Arrival update: the scheduler knows it just sent a job there.
        self.believed[best] += 1.0;
        best
    }

    fn on_load_update(&mut self, server: usize, queue_len: usize, _now: f64) {
        // Departure update: overwrite with the (stale) reported length.
        self.believed[server] = queue_len as f64;
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        for (i, &u) in up.iter().enumerate() {
            if u && !self.up[i] {
                // A repaired machine rejoins with an empty run queue; any
                // stale believed load predates the crash.
                self.believed[i] = 0.0;
            }
            self.up[i] = u;
        }
    }

    fn needs_load_updates(&self) -> bool {
        true
    }

    fn sync_state(&self) -> Option<SyncState> {
        Some(SyncState {
            credits: Vec::new(),
            loads: self.believed.clone(),
            ..SyncState::default()
        })
    }

    fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
        // Each shard's belief only counts its own dispatches on top of
        // the shared departure reports; the tier mean restores a
        // cluster-wide arrival view between sync rounds.
        if consensus.loads.len() == self.believed.len() {
            self.believed.copy_from_slice(&consensus.loads);
        }
    }

    fn name(&self) -> String {
        "DYNAMIC".into()
    }
}

/// Staleness-aware Dynamic Least-Load: graceful degradation toward the
/// static α prior when load indices go stale.
///
/// Naive Dynamic trusts a believed load forever — if update messages
/// stop (loss, partition), it keeps steering the whole stream by a
/// frozen snapshot. This variant tracks the age of each server's last
/// *departure report* and blends the believed load with a static prior
/// derived from the paper's optimized allocation:
///
/// ```text
/// age_i  = now − last_update_i
/// w_i    = min(1, W / age_i)          (W = confidence window)
/// eff_i  = w_i · believed_i + (1 − w_i) · prior_i
/// ```
///
/// and dispatches to `argmin (eff_i + 1) / s_i` over believed-up
/// servers. With fresh indices (`age ≤ W`) it behaves exactly like
/// [`LeastLoadPolicy`]; as an index ages past the window its influence
/// decays hyperbolically toward the prior `prior_i = ρ_i / (1 − ρ_i)`
/// (the M/M/1-PS mean queue length the optimized allocation predicts),
/// i.e. the policy degrades toward static ORR-style dispatch instead of
/// chasing ghosts. Decisions taken while the chosen server's index was
/// stale are counted in [`Policy::stale_decisions`].
#[derive(Debug, Clone)]
pub struct StaleAwareLeastLoad {
    speeds: Vec<f64>,
    believed: Vec<f64>,
    /// Time of the last departure report per server (self-dispatch
    /// increments `believed` but is *not* fresh knowledge of the queue).
    last_update: Vec<f64>,
    up: Vec<bool>,
    /// Static prior queue length per server (from the optimized α).
    prior: Vec<f64>,
    /// Confidence window `W` in seconds.
    window: f64,
    stale_decisions: u64,
}

impl StaleAwareLeastLoad {
    /// Creates the policy with per-server prior queue lengths and a
    /// confidence window of `window` seconds.
    ///
    /// # Panics
    /// Panics on empty/mismatched inputs, non-positive speeds or window,
    /// or negative priors.
    pub fn new(speeds: &[f64], prior: &[f64], window: f64) -> Self {
        assert!(!speeds.is_empty(), "no computers");
        assert_eq!(speeds.len(), prior.len(), "one prior per computer");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive"
        );
        assert!(
            prior.iter().all(|&p| p.is_finite() && p >= 0.0),
            "priors must be non-negative"
        );
        assert!(
            window.is_finite() && window > 0.0,
            "confidence window must be positive"
        );
        StaleAwareLeastLoad {
            speeds: speeds.to_vec(),
            believed: vec![0.0; speeds.len()],
            last_update: vec![0.0; speeds.len()],
            up: vec![true; speeds.len()],
            prior: prior.to_vec(),
            window,
            stale_decisions: 0,
        }
    }

    /// The staleness-weighted effective load of server `i` at `now`.
    fn effective(&self, i: usize, now: f64) -> f64 {
        let age = now - self.last_update[i];
        if age <= self.window {
            self.believed[i]
        } else {
            let w = self.window / age;
            w * self.believed[i] + (1.0 - w) * self.prior[i]
        }
    }

    /// Current believed queue lengths (diagnostics).
    pub fn believed(&self) -> &[f64] {
        &self.believed
    }
}

impl Policy for StaleAwareLeastLoad {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        let mut best: Option<usize> = None;
        let mut best_load = f64::INFINITY;
        for i in 0..self.speeds.len() {
            if !self.up[i] {
                continue;
            }
            let load = (self.effective(i, ctx.now) + 1.0) / self.speeds[i];
            if load < best_load {
                best_load = load;
                best = Some(i);
            }
        }
        let Some(best) = best else {
            // Stale all-down belief: fastest machine, no bookkeeping.
            return self
                .speeds
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty");
        };
        if ctx.now - self.last_update[best] > self.window {
            self.stale_decisions += 1;
        }
        self.believed[best] += 1.0;
        best
    }

    fn on_load_update(&mut self, server: usize, queue_len: usize, now: f64) {
        self.believed[server] = queue_len as f64;
        self.last_update[server] = now;
    }

    fn on_membership_change(&mut self, up: &[bool], now: f64) {
        for (i, &u) in up.iter().enumerate() {
            if u && !self.up[i] {
                // A repair is fresh knowledge: the queue is empty now.
                self.believed[i] = 0.0;
                self.last_update[i] = now;
            }
            self.up[i] = u;
        }
    }

    fn needs_load_updates(&self) -> bool {
        true
    }

    fn sync_state(&self) -> Option<SyncState> {
        Some(SyncState {
            credits: Vec::new(),
            loads: self.believed.clone(),
            ..SyncState::default()
        })
    }

    fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
        // Peer beliefs are no fresher than our own departure reports, so
        // the merge adopts the loads without touching the ages.
        if consensus.loads.len() == self.believed.len() {
            self.believed.copy_from_slice(&consensus.loads);
        }
    }

    fn stale_decisions(&self) -> u64 {
        self.stale_decisions
    }

    fn name(&self) -> String {
        "DYNAMIC-SA".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(speeds: &'a [f64], qlens: &'a [usize]) -> DispatchCtx<'a> {
        DispatchCtx {
            now: 0.0,
            job_size: 1.0,
            queue_lens: qlens,
            speeds,
            true_load_index: None,
        }
    }

    #[test]
    fn prefers_fast_empty_machine() {
        let speeds = [1.0, 10.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        // (0+1)/1 = 1 vs (0+1)/10 = 0.1 → the fast machine.
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
    }

    #[test]
    fn arrival_updates_shift_subsequent_choices() {
        let speeds = [1.0, 2.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        // 1st: (1)/1 vs (1)/2 → machine 1. Believed: [0, 1].
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        // 2nd: (1)/1 vs (2)/2 → tie at 1.0; first minimum (machine 0).
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 0);
        // 3rd: (2)/1 = 2 vs (2)/2 = 1 → machine 1.
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        assert_eq!(p.believed(), &[1.0, 2.0]);
    }

    #[test]
    fn departure_update_overwrites_belief() {
        let speeds = [1.0, 1.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        for _ in 0..5 {
            p.choose(&ctx(&speeds, &qlens), &mut rng);
        }
        // Machine 0 reports it drained to 0 → next job goes there.
        p.on_load_update(0, 0, 10.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 0);
    }

    #[test]
    fn requests_load_updates() {
        let p = LeastLoadPolicy::new(&[1.0]);
        assert!(p.needs_load_updates());
        assert_eq!(p.name(), "DYNAMIC");
    }

    #[test]
    fn skews_toward_fast_machines_like_table1() {
        // Qualitative Table-1 check at the policy level: with believed
        // loads fed only by arrivals (worst case), dispatch counts still
        // order by speed.
        let speeds = [1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = vec![0usize; speeds.len()];
        let mut rng = Rng64::from_seed(0);
        let mut counts = vec![0u64; speeds.len()];
        for _ in 0..10_000 {
            counts[p.choose(&ctx(&speeds, &qlens), &mut rng)] += 1;
        }
        for w in counts.windows(2) {
            assert!(w[0] <= w[1], "counts not ordered by speed: {counts:?}");
        }
    }

    #[test]
    fn down_machines_are_excluded_until_repair() {
        let speeds = [1.0, 10.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        p.on_membership_change(&[true, false], 0.0);
        // The fast machine is down: the slow one wins despite its load.
        for _ in 0..5 {
            assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 0);
        }
        // Repair resets the believed load and restores speed preference.
        p.on_membership_change(&[true, true], 1.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        assert_eq!(p.believed()[1], 1.0);
    }

    #[test]
    fn all_down_belief_picks_fastest_without_bookkeeping() {
        let speeds = [1.0, 5.0, 2.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0, 0];
        let mut rng = Rng64::from_seed(0);
        p.on_membership_change(&[false, false, false], 0.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        assert_eq!(p.believed(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn sync_merges_believed_loads() {
        let speeds = [1.0, 1.0];
        let mut a = LeastLoadPolicy::new(&speeds);
        let mut b = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        // Shard a placed 4 jobs shard b never saw.
        for _ in 0..4 {
            a.choose(&ctx(&speeds, &qlens), &mut rng);
        }
        let sa = a.sync_state().expect("mergeable");
        let sb = b.sync_state().expect("mergeable");
        assert!(sa.credits.is_empty(), "nothing in the credit lane");
        assert_eq!(sa.loads, &[2.0, 2.0]);
        assert_eq!(sb.loads, &[0.0, 0.0]);
        let merged = SyncState {
            credits: Vec::new(),
            loads: sa
                .loads
                .iter()
                .zip(&sb.loads)
                .map(|(x, y)| (x + y) / 2.0)
                .collect(),
            ..SyncState::default()
        };
        b.merge_sync(&merged, 5.0);
        // Shard b now believes half of shard a's arrivals happened.
        assert_eq!(b.believed(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "no computers")]
    fn rejects_empty() {
        LeastLoadPolicy::new(&[]);
    }

    fn ctx_at<'a>(now: f64, speeds: &'a [f64], qlens: &'a [usize]) -> DispatchCtx<'a> {
        DispatchCtx {
            now,
            job_size: 1.0,
            queue_lens: qlens,
            speeds,
            true_load_index: None,
        }
    }

    #[test]
    fn sa_matches_naive_dynamic_while_fresh() {
        // Inside the confidence window the decay is inactive, so the
        // staleness-aware variant reproduces naive Dynamic exactly.
        let speeds = [1.0, 2.0, 5.0];
        let qlens = [0, 0, 0];
        let mut naive = LeastLoadPolicy::new(&speeds);
        let mut sa = StaleAwareLeastLoad::new(&speeds, &[0.5, 1.0, 2.0], 100.0);
        let mut rng = Rng64::from_seed(0);
        for step in 0..50 {
            let t = step as f64; // all ages stay <= 50 < W
            let a = naive.choose(&ctx_at(t, &speeds, &qlens), &mut rng);
            let b = sa.choose(&ctx_at(t, &speeds, &qlens), &mut rng);
            assert_eq!(a, b, "step {step}");
            if step % 7 == 0 {
                naive.on_load_update(step % 3, 0, t);
                sa.on_load_update(step % 3, 0, t);
            }
        }
        assert_eq!(sa.stale_decisions(), 0);
    }

    #[test]
    fn sa_decays_stale_belief_toward_prior() {
        let speeds = [1.0, 1.0];
        let qlens = [0, 0];
        // Server 0's prior says "usually empty"; server 1's says "deep".
        let mut sa = StaleAwareLeastLoad::new(&speeds, &[0.0, 10.0], 10.0);
        let mut rng = Rng64::from_seed(0);
        // Fresh-but-bad news: server 0 reported a deep queue, server 1 a
        // shallow one, then both went silent.
        sa.on_load_update(0, 8, 0.0);
        sa.on_load_update(1, 1, 0.0);
        // Just after the reports, belief rules: server 1 wins.
        assert_eq!(sa.choose(&ctx_at(1.0, &speeds, &qlens), &mut rng), 1);
        assert_eq!(sa.stale_decisions(), 0);
        // Long after (age 1000 ≫ W=10): w ≈ 0.01, so effective loads are
        // ≈ priors (0 vs ~10): the stale snapshot no longer steers jobs
        // at the server whose prior says it is deep.
        assert_eq!(sa.choose(&ctx_at(1000.0, &speeds, &qlens), &mut rng), 0);
        assert_eq!(sa.stale_decisions(), 1, "the stale decision is counted");
    }

    #[test]
    fn sa_load_updates_refresh_age_but_dispatches_do_not() {
        let speeds = [1.0, 1.0];
        let qlens = [0, 0];
        let mut sa = StaleAwareLeastLoad::new(&speeds, &[5.0, 5.0], 10.0);
        let mut rng = Rng64::from_seed(0);
        // A dispatch at t=0 bumps believed load but not freshness.
        assert_eq!(sa.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 0);
        // At t=50 both ages are 50 > W: decisions count as stale.
        sa.choose(&ctx_at(50.0, &speeds, &qlens), &mut rng);
        assert_eq!(sa.stale_decisions(), 1);
        // A departure report refreshes server 1's age.
        sa.on_load_update(1, 0, 50.0);
        assert_eq!(sa.choose(&ctx_at(51.0, &speeds, &qlens), &mut rng), 1);
        assert_eq!(sa.stale_decisions(), 1, "fresh choice not counted");
    }

    #[test]
    fn sa_membership_and_sync_plumbing() {
        let speeds = [1.0, 10.0];
        let qlens = [0, 0];
        let mut sa = StaleAwareLeastLoad::new(&speeds, &[1.0, 1.0], 100.0);
        let mut rng = Rng64::from_seed(0);
        sa.on_membership_change(&[true, false], 0.0);
        assert_eq!(sa.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 0);
        sa.on_membership_change(&[true, true], 5.0);
        assert_eq!(sa.choose(&ctx_at(5.0, &speeds, &qlens), &mut rng), 1);
        assert!(sa.needs_load_updates());
        assert_eq!(sa.name(), "DYNAMIC-SA");
        let state = sa.sync_state().expect("mergeable");
        assert_eq!(state.loads.len(), 2);
        sa.merge_sync(
            &SyncState {
                credits: Vec::new(),
                loads: vec![3.0, 3.0],
                ..SyncState::default()
            },
            6.0,
        );
        assert_eq!(sa.believed(), &[3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "confidence window")]
    fn sa_rejects_bad_window() {
        StaleAwareLeastLoad::new(&[1.0], &[0.5], 0.0);
    }
}

//! Dynamic Least-Load scheduling (§2.2, §4.2) — the paper's yardstick.
//!
//! The central scheduler tracks a *believed* run-queue length per
//! computer. A new job goes to the machine with the least normalized load
//! `(queue_len + 1) / speed`. The believed load is updated in two
//! situations:
//!
//! * **job arrival** — incremented immediately after dispatching (no
//!   rescheduling is allowed, so the scheduler knows the job went there);
//! * **job departure** — only via the delayed update messages modelled in
//!   `hetsched-cluster::network` (U(0,1) detection + Exp(0.05 s)
//!   transfer), which is why the policy must *not* peek at
//!   [`DispatchCtx::queue_lens`]: its whole point is operating on stale
//!   information, at the cost the paper calls "high system overhead".

use hetsched_cluster::{DispatchCtx, Policy, SyncState};
use hetsched_desim::Rng64;

/// Dynamic Least-Load with stale believed loads.
#[derive(Debug, Clone)]
pub struct LeastLoadPolicy {
    speeds: Vec<f64>,
    believed: Vec<f64>,
    /// Believed membership from the fault layer; down machines are
    /// excluded from the argmin.
    up: Vec<bool>,
}

impl LeastLoadPolicy {
    /// Creates the policy for the given machine speeds, believing every
    /// queue empty.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or contains non-positive entries.
    pub fn new(speeds: &[f64]) -> Self {
        assert!(!speeds.is_empty(), "no computers");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive"
        );
        LeastLoadPolicy {
            speeds: speeds.to_vec(),
            believed: vec![0.0; speeds.len()],
            up: vec![true; speeds.len()],
        }
    }

    /// Current believed queue lengths (diagnostics).
    pub fn believed(&self) -> &[f64] {
        &self.believed
    }
}

impl Policy for LeastLoadPolicy {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        // argmin over normalized believed load (q + 1) / s; the first
        // minimum wins, which is deterministic and unbiased across
        // machines of equal load-and-speed in the long run because
        // believed loads immediately diverge after a dispatch.
        let mut best: Option<usize> = None;
        let mut best_load = f64::INFINITY;
        for (i, (&q, &s)) in self.believed.iter().zip(&self.speeds).enumerate() {
            if !self.up[i] {
                continue; // believed dead: a job sent there is lost
            }
            let load = (q + 1.0) / s;
            if load < best_load {
                best_load = load;
                best = Some(i);
            }
        }
        // With a stale all-down belief, fall back to the fastest machine
        // without inflating its believed load (the job likely dies).
        let Some(best) = best else {
            return self
                .speeds
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .expect("non-empty");
        };
        // Arrival update: the scheduler knows it just sent a job there.
        self.believed[best] += 1.0;
        best
    }

    fn on_load_update(&mut self, server: usize, queue_len: usize, _now: f64) {
        // Departure update: overwrite with the (stale) reported length.
        self.believed[server] = queue_len as f64;
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        for (i, &u) in up.iter().enumerate() {
            if u && !self.up[i] {
                // A repaired machine rejoins with an empty run queue; any
                // stale believed load predates the crash.
                self.believed[i] = 0.0;
            }
            self.up[i] = u;
        }
    }

    fn needs_load_updates(&self) -> bool {
        true
    }

    fn sync_state(&self) -> Option<SyncState> {
        Some(SyncState {
            credits: Vec::new(),
            loads: self.believed.clone(),
        })
    }

    fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
        // Each shard's belief only counts its own dispatches on top of
        // the shared departure reports; the tier mean restores a
        // cluster-wide arrival view between sync rounds.
        if consensus.loads.len() == self.believed.len() {
            self.believed.copy_from_slice(&consensus.loads);
        }
    }

    fn name(&self) -> String {
        "DYNAMIC".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(speeds: &'a [f64], qlens: &'a [usize]) -> DispatchCtx<'a> {
        DispatchCtx {
            now: 0.0,
            job_size: 1.0,
            queue_lens: qlens,
            speeds,
        }
    }

    #[test]
    fn prefers_fast_empty_machine() {
        let speeds = [1.0, 10.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        // (0+1)/1 = 1 vs (0+1)/10 = 0.1 → the fast machine.
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
    }

    #[test]
    fn arrival_updates_shift_subsequent_choices() {
        let speeds = [1.0, 2.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        // 1st: (1)/1 vs (1)/2 → machine 1. Believed: [0, 1].
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        // 2nd: (1)/1 vs (2)/2 → tie at 1.0; first minimum (machine 0).
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 0);
        // 3rd: (2)/1 = 2 vs (2)/2 = 1 → machine 1.
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        assert_eq!(p.believed(), &[1.0, 2.0]);
    }

    #[test]
    fn departure_update_overwrites_belief() {
        let speeds = [1.0, 1.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        for _ in 0..5 {
            p.choose(&ctx(&speeds, &qlens), &mut rng);
        }
        // Machine 0 reports it drained to 0 → next job goes there.
        p.on_load_update(0, 0, 10.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 0);
    }

    #[test]
    fn requests_load_updates() {
        let p = LeastLoadPolicy::new(&[1.0]);
        assert!(p.needs_load_updates());
        assert_eq!(p.name(), "DYNAMIC");
    }

    #[test]
    fn skews_toward_fast_machines_like_table1() {
        // Qualitative Table-1 check at the policy level: with believed
        // loads fed only by arrivals (worst case), dispatch counts still
        // order by speed.
        let speeds = [1.0, 1.5, 2.0, 3.0, 5.0, 9.0, 10.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = vec![0usize; speeds.len()];
        let mut rng = Rng64::from_seed(0);
        let mut counts = vec![0u64; speeds.len()];
        for _ in 0..10_000 {
            counts[p.choose(&ctx(&speeds, &qlens), &mut rng)] += 1;
        }
        for w in counts.windows(2) {
            assert!(w[0] <= w[1], "counts not ordered by speed: {counts:?}");
        }
    }

    #[test]
    fn down_machines_are_excluded_until_repair() {
        let speeds = [1.0, 10.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        p.on_membership_change(&[true, false], 0.0);
        // The fast machine is down: the slow one wins despite its load.
        for _ in 0..5 {
            assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 0);
        }
        // Repair resets the believed load and restores speed preference.
        p.on_membership_change(&[true, true], 1.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        assert_eq!(p.believed()[1], 1.0);
    }

    #[test]
    fn all_down_belief_picks_fastest_without_bookkeeping() {
        let speeds = [1.0, 5.0, 2.0];
        let mut p = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0, 0];
        let mut rng = Rng64::from_seed(0);
        p.on_membership_change(&[false, false, false], 0.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        assert_eq!(p.believed(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn sync_merges_believed_loads() {
        let speeds = [1.0, 1.0];
        let mut a = LeastLoadPolicy::new(&speeds);
        let mut b = LeastLoadPolicy::new(&speeds);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(0);
        // Shard a placed 4 jobs shard b never saw.
        for _ in 0..4 {
            a.choose(&ctx(&speeds, &qlens), &mut rng);
        }
        let sa = a.sync_state().expect("mergeable");
        let sb = b.sync_state().expect("mergeable");
        assert!(sa.credits.is_empty(), "nothing in the credit lane");
        assert_eq!(sa.loads, &[2.0, 2.0]);
        assert_eq!(sb.loads, &[0.0, 0.0]);
        let merged = SyncState {
            credits: Vec::new(),
            loads: sa
                .loads
                .iter()
                .zip(&sb.loads)
                .map(|(x, y)| (x + y) / 2.0)
                .collect(),
        };
        b.merge_sync(&merged, 5.0);
        // Shard b now believes half of shard a's arrivals happened.
        assert_eq!(b.believed(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "no computers")]
    fn rejects_empty() {
        LeastLoadPolicy::new(&[]);
    }
}

//! Workload allocation schemes.
//!
//! An allocation scheme turns (speeds, estimated utilization) into the
//! fractions `{α_i}` a static dispatcher realizes. The paper's §5.4 also
//! studies what happens when the utilization estimate is wrong, so the
//! optimized scheme carries a relative estimation error: `Optimized
//! { rho_error: 0.10 }` computes the allocation for `1.1·ρ` — the paper's
//! "ORR(+10%)".

use hetsched_queueing::closed_form::optimized_allocation_for;
use serde::{Deserialize, Serialize};

/// Declarative allocation scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum AllocationSpec {
    /// Equal split `α_i = 1/n` (speed-blind; what plain round-robin or
    /// uniform random dispatching implements).
    Equal,
    /// Simple weighted: `α_i = s_i / Σ s_j` (§2.1).
    Weighted,
    /// The paper's optimized allocation (Algorithm 1), computed for
    /// `ρ·(1 + rho_error)`. `rho_error = 0` is perfect knowledge;
    /// positive values overestimate, negative underestimate (§5.4).
    Optimized {
        /// Relative error on the utilization estimate.
        rho_error: f64,
    },
}

impl AllocationSpec {
    /// The optimized scheme with perfect load knowledge.
    pub fn optimized() -> Self {
        AllocationSpec::Optimized { rho_error: 0.0 }
    }

    /// Computes the fractions for the given speeds and *true* utilization.
    ///
    /// When the (possibly mis-estimated) utilization reaches 1 the
    /// optimized scheme degenerates to the weighted scheme, mirroring the
    /// paper's footnote 7 ("ORR converges with WRR as utilization
    /// approaches 100%").
    ///
    /// # Panics
    /// Panics if `speeds` is empty, any speed is non-positive, or
    /// `rho ∉ (0, 1)`.
    pub fn fractions(&self, speeds: &[f64], rho: f64) -> Vec<f64> {
        assert!(!speeds.is_empty(), "no computers");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive"
        );
        assert!(
            rho.is_finite() && rho > 0.0 && rho < 1.0,
            "utilization must lie in (0,1), got {rho}"
        );
        match *self {
            AllocationSpec::Equal => vec![1.0 / speeds.len() as f64; speeds.len()],
            AllocationSpec::Weighted => weighted(speeds),
            AllocationSpec::Optimized { rho_error } => {
                let est = rho * (1.0 + rho_error);
                if est >= 1.0 {
                    weighted(speeds)
                } else if est <= 0.0 {
                    // A nonsensical estimate of an idle system: all load
                    // to the fastest machines — realize the ρ→0 limit.
                    optimized_allocation_for(speeds, 1e-6)
                } else {
                    optimized_allocation_for(speeds, est)
                }
            }
        }
    }

    /// Short name used in policy labels.
    pub fn tag(&self) -> String {
        match *self {
            AllocationSpec::Equal => "E".into(),
            AllocationSpec::Weighted => "W".into(),
            AllocationSpec::Optimized { rho_error } => {
                if rho_error == 0.0 {
                    "O".into()
                } else {
                    format!("O({:+.0}%)", rho_error * 100.0)
                }
            }
        }
    }
}

fn weighted(speeds: &[f64]) -> Vec<f64> {
    let total: f64 = speeds.iter().sum();
    speeds.iter().map(|s| s / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEEDS: [f64; 4] = [1.0, 2.0, 3.0, 10.0];

    fn is_prob_vector(v: &[f64]) {
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{v:?}");
        assert!(v.iter().all(|&a| (0.0..=1.0).contains(&a)), "{v:?}");
    }

    #[test]
    fn equal_split() {
        let f = AllocationSpec::Equal.fractions(&SPEEDS, 0.7);
        is_prob_vector(&f);
        assert!(f.iter().all(|&a| (a - 0.25).abs() < 1e-12));
    }

    #[test]
    fn weighted_split() {
        let f = AllocationSpec::Weighted.fractions(&SPEEDS, 0.7);
        is_prob_vector(&f);
        assert!((f[3] - 10.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_ignores_rho() {
        let a = AllocationSpec::Weighted.fractions(&SPEEDS, 0.3);
        let b = AllocationSpec::Weighted.fractions(&SPEEDS, 0.9);
        assert_eq!(a, b);
    }

    #[test]
    fn optimized_skews_to_fast_machines() {
        let opt = AllocationSpec::optimized().fractions(&SPEEDS, 0.5);
        let w = AllocationSpec::Weighted.fractions(&SPEEDS, 0.5);
        is_prob_vector(&opt);
        assert!(opt[3] > w[3]);
        assert!(opt[0] < w[0]);
    }

    #[test]
    fn overestimate_is_more_conservative() {
        // §5.4: overestimation pushes the allocation toward weighted.
        let exact = AllocationSpec::optimized().fractions(&SPEEDS, 0.6);
        let over = AllocationSpec::Optimized { rho_error: 0.15 }.fractions(&SPEEDS, 0.6);
        let w = AllocationSpec::Weighted.fractions(&SPEEDS, 0.6);
        // Fast machine share: exact ≥ over ≥ weighted.
        assert!(exact[3] >= over[3] - 1e-12);
        assert!(over[3] >= w[3] - 1e-12);
    }

    #[test]
    fn underestimate_is_more_aggressive() {
        let exact = AllocationSpec::optimized().fractions(&SPEEDS, 0.6);
        let under = AllocationSpec::Optimized { rho_error: -0.15 }.fractions(&SPEEDS, 0.6);
        assert!(under[3] >= exact[3] - 1e-12);
    }

    #[test]
    fn estimate_at_or_above_one_degenerates_to_weighted() {
        // ρ = 0.9, +15% ⇒ estimate 1.035 ≥ 1 ⇒ weighted (footnote 7).
        let f = AllocationSpec::Optimized { rho_error: 0.15 }.fractions(&SPEEDS, 0.9);
        let w = AllocationSpec::Weighted.fractions(&SPEEDS, 0.9);
        for (a, b) in f.iter().zip(&w) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn tags() {
        assert_eq!(AllocationSpec::Equal.tag(), "E");
        assert_eq!(AllocationSpec::Weighted.tag(), "W");
        assert_eq!(AllocationSpec::optimized().tag(), "O");
        assert_eq!(
            AllocationSpec::Optimized { rho_error: 0.10 }.tag(),
            "O(+10%)"
        );
        assert_eq!(
            AllocationSpec::Optimized { rho_error: -0.05 }.tag(),
            "O(-5%)"
        );
    }

    #[test]
    #[should_panic(expected = "utilization must lie in (0,1)")]
    fn rejects_bad_rho() {
        AllocationSpec::Weighted.fractions(&SPEEDS, 0.0);
    }

    #[test]
    #[should_panic(expected = "no computers")]
    fn rejects_empty_speeds() {
        AllocationSpec::Weighted.fractions(&[], 0.5);
    }
}

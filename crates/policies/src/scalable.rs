//! The scale-axis policy family: O(log N)- and O(1)-per-decision
//! dispatchers for fleets far beyond the paper's 5–10 machines.
//!
//! Every load-directed policy in the historical roster pays an O(N) scan
//! per dispatch decision, which dominates the event loop once N reaches
//! the thousands. This module provides:
//!
//! * [`IndexedLeastLoad`] / [`IndexedStaleAware`] — the DYNAMIC and
//!   DYNAMIC-SA yardsticks re-implemented over an
//!   [`ArgminTree`](hetsched_cluster::ArgminTree): O(log N) per believed-
//!   load change, O(1) per argmin read, and **bit-identical decisions**
//!   to the scan implementations (asserted by the scale differential
//!   tests and in `fig_scale`).
//! * [`JsqFull`] / [`IndexedJsq`] — the clairvoyant full-information JSQ
//!   bound as an explicit scan and as a consumer of the simulation's
//!   shared true-load index
//!   ([`DispatchCtx::true_load_index`]), again a bit-identical pair.
//! * [`PowerOfD`] — classic power-of-d-choices over believed loads, with
//!   an optional heterogeneity-aware speed normalization (Gardner et
//!   al. style): O(d) per decision, no index at all.
//! * [`Jiq`] — join-idle-queue: an O(1) idle-stack pop per decision,
//!   falling back to power-of-2 sampling when no server is believed
//!   idle.
//!
//! The sampled policies draw from a *private* RNG substream seeded by a
//! single draw from the dispatch stream on first use, so their presence
//! in a run perturbs exactly one dispatch-stream draw and replications
//! stay bit-reproducible.

use hetsched_cluster::{ArgminTree, DispatchCtx, Policy, SyncState};
use hetsched_desim::Rng64;

/// Shared fastest-machine fallback for a stale all-down belief: the job
/// most likely dies anyway, so no believed-load bookkeeping happens —
/// exactly the scan policies' behavior.
fn fastest(speeds: &[f64]) -> usize {
    speeds
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// Validates a speed vector the way every believed-load policy does.
fn check_speeds(speeds: &[f64]) {
    assert!(!speeds.is_empty(), "no computers");
    assert!(
        speeds.iter().all(|&s| s.is_finite() && s > 0.0),
        "speeds must be positive"
    );
}

/// Dynamic Least-Load over a tournament-tree index: the same believed
/// loads, delayed updates, and membership rules as
/// [`crate::dynamic::LeastLoadPolicy`], but the per-decision argmin is
/// an O(1) root read instead of an O(N) scan, and every state change
/// replays one O(log N) root path.
///
/// Decision-for-decision bit-identical to the scan implementation: the
/// tree resolves ties leftmost, exactly like the scan's strict-`<`
/// candidate rule.
#[derive(Debug, Clone)]
pub struct IndexedLeastLoad {
    speeds: Vec<f64>,
    believed: Vec<f64>,
    up: Vec<bool>,
    /// Keys: `(believed + 1) / speed` for believed-up servers, infinite
    /// for believed-down ones.
    tree: ArgminTree,
    /// Scratch for O(N) bulk reloads on sync merges.
    scratch: Vec<f64>,
}

impl IndexedLeastLoad {
    /// Creates the policy for the given machine speeds, believing every
    /// queue empty.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or contains non-positive entries.
    pub fn new(speeds: &[f64]) -> Self {
        check_speeds(speeds);
        let mut tree = ArgminTree::new(speeds.len());
        for (i, &s) in speeds.iter().enumerate() {
            tree.update(i, 1.0 / s);
        }
        IndexedLeastLoad {
            speeds: speeds.to_vec(),
            believed: vec![0.0; speeds.len()],
            up: vec![true; speeds.len()],
            tree,
            scratch: Vec::new(),
        }
    }

    /// Current believed queue lengths (diagnostics).
    pub fn believed(&self) -> &[f64] {
        &self.believed
    }

    fn key(&self, i: usize) -> f64 {
        if self.up[i] {
            (self.believed[i] + 1.0) / self.speeds[i]
        } else {
            f64::INFINITY
        }
    }
}

impl Policy for IndexedLeastLoad {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        let Some(best) = self.tree.argmin() else {
            // Stale all-down belief: fastest machine, no bookkeeping.
            return fastest(&self.speeds);
        };
        self.believed[best] += 1.0;
        self.tree.update(best, self.key(best));
        best
    }

    fn on_load_update(&mut self, server: usize, queue_len: usize, _now: f64) {
        self.believed[server] = queue_len as f64;
        self.tree.update(server, self.key(server));
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        // Only transitions touch the tree: a steady-state membership
        // notice costs nothing beyond the comparison.
        for (i, &u) in up.iter().enumerate() {
            if u == self.up[i] {
                continue;
            }
            if u {
                // A repaired machine rejoins with an empty run queue.
                self.believed[i] = 0.0;
            }
            self.up[i] = u;
            self.tree.update(i, self.key(i));
        }
    }

    fn needs_load_updates(&self) -> bool {
        true
    }

    fn sync_state(&self) -> Option<SyncState> {
        Some(SyncState {
            credits: Vec::new(),
            loads: self.believed.clone(),
            ..SyncState::default()
        })
    }

    fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
        if consensus.loads.len() == self.believed.len() {
            self.believed.copy_from_slice(&consensus.loads);
            // Every key changed: one O(N) reload beats N root replays.
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            scratch.extend((0..self.believed.len()).map(|i| self.key(i)));
            self.tree.reload(&scratch);
            self.scratch = scratch;
        }
    }

    fn name(&self) -> String {
        "DYNAMIC-IDX".into()
    }
}

/// A pending staleness expiry: server `server`'s load index, last
/// refreshed at `stamp`, leaves the confidence window at `expiry`.
/// Entries are lazily invalidated — an entry whose `stamp` no longer
/// matches the server's `last_update` is discarded on pop.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Expiry {
    expiry: f64,
    server: usize,
    stamp: f64,
}

impl Eq for Expiry {}

impl Ord for Expiry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse on expiry: BinaryHeap is a max-heap, we want the
        // earliest expiry on top. Tie-break by server for determinism.
        other
            .expiry
            .total_cmp(&self.expiry)
            .then_with(|| other.server.cmp(&self.server))
    }
}

impl PartialOrd for Expiry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Staleness-aware Dynamic Least-Load over a fresh/stale split index:
/// bit-identical decisions to [`crate::dynamic::StaleAwareLeastLoad`]
/// without the O(N) effective-load scan.
///
/// The insight is that the staleness decay only changes a server's key
/// over time *after* its index has aged past the confidence window.
/// Fresh servers (the common case) have time-independent keys
/// `(believed + 1) / speed` and live in an [`ArgminTree`]; stale servers
/// are tracked in a small side set that *is* scanned per decision (their
/// keys depend on `now`), and a lazy-deletion expiry heap moves servers
/// from fresh to stale exactly when their age crosses the window. With
/// healthy update planes the stale set is empty and a decision is an
/// O(1) root read; pathological runs degrade gracefully toward the
/// scan's O(N).
#[derive(Debug, Clone)]
pub struct IndexedStaleAware {
    speeds: Vec<f64>,
    believed: Vec<f64>,
    last_update: Vec<f64>,
    up: Vec<bool>,
    prior: Vec<f64>,
    window: f64,
    stale_decisions: u64,
    /// Fresh believed-up servers, key `(believed + 1) / speed`; stale or
    /// believed-down servers sit at infinity.
    tree: ArgminTree,
    /// Servers whose index has aged past the window (stale), up or down.
    stale: Vec<usize>,
    is_stale: Vec<bool>,
    /// Min-heap of pending freshness expiries with lazy deletion.
    expiries: std::collections::BinaryHeap<Expiry>,
    scratch: Vec<f64>,
}

impl IndexedStaleAware {
    /// Creates the policy with per-server prior queue lengths and a
    /// confidence window of `window` seconds.
    ///
    /// # Panics
    /// Panics on empty/mismatched inputs, non-positive speeds or window,
    /// or negative priors.
    pub fn new(speeds: &[f64], prior: &[f64], window: f64) -> Self {
        check_speeds(speeds);
        assert_eq!(speeds.len(), prior.len(), "one prior per computer");
        assert!(
            prior.iter().all(|&p| p.is_finite() && p >= 0.0),
            "priors must be non-negative"
        );
        assert!(
            window.is_finite() && window > 0.0,
            "confidence window must be positive"
        );
        let n = speeds.len();
        let mut tree = ArgminTree::new(n);
        let mut expiries = std::collections::BinaryHeap::with_capacity(n);
        for (i, &s) in speeds.iter().enumerate() {
            tree.update(i, 1.0 / s);
            // The scan implementation treats t = 0 as everyone's last
            // update, so every index expires at `window`.
            expiries.push(Expiry {
                expiry: window,
                server: i,
                stamp: 0.0,
            });
        }
        IndexedStaleAware {
            speeds: speeds.to_vec(),
            believed: vec![0.0; n],
            last_update: vec![0.0; n],
            up: vec![true; n],
            prior: prior.to_vec(),
            window,
            stale_decisions: 0,
            tree,
            stale: Vec::new(),
            is_stale: vec![false; n],
            expiries,
            scratch: Vec::new(),
        }
    }

    /// Current believed queue lengths (diagnostics).
    pub fn believed(&self) -> &[f64] {
        &self.believed
    }

    /// The tree key of server `i`: finite only while fresh and up.
    fn fresh_key(&self, i: usize) -> f64 {
        if self.up[i] && !self.is_stale[i] {
            (self.believed[i] + 1.0) / self.speeds[i]
        } else {
            f64::INFINITY
        }
    }

    /// Refreshes server `i`'s index at `now`: back to the fresh set with
    /// a new expiry ticket.
    fn refresh(&mut self, i: usize, now: f64) {
        self.last_update[i] = now;
        if self.is_stale[i] {
            self.is_stale[i] = false;
            let pos = self.stale.iter().position(|&s| s == i).expect("in set");
            self.stale.swap_remove(pos);
        }
        self.expiries.push(Expiry {
            expiry: now + self.window,
            server: i,
            stamp: now,
        });
        self.tree.update(i, self.fresh_key(i));
    }

    /// Moves every server whose index aged past the window at `now` from
    /// the tree to the stale set. Each server is popped at most once per
    /// refresh (lazy deletion discards ticket for superseded stamps), so
    /// the amortized cost is O(log N) per *refresh*, not per decision.
    fn expire(&mut self, now: f64) {
        while let Some(top) = self.expiries.peek() {
            // Stale means age > window, i.e. now > expiry; an index at
            // exactly the window edge is still trusted (the scan uses
            // `age <= window`).
            if top.expiry >= now {
                break;
            }
            let Expiry { server, stamp, .. } = self.expiries.pop().expect("peeked");
            if stamp != self.last_update[server] || self.is_stale[server] {
                continue; // superseded ticket
            }
            self.is_stale[server] = true;
            self.stale.push(server);
            self.tree.update(server, f64::INFINITY);
        }
    }
}

impl Policy for IndexedStaleAware {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        self.expire(ctx.now);
        // Candidate 1: the leftmost fresh minimum, O(1).
        let mut best: Option<(f64, usize)> = self.tree.argmin().map(|i| (self.tree.min_key(), i));
        // Candidate 2: the stale side set, scanned with the decayed
        // effective loads (identical arithmetic to the scan policy).
        for &i in &self.stale {
            if !self.up[i] {
                continue;
            }
            let age = ctx.now - self.last_update[i];
            let w = self.window / age;
            let eff = w * self.believed[i] + (1.0 - w) * self.prior[i];
            let key = (eff + 1.0) / self.speeds[i];
            // Global leftmost minimum: smaller key wins, then smaller
            // index — the scan's strict-< rule over 0..n.
            let better = match best {
                None => true,
                Some((bk, bi)) => key < bk || (key == bk && i < bi),
            };
            if better {
                best = Some((key, i));
            }
        }
        let Some((_, best)) = best else {
            return fastest(&self.speeds);
        };
        if ctx.now - self.last_update[best] > self.window {
            self.stale_decisions += 1;
        }
        self.believed[best] += 1.0;
        if !self.is_stale[best] {
            // A dispatch bump is not fresh knowledge: no refresh, only
            // the key change (stale servers keep their infinite key).
            self.tree.update(best, self.fresh_key(best));
        }
        best
    }

    fn on_load_update(&mut self, server: usize, queue_len: usize, now: f64) {
        self.believed[server] = queue_len as f64;
        self.refresh(server, now);
    }

    fn on_membership_change(&mut self, up: &[bool], now: f64) {
        for (i, &u) in up.iter().enumerate() {
            if u == self.up[i] {
                continue;
            }
            self.up[i] = u;
            if u {
                // A repair is fresh knowledge: the queue is empty now.
                self.believed[i] = 0.0;
                self.refresh(i, now);
            } else {
                self.tree.update(i, f64::INFINITY);
            }
        }
    }

    fn needs_load_updates(&self) -> bool {
        true
    }

    fn sync_state(&self) -> Option<SyncState> {
        Some(SyncState {
            credits: Vec::new(),
            loads: self.believed.clone(),
            ..SyncState::default()
        })
    }

    fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
        // Adopt the loads without touching the ages, like the scan
        // policy; one O(N) reload refreshes every fresh key.
        if consensus.loads.len() == self.believed.len() {
            self.believed.copy_from_slice(&consensus.loads);
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.clear();
            scratch.extend((0..self.believed.len()).map(|i| self.fresh_key(i)));
            self.tree.reload(&scratch);
            self.scratch = scratch;
        }
    }

    fn stale_decisions(&self) -> u64 {
        self.stale_decisions
    }

    fn name(&self) -> String {
        "DYNAMIC-SA-IDX".into()
    }
}

/// Full-information JSQ: joins the queue with the least true normalized
/// load `(queue_len + 1) / speed` over *all* believed-up servers — the
/// d = N limit of [`crate::extra::JsqPolicy`] without its sampling RNG.
///
/// Clairvoyant (reads [`DispatchCtx::queue_lens`]); exists as the
/// explicit O(N)-scan half of the [`IndexedJsq`] bit-identity pair and
/// as the zero-delay information bound in the scale sweep.
#[derive(Debug, Clone, Default)]
pub struct JsqFull {
    /// Believed membership; empty means all up.
    up: Vec<bool>,
}

impl JsqFull {
    /// Creates the policy.
    pub fn new() -> Self {
        JsqFull::default()
    }

    fn scan(&self, ctx: &DispatchCtx<'_>) -> usize {
        let mut best: Option<usize> = None;
        let mut best_load = f64::INFINITY;
        for (i, (&q, &s)) in ctx.queue_lens.iter().zip(ctx.speeds).enumerate() {
            if !self.up.get(i).copied().unwrap_or(true) {
                continue;
            }
            let load = (q as f64 + 1.0) / s;
            if load < best_load {
                best_load = load;
                best = Some(i);
            }
        }
        // Stale all-down belief: the fastest machine takes the loss.
        best.unwrap_or_else(|| fastest(ctx.speeds))
    }
}

impl Policy for JsqFull {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        self.scan(ctx)
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        self.up = up.to_vec();
    }

    fn name(&self) -> String {
        "JSQ-FULL".into()
    }
}

/// [`JsqFull`] over the simulation's shared true-load index: O(1) per
/// decision while every server is believed up, falling back to the
/// identical scan while any believed-down server must be skipped (the
/// index's keys ignore membership).
///
/// Bit-identical to [`JsqFull`] by construction: with everyone up the
/// index's leftmost minimum is exactly the scan's strict-< winner, and
/// in every other situation both run the same scan.
#[derive(Debug, Clone, Default)]
pub struct IndexedJsq {
    inner: JsqFull,
    /// Believed-down count, to make the all-up fast path O(1).
    down: usize,
}

impl IndexedJsq {
    /// Creates the policy.
    pub fn new() -> Self {
        IndexedJsq::default()
    }
}

impl Policy for IndexedJsq {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        if self.down == 0 {
            if let Some(tree) = ctx.true_load_index {
                // All keys are finite (every server has some queue), so
                // the root always names a winner.
                if let Some(best) = tree.argmin() {
                    return best;
                }
            }
        }
        self.inner.scan(ctx)
    }

    fn on_membership_change(&mut self, up: &[bool], now: f64) {
        self.inner.on_membership_change(up, now);
        self.down = up.iter().filter(|&&u| !u).count();
    }

    fn wants_true_load_index(&self) -> bool {
        true
    }

    fn name(&self) -> String {
        "JSQ-IDX".into()
    }
}

/// Power-of-d-choices over believed loads: sample `d` distinct
/// believed-up servers from a private RNG substream and dispatch to the
/// believed-least-loaded of them — O(d) per decision, no index, and
/// near-optimal balance for d ≥ 2 (the classic "power of two choices").
///
/// With `het_aware` the sampled loads are speed-normalized
/// (`(believed + 1) / speed`), which restores the speed preference
/// heterogeneous fleets need; without it the raw believed queue length
/// comparison of the homogeneous literature applies.
#[derive(Debug, Clone)]
pub struct PowerOfD {
    d: usize,
    het_aware: bool,
    speeds: Vec<f64>,
    believed: Vec<f64>,
    up: Vec<bool>,
    /// Private substream, seeded by one dispatch-stream draw on first
    /// use so runs stay bit-reproducible and policy presence perturbs
    /// exactly one shared draw.
    rng: Option<Rng64>,
}

impl PowerOfD {
    /// Creates the policy for the given machine speeds.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or non-positive, or `d` is outside
    /// `1..=8` (the sampling scratch is a fixed 8-slot array).
    pub fn new(speeds: &[f64], d: usize, het_aware: bool) -> Self {
        check_speeds(speeds);
        assert!((1..=8).contains(&d), "power-of-d needs d in 1..=8");
        PowerOfD {
            d,
            het_aware,
            speeds: speeds.to_vec(),
            believed: vec![0.0; speeds.len()],
            up: vec![true; speeds.len()],
            rng: None,
        }
    }

    /// Current believed queue lengths (diagnostics).
    pub fn believed(&self) -> &[f64] {
        &self.believed
    }
}

impl Policy for PowerOfD {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize {
        if self.rng.is_none() {
            self.rng = Some(Rng64::from_seed(rng.next_u64()));
        }
        let n = self.speeds.len();
        let live = self.up.iter().filter(|&&u| u).count();
        if live == 0 {
            // Stale all-down belief: fastest machine, no draws, no bump.
            return fastest(&self.speeds);
        }
        let want = self.d.min(live);
        let private = self.rng.as_mut().expect("seeded above");
        let mut chosen: [usize; 8] = [usize::MAX; 8];
        let mut picked = 0;
        let mut best = usize::MAX;
        let mut best_key = f64::INFINITY;
        // Rejection sampling without replacement; down servers are
        // rejected like duplicates, so `want ≤ live` guarantees progress.
        while picked < want {
            let c = private.below(n as u64) as usize;
            if !self.up[c] || chosen[..picked].contains(&c) {
                continue;
            }
            chosen[picked] = c;
            picked += 1;
            // Field-disjoint key computation (the method call would
            // conflict with the live `private` borrow).
            let key = if self.het_aware {
                (self.believed[c] + 1.0) / self.speeds[c]
            } else {
                self.believed[c] + 1.0
            };
            // First-sampled wins ties, like the scan policies' strict <.
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        self.believed[best] += 1.0;
        best
    }

    fn on_load_update(&mut self, server: usize, queue_len: usize, _now: f64) {
        self.believed[server] = queue_len as f64;
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        for (i, &u) in up.iter().enumerate() {
            if u && !self.up[i] {
                // A repaired machine rejoins with an empty run queue.
                self.believed[i] = 0.0;
            }
            self.up[i] = u;
        }
    }

    fn needs_load_updates(&self) -> bool {
        true
    }

    fn sync_state(&self) -> Option<SyncState> {
        Some(SyncState {
            credits: Vec::new(),
            loads: self.believed.clone(),
            ..SyncState::default()
        })
    }

    fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
        if consensus.loads.len() == self.believed.len() {
            self.believed.copy_from_slice(&consensus.loads);
        }
    }

    fn name(&self) -> String {
        if self.het_aware {
            format!("POD({})-HET", self.d)
        } else {
            format!("POD({})", self.d)
        }
    }
}

/// Join-Idle-Queue: a stack of servers believed idle, popped in O(1) per
/// dispatch. A server joins the stack when a (delayed) load update
/// reports its queue empty and leaves when a job is dispatched to it; if
/// no server is believed idle the policy degrades to heterogeneity-aware
/// power-of-2 sampling over believed loads.
///
/// The O(1)-per-decision answer to DYNAMIC's O(N): under moderate load
/// there is almost always an idle server on the stack, and under
/// saturation the power-of-2 fallback still avoids any full scan.
#[derive(Debug, Clone)]
pub struct Jiq {
    speeds: Vec<f64>,
    believed: Vec<f64>,
    up: Vec<bool>,
    /// Stack of servers believed idle (LIFO keeps recently-reported-idle
    /// servers hot).
    idle: Vec<usize>,
    on_stack: Vec<bool>,
    /// Private substream for the sampled fallback (see [`PowerOfD`]).
    rng: Option<Rng64>,
}

impl Jiq {
    /// Creates the policy, believing every server idle (so the first `n`
    /// dispatches drain the initial stack from the highest index down).
    ///
    /// # Panics
    /// Panics if `speeds` is empty or contains non-positive entries.
    pub fn new(speeds: &[f64]) -> Self {
        check_speeds(speeds);
        let n = speeds.len();
        Jiq {
            speeds: speeds.to_vec(),
            believed: vec![0.0; n],
            up: vec![true; n],
            idle: (0..n).collect(),
            on_stack: vec![true; n],
            rng: None,
        }
    }

    /// Current believed queue lengths (diagnostics).
    pub fn believed(&self) -> &[f64] {
        &self.believed
    }

    /// Number of servers currently believed idle (diagnostics; counts
    /// stack entries that would survive the lazy pop filter).
    pub fn idle_count(&self) -> usize {
        self.idle
            .iter()
            .filter(|&&i| self.up[i] && self.believed[i] == 0.0)
            .count()
    }

    fn push_idle(&mut self, i: usize) {
        if !self.on_stack[i] && self.up[i] && self.believed[i] == 0.0 {
            self.on_stack[i] = true;
            self.idle.push(i);
        }
    }
}

impl Policy for Jiq {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize {
        if self.rng.is_none() {
            self.rng = Some(Rng64::from_seed(rng.next_u64()));
        }
        // Pop until a genuinely idle, believed-up server surfaces;
        // entries invalidated by later load reports or crashes are
        // discarded lazily here.
        while let Some(i) = self.idle.pop() {
            self.on_stack[i] = false;
            if self.up[i] && self.believed[i] == 0.0 {
                self.believed[i] = 1.0;
                return i;
            }
        }
        // Empty stack: power-of-2 heterogeneity-aware fallback.
        let n = self.speeds.len();
        let live = self.up.iter().filter(|&&u| u).count();
        if live == 0 {
            return fastest(&self.speeds);
        }
        let want = 2.min(live);
        let private = self.rng.as_mut().expect("seeded above");
        let mut first = usize::MAX;
        let mut best = usize::MAX;
        let mut best_key = f64::INFINITY;
        let mut picked = 0;
        while picked < want {
            let c = private.below(n as u64) as usize;
            if !self.up[c] || c == first {
                continue;
            }
            if picked == 0 {
                first = c;
            }
            picked += 1;
            let key = (self.believed[c] + 1.0) / self.speeds[c];
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        self.believed[best] += 1.0;
        best
    }

    fn on_load_update(&mut self, server: usize, queue_len: usize, _now: f64) {
        self.believed[server] = queue_len as f64;
        if queue_len == 0 {
            self.push_idle(server);
        }
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        for (i, &u) in up.iter().enumerate() {
            if u && !self.up[i] {
                // A repaired machine rejoins idle.
                self.believed[i] = 0.0;
                self.up[i] = u;
                self.push_idle(i);
            } else {
                self.up[i] = u;
            }
        }
    }

    fn needs_load_updates(&self) -> bool {
        true
    }

    fn sync_state(&self) -> Option<SyncState> {
        Some(SyncState {
            credits: Vec::new(),
            loads: self.believed.clone(),
            ..SyncState::default()
        })
    }

    fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
        if consensus.loads.len() == self.believed.len() {
            self.believed.copy_from_slice(&consensus.loads);
            // Consensus may have zeroed queues this shard thought busy:
            // re-register them as idle in index order (deterministic).
            for i in 0..self.believed.len() {
                if self.believed[i] == 0.0 {
                    self.push_idle(i);
                }
            }
        }
    }

    fn name(&self) -> String {
        "JIQ".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{LeastLoadPolicy, StaleAwareLeastLoad};

    fn ctx_at<'a>(now: f64, speeds: &'a [f64], qlens: &'a [usize]) -> DispatchCtx<'a> {
        DispatchCtx {
            now,
            job_size: 1.0,
            queue_lens: qlens,
            speeds,
            true_load_index: None,
        }
    }

    /// Drives a scan policy and its indexed twin through an identical
    /// randomized event schedule and asserts identical decisions.
    fn assert_twins<A: Policy, B: Policy>(speeds: &[f64], mut scan: A, mut idx: B, seed: u64) {
        let qlens = vec![0usize; speeds.len()];
        let mut rng_a = Rng64::from_seed(seed);
        let mut rng_b = Rng64::from_seed(seed);
        let mut driver = Rng64::from_seed(seed ^ 0xD1CE);
        let mut up = vec![true; speeds.len()];
        for step in 0..3_000 {
            let now = step as f64 * 0.7;
            match driver.below(10) {
                0 => {
                    // Load update for a random server.
                    let s = driver.below(speeds.len() as u64) as usize;
                    let q = driver.below(6) as usize;
                    scan.on_load_update(s, q, now);
                    idx.on_load_update(s, q, now);
                }
                1 => {
                    // Flip one server's membership.
                    let s = driver.below(speeds.len() as u64) as usize;
                    up[s] = !up[s];
                    scan.on_membership_change(&up, now);
                    idx.on_membership_change(&up, now);
                }
                _ => {
                    let a = scan.choose(&ctx_at(now, speeds, &qlens), &mut rng_a);
                    let b = idx.choose(&ctx_at(now, speeds, &qlens), &mut rng_b);
                    assert_eq!(a, b, "step {step} (now {now})");
                }
            }
        }
    }

    #[test]
    fn indexed_dynamic_matches_scan_dynamic() {
        for &n in &[1usize, 2, 7, 33] {
            let speeds: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
            assert_twins(
                &speeds,
                LeastLoadPolicy::new(&speeds),
                IndexedLeastLoad::new(&speeds),
                41 + n as u64,
            );
        }
    }

    #[test]
    fn indexed_stale_aware_matches_scan_across_windows() {
        for &window in &[1.0, 50.0, 10_000.0] {
            let speeds: Vec<f64> = (0..19).map(|i| 1.0 + (i % 4) as f64).collect();
            let prior: Vec<f64> = (0..19).map(|i| (i % 3) as f64 * 0.8).collect();
            let scan = StaleAwareLeastLoad::new(&speeds, &prior, window);
            let idx = IndexedStaleAware::new(&speeds, &prior, window);
            assert_twins(&speeds, scan, idx, 7 + window as u64);
        }
    }

    #[test]
    fn indexed_stale_aware_counts_stale_decisions_like_scan() {
        let speeds = [1.0, 1.0];
        let qlens = [0, 0];
        let prior = [0.0, 10.0];
        let mut scan = StaleAwareLeastLoad::new(&speeds, &prior, 10.0);
        let mut idx = IndexedStaleAware::new(&speeds, &prior, 10.0);
        let mut rng = Rng64::from_seed(0);
        for p in [&mut scan as &mut dyn Policy, &mut idx as &mut dyn Policy] {
            p.on_load_update(0, 8, 0.0);
            p.on_load_update(1, 1, 0.0);
            assert_eq!(p.choose(&ctx_at(1.0, &speeds, &qlens), &mut rng), 1);
            assert_eq!(p.choose(&ctx_at(1000.0, &speeds, &qlens), &mut rng), 0);
            assert_eq!(p.stale_decisions(), 1);
        }
    }

    #[test]
    fn jsq_indexed_matches_full_scan() {
        let speeds = [1.0, 4.0, 2.0, 1.0];
        let mut full = JsqFull::new();
        let mut idx = IndexedJsq::new();
        assert!(idx.wants_true_load_index());
        let mut rng = Rng64::from_seed(0);
        let mut driver = Rng64::from_seed(99);
        let mut qlens = vec![0usize; speeds.len()];
        let mut tree = ArgminTree::new(speeds.len());
        for (i, &s) in speeds.iter().enumerate() {
            tree.update(i, 1.0 / s);
        }
        let mut up = vec![true; speeds.len()];
        for step in 0..2_000 {
            if driver.below(3) == 0 {
                let s = driver.below(speeds.len() as u64) as usize;
                qlens[s] = driver.below(7) as usize;
                tree.update(s, (qlens[s] as f64 + 1.0) / speeds[s]);
            }
            if driver.below(11) == 0 {
                let s = driver.below(speeds.len() as u64) as usize;
                up[s] = !up[s];
                full.on_membership_change(&up, step as f64);
                idx.on_membership_change(&up, step as f64);
            }
            let ctx = DispatchCtx {
                now: step as f64,
                job_size: 1.0,
                queue_lens: &qlens,
                speeds: &speeds,
                true_load_index: Some(&tree),
            };
            assert_eq!(
                full.choose(&ctx, &mut rng),
                idx.choose(&ctx, &mut rng),
                "step {step}"
            );
        }
    }

    #[test]
    fn jsq_full_prefers_least_normalized_load() {
        let speeds = [1.0, 4.0];
        let qlens = [0, 2];
        let mut p = JsqFull::new();
        let mut rng = Rng64::from_seed(0);
        // (0+1)/1 = 1 vs (2+1)/4 = 0.75 → the loaded-but-fast machine.
        assert_eq!(p.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 1);
        p.on_membership_change(&[true, false], 0.0);
        assert_eq!(p.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 0);
        p.on_membership_change(&[false, false], 0.0);
        // All believed down: the fastest machine takes the loss.
        assert_eq!(p.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 1);
    }

    #[test]
    fn pod_spreads_and_respects_membership() {
        let speeds = [1.0; 16];
        let qlens = [0usize; 16];
        let mut p = PowerOfD::new(&speeds, 2, false);
        let mut rng = Rng64::from_seed(5);
        let mut seen = [false; 16];
        for _ in 0..2000 {
            seen[p.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all machines should be sampled");
        // Down a prefix: only the live suffix is ever chosen.
        let mut up = vec![true; 16];
        for u in up.iter_mut().take(12) {
            *u = false;
        }
        p.on_membership_change(&up, 1.0);
        for _ in 0..200 {
            assert!(p.choose(&ctx_at(1.0, &speeds, &qlens), &mut rng) >= 12);
        }
        up.iter_mut().for_each(|u| *u = false);
        p.on_membership_change(&up, 2.0);
        // All down: deterministic fastest fallback (`max_by` keeps the
        // last maximum on a tie, like the scan policies).
        assert_eq!(p.choose(&ctx_at(2.0, &speeds, &qlens), &mut rng), 15);
    }

    #[test]
    fn pod_het_prefers_fast_machines() {
        let speeds = [1.0, 1.0, 1.0, 20.0];
        let qlens = [0usize; 4];
        let mut het = PowerOfD::new(&speeds, 4, true);
        let raw = PowerOfD::new(&speeds, 4, false);
        let mut rng = Rng64::from_seed(9);
        // d = n: het-aware always sees the fast machine's smaller key
        // first draw-independently.
        let c = het.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng);
        assert_eq!(c, 3);
        assert_eq!(het.name(), "POD(4)-HET");
        assert_eq!(raw.name(), "POD(4)");
        // Raw PoD ties everyone at key 1: the first *sampled* wins, so
        // over many decisions the slow majority absorbs most jobs.
        let mut fast = 0;
        for _ in 0..400 {
            let mut q = raw.clone();
            if q.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng) == 3 {
                fast += 1;
            }
        }
        assert!(fast < 300, "raw PoD should not always pick the fast box");
    }

    #[test]
    fn pod_uses_exactly_one_shared_draw() {
        let speeds = [1.0, 2.0];
        let qlens = [0usize; 2];
        let mut p = PowerOfD::new(&speeds, 2, true);
        let mut shared = Rng64::from_seed(123);
        let mut witness = Rng64::from_seed(123);
        p.choose(&ctx_at(0.0, &speeds, &qlens), &mut shared);
        p.choose(&ctx_at(0.0, &speeds, &qlens), &mut shared);
        p.choose(&ctx_at(0.0, &speeds, &qlens), &mut shared);
        // Only the lazy substream seeding consumed shared randomness.
        witness.next_u64();
        assert_eq!(shared.next_u64(), witness.next_u64());
    }

    #[test]
    fn jiq_pops_idle_stack_then_falls_back() {
        let speeds = [1.0, 1.0, 4.0];
        let qlens = [0usize; 3];
        let mut p = Jiq::new(&speeds);
        let mut rng = Rng64::from_seed(1);
        assert_eq!(p.idle_count(), 3);
        // Initial stack drains LIFO: 2, 1, 0.
        assert_eq!(p.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 2);
        assert_eq!(p.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 1);
        assert_eq!(p.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 0);
        assert_eq!(p.idle_count(), 0);
        // Stack empty: the power-of-2 fallback still dispatches.
        let c = p.choose(&ctx_at(1.0, &speeds, &qlens), &mut rng);
        assert!(c < 3);
        // An idle report re-arms the stack and wins over the fallback.
        p.on_load_update(1, 0, 2.0);
        assert_eq!(p.idle_count(), 1);
        assert_eq!(p.choose(&ctx_at(2.0, &speeds, &qlens), &mut rng), 1);
    }

    #[test]
    fn jiq_discards_invalidated_stack_entries() {
        let speeds = [1.0, 1.0];
        let qlens = [0usize; 2];
        let mut p = Jiq::new(&speeds);
        let mut rng = Rng64::from_seed(2);
        // Server 1 (top of stack) reports a deep queue: its entry is
        // stale and must be skipped in favor of server 0.
        p.on_load_update(1, 5, 0.0);
        assert_eq!(p.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 0);
        // A crashed server's entry is skipped the same way.
        let mut q = Jiq::new(&speeds);
        q.on_membership_change(&[true, false], 0.0);
        assert_eq!(q.choose(&ctx_at(0.0, &speeds, &qlens), &mut rng), 0);
        // Repair re-registers the server as idle.
        q.on_membership_change(&[true, true], 1.0);
        assert_eq!(q.choose(&ctx_at(1.0, &speeds, &qlens), &mut rng), 1);
    }

    #[test]
    fn scalable_policies_publish_sync_state() {
        let speeds = [1.0, 2.0];
        for p in [
            Box::new(IndexedLeastLoad::new(&speeds)) as Box<dyn Policy>,
            Box::new(IndexedStaleAware::new(&speeds, &[0.5, 0.5], 100.0)),
            Box::new(PowerOfD::new(&speeds, 2, true)),
            Box::new(Jiq::new(&speeds)),
        ] {
            assert!(p.needs_load_updates());
            let state = p.sync_state().expect("mergeable");
            assert_eq!(state.loads.len(), 2);
            assert!(state.credits.is_empty());
        }
    }

    #[test]
    fn indexed_dynamic_merge_sync_reloads_index() {
        let speeds = [1.0, 1.0];
        let mut p = IndexedLeastLoad::new(&speeds);
        let mut rng = Rng64::from_seed(0);
        let qlens = [0usize; 2];
        p.merge_sync(
            &SyncState {
                credits: Vec::new(),
                loads: vec![9.0, 0.0],
                ..SyncState::default()
            },
            1.0,
        );
        assert_eq!(p.believed(), &[9.0, 0.0]);
        assert_eq!(p.choose(&ctx_at(1.0, &speeds, &qlens), &mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "d in 1..=8")]
    fn pod_rejects_out_of_range_d() {
        PowerOfD::new(&[1.0], 9, false);
    }

    #[test]
    #[should_panic(expected = "no computers")]
    fn jiq_rejects_empty() {
        Jiq::new(&[]);
    }
}

//! Re-optimizing ORR — failure-aware Algorithm 1 (extension).
//!
//! The paper's ORR computes the optimized allocation once, offline, for
//! the full machine set. Under crashes that static α keeps crediting
//! dead machines: the round-robin dispatcher skips them, but the split
//! over the survivors is whatever the gap-equalization credits happen to
//! leave — not the allocation Algorithm 1 would pick for the surviving
//! subset. [`ReoptimizingOrr`] closes that gap: on every membership
//! change it re-solves Algorithm 1 over the live machines at the
//! *effective* utilization `ρ · Σs_all / Σs_live` (the same job stream
//! hitting less capacity) and rebuilds the round-robin dispatcher.
//!
//! Comparing ORR and ReORR under increasing failure rates isolates how
//! much of the fault-tolerance story is membership *avoidance* (both do
//! it) versus allocation *re-optimization* (only ReORR does it).
//!
//! With [`ReoptimizingOrr::with_rate_reopt`] the policy also re-solves
//! on every *coordinated* sync round that carries the tier's realized
//! arrival rate: the measured utilization replaces the configured design
//! point, and the dispatcher is re-targeted in place (rotation offsets
//! preserved) instead of rebuilt. A sharded tier whose `source_hash`
//! splitter runs one shard hot thereby converges each shard's allocation
//! to its actual substream instead of the tier-average guess.

use hetsched_cluster::{DispatchCtx, Policy, SyncState};
use hetsched_desim::Rng64;
use hetsched_queueing::closed_form::try_optimized_allocation_for;

use crate::round_robin::RoundRobinDispatch;

/// ORR that re-solves Algorithm 1 over the surviving machines on every
/// membership change.
#[derive(Debug, Clone)]
pub struct ReoptimizingOrr {
    speeds: Vec<f64>,
    /// Configured (full-set) utilization estimate.
    rho: f64,
    /// Believed membership from the fault layer.
    up: Vec<bool>,
    /// Mean job size (speed-1 seconds), present when rate-driven
    /// re-optimization is enabled ([`ReoptimizingOrr::with_rate_reopt`]).
    mean_size: Option<f64>,
    /// Utilization measured from the sync plane's realized arrival rate;
    /// overrides the configured `rho` once the tier has reported one.
    measured_rho: Option<f64>,
    inner: RoundRobinDispatch,
}

impl ReoptimizingOrr {
    /// Creates the policy; with every machine up it is exactly ORR.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or non-positive, or `rho ∉ (0, 1)`.
    pub fn new(speeds: &[f64], rho: f64) -> Self {
        assert!(!speeds.is_empty(), "no computers");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive"
        );
        assert!(
            rho.is_finite() && rho > 0.0 && rho < 1.0,
            "utilization must lie in (0,1), got {rho}"
        );
        let up = vec![true; speeds.len()];
        let fractions = live_allocation(speeds, rho, &up);
        ReoptimizingOrr {
            speeds: speeds.to_vec(),
            rho,
            up,
            mean_size: None,
            measured_rho: None,
            inner: RoundRobinDispatch::new(&fractions, "ReORR"),
        }
    }

    /// Enables rate-driven re-optimization: when a coordinated sync
    /// round reports the tier's realized arrival rate λ (jobs/s), the
    /// policy re-solves Algorithm 1 at the *measured* utilization
    /// `ρ̂ = λ · E[size] / Σ s` and re-targets the dispatcher in
    /// place (phase-preserving — the rotation is not reset). This is
    /// what repairs a hot shard under `source_hash` splitting: the shard
    /// whose substream runs hot gets an allocation solved for its actual
    /// load, not the tier-average design point.
    #[must_use]
    pub fn with_rate_reopt(mut self, mean_size: f64) -> Self {
        assert!(
            mean_size.is_finite() && mean_size > 0.0,
            "mean job size must be positive, got {mean_size}"
        );
        self.mean_size = Some(mean_size);
        self
    }

    /// The fractions currently driving the dispatcher (zeros for down
    /// machines).
    pub fn current_fractions(&self) -> &[f64] {
        self.inner.fractions()
    }

    /// The utilization estimate the next re-solve will use: the measured
    /// one once the sync plane has reported a rate, else the configured
    /// design point.
    fn effective_rho(&self) -> f64 {
        self.measured_rho.unwrap_or(self.rho)
    }
}

/// Clamp a measured utilization into Algorithm 1's open (0, 1) domain.
/// An overloaded measurement (ρ̂ ≥ 1) pins near saturation, where the
/// optimized allocation approaches the weighted split (footnote 7).
fn clamp_rho(rho: f64) -> f64 {
    if !rho.is_finite() {
        return 0.5;
    }
    rho.clamp(1e-6, 0.999)
}

/// Algorithm 1 over the live subset, expanded to a full-length fraction
/// vector with zeros for down machines. A stale all-down belief keeps
/// the full-set allocation (the dispatcher's own fallback handles it).
fn live_allocation(speeds: &[f64], rho: f64, up: &[bool]) -> Vec<f64> {
    let total: f64 = speeds.iter().sum();
    let live: Vec<f64> = speeds
        .iter()
        .zip(up)
        .filter(|&(_, &u)| u)
        .map(|(&s, _)| s)
        .collect();
    let live_total: f64 = live.iter().sum();
    if live.is_empty() {
        return match try_optimized_allocation_for(speeds, rho) {
            Ok(f) => f,
            Err(_) => speeds.iter().map(|s| s / total).collect(),
        };
    }
    // The same arrival stream now hits less capacity.
    let rho_live = rho * total / live_total;
    let live_fractions = if rho_live >= 1.0 {
        // Survivors are saturated: footnote 7's limit — weighted split.
        live.iter().map(|s| s / live_total).collect()
    } else {
        try_optimized_allocation_for(&live, rho_live)
            .unwrap_or_else(|_| live.iter().map(|s| s / live_total).collect())
    };
    let mut full = vec![0.0; speeds.len()];
    let mut k = 0;
    for (i, &u) in up.iter().enumerate() {
        if u {
            full[i] = live_fractions[k];
            k += 1;
        }
    }
    full
}

impl Policy for ReoptimizingOrr {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize {
        self.inner.choose(ctx, rng)
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        self.up.clear();
        self.up.extend_from_slice(up);
        let fractions = live_allocation(&self.speeds, self.effective_rho(), &self.up);
        if self.mean_size.is_some() {
            // Rate-reopt mode is phase-preserving throughout: keep the
            // credit state so the rotation offset a coordinated tier has
            // carefully maintained survives the membership change.
            self.inner.retarget(&fractions);
            self.inner.set_membership(&self.up);
        } else {
            // Rebuild Algorithm 2 over the new allocation; reapply the
            // mask so a stale all-down belief still falls back
            // deterministically. (Historical ReORR behavior, kept
            // bit-for-bit for the naive tier.)
            self.inner = RoundRobinDispatch::new(&fractions, "ReORR");
            self.inner.set_membership(&self.up);
        }
    }

    fn expected_fractions(&self) -> Option<Vec<f64>> {
        Some(self.current_fractions().to_vec())
    }

    fn sync_state(&self) -> Option<SyncState> {
        self.inner.sync_state()
    }

    fn merge_sync(&mut self, consensus: &SyncState, now: f64) {
        self.inner.merge_sync(consensus, now);
        let Some(mean_size) = self.mean_size else {
            return;
        };
        if !(consensus.phase_preserving && consensus.rate > 0.0) {
            return;
        }
        // The tier's realized arrival rate → measured *full-set*
        // utilization ρ̂ = λ · E[size] / Σ s_all (live_allocation itself
        // rescales onto the surviving capacity) → re-solve Algorithm 1
        // and steer the rotation there without resetting it.
        let total: f64 = self.speeds.iter().sum();
        let rho = clamp_rho(consensus.rate * mean_size / total);
        self.measured_rho = Some(rho);
        let fractions = live_allocation(&self.speeds, rho, &self.up);
        self.inner.retarget(&fractions);
    }

    fn advance_rotation(&mut self, steps: u64) {
        self.inner.advance_rotation(steps);
    }

    fn name(&self) -> String {
        "ReORR".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationSpec;

    fn ctx<'a>(speeds: &'a [f64], qlens: &'a [usize]) -> DispatchCtx<'a> {
        DispatchCtx {
            now: 0.0,
            job_size: 1.0,
            queue_lens: qlens,
            speeds,
            true_load_index: None,
        }
    }

    #[test]
    fn matches_orr_when_all_up() {
        let speeds = [1.0, 2.0, 10.0];
        let p = ReoptimizingOrr::new(&speeds, 0.7);
        let orr = AllocationSpec::optimized().fractions(&speeds, 0.7);
        for (a, b) in p.current_fractions().iter().zip(&orr) {
            assert!((a - b).abs() < 1e-12, "{:?}", p.current_fractions());
        }
    }

    #[test]
    fn reoptimizes_over_survivors() {
        let speeds = [1.0, 2.0, 10.0];
        let mut p = ReoptimizingOrr::new(&speeds, 0.5);
        p.on_membership_change(&[true, true, false], 0.0);
        let f = p.current_fractions().to_vec();
        assert_eq!(f[2], 0.0, "down machine must get fraction 0: {f:?}");
        // ρ_live = 0.5 · 13 / 3 > 1 ⇒ weighted over the survivors.
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-9, "{f:?}");
        assert!((f[1] - 2.0 / 3.0).abs() < 1e-9, "{f:?}");
        // Dispatch respects the reallocation.
        let qlens = [0usize; 3];
        let mut rng = hetsched_desim::Rng64::from_seed(0);
        for _ in 0..50 {
            assert_ne!(p.choose(&ctx(&speeds, &qlens), &mut rng), 2);
        }
    }

    #[test]
    fn unsaturated_survivors_get_algorithm1() {
        let speeds = [1.0, 2.0, 10.0];
        let mut p = ReoptimizingOrr::new(&speeds, 0.3);
        p.on_membership_change(&[false, true, true], 0.0);
        // ρ_live = 0.3 · 13 / 12 = 0.325 < 1: Algorithm 1 over [2, 10].
        let expected = AllocationSpec::optimized().fractions(&[2.0, 10.0], 0.3 * 13.0 / 12.0);
        let f = p.current_fractions();
        assert_eq!(f[0], 0.0);
        assert!((f[1] - expected[0]).abs() < 1e-12, "{f:?} vs {expected:?}");
        assert!((f[2] - expected[1]).abs() < 1e-12, "{f:?} vs {expected:?}");
    }

    #[test]
    fn repair_restores_full_set_allocation() {
        let speeds = [1.0, 2.0, 10.0];
        let mut p = ReoptimizingOrr::new(&speeds, 0.7);
        let full = p.current_fractions().to_vec();
        p.on_membership_change(&[true, true, false], 0.0);
        p.on_membership_change(&[true, true, true], 1.0);
        for (a, b) in p.current_fractions().iter().zip(&full) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn all_down_belief_keeps_dispatching() {
        let speeds = [1.0, 4.0];
        let mut p = ReoptimizingOrr::new(&speeds, 0.5);
        p.on_membership_change(&[false, false], 0.0);
        let qlens = [0usize; 2];
        let mut rng = hetsched_desim::Rng64::from_seed(0);
        // The round-robin fallback serves *some* machine; no panic.
        let c = p.choose(&ctx(&speeds, &qlens), &mut rng);
        assert!(c < 2);
    }

    #[test]
    #[should_panic(expected = "utilization must lie in (0,1)")]
    fn rejects_bad_rho() {
        ReoptimizingOrr::new(&[1.0, 2.0], 1.0);
    }

    fn coordinated_consensus(credits: Vec<f64>, rate: f64) -> SyncState {
        SyncState {
            credits,
            loads: Vec::new(),
            rate,
            phase_preserving: true,
        }
    }

    #[test]
    fn rate_reopt_resolves_at_measured_utilization() {
        let speeds = [1.0, 2.0, 10.0];
        // Designed for ρ = 0.3, but the sync plane measures a hotter
        // stream: λ·E[size]/Σs = 9.1/13 = 0.7.
        let mut p = ReoptimizingOrr::new(&speeds, 0.3).with_rate_reopt(1.0);
        let consensus = coordinated_consensus(p.sync_state().unwrap().credits, 9.1);
        p.merge_sync(&consensus, 100.0);
        let expected = AllocationSpec::optimized().fractions(&speeds, 0.7);
        for (a, b) in p.current_fractions().iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12, "{:?}", p.current_fractions());
        }
        // The measured ρ sticks for later membership changes too.
        p.on_membership_change(&[false, true, true], 200.0);
        let live = AllocationSpec::optimized().fractions(&[2.0, 10.0], 0.7 * 13.0 / 12.0);
        let f = p.current_fractions();
        assert_eq!(f[0], 0.0);
        assert!((f[1] - live[0]).abs() < 1e-12, "{f:?} vs {live:?}");
    }

    #[test]
    fn rate_reopt_ignores_naive_and_rateless_consensus() {
        let speeds = [1.0, 2.0, 10.0];
        let mut p = ReoptimizingOrr::new(&speeds, 0.3).with_rate_reopt(1.0);
        let before = p.current_fractions().to_vec();
        // Naive consensus (phase_preserving = false) never re-solves,
        // even if a rate somehow rides along.
        let mut naive = coordinated_consensus(p.sync_state().unwrap().credits, 9.1);
        naive.phase_preserving = false;
        p.merge_sync(&naive, 10.0);
        assert_eq!(p.current_fractions(), &before[..]);
        // Coordinated but rate-less consensus: levels merge, no re-solve.
        let rateless = coordinated_consensus(p.sync_state().unwrap().credits, 0.0);
        p.merge_sync(&rateless, 20.0);
        assert_eq!(p.current_fractions(), &before[..]);
        // And without with_rate_reopt, a rated consensus is inert too.
        let mut plain = ReoptimizingOrr::new(&speeds, 0.3);
        let consensus = coordinated_consensus(plain.sync_state().unwrap().credits, 9.1);
        plain.merge_sync(&consensus, 30.0);
        assert_eq!(plain.current_fractions(), &before[..]);
    }

    #[test]
    fn rate_reopt_membership_change_preserves_rotation() {
        let speeds = [1.0, 2.0, 4.0, 8.0];
        let mut p = ReoptimizingOrr::new(&speeds, 0.5).with_rate_reopt(1.0);
        let qlens = [0usize; 4];
        let mut rng = hetsched_desim::Rng64::from_seed(0);
        for _ in 0..17 {
            p.choose(&ctx(&speeds, &qlens), &mut rng);
        }
        let assigned_before = p.inner.assignments().to_vec();
        p.on_membership_change(&[true, false, true, true], 50.0);
        // Phase-preserving path: the assignment history survives (a
        // rebuild would zero it).
        assert_eq!(p.inner.assignments(), &assigned_before[..]);
        assert_eq!(p.current_fractions()[1], 0.0);
    }

    #[test]
    fn saturated_measurement_clamps_to_near_weighted_split() {
        let speeds = [1.0, 3.0];
        let mut p = ReoptimizingOrr::new(&speeds, 0.5).with_rate_reopt(1.0);
        // λ·E[size]/Σs = 40/4 = 10 ⇒ clamped to 0.999: allocation must
        // stay a valid probability vector near the weighted split.
        let consensus = coordinated_consensus(p.sync_state().unwrap().credits, 40.0);
        p.merge_sync(&consensus, 10.0);
        let f = p.current_fractions();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{f:?}");
        assert!((f[1] - 0.75).abs() < 0.05, "near-saturation split: {f:?}");
    }

    #[test]
    fn advance_rotation_delegates_to_inner() {
        let speeds = [1.0, 2.0, 10.0];
        let mut by_steps = ReoptimizingOrr::new(&speeds, 0.5);
        let mut by_calls = ReoptimizingOrr::new(&speeds, 0.5);
        by_steps.advance_rotation(23);
        let qlens = [0usize; 3];
        let mut rng = hetsched_desim::Rng64::from_seed(0);
        for _ in 0..23 {
            by_calls.choose(&ctx(&speeds, &qlens), &mut rng);
        }
        assert_eq!(by_steps.sync_state(), by_calls.sync_state());
    }
}

//! Extension baselines beyond the paper.
//!
//! * [`JsqPolicy`] — join-the-shortest-of-d-queues ("power of d
//!   choices"): samples `d` machines uniformly and joins the one with the
//!   least normalized *instantaneous* load. With `d = n` it is an
//!   idealized least-load scheduler with zero-delay information — an
//!   upper bound even on the paper's Dynamic Least-Load.
//! * [`SitaEPolicy`] — Size Interval Task Assignment with Equal load
//!   (Harchol-Balter et al., the comparison point the paper cites in its
//!   related work): clairvoyantly routes jobs by *size band*, with
//!   cutoffs chosen so each machine receives a load share proportional to
//!   its speed; bigger jobs go to faster machines.
//!
//! Both are *clairvoyant* (they read information the paper's static
//! schemes cannot), so they appear in the extra-baselines experiment only
//! to situate ORR, never as competitors in the reproduction figures.

use hetsched_cluster::{DispatchCtx, Policy};
use hetsched_desim::Rng64;
use hetsched_dist::BoundedPareto;

/// Join the shortest of `d` randomly sampled queues (normalized by
/// speed).
#[derive(Debug, Clone)]
pub struct JsqPolicy {
    d: usize,
    /// Believed membership from the fault layer; empty means all up
    /// (pre-fault behavior, bit-identical RNG draw sequence).
    up: Vec<bool>,
}

impl JsqPolicy {
    /// Creates JSQ(d).
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: usize) -> Self {
        assert!(d > 0, "d must be positive");
        JsqPolicy { d, up: Vec::new() }
    }

    fn is_up(&self, i: usize) -> bool {
        self.up.get(i).copied().unwrap_or(true)
    }
}

impl Policy for JsqPolicy {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize {
        let n = ctx.speeds.len();
        let live = if self.up.is_empty() {
            n
        } else {
            self.up.iter().filter(|&&u| u).count().min(n)
        };
        // Stale all-down belief: probe as if everyone were up; the
        // simulation records the loss.
        let ignore_membership = live == 0;
        let probes = self.d.min(if ignore_membership { n } else { live });
        let mut best = usize::MAX;
        let mut best_load = f64::INFINITY;
        // Sample `probes` machines with replacement-free rejection; for
        // the small d used in practice (2–4) this is cheap. Down
        // machines are rejected the same way, which leaves the draw
        // sequence untouched whenever everyone is up.
        let mut chosen: [usize; 8] = [usize::MAX; 8];
        let mut picked = 0;
        while picked < probes {
            let c = rng.below(n as u64) as usize;
            if !ignore_membership && !self.is_up(c) {
                continue;
            }
            if chosen[..picked.min(8)].contains(&c) {
                continue;
            }
            if picked < 8 {
                chosen[picked] = c;
            }
            picked += 1;
            let load = (ctx.queue_lens[c] as f64 + 1.0) / ctx.speeds[c];
            if load < best_load {
                best_load = load;
                best = c;
            }
        }
        best
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        self.up = up.to_vec();
    }

    fn name(&self) -> String {
        format!("JSQ({})", self.d)
    }
}

/// SITA-E over a Bounded Pareto size distribution.
#[derive(Debug, Clone)]
pub struct SitaEPolicy {
    /// Size cutoffs: machine `order[i]` serves sizes in
    /// `[cutoffs[i], cutoffs[i+1])`.
    cutoffs: Vec<f64>,
    /// Machines sorted by ascending speed — slow machines get the small
    /// jobs.
    order: Vec<usize>,
    /// Believed membership from the fault layer; empty means all up.
    up: Vec<bool>,
}

impl SitaEPolicy {
    /// Builds the cutoffs so machine `i`'s expected load share is
    /// `s_i / Σ s_j`.
    ///
    /// # Panics
    /// Panics if `speeds` is empty or non-positive.
    pub fn new(speeds: &[f64], sizes: BoundedPareto) -> Self {
        assert!(!speeds.is_empty(), "no computers");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive"
        );
        let mut order: Vec<usize> = (0..speeds.len()).collect();
        order.sort_by(|&a, &b| speeds[a].partial_cmp(&speeds[b]).expect("finite speeds"));
        let total: f64 = speeds.iter().sum();
        let full_load = sizes.partial_mean(sizes.upper());

        let mut cutoffs = Vec::with_capacity(speeds.len() + 1);
        cutoffs.push(sizes.lower());
        let mut cum = 0.0;
        for (rank, &m) in order.iter().enumerate() {
            cum += speeds[m] / total;
            if rank + 1 == order.len() {
                cutoffs.push(sizes.upper());
            } else {
                cutoffs.push(invert_partial_mean(&sizes, cum * full_load));
            }
        }
        SitaEPolicy {
            cutoffs,
            order,
            up: Vec::new(),
        }
    }

    /// The size cutoffs, ascending, length `n + 1`.
    pub fn cutoffs(&self) -> &[f64] {
        &self.cutoffs
    }
}

/// Bisection for the x with `partial_mean(x) = target`.
fn invert_partial_mean(sizes: &BoundedPareto, target: f64) -> f64 {
    let mut lo = sizes.lower();
    let mut hi = sizes.upper();
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sizes.partial_mean(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= 1e-9 * hi {
            break;
        }
    }
    0.5 * (lo + hi)
}

impl Policy for SitaEPolicy {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
        // Find the band containing the job size; partition_point gives
        // the count of cutoffs ≤ size.
        let band = self
            .cutoffs
            .partition_point(|&c| c <= ctx.job_size)
            .saturating_sub(1)
            .min(self.order.len() - 1);
        // With faults, spill to the next live machine in speed order
        // (wrapping): the nearest size band whose server can take the
        // job. A stale all-down belief serves the original band.
        let n = self.order.len();
        for k in 0..n {
            let m = self.order[(band + k) % n];
            if self.up.get(m).copied().unwrap_or(true) {
                return m;
            }
        }
        self.order[band]
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        self.up = up.to_vec();
    }

    fn name(&self) -> String {
        "SITA-E".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dist::{Moments, Sample};

    fn ctx<'a>(speeds: &'a [f64], qlens: &'a [usize], size: f64) -> DispatchCtx<'a> {
        DispatchCtx {
            now: 0.0,
            job_size: size,
            queue_lens: qlens,
            speeds,
            true_load_index: None,
        }
    }

    #[test]
    fn jsq_full_probe_is_least_loaded() {
        let speeds = [1.0, 1.0, 1.0];
        let qlens = [5, 0, 3];
        let mut p = JsqPolicy::new(3);
        let mut rng = Rng64::from_seed(0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 1.0), &mut rng), 1);
        assert_eq!(p.name(), "JSQ(3)");
    }

    #[test]
    fn jsq_normalizes_by_speed() {
        let speeds = [1.0, 4.0];
        let qlens = [0, 2];
        let mut p = JsqPolicy::new(2);
        let mut rng = Rng64::from_seed(0);
        // (0+1)/1 = 1 vs (2+1)/4 = 0.75 → the loaded-but-fast machine.
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 1.0), &mut rng), 1);
    }

    #[test]
    fn jsq_d2_spreads_choices() {
        let speeds = [1.0; 10];
        let qlens = [0usize; 10];
        let mut p = JsqPolicy::new(2);
        let mut rng = Rng64::from_seed(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[p.choose(&ctx(&speeds, &qlens, 1.0), &mut rng)] = true;
        }
        assert!(seen.iter().all(|&b| b), "all machines should be probed");
    }

    #[test]
    fn sita_cutoffs_are_monotone_and_span_support() {
        let sizes = BoundedPareto::paper_default();
        let p = SitaEPolicy::new(&[1.0, 2.0, 4.0], sizes);
        let c = p.cutoffs();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], 10.0);
        assert_eq!(c[3], 21600.0);
        for w in c.windows(2) {
            assert!(w[0] < w[1], "cutoffs not increasing: {c:?}");
        }
    }

    #[test]
    fn sita_routes_small_jobs_to_slow_machines() {
        let sizes = BoundedPareto::paper_default();
        let speeds = [4.0, 1.0, 2.0]; // deliberately unsorted
        let mut p = SitaEPolicy::new(&speeds, sizes);
        let qlens = [0, 0, 0];
        let mut rng = Rng64::from_seed(0);
        // A tiny job lands on the slowest machine (index 1).
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 10.5), &mut rng), 1);
        // A huge job lands on the fastest machine (index 0).
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 21000.0), &mut rng), 0);
    }

    #[test]
    fn sita_equalizes_load_shares() {
        // Empirically: sample many jobs, accumulate per-machine load, and
        // compare with the speed proportions.
        let sizes = BoundedPareto::paper_default();
        let speeds = [1.0, 3.0];
        let mut p = SitaEPolicy::new(&speeds, sizes);
        let qlens = [0, 0];
        let mut rng = Rng64::from_seed(7);
        let mut load = [0.0f64; 2];
        let n = 400_000;
        for _ in 0..n {
            let s = sizes.sample(&mut rng);
            let m = p.choose(&ctx(&speeds, &qlens, s), &mut rng);
            load[m] += s;
        }
        let frac = load[1] / (load[0] + load[1]);
        // Machine 1 has 3/4 of the capacity. Heavy-tailed sampling noise
        // (α = 1) converges slowly — accept a loose band around 0.75.
        assert!(
            (frac - 0.75).abs() < 0.08,
            "fast machine load share {frac}, expected ≈ 0.75 (mean size {})",
            sizes.mean()
        );
    }

    #[test]
    fn jsq_rejects_down_machines() {
        let speeds = [1.0, 1.0, 1.0];
        let qlens = [5, 0, 3];
        let mut p = JsqPolicy::new(3);
        let mut rng = Rng64::from_seed(2);
        // The least-loaded machine is down: the probe set shrinks to the
        // two live ones and the better of those wins.
        p.on_membership_change(&[true, false, true], 0.0);
        for _ in 0..20 {
            assert_eq!(p.choose(&ctx(&speeds, &qlens, 1.0), &mut rng), 2);
        }
        // Repair restores full probing.
        p.on_membership_change(&[true, true, true], 1.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 1.0), &mut rng), 1);
    }

    #[test]
    fn jsq_all_down_belief_still_probes() {
        let speeds = [1.0, 1.0];
        let qlens = [4, 1];
        let mut p = JsqPolicy::new(2);
        let mut rng = Rng64::from_seed(3);
        p.on_membership_change(&[false, false], 0.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 1.0), &mut rng), 1);
    }

    #[test]
    fn sita_spills_to_next_live_machine_in_speed_order() {
        let sizes = BoundedPareto::paper_default();
        let speeds = [4.0, 1.0, 2.0];
        let mut p = SitaEPolicy::new(&speeds, sizes);
        let qlens = [0, 0, 0];
        let mut rng = Rng64::from_seed(0);
        // The slowest machine (index 1) is down: its small-job band
        // spills to the next in speed order — index 2.
        p.on_membership_change(&[true, false, true], 0.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 10.5), &mut rng), 2);
        // The fastest band is unaffected.
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 21000.0), &mut rng), 0);
        // The fastest machine down: its band wraps to the slowest live.
        p.on_membership_change(&[false, true, true], 1.0);
        assert_eq!(p.choose(&ctx(&speeds, &qlens, 21000.0), &mut rng), 1);
    }

    #[test]
    #[should_panic(expected = "d must be positive")]
    fn jsq_rejects_zero_d() {
        JsqPolicy::new(0);
    }

    #[test]
    #[should_panic(expected = "no computers")]
    fn sita_rejects_empty() {
        SitaEPolicy::new(&[], BoundedPareto::paper_default());
    }
}

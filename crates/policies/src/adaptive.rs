//! Adaptive ORR — an extension beyond the paper.
//!
//! §5.4 shows ORR needs only a *rough* utilization estimate and ends
//! with "It is not necessary to measure ρ and recompute the optimized
//! workload allocation strategy often." This module takes the obvious
//! next step the paper leaves as practice: estimate the arrival rate
//! online (EWMA over inter-arrival gaps), recompute Algorithm 1's
//! allocation on a slow timer, and dispatch with Algorithm 2 in between.
//! The estimate is deliberately biased upward by a configurable safety
//! margin, following the paper's advice to "conservatively overestimate
//! system load slightly".
//!
//! The scheduler must know the machines' speeds and the mean job size
//! (to convert an arrival rate into a utilization) — both static
//! quantities; no per-job information and no feedback from the machines
//! is used, so the policy is still *static* in the paper's taxonomy,
//! just periodically re-parameterized.

use hetsched_cluster::{DispatchCtx, Policy, SyncState};
use hetsched_desim::Rng64;

use crate::allocation::AllocationSpec;
use crate::round_robin::RoundRobinDispatch;

/// ORR with an online EWMA utilization estimator.
#[derive(Debug, Clone)]
pub struct AdaptiveOrr {
    speeds: Vec<f64>,
    /// Mean job size in speed-1 seconds (gives `μ = 1 / mean_size`).
    mean_size: f64,
    /// Seconds between allocation recomputations.
    recompute_every: f64,
    /// Relative safety margin added to the estimate (the paper suggests
    /// slight overestimation).
    safety_margin: f64,
    /// EWMA smoothing factor per observed gap.
    beta: f64,
    ewma_gap: Option<f64>,
    last_arrival: Option<f64>,
    last_recompute: f64,
    /// Believed membership from the fault layer, reapplied to the inner
    /// dispatcher whenever the allocation is rebuilt.
    up: Vec<bool>,
    inner: RoundRobinDispatch,
}

impl AdaptiveOrr {
    /// Creates the policy. Until enough arrivals have been observed it
    /// dispatches with the *weighted* fractions (the assumption-free
    /// default).
    ///
    /// # Panics
    /// Panics on empty/non-positive speeds, non-positive `mean_size` or
    /// `recompute_every`, or `beta ∉ (0, 1]`.
    pub fn new(
        speeds: &[f64],
        mean_size: f64,
        recompute_every: f64,
        safety_margin: f64,
        beta: f64,
    ) -> Self {
        assert!(!speeds.is_empty(), "no computers");
        assert!(
            speeds.iter().all(|&s| s.is_finite() && s > 0.0),
            "speeds must be positive"
        );
        assert!(
            mean_size.is_finite() && mean_size > 0.0,
            "mean job size must be positive, got {mean_size}"
        );
        assert!(
            recompute_every.is_finite() && recompute_every > 0.0,
            "recompute period must be positive"
        );
        assert!(
            safety_margin.is_finite() && safety_margin >= 0.0,
            "safety margin must be ≥ 0"
        );
        assert!(beta > 0.0 && beta <= 1.0, "beta must lie in (0,1]");
        let total: f64 = speeds.iter().sum();
        let weighted: Vec<f64> = speeds.iter().map(|s| s / total).collect();
        AdaptiveOrr {
            speeds: speeds.to_vec(),
            mean_size,
            recompute_every,
            safety_margin,
            beta,
            ewma_gap: None,
            last_arrival: None,
            last_recompute: 0.0,
            up: vec![true; speeds.len()],
            inner: RoundRobinDispatch::new(&weighted, "AORR"),
        }
    }

    /// A sensible default: recompute every 500 s with a 5% safety margin
    /// and a 1% EWMA step.
    pub fn with_defaults(speeds: &[f64], mean_size: f64) -> Self {
        AdaptiveOrr::new(speeds, mean_size, 500.0, 0.05, 0.01)
    }

    /// Current utilization estimate (with the safety margin applied), or
    /// `None` before the first gap is observed.
    pub fn estimated_utilization(&self) -> Option<f64> {
        let gap = self.ewma_gap?;
        let lambda = 1.0 / gap;
        let mu = 1.0 / self.mean_size;
        let total: f64 = self.speeds.iter().sum();
        Some((lambda / (mu * total)) * (1.0 + self.safety_margin))
    }

    /// The fractions currently driving the dispatcher.
    pub fn current_fractions(&self) -> &[f64] {
        self.inner.fractions()
    }

    fn observe_arrival(&mut self, now: f64) {
        if let Some(prev) = self.last_arrival {
            let gap = (now - prev).max(0.0);
            self.ewma_gap = Some(match self.ewma_gap {
                Some(e) => (1.0 - self.beta) * e + self.beta * gap,
                None => gap,
            });
        }
        self.last_arrival = Some(now);
    }

    fn maybe_recompute(&mut self, now: f64) {
        if now - self.last_recompute < self.recompute_every {
            return;
        }
        self.last_recompute = now;
        let Some(rho) = self.estimated_utilization() else {
            return;
        };
        let rho = rho.clamp(0.01, 0.999);
        let fractions = AllocationSpec::Optimized { rho_error: 0.0 }.fractions(&self.speeds, rho);
        // Rebuilding resets Algorithm 2's credit state; the start-up rule
        // re-spreads first jobs, so the transient is a few jobs long. The
        // membership mask must survive the rebuild.
        self.inner = RoundRobinDispatch::new(&fractions, "AORR");
        self.inner.set_membership(&self.up);
    }
}

impl Policy for AdaptiveOrr {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize {
        self.observe_arrival(ctx.now);
        self.maybe_recompute(ctx.now);
        self.inner.choose(ctx, rng)
    }

    fn on_membership_change(&mut self, up: &[bool], now: f64) {
        self.up.clear();
        self.up.extend_from_slice(up);
        self.inner.on_membership_change(up, now);
    }

    fn expected_fractions(&self) -> Option<Vec<f64>> {
        Some(self.current_fractions().to_vec())
    }

    fn sync_state(&self) -> Option<SyncState> {
        self.inner.sync_state()
    }

    fn merge_sync(&mut self, consensus: &SyncState, now: f64) {
        self.inner.merge_sync(consensus, now);
    }

    fn advance_rotation(&mut self, steps: u64) {
        // Virtual (peer-shard) arrivals advance only the rotation
        // machine. They deliberately bypass the EWMA estimator: this
        // shard observes real timestamps only for its own substream, and
        // feeding zero-gap phantom arrivals would wreck the rate
        // estimate.
        self.inner.advance_rotation(steps);
    }

    fn name(&self) -> String {
        "AORR".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::AllocationSpec;
    use hetsched_desim::Rng64;

    fn drive(policy: &mut AdaptiveOrr, gaps: impl Iterator<Item = f64>) {
        let speeds = policy.speeds.clone();
        let qlens = vec![0usize; speeds.len()];
        let mut rng = Rng64::from_seed(0);
        let mut now = 0.0;
        for gap in gaps {
            now += gap;
            let ctx = DispatchCtx {
                now,
                job_size: 1.0,
                queue_lens: &qlens,
                speeds: &speeds,
                true_load_index: None,
            };
            policy.choose(&ctx, &mut rng);
        }
    }

    #[test]
    fn starts_with_weighted_fractions() {
        let p = AdaptiveOrr::with_defaults(&[1.0, 3.0], 10.0);
        assert_eq!(p.current_fractions(), &[0.25, 0.75]);
        assert_eq!(p.estimated_utilization(), None);
    }

    #[test]
    fn estimates_stationary_utilization() {
        // Speeds sum 4, mean size 10 ⇒ μΣs = 0.4. Gaps of 5 s ⇒ λ = 0.2
        // ⇒ ρ = 0.5, times the 5% margin = 0.525.
        let mut p = AdaptiveOrr::with_defaults(&[1.0, 3.0], 10.0);
        drive(&mut p, std::iter::repeat_n(5.0, 2_000));
        let est = p.estimated_utilization().expect("estimated");
        assert!((est - 0.525).abs() < 0.01, "estimate {est}");
    }

    #[test]
    fn converges_to_optimized_fractions() {
        let speeds = [1.0, 3.0];
        let mut p = AdaptiveOrr::with_defaults(&speeds, 10.0);
        drive(&mut p, std::iter::repeat_n(5.0, 5_000));
        let expected = AllocationSpec::optimized().fractions(&speeds, 0.525);
        for (a, b) in p.current_fractions().iter().zip(&expected) {
            assert!(
                (a - b).abs() < 0.01,
                "{:?} vs {expected:?}",
                p.current_fractions()
            );
        }
    }

    #[test]
    fn tracks_load_changes() {
        let speeds = [1.0, 3.0];
        let mut p = AdaptiveOrr::new(&speeds, 10.0, 100.0, 0.0, 0.05);
        // Light load first: fast machine should take almost everything.
        drive(&mut p, std::iter::repeat_n(25.0, 400));
        let light_fast = p.current_fractions()[1];
        // Then heavy load: allocation must move back toward weighted.
        drive(&mut p, std::iter::repeat_n(2.9, 4_000));
        let heavy_fast = p.current_fractions()[1];
        assert!(
            light_fast > heavy_fast,
            "fast share should shrink when load rises: {light_fast} vs {heavy_fast}"
        );
        assert!(light_fast > 0.95, "at ρ=0.1 the 3× machine takes ~all jobs");
    }

    #[test]
    fn estimate_is_clamped_under_overload() {
        let mut p = AdaptiveOrr::new(&[1.0, 1.0], 10.0, 50.0, 0.0, 0.2);
        // Gaps of 1 s on capacity 0.2 jobs/s: apparent ρ = 5 — must not
        // panic, allocation degenerates toward weighted.
        drive(&mut p, std::iter::repeat_n(1.0, 500));
        let f = p.current_fractions();
        assert!((f[0] - 0.5).abs() < 1e-9, "{f:?}");
    }

    #[test]
    fn membership_mask_survives_recompute() {
        let speeds = [1.0, 3.0];
        let mut p = AdaptiveOrr::new(&speeds, 10.0, 100.0, 0.0, 0.05);
        p.on_membership_change(&[true, false], 0.0);
        // Many recomputation periods pass; the rebuilt inner dispatcher
        // must keep excluding the down machine.
        let qlens = [0usize; 2];
        let mut rng = Rng64::from_seed(0);
        let mut now = 0.0;
        for _ in 0..2_000 {
            now += 5.0;
            let ctx = DispatchCtx {
                now,
                job_size: 1.0,
                queue_lens: &qlens,
                speeds: &speeds,
                true_load_index: None,
            };
            assert_eq!(p.choose(&ctx, &mut rng), 0, "down machine chosen");
        }
        assert!(
            p.estimated_utilization().is_some(),
            "recompute ran during the drive"
        );
    }

    #[test]
    #[should_panic(expected = "beta must lie in (0,1]")]
    fn rejects_bad_beta() {
        AdaptiveOrr::new(&[1.0], 10.0, 100.0, 0.0, 0.0);
    }
}

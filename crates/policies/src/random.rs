//! Random based job dispatching (§3.1).
//!
//! A newly arrived job goes to computer `c_i` with probability `α_i`.
//! "This strategy is straightforward but its performance can vary greatly
//! for different random number sequences" — the burstiness it leaves in
//! each computer's substream is exactly what Figure 2 quantifies and the
//! round-robin strategy removes.

use hetsched_cluster::{DispatchCtx, Policy};
use hetsched_desim::Rng64;

/// Dispatches to server `i` with probability `α_i`.
#[derive(Debug, Clone)]
pub struct RandomDispatch {
    /// Cumulative distribution over servers: `cum[i] = α_0 + … + α_i`.
    cum: Vec<f64>,
    label: String,
}

impl RandomDispatch {
    /// Creates a random dispatcher for the given fractions.
    ///
    /// # Panics
    /// Panics unless the fractions are a probability vector.
    pub fn new(fractions: &[f64], label: impl Into<String>) -> Self {
        assert!(!fractions.is_empty(), "no fractions");
        assert!(
            fractions.iter().all(|&a| (0.0..=1.0).contains(&a)),
            "fractions must lie in [0,1]: {fractions:?}"
        );
        let sum: f64 = fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {sum}"
        );
        let mut cum = Vec::with_capacity(fractions.len());
        let mut acc = 0.0;
        for &a in fractions {
            acc += a;
            cum.push(acc);
        }
        // Force the last edge to exactly 1 so u ∈ [0,1) always lands.
        *cum.last_mut().expect("non-empty") = 1.0;
        RandomDispatch {
            cum,
            label: label.into(),
        }
    }

    /// The realized fractions (recovered from the cumulative form).
    pub fn fractions(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.cum
            .iter()
            .map(|&c| {
                let a = c - prev;
                prev = c;
                a
            })
            .collect()
    }
}

impl Policy for RandomDispatch {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize {
        let u = rng.next_f64();
        // Binary search the cumulative distribution; partition_point
        // returns the first index with cum[i] > u.
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }

    fn expected_fractions(&self) -> Option<Vec<f64>> {
        Some(self.fractions())
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(speeds: &'a [f64], qlens: &'a [usize]) -> DispatchCtx<'a> {
        DispatchCtx {
            now: 0.0,
            job_size: 1.0,
            queue_lens: qlens,
            speeds,
        }
    }

    #[test]
    fn frequencies_match_fractions() {
        let fractions = [0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04];
        let mut p = RandomDispatch::new(&fractions, "WRAN");
        let speeds = vec![1.0; 8];
        let qlens = vec![0usize; 8];
        let mut rng = Rng64::from_seed(9);
        let n = 200_000;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            counts[p.choose(&ctx(&speeds, &qlens), &mut rng)] += 1;
        }
        for (i, (&c, &a)) in counts.iter().zip(&fractions).enumerate() {
            let freq = c as f64 / n as f64;
            assert!((freq - a).abs() < 0.005, "server {i}: {freq} vs {a}");
        }
    }

    #[test]
    fn zero_fraction_servers_never_chosen() {
        let mut p = RandomDispatch::new(&[0.0, 1.0, 0.0], "test");
        let speeds = [1.0, 1.0, 1.0];
        let qlens = [0, 0, 0];
        let mut rng = Rng64::from_seed(10);
        for _ in 0..10_000 {
            assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        }
    }

    #[test]
    fn fractions_round_trip() {
        let f = [0.25, 0.5, 0.25];
        let p = RandomDispatch::new(&f, "x");
        for (a, b) in p.fractions().iter().zip(&f) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn no_load_updates_needed() {
        let p = RandomDispatch::new(&[1.0], "x");
        assert!(!p.needs_load_updates());
        assert_eq!(p.name(), "x");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized() {
        RandomDispatch::new(&[0.5, 0.1], "bad");
    }

    #[test]
    #[should_panic(expected = "no fractions")]
    fn rejects_empty() {
        RandomDispatch::new(&[], "bad");
    }
}

//! Random based job dispatching (§3.1).
//!
//! A newly arrived job goes to computer `c_i` with probability `α_i`.
//! "This strategy is straightforward but its performance can vary greatly
//! for different random number sequences" — the burstiness it leaves in
//! each computer's substream is exactly what Figure 2 quantifies and the
//! round-robin strategy removes.

use hetsched_cluster::{DispatchCtx, Policy};
use hetsched_desim::Rng64;

/// Dispatches to server `i` with probability `α_i`.
#[derive(Debug, Clone)]
pub struct RandomDispatch {
    /// Configured fractions (the membership-independent base).
    base: Vec<f64>,
    /// Cumulative distribution over the believed-up servers:
    /// `cum[i] = α'_0 + … + α'_i` with `α'` the base renormalized over
    /// the live set (down servers get probability 0).
    cum: Vec<f64>,
    label: String,
}

impl RandomDispatch {
    /// Creates a random dispatcher for the given fractions.
    ///
    /// # Panics
    /// Panics unless the fractions are a probability vector.
    pub fn new(fractions: &[f64], label: impl Into<String>) -> Self {
        assert!(!fractions.is_empty(), "no fractions");
        assert!(
            fractions.iter().all(|&a| (0.0..=1.0).contains(&a)),
            "fractions must lie in [0,1]: {fractions:?}"
        );
        let sum: f64 = fractions.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6,
            "fractions must sum to 1, got {sum}"
        );
        let mut p = RandomDispatch {
            base: fractions.to_vec(),
            cum: Vec::new(),
            label: label.into(),
        };
        p.rebuild(&vec![true; fractions.len()]);
        p
    }

    /// Rebuilds the cumulative distribution for the given membership,
    /// renormalizing the base fractions over the live set. A stale
    /// all-down belief falls back to the base fractions (the simulation
    /// loses jobs sent to dead machines anyway).
    fn rebuild(&mut self, up: &[bool]) {
        let live_total: f64 = self
            .base
            .iter()
            .zip(up)
            .filter(|&(_, &u)| u)
            .map(|(&a, _)| a)
            .sum();
        self.cum.clear();
        let mut acc = 0.0;
        for (i, &a) in self.base.iter().enumerate() {
            if live_total > 0.0 {
                if up[i] {
                    acc += a / live_total;
                }
            } else {
                acc += a;
            }
            self.cum.push(acc);
        }
        // Force the last edge to exactly 1 so u ∈ [0,1) always lands.
        *self.cum.last_mut().expect("non-empty") = 1.0;
    }

    /// The realized fractions (recovered from the cumulative form).
    pub fn fractions(&self) -> Vec<f64> {
        let mut prev = 0.0;
        self.cum
            .iter()
            .map(|&c| {
                let a = c - prev;
                prev = c;
                a
            })
            .collect()
    }
}

impl Policy for RandomDispatch {
    fn choose(&mut self, _ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize {
        let u = rng.next_f64();
        // Binary search the cumulative distribution; partition_point
        // returns the first index with cum[i] > u.
        self.cum
            .partition_point(|&c| c <= u)
            .min(self.cum.len() - 1)
    }

    fn on_membership_change(&mut self, up: &[bool], _now: f64) {
        self.rebuild(up);
    }

    fn expected_fractions(&self) -> Option<Vec<f64>> {
        Some(self.fractions())
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(speeds: &'a [f64], qlens: &'a [usize]) -> DispatchCtx<'a> {
        DispatchCtx {
            now: 0.0,
            job_size: 1.0,
            queue_lens: qlens,
            speeds,
            true_load_index: None,
        }
    }

    #[test]
    fn frequencies_match_fractions() {
        let fractions = [0.35, 0.22, 0.15, 0.12, 0.04, 0.04, 0.04, 0.04];
        let mut p = RandomDispatch::new(&fractions, "WRAN");
        let speeds = vec![1.0; 8];
        let qlens = vec![0usize; 8];
        let mut rng = Rng64::from_seed(9);
        let n = 200_000;
        let mut counts = [0u64; 8];
        for _ in 0..n {
            counts[p.choose(&ctx(&speeds, &qlens), &mut rng)] += 1;
        }
        for (i, (&c, &a)) in counts.iter().zip(&fractions).enumerate() {
            let freq = c as f64 / n as f64;
            assert!((freq - a).abs() < 0.005, "server {i}: {freq} vs {a}");
        }
    }

    #[test]
    fn zero_fraction_servers_never_chosen() {
        let mut p = RandomDispatch::new(&[0.0, 1.0, 0.0], "test");
        let speeds = [1.0, 1.0, 1.0];
        let qlens = [0, 0, 0];
        let mut rng = Rng64::from_seed(10);
        for _ in 0..10_000 {
            assert_eq!(p.choose(&ctx(&speeds, &qlens), &mut rng), 1);
        }
    }

    #[test]
    fn fractions_round_trip() {
        let f = [0.25, 0.5, 0.25];
        let p = RandomDispatch::new(&f, "x");
        for (a, b) in p.fractions().iter().zip(&f) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn no_load_updates_needed() {
        let p = RandomDispatch::new(&[1.0], "x");
        assert!(!p.needs_load_updates());
        assert_eq!(p.name(), "x");
    }

    #[test]
    fn membership_renormalizes_over_live_set() {
        let mut p = RandomDispatch::new(&[0.25, 0.25, 0.5], "test");
        p.on_membership_change(&[true, false, true], 0.0);
        let speeds = [1.0; 3];
        let qlens = [0usize; 3];
        let mut rng = Rng64::from_seed(11);
        let n = 60_000;
        let mut counts = [0u64; 3];
        for _ in 0..n {
            counts[p.choose(&ctx(&speeds, &qlens), &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "down server must not be chosen");
        // Renormalized: 0.25/0.75 = 1/3 and 0.5/0.75 = 2/3.
        let f0 = counts[0] as f64 / n as f64;
        assert!((f0 - 1.0 / 3.0).abs() < 0.01, "{f0}");
        // Repair restores the base fractions.
        p.on_membership_change(&[true, true, true], 1.0);
        for (a, b) in p.fractions().iter().zip(&[0.25, 0.25, 0.5]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn all_down_belief_falls_back_to_base() {
        let mut p = RandomDispatch::new(&[0.5, 0.5], "test");
        p.on_membership_change(&[false, false], 0.0);
        for (a, b) in p.fractions().iter().zip(&[0.5, 0.5]) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_unnormalized() {
        RandomDispatch::new(&[0.5, 0.1], "bad");
    }

    #[test]
    #[should_panic(expected = "no fractions")]
    fn rejects_empty() {
        RandomDispatch::new(&[], "bad");
    }
}

//! A tournament-tree least-load index: `O(log N)` key updates with an
//! `O(1)` argmin read, replacing the `O(N)` per-decision scan that every
//! load-directed policy (DYNAMIC, DYNAMIC-SA, JSQ) otherwise pays.
//!
//! # Tie-breaking contract
//!
//! The linear scans this index replaces walk servers in index order and
//! keep a candidate only on a strictly smaller key, so they return the
//! *leftmost* minimum. The tree's combine step mirrors that exactly:
//! the left child wins on `left <= right`, which makes every internal
//! node hold the leftmost minimum of its span and the root the leftmost
//! global minimum. A scan and an index over identical keys therefore
//! pick identical servers — the bit-identity the differential tests
//! assert.
//!
//! # Absent entries
//!
//! A slot whose key is [`f64::INFINITY`] (a believed-down server, or
//! padding above `len`) can never win against any finite key; when
//! *every* real slot is infinite the root is infinite and
//! [`ArgminTree::argmin`] returns `None`, letting callers fall through
//! to the same no-candidate path the scan takes. Keys must never be
//! NaN: a NaN poisons every comparison on its root path.

/// Flat-array tournament tree over `len` f64 keys.
///
/// Layout: the leaf for slot `i` lives at `cap + i` where `cap` is
/// `len` rounded up to a power of two; internal node `k` covers the
/// leaves under `2k` and `2k + 1`; node 1 is the root. Both the key
/// array and the winner array are contiguous, so an update touches one
/// cache line per level.
#[derive(Debug, Clone)]
pub struct ArgminTree {
    /// Tournament keys, `2 * cap` entries; `[cap, cap + len)` are the
    /// real leaves, the rest padding at `f64::INFINITY`.
    key: Vec<f64>,
    /// `win[k]` = slot index of the leftmost-minimum leaf under node
    /// `k`; for leaves, the slot's own index.
    win: Vec<u32>,
    len: usize,
    cap: usize,
}

impl ArgminTree {
    /// An index over `len` slots, every key starting at infinity.
    pub fn new(len: usize) -> Self {
        let cap = len.next_power_of_two().max(1);
        let mut win = vec![0u32; 2 * cap];
        for i in 0..cap {
            // Padding leaves still carry their slot index so ties among
            // infinities resolve leftmost, same as everywhere else.
            win[cap + i] = i as u32;
        }
        let mut tree = ArgminTree {
            key: vec![f64::INFINITY; 2 * cap],
            win,
            len,
            cap,
        };
        tree.rebuild_internal();
        tree
    }

    /// An index seeded from `keys` (one per slot).
    pub fn from_keys(keys: &[f64]) -> Self {
        let mut tree = Self::new(keys.len());
        tree.key[tree.cap..tree.cap + keys.len()].copy_from_slice(keys);
        tree.rebuild_internal();
        tree
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current key of slot `i`.
    pub fn key(&self, i: usize) -> f64 {
        debug_assert!(i < self.len);
        self.key[self.cap + i]
    }

    /// Sets slot `i`'s key and replays its root path: `O(log N)`.
    pub fn update(&mut self, i: usize, key: f64) {
        debug_assert!(i < self.len, "slot {i} out of {}", self.len);
        debug_assert!(!key.is_nan(), "NaN key would poison the tournament");
        let mut node = self.cap + i;
        self.key[node] = key;
        while node > 1 {
            node /= 2;
            let (l, r) = (2 * node, 2 * node + 1);
            // Left wins ties: every node holds its span's *leftmost*
            // minimum, matching the strict-< linear scan.
            if self.key[l] <= self.key[r] {
                self.key[node] = self.key[l];
                self.win[node] = self.win[l];
            } else {
                self.key[node] = self.key[r];
                self.win[node] = self.win[r];
            }
        }
    }

    /// The leftmost slot holding the minimum key, or `None` when every
    /// key is infinite (no eligible slot): `O(1)`.
    pub fn argmin(&self) -> Option<usize> {
        if self.len == 0 || self.key[1] == f64::INFINITY {
            return None;
        }
        Some(self.win[1] as usize)
    }

    /// The minimum key itself (infinite when no slot is eligible).
    pub fn min_key(&self) -> f64 {
        if self.len == 0 {
            f64::INFINITY
        } else {
            self.key[1]
        }
    }

    /// Recomputes every internal node bottom-up: `O(N)`, used at
    /// construction and bulk reloads (e.g. a sync-plane merge that
    /// rewrites every believed load).
    fn rebuild_internal(&mut self) {
        for node in (1..self.cap).rev() {
            let (l, r) = (2 * node, 2 * node + 1);
            if self.key[l] <= self.key[r] {
                self.key[node] = self.key[l];
                self.win[node] = self.win[l];
            } else {
                self.key[node] = self.key[r];
                self.win[node] = self.win[r];
            }
        }
    }

    /// Bulk-reloads all keys from `keys` (must be `len` long) in one
    /// `O(N)` pass — cheaper than `len` single updates.
    pub fn reload(&mut self, keys: &[f64]) {
        assert_eq!(keys.len(), self.len, "reload length mismatch");
        self.key[self.cap..self.cap + self.len].copy_from_slice(keys);
        self.rebuild_internal();
    }
}

/// Cache-dense per-server hot state, maintained incrementally by the
/// simulation actor instead of being rebuilt from the `Server` structs
/// on every dispatch decision.
///
/// The dispatch inner loop used to walk `Vec<Server>` — a struct of
/// disciplines, integrals, and counters — once per decision just to
/// collect queue lengths. `FleetState` keeps those lengths in one
/// contiguous array updated only when a queue actually changes
/// (`O(touched)` instead of `O(N)` per decision), plus an optional
/// [`ArgminTree`] over the true speed-normalized loads for policies
/// that asked for it.
#[derive(Debug)]
pub struct FleetState {
    /// `qlens[i]` mirrors server `i`'s instantaneous run-queue length.
    pub qlens: Vec<usize>,
    /// Argmin index over `(qlens[i] + 1) / speed[i]`, built only when a
    /// policy wants it ([`crate::policy::Policy::wants_true_load_index`]).
    /// Keys ignore up/down state: a crashed server's queue drains to 0,
    /// and index consumers fall back to a scan while any server is
    /// believed down.
    pub index: Option<ArgminTree>,
}

impl FleetState {
    /// State for `n` servers with every queue empty.
    pub fn new(n: usize, with_index: bool) -> Self {
        FleetState {
            qlens: vec![0; n],
            index: with_index.then(|| ArgminTree::new(n)),
        }
    }

    /// Seeds the index keys from the speed vector (queues empty).
    pub fn seed_keys(&mut self, speeds: &[f64]) {
        if let Some(t) = &mut self.index {
            for (i, &s) in speeds.iter().enumerate() {
                t.update(i, 1.0 / s);
            }
        }
    }

    /// Refreshes server `i` after a queue mutation: `O(1)` without the
    /// index, `O(log N)` with it.
    #[inline]
    pub fn sync(&mut self, i: usize, qlen: usize, speed: f64) {
        self.qlens[i] = qlen;
        if let Some(t) = &mut self.index {
            t.update(i, (qlen as f64 + 1.0) / speed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The strict-< scan the tree must agree with.
    fn scan_argmin(keys: &[f64]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &k) in keys.iter().enumerate() {
            if k == f64::INFINITY {
                continue;
            }
            match best {
                Some((_, bk)) if bk <= k => {}
                _ => best = Some((i, k)),
            }
        }
        best.map(|(i, _)| i)
    }

    #[test]
    fn empty_and_all_infinite_report_none() {
        assert_eq!(ArgminTree::new(0).argmin(), None);
        let t = ArgminTree::new(7);
        assert_eq!(t.argmin(), None);
        assert_eq!(t.min_key(), f64::INFINITY);
    }

    #[test]
    fn single_update_finds_min() {
        let mut t = ArgminTree::new(5);
        t.update(3, 2.0);
        assert_eq!(t.argmin(), Some(3));
        t.update(1, 1.0);
        assert_eq!(t.argmin(), Some(1));
        t.update(1, 9.0);
        assert_eq!(t.argmin(), Some(3));
        assert_eq!(t.key(1), 9.0);
        assert_eq!(t.min_key(), 2.0);
    }

    #[test]
    fn ties_resolve_leftmost() {
        let t = ArgminTree::from_keys(&[5.0, 2.0, 2.0, 2.0]);
        assert_eq!(t.argmin(), Some(1));
        let t = ArgminTree::from_keys(&[3.0; 9]);
        assert_eq!(t.argmin(), Some(0));
    }

    #[test]
    fn non_power_of_two_sizes_are_padded_correctly() {
        for n in 1..=17 {
            let keys: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64).collect();
            let t = ArgminTree::from_keys(&keys);
            assert_eq!(t.argmin(), scan_argmin(&keys), "n = {n}");
        }
    }

    #[test]
    fn randomized_updates_match_scan_oracle() {
        let mut rng = hetsched_desim::Rng64::from_seed(0xA11CE);
        for &n in &[1usize, 2, 3, 8, 33, 100] {
            let mut keys = vec![f64::INFINITY; n];
            let mut t = ArgminTree::new(n);
            for step in 0..2_000 {
                let i = rng.below(n as u64) as usize;
                // Mix finite keys, exact ties, and infinity toggles
                // (membership changes).
                let k = match rng.below(4) {
                    0 => f64::INFINITY,
                    1 => 1.0,
                    _ => (rng.below(50) as f64 + 1.0) / 7.0,
                };
                keys[i] = k;
                t.update(i, k);
                assert_eq!(t.argmin(), scan_argmin(&keys), "n = {n}, step {step}");
                if let Some(m) = t.argmin() {
                    assert_eq!(t.min_key(), keys[m]);
                }
            }
        }
    }

    #[test]
    fn reload_matches_fresh_build() {
        let mut t = ArgminTree::from_keys(&[4.0, 1.0, 3.0]);
        t.reload(&[0.5, 2.0, 0.5]);
        assert_eq!(t.argmin(), Some(0));
        assert_eq!(t.min_key(), 0.5);
    }

    #[test]
    fn fleet_state_tracks_queue_mutations() {
        let speeds = [1.0, 2.0, 4.0];
        let mut fleet = FleetState::new(3, true);
        fleet.seed_keys(&speeds);
        // Empty queues: the fastest machine has the smallest (q+1)/s.
        assert_eq!(fleet.index.as_ref().unwrap().argmin(), Some(2));
        fleet.sync(2, 7, speeds[2]);
        assert_eq!(fleet.qlens, vec![0, 0, 7]);
        assert_eq!(fleet.index.as_ref().unwrap().argmin(), Some(1));
        // Without an index only the dense qlen mirror is maintained.
        let mut plain = FleetState::new(3, false);
        plain.sync(1, 4, speeds[1]);
        assert!(plain.index.is_none());
        assert_eq!(plain.qlens, vec![0, 4, 0]);
    }
}

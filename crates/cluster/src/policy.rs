//! The dispatch-policy interface.
//!
//! The central scheduler consults a [`Policy`] on every arrival. The trait
//! is deliberately minimal so that the paper's four static algorithms
//! (Table 2), the Dynamic Least-Load yardstick, and the extension
//! baselines (JSQ(d), SITA-E) all fit behind it:
//!
//! * static policies use nothing but their own state (and the RNG for
//!   random dispatching);
//! * Dynamic Least-Load maintains *believed* loads fed by the delayed
//!   update messages of [`crate::network`] (it must NOT read
//!   [`DispatchCtx::queue_lens`], which are the true instantaneous
//!   lengths);
//! * clairvoyant baselines may read the true lengths and the job size —
//!   they exist to bound what any dispatcher could achieve.
//!
//! `choose` both selects *and commits*: a policy updates its internal
//! bookkeeping (round-robin credits, believed loads) inside the call.

use hetsched_desim::Rng64;
use hetsched_dispatch::SyncState;

use crate::index::ArgminTree;

/// Information available to a policy at dispatch time.
#[derive(Debug)]
pub struct DispatchCtx<'a> {
    /// Current simulation time.
    pub now: f64,
    /// The arriving job's size (speed-1 seconds). Only clairvoyant
    /// policies (e.g. SITA-E) may use it; the paper's schemes do not need
    /// job sizes "a priori".
    pub job_size: f64,
    /// True instantaneous run-queue lengths. Only clairvoyant policies
    /// may use them.
    pub queue_lens: &'a [usize],
    /// Server speeds (static information every policy may use).
    pub speeds: &'a [f64],
    /// Incrementally maintained argmin index over the *true*
    /// speed-normalized loads `(queue_len + 1) / speed` — the indexed
    /// counterpart of [`DispatchCtx::queue_lens`], so the same
    /// clairvoyance rule applies. Present only when some policy in the
    /// tier asked for it via [`Policy::wants_true_load_index`]; its keys
    /// ignore up/down state (a crashed server drains to queue 0).
    pub true_load_index: Option<&'a ArgminTree>,
}

/// A job dispatching policy.
pub trait Policy: Send {
    /// Chooses the server for an arriving job and commits any internal
    /// bookkeeping for that decision.
    fn choose(&mut self, ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize;

    /// Receives a (delayed) load-update message: `queue_len` was server
    /// `server`'s run-queue length when the message was sent.
    fn on_load_update(&mut self, _server: usize, _queue_len: usize, _now: f64) {}

    /// Receives a membership update from the fault layer: `up[i]` is
    /// whether server `i` is believed up. Called once at delivery of each
    /// crash/repair notice (possibly delayed, see
    /// `FaultSpec::notice_delay_mean`). Policies that ignore it keep
    /// dispatching to down servers and those jobs are lost — that *is*
    /// the failure-unaware baseline.
    fn on_membership_change(&mut self, _up: &[bool], _now: f64) {}

    /// Whether the simulator should generate load-update messages
    /// (detection + network delay) for this policy.
    fn needs_load_updates(&self) -> bool {
        false
    }

    /// Whether the simulator should maintain the shared true-load
    /// argmin index ([`DispatchCtx::true_load_index`]) for this policy.
    /// Defaults to `false`: the index costs `O(log N)` per queue
    /// mutation, so it is only built when some policy reads it.
    fn wants_true_load_index(&self) -> bool {
        false
    }

    /// The long-run dispatch fractions the policy aims to realize, if it
    /// has any (static policies do; dynamic ones return `None`). Used to
    /// parameterize the Figure-2 workload-allocation-deviation tracker.
    fn expected_fractions(&self) -> Option<Vec<f64>> {
        None
    }

    /// Snapshot of this instance's mergeable state for the dispatch
    /// tier's periodic state-sync (Algorithm-2 credit/deficit counters,
    /// believed loads). `None` (the default) means the policy has
    /// nothing mergeable and sync rounds skip it.
    fn sync_state(&self) -> Option<SyncState> {
        None
    }

    /// Adopts the tier-wide consensus shipped back by a sync round.
    /// The default is a no-op; policies that publish state in
    /// [`Policy::sync_state`] override this to merge the consensus into
    /// their private counters.
    fn merge_sync(&mut self, _consensus: &SyncState, _now: f64) {}

    /// Advances the policy's rotation state by `steps` *virtual*
    /// arrivals — dispatch decisions made by peer shards in a
    /// coordinated tier. A coordinated shard calls this with the
    /// sequence-stamp gap before each real decision, so its private
    /// rotation machine lazily replays the global dispatch sequence.
    /// The default is a no-op: policies without rotation state (random,
    /// dynamic, JSQ) are insensitive to interleaving and need no
    /// coordination.
    fn advance_rotation(&mut self, _steps: u64) {}

    /// Number of dispatch decisions this instance made while the chosen
    /// server's load index was older than its confidence window (0 for
    /// every policy that does not track staleness — see
    /// `hetsched-policies`' staleness-aware Dynamic).
    fn stale_decisions(&self) -> u64 {
        0
    }

    /// If the policy is a malleable server allocator (heSRPT or the
    /// static per-class baseline), the allocation rule the simulator's
    /// tier should run. `None` (the default) means jobs are dispatched
    /// to single servers through [`Policy::choose`] as usual — even
    /// stamped malleable jobs, which then simply run rigidly.
    fn malleable_allocator(&self) -> Option<crate::malleable::AllocatorKind> {
        None
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> String;
}

impl<P: Policy + ?Sized> Policy for Box<P> {
    fn choose(&mut self, ctx: &DispatchCtx<'_>, rng: &mut Rng64) -> usize {
        (**self).choose(ctx, rng)
    }

    fn on_load_update(&mut self, server: usize, queue_len: usize, now: f64) {
        (**self).on_load_update(server, queue_len, now)
    }

    fn on_membership_change(&mut self, up: &[bool], now: f64) {
        (**self).on_membership_change(up, now)
    }

    fn needs_load_updates(&self) -> bool {
        (**self).needs_load_updates()
    }

    fn wants_true_load_index(&self) -> bool {
        (**self).wants_true_load_index()
    }

    fn expected_fractions(&self) -> Option<Vec<f64>> {
        (**self).expected_fractions()
    }

    fn sync_state(&self) -> Option<SyncState> {
        (**self).sync_state()
    }

    fn merge_sync(&mut self, consensus: &SyncState, now: f64) {
        (**self).merge_sync(consensus, now)
    }

    fn advance_rotation(&mut self, steps: u64) {
        (**self).advance_rotation(steps)
    }

    fn stale_decisions(&self) -> u64 {
        (**self).stale_decisions()
    }

    fn malleable_allocator(&self) -> Option<crate::malleable::AllocatorKind> {
        (**self).malleable_allocator()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial policy that always picks server 0, for trait plumbing
    /// tests.
    struct Always0;

    impl Policy for Always0 {
        fn choose(&mut self, _ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
            0
        }

        fn name(&self) -> String {
            "always0".into()
        }
    }

    #[test]
    fn boxed_policy_delegates() {
        let mut p: Box<dyn Policy> = Box::new(Always0);
        let ctx = DispatchCtx {
            now: 0.0,
            job_size: 1.0,
            queue_lens: &[0, 0],
            speeds: &[1.0, 1.0],
            true_load_index: None,
        };
        let mut rng = Rng64::from_seed(0);
        assert_eq!(p.choose(&ctx, &mut rng), 0);
        assert_eq!(p.name(), "always0");
        assert!(!p.needs_load_updates());
        assert!(!p.wants_true_load_index());
        p.on_load_update(0, 3, 1.0); // default no-op must not panic
        p.on_membership_change(&[true, false], 1.0); // likewise
        assert!(p.sync_state().is_none()); // nothing mergeable by default
        p.merge_sync(&SyncState::default(), 1.0); // default no-op
        p.advance_rotation(3); // default no-op: no rotation state
        assert_eq!(p.stale_decisions(), 0); // default: no staleness tracking
        assert!(p.malleable_allocator().is_none()); // default: rigid dispatch
    }
}

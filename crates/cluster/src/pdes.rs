//! Conservative parallel discrete-event engine across dispatch shards.
//!
//! The classic [`crate::Simulation`] runs one event kernel over the
//! whole cluster. This module runs one kernel instance **per dispatch
//! shard**: the servers are partitioned into `D` contiguous slices, the
//! arrival stream is pre-partitioned by the tier's [`Splitter`], and
//! each shard advances through its own future-event list. Shards only
//! interact through the periodic state-sync plane, whose one-way
//! latency gives the engine its *lookahead*: between two sync epochs no
//! shard can possibly affect another, so every shard may be advanced to
//! the next epoch boundary without violating causality (a conservative
//! synchronization scheme in the Chandy–Misra tradition, degenerated to
//! barrier steps because the inter-shard topology is all-to-all). With
//! sync disabled the lookahead is infinite and the shards are embarrassingly
//! parallel.
//!
//! ## Determinism
//!
//! The engine is *bit-identical across thread counts*: running `D`
//! shards on one thread or on `min(sim_threads, D)` threads produces
//! byte-for-byte the same [`RunStats`]. Three mechanisms make that
//! true:
//!
//! 1. **Pre-partitioned arrivals.** The arrival, size, and splitter
//!    streams are drawn once, up front, in the exact per-stream order
//!    the live single-kernel path draws them (each stream is an
//!    independent [`Rng64`], so per-stream order is all that matters).
//!    Every shard then replays its slice as a scripted feed.
//! 2. **Disjoint RNG streams.** Shard `s` draws dispatch and network
//!    values from streams `PDES_STREAM_BASE + 2s` and
//!    `PDES_STREAM_BASE + 2s + 1`; fault streams keep the classic
//!    `4 + global_server_index` layout. No stream is shared.
//! 3. **Shard-ordered reductions.** Sync consensus folds snapshots in
//!    shard-index order (see [`hetsched_dispatch::SyncExchange`]), and
//!    the final merge folds per-shard statistics in shard order, so no
//!    floating-point sum ever depends on thread scheduling.
//!
//! With one dispatcher the whole apparatus degenerates: the single
//! shard sees the full cluster, the classic stream layout, and the
//! original dispatch spec, so a `D = 1` parallel run is bit-identical
//! to [`crate::Simulation::run`] (for configurations without a sync
//! plane, the only ones where the classic path and the epoch-barrier
//! protocol are the same algorithm).
//!
//! ## Semantics for `D > 1`
//!
//! The partitioned engine is a *different model* from the classic
//! multi-dispatcher simulation, not a faster implementation of it: each
//! dispatcher owns only its server slice (the classic tier lets every
//! dispatcher dispatch to every server), resubmitted jobs stay on their
//! shard, and sync consensus is exchanged at epoch boundaries rather
//! than at exact publish instants. Aggregate statistics are merged
//! deterministically: Welford moments merge exactly (Chan et al.),
//! P² tail quantiles merge as jobs-weighted means of the per-shard
//! estimates, histograms merge bucketwise, and deviation curves merge
//! as elementwise means.

use std::ops::Range;
use std::time::Instant;

use hetsched_desim::{
    CalendarQueue, Engine, EventQueue, FelStats, FutureEventList, Rng64, SimTime,
};
use hetsched_dispatch::{
    consensus, consensus_coordinated, Coordination, DispatchSpec, Splitter, SyncExchange, SyncState,
};
use hetsched_dist::{ArrivalProcess, Sample};
use hetsched_error::HetschedError;
use hetsched_metrics::Welford;
use hetsched_obs::ObsReport;

use crate::config::{ClusterConfig, EventListBackend};
use crate::policy::Policy;
use crate::results::{RunStats, ServerStats, ShardStats};
use crate::simulation::{Ev, Model, ScriptedArrivals, StreamPlan};
use crate::trace::TraceCollector;

/// Base RNG stream index for per-shard dispatch/network streams.
///
/// Far above the classic layout (arrivals 0, sizes 1, dispatch 2,
/// network 3, faults `4 + i`) and the splitter's own stream
/// (`1 << 40`), so per-shard streams can never collide with any other
/// stream at any cluster size.
pub const PDES_STREAM_BASE: u64 = 1 << 41;

/// Splits `n` servers into `d` contiguous, balanced slices.
///
/// The first `n % d` shards get one extra server. Requires `1 ≤ d ≤ n`.
pub fn shard_ranges(n: usize, d: usize) -> Vec<Range<usize>> {
    assert!(
        d >= 1 && d <= n,
        "need 1 ≤ shards ≤ servers, got {d} shards for {n} servers"
    );
    let base = n / d;
    let extra = n % d;
    let mut ranges = Vec::with_capacity(d);
    let mut start = 0;
    for s in 0..d {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Derives the cluster configuration a single shard simulates: the
/// shard's server slice with a trivial (single-dispatcher, sync-free)
/// dispatch section — the parallel driver itself owns splitting and
/// sync.
///
/// Everything else (arrival spec, job sizes, discipline, horizon,
/// warmup, faults, channels, observability, tracing, the malleable
/// section) is inherited unchanged, except that a targeted fault's
/// server list is remapped
/// from global to shard-local indices (targets outside the slice are
/// dropped; a shard with no targets keeps an empty list and crashes
/// nothing).
pub fn shard_config(cfg: &ClusterConfig, range: &Range<usize>) -> ClusterConfig {
    let mut sub = cfg.clone();
    sub.speeds = cfg.speeds[range.clone()].to_vec();
    sub.dispatch = DispatchSpec::default();
    if let Some(faults) = &mut sub.faults {
        if let Some(servers) = &mut faults.servers {
            *servers = servers
                .iter()
                .filter(|&&g| range.contains(&g))
                .map(|&g| g - range.start)
                .collect();
        }
    }
    sub
}

/// Pre-generates the partitioned arrival feeds: one `(time, size,
/// class)` script per shard, plus a trailing past-horizon sentinel on
/// every feed so each shard model always has a pending next arrival
/// (the same invariant the live path maintains).
///
/// Draw order per stream is exactly the live path's: the gap stream
/// advances once per arrival (including the final past-horizon gap),
/// the size stream once per in-horizon arrival, the class stamper's
/// stream (only constructed for an active malleable section) once per
/// in-horizon arrival, and the splitter's stream once per in-horizon
/// arrival. Arrival times accumulate through [`SimTime::after`],
/// reproducing the live clock arithmetic bit for bit.
pub(crate) fn pregen_feeds(cfg: &ClusterConfig, seed: u64) -> Vec<Vec<(f64, f64, u16)>> {
    let d = cfg.dispatch.dispatchers.max(1);
    let mut arrivals = cfg.arrivals.build(cfg.lambda());
    let sizes = cfg.job_sizes.build();
    let mut splitter = Splitter::new(&cfg.dispatch, seed);
    let mut rng_arrival = Rng64::stream(seed, 0);
    let mut rng_size = Rng64::stream(seed, 1);
    // Classes are stamped in global arrival order here, so shard feeds
    // see exactly the stamps the classic single-kernel path draws.
    let stamping = cfg.malleable.as_ref().filter(|m| m.active());
    let mut rng_class = stamping.map(|_| Rng64::stream(seed, crate::simulation::MALLEABLE_STREAM));
    let mut feeds: Vec<Vec<(f64, f64, u16)>> = vec![Vec::new(); d];
    let mut t = SimTime::ZERO;
    loop {
        let gap = arrivals.next_interarrival(&mut rng_arrival);
        t = t.after(gap);
        if t.as_secs() > cfg.horizon {
            // The sentinel: strictly past the horizon, so it is
            // scheduled but never delivered — exactly like the live
            // path's always-pending next arrival.
            for feed in &mut feeds {
                feed.push((t.as_secs(), 0.0, 0));
            }
            return feeds;
        }
        let size = sizes.sample(&mut rng_size);
        let class = match (stamping, &mut rng_class) {
            (Some(spec), Some(rng)) => spec.stamp(rng.next_f64()),
            _ => 0,
        };
        feeds[splitter.route()].push((t.as_secs(), size, class));
    }
}

/// Wall-clock breakdown of a [`ParallelSimulation::run_timed`] run.
///
/// Timing is measured on the sequential driver, where each shard's
/// events are processed in isolation; `pregen_s + max(shard_s) +
/// merge_s` is therefore the critical path of the same run on
/// sufficiently many cores, which is what the kernel benchmark reports
/// as projected parallel throughput.
#[derive(Debug, Clone)]
pub struct PdesTiming {
    /// Seconds spent pre-partitioning the arrival stream.
    pub pregen_s: f64,
    /// Seconds of event processing per shard.
    pub shard_s: Vec<f64>,
    /// Seconds spent merging per-shard statistics.
    pub merge_s: f64,
    /// Total events processed across all shards.
    pub events: u64,
}

impl PdesTiming {
    /// The parallel critical path `pregen + max(shard) + merge`.
    pub fn critical_path_s(&self) -> f64 {
        self.pregen_s + self.shard_s.iter().cloned().fold(0.0, f64::max) + self.merge_s
    }
}

/// One shard's runtime: its model and its private event kernel.
struct ShardRt<P: Policy, Q: FutureEventList<Ev>> {
    model: Model<P>,
    engine: Engine<Ev, Q>,
}

/// The conservative-parallel simulation driver.
///
/// Construct with one policy per dispatch shard (for `D > 1` each
/// policy must be built over the matching [`shard_config`], since it
/// only ever sees its slice of the cluster), then [`run`](Self::run).
/// See the [module docs](self) for semantics and the determinism
/// argument.
pub struct ParallelSimulation<P: Policy> {
    cfg: ClusterConfig,
    policies: Vec<P>,
    seed: u64,
    sim_threads: usize,
}

impl<P: Policy> ParallelSimulation<P> {
    /// Creates a parallel simulation.
    ///
    /// `sim_threads` is the number of worker threads to spread shards
    /// over; it is capped at the shard count. `1` runs the identical
    /// algorithm single-threaded (useful for the bit-identity tests).
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] when the configuration is
    /// invalid, when the policy count does not match the dispatcher
    /// count, when there are fewer servers than shards, or when
    /// `sim_threads` is zero.
    pub fn new(
        mut cfg: ClusterConfig,
        policies: Vec<P>,
        seed: u64,
        sim_threads: usize,
    ) -> Result<Self, HetschedError> {
        cfg.normalize_fleet();
        cfg.validate()?;
        let d = cfg.dispatch.dispatchers.max(1);
        if policies.len() != d {
            return Err(HetschedError::InvalidConfig(format!(
                "parallel engine needs one policy per shard: got {} policies for {} shards",
                policies.len(),
                d
            )));
        }
        if cfg.speeds.len() < d {
            return Err(HetschedError::InvalidConfig(format!(
                "parallel engine needs at least one server per shard: {} servers, {} shards",
                cfg.speeds.len(),
                d
            )));
        }
        if sim_threads == 0 {
            return Err(HetschedError::InvalidConfig(
                "sim_threads must be ≥ 1".into(),
            ));
        }
        // Mirror of the classic constructor's rule: tier-held jobs never
        // cross the dispatch plane, so an unreliable channel layer
        // cannot apply to them.
        if cfg.malleable.as_ref().is_some_and(|m| m.active())
            && policies.iter().any(|p| p.malleable_allocator().is_some())
            && matches!(&cfg.channels, Some(c) if !c.is_reliable())
        {
            return Err(HetschedError::InvalidConfig(
                "the malleable allocation tier requires reliable channels: \
                 tier-held jobs bypass the dispatch plane, so an unreliable \
                 channel spec would not apply to them"
                    .into(),
            ));
        }
        Ok(ParallelSimulation {
            cfg,
            policies,
            seed,
            sim_threads,
        })
    }

    /// Runs the simulation on the configured event-list backend.
    pub fn run(self) -> RunStats {
        match self.cfg.event_list {
            EventListBackend::Heap => self.run_on(|| EventQueue::with_capacity(1024)).0,
            EventListBackend::Calendar => self.run_on(|| CalendarQueue::with_capacity(1024)).0,
        }
    }

    /// Runs single-threaded and reports the wall-clock breakdown the
    /// kernel benchmark uses to project parallel throughput.
    pub fn run_timed(mut self) -> (RunStats, PdesTiming) {
        self.sim_threads = 1;
        match self.cfg.event_list {
            EventListBackend::Heap => self.run_on(|| EventQueue::with_capacity(1024)),
            EventListBackend::Calendar => self.run_on(|| CalendarQueue::with_capacity(1024)),
        }
    }

    fn run_on<Q, F>(self, make_queue: F) -> (RunStats, PdesTiming)
    where
        Q: FutureEventList<Ev> + Send,
        F: Fn() -> Q,
    {
        let ParallelSimulation {
            cfg,
            policies,
            seed,
            sim_threads,
        } = self;
        let d = cfg.dispatch.dispatchers.max(1);
        let ranges = shard_ranges(cfg.speeds.len(), d);
        let horizon = SimTime::new(cfg.horizon);

        let t0 = Instant::now();
        let feeds = pregen_feeds(&cfg, seed);
        let pregen_s = t0.elapsed().as_secs_f64();

        let mut shards: Vec<ShardRt<P, Q>> = Vec::with_capacity(d);
        for (s, (policy, feed)) in policies.into_iter().zip(feeds).enumerate() {
            // A single shard sees the whole cluster through the original
            // config — including the classic stream layout — which is
            // what makes D = 1 bit-identical to the classic path.
            let sub = if d == 1 {
                cfg.clone()
            } else {
                shard_config(&cfg, &ranges[s])
            };
            let streams = if d == 1 {
                StreamPlan::classic()
            } else {
                StreamPlan {
                    dispatch: PDES_STREAM_BASE + 2 * s as u64,
                    net: PDES_STREAM_BASE + 2 * s as u64 + 1,
                    fault_base: 4 + ranges[s].start as u64,
                    // Four stream slots per shard (dispatch/load/sync
                    // planes + one spare), offset past the classic
                    // channel block so no stream ever collides.
                    chan_base: crate::channel::CHANNEL_STREAM_BASE + 16 + 4 * s as u64,
                }
            };
            let trace = cfg
                .trace
                .map(|spec| TraceCollector::new(spec).expect("trace spec validated"));
            let script = ScriptedArrivals {
                jobs: feed,
                cursor: 0,
            };
            let mut model = Model::build(&sub, vec![policy], seed, trace, Some(script), streams);
            let mut engine = Engine::with_queue(make_queue());
            model.seed_initial_events(&mut engine, &sub);
            shards.push(ShardRt { model, engine });
        }

        // Epoch boundaries exist only when D > 1 shards share a sync
        // plane; the boundary spacing (the sync interval) plus the
        // apply latency is the engine's lookahead. A single shard keeps
        // its original config and handles sync internally, classic-style.
        let sync = if d > 1 { cfg.dispatch.sync } else { None };
        // The coordinated fold only changes how the epoch barrier merges
        // the shard snapshots; inside a PDES shard the fleet (and the
        // policy) is partitioned, so there is no rotation interleaving to
        // preserve and no rate payload is attached (a partitioned-fleet
        // shard's policy already sees only its own substream).
        let coordinated = cfg.dispatch.coordination == Coordination::PhasePreserving;
        let mut epochs: Vec<SimTime> = Vec::new();
        if let Some(plane) = sync {
            let mut tk = SimTime::ZERO;
            loop {
                tk = tk.after(plane.interval);
                if tk.as_secs() > cfg.horizon {
                    break;
                }
                epochs.push(tk);
            }
        }
        let latency = sync.map(|plane| plane.latency).unwrap_or(0.0);

        let threads = sim_threads.min(d).max(1);
        let mut shard_s = vec![0.0f64; d];
        if threads == 1 {
            for tk in &epochs {
                let mut states: Vec<SyncState> = Vec::new();
                for (s, rt) in shards.iter_mut().enumerate() {
                    let t = Instant::now();
                    rt.engine.run_until(&mut rt.model, *tk);
                    shard_s[s] += t.elapsed().as_secs_f64();
                    if let Some(state) = rt.model.policies[0].sync_state() {
                        states.push(state);
                    }
                }
                let merged = if coordinated {
                    consensus_coordinated(&states)
                } else {
                    consensus(&states)
                };
                if let Some(merged) = merged {
                    for rt in shards.iter_mut() {
                        rt.model.pending_sync.push_back(merged.clone());
                        rt.engine.schedule_at(tk.after(latency), Ev::SyncApply);
                    }
                }
            }
            for (s, rt) in shards.iter_mut().enumerate() {
                let t = Instant::now();
                rt.engine.run_until(&mut rt.model, horizon);
                shard_s[s] += t.elapsed().as_secs_f64();
            }
        } else {
            let exchange = if coordinated {
                SyncExchange::new(d, threads).coordinated()
            } else {
                SyncExchange::new(d, threads)
            };
            let epochs_ref = &epochs;
            let mut slots: Vec<Option<ShardRt<P, Q>>> = shards.into_iter().map(Some).collect();
            let collected: Vec<(usize, ShardRt<P, Q>)> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let mine: Vec<(usize, ShardRt<P, Q>)> = slots
                        .iter_mut()
                        .enumerate()
                        .filter(|(i, _)| i % threads == t)
                        .map(|(i, slot)| (i, slot.take().expect("shard assigned once")))
                        .collect();
                    let exchange = &exchange;
                    handles.push(scope.spawn(move || {
                        let mut mine = mine;
                        for tk in epochs_ref {
                            for (i, rt) in mine.iter_mut() {
                                rt.engine.run_until(&mut rt.model, *tk);
                                exchange.publish(*i, rt.model.policies[0].sync_state());
                            }
                            // Every thread must reach the exchange even
                            // when no shard published: it is the epoch
                            // barrier.
                            if let Some(merged) = exchange.exchange() {
                                for (_, rt) in mine.iter_mut() {
                                    rt.model.pending_sync.push_back(merged.clone());
                                    rt.engine.schedule_at(tk.after(latency), Ev::SyncApply);
                                }
                            }
                        }
                        for (_, rt) in mine.iter_mut() {
                            rt.engine.run_until(&mut rt.model, horizon);
                        }
                        mine
                    }));
                }
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("shard thread panicked"))
                    .collect()
            });
            let mut by_index: Vec<Option<ShardRt<P, Q>>> = (0..d).map(|_| None).collect();
            for (i, rt) in collected {
                by_index[i] = Some(rt);
            }
            shards = by_index
                .into_iter()
                .map(|slot| slot.expect("every shard returned"))
                .collect();
        }

        let t_merge = Instant::now();
        let mut parts: Vec<(Model<P>, u64, FelStats)> = shards
            .into_iter()
            .map(|rt| {
                let events = rt.engine.processed_total();
                let kernel = rt.engine.fel_stats();
                (rt.model, events, kernel)
            })
            .collect();
        let mut stats = if d == 1 {
            let (model, events, kernel) = parts.pop().expect("one shard");
            model.finalize(cfg.horizon, events, kernel)
        } else {
            finalize_sharded(&cfg, parts, &ranges)
        };
        if cfg.per_server == crate::config::PerServerMode::Summary {
            stats.collapse_per_server();
        }
        let merge_s = t_merge.elapsed().as_secs_f64();
        let timing = PdesTiming {
            pregen_s,
            shard_s,
            merge_s,
            events: stats.events_processed,
        };
        (stats, timing)
    }
}

/// Deterministically merges per-shard run state into one [`RunStats`],
/// folding in shard-index order throughout so the result is identical
/// at every thread count.
fn finalize_sharded<P: Policy>(
    cfg: &ClusterConfig,
    parts: Vec<(Model<P>, u64, FelStats)>,
    ranges: &[Range<usize>],
) -> RunStats {
    let horizon = cfg.horizon;
    // Per-shard close-out first, mirroring the sequential finalize
    // order: observability windows read state as of each boundary, then
    // server integrals flush at the horizon, then the deviation tail.
    let mut obs_reports: Vec<ObsReport> = Vec::new();
    let mut models: Vec<Model<P>> = Vec::with_capacity(parts.len());
    let mut events_total = 0u64;
    let mut kernel_total = FelStats::default();
    for (mut model, events, kernel) in parts {
        if let Some(report) = model.obs.take().map(|mut o| {
            o.flush_to(horizon, &model.servers, model.slab.len());
            o.into_report(kernel)
        }) {
            obs_reports.push(report);
        }
        for s in &mut model.servers {
            s.finalize(horizon);
        }
        if let Some(dev) = &mut model.deviation {
            dev.advance_to(horizon);
        }
        events_total += events;
        kernel_total.scheduled += kernel.scheduled;
        kernel_total.popped += kernel.popped;
        kernel_total.cancelled += kernel.cancelled;
        // Shards run concurrently, so the natural aggregate pressure
        // gauge is the sum of per-shard high-water marks (an upper
        // bound on simultaneous live events).
        kernel_total.high_water += kernel.high_water;
        kernel_total.resizes += kernel.resizes;
        models.push(model);
    }

    // Welford moments merge exactly (Chan et al.).
    let mut resp_time = Welford::new();
    let mut resp_ratio = Welford::new();
    let mut degraded_time = Welford::new();
    let mut degraded_ratio = Welford::new();
    let mut slowdown = Welford::new();
    for m in &models {
        resp_time.merge(&m.resp_time);
        resp_ratio.merge(&m.resp_ratio);
        degraded_time.merge(&m.degraded_time);
        degraded_ratio.merge(&m.degraded_ratio);
        slowdown.merge(&m.slowdown);
    }

    // P² markers cannot be merged exactly; the jobs-weighted mean of
    // the per-shard estimates is the documented approximation — for the
    // slowdown tails exactly as for the response-ratio tails.
    let mut p95_num = 0.0;
    let mut p99_num = 0.0;
    let mut q_den = 0.0;
    let mut slow_p95_num = 0.0;
    let mut slow_p99_num = 0.0;
    for m in &models {
        let w = m.ratio_p95.count() as f64;
        if w > 0.0 {
            p95_num += w * m.ratio_p95.estimate().unwrap_or(0.0);
            p99_num += w * m.ratio_p99.estimate().unwrap_or(0.0);
            slow_p95_num += w * m.slow_p95.estimate().unwrap_or(0.0);
            slow_p99_num += w * m.slow_p99.estimate().unwrap_or(0.0);
            q_den += w;
        }
    }
    let (p95, p99, slow_p95, slow_p99) = if q_den > 0.0 {
        (
            p95_num / q_den,
            p99_num / q_den,
            slow_p95_num / q_den,
            slow_p99_num / q_den,
        )
    } else {
        (0.0, 0.0, 0.0, 0.0)
    };

    // Per-class tables share one layout across shards (every shard sees
    // the same malleable spec), so the fold is an elementwise Welford
    // merge; tier counters sum in shard order.
    let classes: Vec<crate::malleable::ClassStats> = match models[0].class_stats.as_ref() {
        Some(first) => (0..first.len())
            .map(|c| {
                let mut resp = Welford::new();
                let mut slow = Welford::new();
                for m in &models {
                    if let Some(stats) = &m.class_stats {
                        resp.merge(&stats[c].0);
                        slow.merge(&stats[c].1);
                    }
                }
                crate::malleable::ClassStats {
                    class: c as u16,
                    count: resp.count(),
                    mean_slowdown: slow.mean(),
                    mean_response: resp.mean(),
                }
            })
            .collect(),
        None => Vec::new(),
    };
    let malleable = if models.iter().any(|m| m.tier.is_some()) {
        let runtimes = || {
            models
                .iter()
                .filter_map(|m| m.tier.as_ref())
                .flat_map(|t| t.runtimes.iter())
        };
        Some(crate::malleable::MalleableStats {
            malleable_jobs: models.iter().map(|m| m.malleable_jobs).sum(),
            reallocations: runtimes().map(|r| r.reallocations).sum(),
            max_cores_in_use: runtimes().map(|r| r.max_cores_in_use).sum(),
            fleet_cores: cfg.speeds.len() as f64,
        })
    } else {
        None
    };

    // Identical layouts (all shards build the same histogram shape), so
    // the bucketwise merge is exact.
    let ratio_histogram = models[0].ratio_histogram.clone().map(|mut h| {
        for m in &models[1..] {
            if let Some(other) = &m.ratio_histogram {
                h.merge(other);
            }
        }
        h
    });

    // Deviation curves share interval and origin, so windows align;
    // the merged curve is the elementwise mean over shards.
    let dev_curves: Vec<&[f64]> = models
        .iter()
        .filter_map(|m| m.deviation.as_ref().map(|d| d.deviations()))
        .collect();
    let deviations: Vec<f64> = if dev_curves.is_empty() {
        Vec::new()
    } else {
        let len = dev_curves.iter().map(|c| c.len()).min().unwrap_or(0);
        (0..len)
            .map(|i| dev_curves.iter().map(|c| c[i]).sum::<f64>() / dev_curves.len() as f64)
            .collect()
    };

    // Shard ranges are contiguous and ascending, so shard-major
    // concatenation is global server order; dispatch fractions are
    // recomputed against the global total.
    let total_dispatched: u64 = models
        .iter()
        .flat_map(|m| m.servers.iter())
        .map(|s| s.dispatched())
        .sum();
    let servers: Vec<ServerStats> = models
        .iter()
        .flat_map(|m| {
            m.servers.iter().enumerate().map(move |(i, s)| ServerStats {
                speed: s.speed(),
                dispatched: s.dispatched(),
                completed: s.completed(),
                utilization: s.utilization(),
                mean_queue_len: s.mean_queue_len(),
                dispatch_fraction: if total_dispatched == 0 {
                    0.0
                } else {
                    s.dispatched() as f64 / total_dispatched as f64
                },
                availability: s.availability(),
                downtime: s.downtime(),
                crashes: s.crashes(),
                msgs_lost: m
                    .channels
                    .as_ref()
                    .map(|c| c.server_msgs_lost[i])
                    .unwrap_or(0),
            })
        })
        .collect();
    let total_speed: f64 = cfg.speeds.iter().sum();
    let realized_utilization = models
        .iter()
        .flat_map(|m| m.servers.iter())
        .map(|s| s.utilization() * s.speed())
        .sum::<f64>()
        / total_speed;
    let availability = models
        .iter()
        .flat_map(|m| m.servers.iter())
        .map(|s| s.availability() * s.speed())
        .sum::<f64>()
        / total_speed;
    let crashes: u64 = models
        .iter()
        .flat_map(|m| m.servers.iter())
        .map(|s| s.crashes())
        .sum();

    let mut trace: Option<TraceCollector> = None;
    for m in &mut models {
        if let Some(t) = m.trace.take() {
            match &mut trace {
                None => trace = Some(t),
                Some(acc) => acc.absorb(t),
            }
        }
    }

    // One ShardStats entry per PDES shard (each shard model is a
    // single-dispatcher model, so its own routed vector has length 1).
    let routed: Vec<u64> = models
        .iter()
        .map(|m| m.shard_routed.iter().sum::<u64>())
        .collect();
    let total_routed: u64 = routed.iter().sum();
    let shards: Vec<ShardStats> = routed
        .iter()
        .map(|&jobs| ShardStats {
            jobs,
            share: if total_routed == 0 {
                0.0
            } else {
                jobs as f64 / total_routed as f64
            },
        })
        .collect();

    let obs = if obs_reports.len() == models.len() && !obs_reports.is_empty() {
        Some(merge_obs_reports(obs_reports, ranges, kernel_total))
    } else {
        None
    };

    let degraded_jobs = degraded_ratio.count();
    RunStats {
        policy: models[0].policies[0].name(),
        jobs_counted: models.iter().map(|m| m.jobs_counted).sum(),
        jobs_finished: resp_ratio.count(),
        mean_response_time: resp_time.mean(),
        mean_response_ratio: resp_ratio.mean(),
        fairness: resp_ratio.std_dev(),
        p95_response_ratio: p95,
        p99_response_ratio: p99,
        servers,
        deviations,
        ratio_histogram,
        trace,
        events_processed: events_total,
        realized_utilization,
        jobs_lost: models.iter().map(|m| m.jobs_lost).sum(),
        jobs_resubmitted: models.iter().map(|m| m.jobs_resubmitted).sum(),
        jobs_restarted: models.iter().map(|m| m.jobs_restarted).sum(),
        crashes,
        availability,
        degraded_jobs,
        mean_degraded_response_time: if degraded_jobs == 0 {
            0.0
        } else {
            degraded_time.mean()
        },
        mean_degraded_response_ratio: if degraded_jobs == 0 {
            0.0
        } else {
            degraded_ratio.mean()
        },
        obs,
        shards,
        // Every shard applies the same consensus sequence; shard 0
        // speaks for the tier (mirrors the classic single-counter).
        syncs_applied: models[0].syncs_applied,
        // Channel counters fold in shard order like everything else.
        msgs_lost: chan_sum(&models, |c| c.msgs_lost),
        retries: chan_sum(&models, |c| c.retries),
        timeouts: chan_sum(&models, |c| c.timeouts),
        hedges_won: chan_sum(&models, |c| c.hedges_won),
        hedges_lost: chan_sum(&models, |c| c.hedges_lost),
        stale_decisions: models
            .iter()
            .map(|m| {
                m.policies
                    .iter()
                    .map(|p| p.stale_decisions())
                    .sum::<u64>()
                    .saturating_sub(m.stale_baseline)
            })
            .sum(),
        jobs_in_flight: models
            .iter()
            .map(|m| m.slab.iter().filter(|r| r.counted).count() as u64)
            .sum(),
        // Collapse (if configured) happens in run()/run_timed() after
        // the merge, so the fold always works on full vectors.
        server_summary: None,
        mean_slowdown: slowdown.mean(),
        p95_slowdown: slow_p95,
        p99_slowdown: slow_p99,
        classes,
        malleable,
    }
}

/// Sums a channel counter over shard models (0 for channel-free runs).
fn chan_sum<P: Policy>(
    models: &[Model<P>],
    f: impl Fn(&crate::simulation::ChannelRuntime) -> u64,
) -> u64 {
    models
        .iter()
        .map(|m| m.channels.as_ref().map(&f).unwrap_or(0))
        .sum()
}

/// Number of tier-scalar columns in a single-dispatcher observability
/// report (after the per-server column trios).
const OBS_SCALARS: usize = 8;

/// Merges per-shard observability reports into one global report.
///
/// Per-server columns are reindexed from shard-local to global server
/// indices (shard-major concatenation = global order); `in_flight` and
/// the rate columns sum across shards, the response/deviation level
/// columns average, and the `shard_share[s]` / `shard_dev[s]` tails are
/// derived from each shard's own arrival-rate and deviation columns.
fn merge_obs_reports(
    reports: Vec<ObsReport>,
    ranges: &[Range<usize>],
    kernel: FelStats,
) -> ObsReport {
    let d = reports.len();
    let nrows = reports.iter().map(|r| r.rows.len()).min().unwrap_or(0);
    let mut columns: Vec<String> = Vec::new();
    for range in ranges {
        for g in range.clone() {
            columns.push(format!("qlen[{g}]"));
            columns.push(format!("util[{g}]"));
            columns.push(format!("up[{g}]"));
        }
    }
    for name in [
        "in_flight",
        "arrival_rate",
        "completion_rate",
        "resp_mean",
        "resp_p50",
        "resp_p95",
        "resp_p99",
        "deviation",
    ] {
        columns.push(name.to_string());
    }
    for s in 0..d {
        columns.push(format!("shard_share[{s}]"));
        columns.push(format!("shard_dev[{s}]"));
    }
    // Channel-probe columns ride at the very tail of each shard report
    // (registered after everything else); carry them through as
    // cluster-wide sums when the run had an unreliable channel spec.
    let has_channels = reports[0].columns.iter().any(|c| c == "msg_loss_rate");
    if has_channels {
        columns.push("msg_loss_rate".to_string());
        columns.push("retry_rate".to_string());
    }
    // The slowdown probe registers after the channel block, so it rides
    // at the very end of each shard report; the merged level is the
    // jobs-agnostic mean across shards (an intensive quantity).
    let has_slowdown = reports[0].columns.iter().any(|c| c == "slowdown_mean");
    if has_slowdown {
        columns.push("slowdown_mean".to_string());
    }

    // A shard report's layout: 3 columns per local server, then the 8
    // tier scalars (single-dispatcher shards carry no shard_* tail),
    // then the optional channel columns.
    let scalar_base = |s: usize| 3 * ranges[s].len();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(nrows);
    for r in 0..nrows {
        let mut row: Vec<f64> = Vec::with_capacity(columns.len());
        for (s, rep) in reports.iter().enumerate() {
            row.extend_from_slice(&rep.rows[r][..scalar_base(s)]);
        }
        for k in 0..OBS_SCALARS {
            let vals = reports
                .iter()
                .enumerate()
                .map(|(s, rep)| rep.rows[r][scalar_base(s) + k]);
            row.push(match k {
                // in_flight, arrival_rate, completion_rate: extensive.
                0..=2 => vals.sum::<f64>(),
                // Response levels and deviation: intensive (mean).
                _ => vals.sum::<f64>() / d as f64,
            });
        }
        let shard_arrivals: Vec<f64> = reports
            .iter()
            .enumerate()
            .map(|(s, rep)| rep.rows[r][scalar_base(s) + 1])
            .collect();
        let arrivals_total: f64 = shard_arrivals.iter().sum();
        for (s, rep) in reports.iter().enumerate() {
            row.push(if arrivals_total > 0.0 {
                shard_arrivals[s] / arrivals_total
            } else {
                0.0
            });
            row.push(rep.rows[r][scalar_base(s) + OBS_SCALARS - 1]);
        }
        if has_channels {
            // Per-window message rates are extensive across shards.
            for k in 0..2 {
                row.push(
                    reports
                        .iter()
                        .enumerate()
                        .map(|(s, rep)| rep.rows[r][scalar_base(s) + OBS_SCALARS + k])
                        .sum::<f64>(),
                );
            }
        }
        if has_slowdown {
            let off = OBS_SCALARS + if has_channels { 2 } else { 0 };
            row.push(
                reports
                    .iter()
                    .enumerate()
                    .map(|(s, rep)| rep.rows[r][scalar_base(s) + off])
                    .sum::<f64>()
                    / d as f64,
            );
        }
        rows.push(row);
    }
    ObsReport {
        sample_interval: reports[0].sample_interval,
        columns,
        times: reports[0].times[..nrows].to_vec(),
        rows,
        kernel: kernel.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::policy::DispatchCtx;
    use crate::Simulation;
    use hetsched_dispatch::{SplitterSpec, SyncSpec};

    /// A deterministic policy with mergeable state, so the sync plane
    /// has something to exchange.
    struct Cyclic {
        next: usize,
        n: usize,
        credit: f64,
    }

    impl Cyclic {
        fn new(n: usize) -> Self {
            Cyclic {
                next: 0,
                n,
                credit: 0.0,
            }
        }
    }

    impl Policy for Cyclic {
        fn choose(&mut self, _ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
            let pick = self.next;
            self.next = (self.next + 1) % self.n;
            self.credit += 1.0;
            pick
        }

        fn sync_state(&self) -> Option<SyncState> {
            Some(SyncState::with_credits(vec![self.credit]))
        }

        fn merge_sync(&mut self, merged: &SyncState, _now: f64) {
            if let Some(&c) = merged.credits.first() {
                self.credit = c;
            }
        }

        fn name(&self) -> String {
            "cyclic".into()
        }
    }

    fn base_cfg(n: usize) -> ClusterConfig {
        let speeds: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let mut cfg = ClusterConfig::paper_default(&speeds);
        cfg.horizon = 5_000.0;
        cfg.warmup = 500.0;
        cfg
    }

    fn sharded_cfg(n: usize, d: usize, sync: Option<SyncSpec>) -> ClusterConfig {
        let mut cfg = base_cfg(n);
        cfg.dispatch = DispatchSpec {
            dispatchers: d,
            splitter: SplitterSpec::IidRandom,
            sync,
            ..DispatchSpec::default()
        };
        cfg
    }

    fn policies_for(cfg: &ClusterConfig) -> Vec<Cyclic> {
        let d = cfg.dispatch.dispatchers.max(1);
        shard_ranges(cfg.speeds.len(), d)
            .iter()
            .map(|r| Cyclic::new(r.len()))
            .collect()
    }

    #[test]
    fn ranges_are_balanced_and_contiguous() {
        assert_eq!(shard_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
        assert_eq!(
            shard_ranges(8, 8),
            (0..8).map(|i| i..i + 1).collect::<Vec<_>>()
        );
        assert_eq!(shard_ranges(5, 1), vec![0..5]);
    }

    #[test]
    fn shard_config_slices_speeds_and_strips_dispatch() {
        let cfg = sharded_cfg(6, 2, Some(SyncSpec::every(100.0)));
        let sub = shard_config(&cfg, &(3..6));
        assert_eq!(sub.speeds, cfg.speeds[3..6].to_vec());
        assert_eq!(sub.dispatch, DispatchSpec::default());
        assert_eq!(sub.horizon, cfg.horizon);
    }

    #[test]
    fn pregen_covers_horizon_and_ends_with_sentinel() {
        let cfg = sharded_cfg(4, 2, None);
        let feeds = pregen_feeds(&cfg, 7);
        assert_eq!(feeds.len(), 2);
        for feed in &feeds {
            let (last_t, last_size, last_class) = *feed.last().unwrap();
            assert!(last_t > cfg.horizon, "sentinel must lie past the horizon");
            assert_eq!(last_size, 0.0);
            assert_eq!(last_class, 0);
            for w in feed.windows(2) {
                assert!(w[0].0 <= w[1].0, "feed must be time-ordered");
            }
            for &(t, size, class) in &feed[..feed.len() - 1] {
                assert!(t <= cfg.horizon);
                assert!(size > 0.0);
                assert_eq!(class, 0, "no malleable section, no stamping");
            }
        }
    }

    #[test]
    fn single_shard_matches_classic_simulation() {
        let cfg = base_cfg(5);
        let classic = Simulation::new(cfg.clone(), Cyclic::new(5), 42)
            .unwrap()
            .run();
        let pdes = ParallelSimulation::new(cfg, vec![Cyclic::new(5)], 42, 1)
            .unwrap()
            .run();
        assert_eq!(classic, pdes);
    }

    #[test]
    fn thread_count_never_changes_results() {
        for sync in [None, Some(SyncSpec::every(250.0).with_latency(5.0))] {
            let cfg = sharded_cfg(7, 3, sync);
            let seq = ParallelSimulation::new(cfg.clone(), policies_for(&cfg), 11, 1)
                .unwrap()
                .run();
            let par = ParallelSimulation::new(cfg.clone(), policies_for(&cfg), 11, 3)
                .unwrap()
                .run();
            assert_eq!(seq, par, "sync={sync:?}");
            assert_eq!(seq.shards.len(), 3);
            let routed: u64 = seq.shards.iter().map(|s| s.jobs).sum();
            assert_eq!(routed, seq.jobs_counted);
        }
    }

    #[test]
    fn sync_plane_reaches_every_shard() {
        let cfg = sharded_cfg(6, 2, Some(SyncSpec::every(200.0)));
        let stats = ParallelSimulation::new(cfg.clone(), policies_for(&cfg), 3, 2)
            .unwrap()
            .run();
        // horizon 5000 / interval 200 → boundaries 200..=5000, minus the
        // final one whose apply lands past the horizon.
        assert!(stats.syncs_applied >= 23, "got {}", stats.syncs_applied);
    }

    #[test]
    fn constructor_validates_shape() {
        let cfg = sharded_cfg(4, 2, None);
        assert!(ParallelSimulation::new(cfg.clone(), vec![Cyclic::new(2)], 1, 1).is_err());
        assert!(
            ParallelSimulation::new(cfg.clone(), vec![Cyclic::new(2), Cyclic::new(2)], 1, 0)
                .is_err()
        );
        let mut narrow = sharded_cfg(4, 2, None);
        narrow.speeds = vec![1.0];
        narrow.dispatch.dispatchers = 2;
        assert!(
            ParallelSimulation::new(narrow, vec![Cyclic::new(1), Cyclic::new(1)], 1, 1).is_err()
        );
    }

    #[test]
    fn timed_run_reports_per_shard_breakdown() {
        let cfg = sharded_cfg(4, 2, None);
        let (stats, timing) = ParallelSimulation::new(cfg.clone(), policies_for(&cfg), 5, 1)
            .unwrap()
            .run_timed();
        assert_eq!(timing.shard_s.len(), 2);
        assert_eq!(timing.events, stats.events_processed);
        assert!(timing.critical_path_s() > 0.0);
        assert!(
            timing.critical_path_s()
                <= timing.pregen_s + timing.shard_s.iter().sum::<f64>() + timing.merge_s + 1e-12
        );
    }
}

//! Run output statistics.
//!
//! [`RunStats`] carries the paper's three headline metrics — mean response
//! time, mean response ratio, fairness (the standard deviation of the
//! response ratio) — plus per-server detail (Table 1's dispatch
//! percentages, utilizations) and the optional Figure-2 deviation series.
//! Everything is serde-serializable so the bench harness can archive raw
//! results as JSON.

use serde::{Deserialize, Serialize};

fn one() -> f64 {
    1.0
}

/// Fleet size above which `per_server: summary` collapses the
/// per-server vectors. Below it the full vectors are cheap and the
/// historical shape is kept even in summary mode.
pub const PER_SERVER_SUMMARY_THRESHOLD: usize = 64;

/// `{min, mean, max, p99}` of one per-server metric across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Smallest per-server value.
    pub min: f64,
    /// Arithmetic mean across servers.
    pub mean: f64,
    /// Largest per-server value.
    pub max: f64,
    /// 99th percentile (nearest-rank over the sorted per-server values).
    pub p99: f64,
}

impl MetricSummary {
    /// Summarizes `values` (empty input yields all-zero).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return MetricSummary {
                min: 0.0,
                mean: 0.0,
                max: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        // Nearest-rank p99: the smallest value with at least 99% of the
        // fleet at or below it.
        let rank = ((0.99 * n as f64).ceil() as usize).clamp(1, n);
        MetricSummary {
            min: sorted[0],
            mean: sorted.iter().sum::<f64>() / n as f64,
            max: sorted[n - 1],
            p99: sorted[rank - 1],
        }
    }
}

/// Collapsed replacement for the per-server vector in large-fleet runs
/// (`per_server: summary`): one [`MetricSummary`] per hot metric plus
/// the fleet-wide totals that would otherwise be lost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSummarySet {
    /// Number of servers the summaries cover.
    pub count: usize,
    /// Summary of per-server utilizations.
    pub utilization: MetricSummary,
    /// Summary of per-server time-average queue lengths.
    pub mean_queue_len: MetricSummary,
    /// Summary of per-server dispatched-job counts.
    pub dispatched: MetricSummary,
    /// Summary of per-server dispatch fractions.
    pub dispatch_fraction: MetricSummary,
    /// Summary of per-server availabilities.
    pub availability: MetricSummary,
}

impl ServerSummarySet {
    /// Summarizes a per-server stats vector.
    pub fn of(servers: &[ServerStats]) -> Self {
        let col = |f: fn(&ServerStats) -> f64| -> MetricSummary {
            let values: Vec<f64> = servers.iter().map(f).collect();
            MetricSummary::of(&values)
        };
        ServerSummarySet {
            count: servers.len(),
            utilization: col(|s| s.utilization),
            mean_queue_len: col(|s| s.mean_queue_len),
            dispatched: col(|s| s.dispatched as f64),
            dispatch_fraction: col(|s| s.dispatch_fraction),
            availability: col(|s| s.availability),
        }
    }
}

/// Per-computer statistics over the measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Relative speed.
    pub speed: f64,
    /// Jobs dispatched here after warmup.
    pub dispatched: u64,
    /// Jobs completed here after warmup (regardless of arrival epoch).
    pub completed: u64,
    /// Fraction of the window the server was busy.
    pub utilization: f64,
    /// Time-average run-queue length.
    pub mean_queue_len: f64,
    /// `dispatched / Σ dispatched` — the realized allocation fraction
    /// (Table 1's "percentage").
    pub dispatch_fraction: f64,
    /// Fraction of the window the server was up (1.0 without faults).
    #[serde(default = "one")]
    pub availability: f64,
    /// Seconds spent down in the measurement window.
    #[serde(default)]
    pub downtime: f64,
    /// Crashes in the measurement window.
    #[serde(default)]
    pub crashes: u64,
    /// Messages to/from this server dropped by the unreliable channel
    /// model (dispatch attempts and load updates). Zero with reliable
    /// channels.
    #[serde(default)]
    pub msgs_lost: u64,
}

/// Per-dispatcher-shard statistics over the measurement window (only
/// populated when the run used more than one dispatcher).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Counted jobs this dispatcher routed (including jobs later lost to
    /// crashes; resubmissions route again and count again).
    pub jobs: u64,
    /// `jobs / Σ jobs` — the realized arrival share of this shard.
    pub share: f64,
}

/// Statistics of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Policy name the run used.
    pub policy: String,
    /// Jobs that arrived during the measurement window.
    pub jobs_counted: u64,
    /// Counted jobs that also completed before the horizon (the basis of
    /// the response statistics; stragglers still in service at the
    /// horizon are excluded, as is standard).
    pub jobs_finished: u64,
    /// Mean response time (seconds) over finished counted jobs.
    pub mean_response_time: f64,
    /// Mean response ratio (response time / job size).
    pub mean_response_ratio: f64,
    /// Fairness: standard deviation of the response ratio (§4.1 —
    /// smaller is better).
    pub fairness: f64,
    /// 95th percentile of the response ratio (P² estimate; extension
    /// metric).
    pub p95_response_ratio: f64,
    /// 99th percentile of the response ratio (P² estimate; extension
    /// metric).
    pub p99_response_ratio: f64,
    /// Per-computer detail.
    pub servers: Vec<ServerStats>,
    /// Figure-2 deviation series (empty unless
    /// `ClusterConfig::deviation_interval` was set).
    pub deviations: Vec<f64>,
    /// Log-spaced histogram of response ratios (present only when
    /// `ClusterConfig::track_ratio_histogram` was set).
    pub ratio_histogram: Option<hetsched_metrics::Histogram>,
    /// Sampled per-job traces (present only when `ClusterConfig::trace`
    /// was set).
    pub trace: Option<crate::trace::TraceCollector>,
    /// Total engine events processed (throughput diagnostics).
    pub events_processed: u64,
    /// The realized overall utilization (capacity-weighted mean of the
    /// per-server utilizations) — a sanity check against the configured
    /// `ρ`.
    pub realized_utilization: f64,
    /// Counted jobs lost to crashes (dropped in flight, or arrived /
    /// resubmitted while no live server could take them). Zero without
    /// faults.
    #[serde(default)]
    pub jobs_lost: u64,
    /// Counted jobs pushed back through the dispatcher by a crash
    /// (`JobFaultSemantics::Resubmit`).
    #[serde(default)]
    pub jobs_resubmitted: u64,
    /// Counted jobs restarted from scratch on repair
    /// (`JobFaultSemantics::Restart`).
    #[serde(default)]
    pub jobs_restarted: u64,
    /// Total server crashes in the measurement window.
    #[serde(default)]
    pub crashes: u64,
    /// Capacity-weighted mean availability across servers (1.0 without
    /// faults).
    #[serde(default = "one")]
    pub availability: f64,
    /// Finished counted jobs that experienced churn (arrived during an
    /// outage, or were resubmitted/restarted).
    #[serde(default)]
    pub degraded_jobs: u64,
    /// Mean response time over the degraded subset (0 when empty) —
    /// the churn-conditioned response time.
    #[serde(default)]
    pub mean_degraded_response_time: f64,
    /// Mean response ratio over the degraded subset (0 when empty).
    #[serde(default)]
    pub mean_degraded_response_ratio: f64,
    /// Observability time series (present only when `ClusterConfig::obs`
    /// was set). Excluded from results archived before the observability
    /// layer existed, which deserialize to `None`.
    ///
    /// Note: `obs.kernel.resizes` depends on the event-list backend
    /// (only the calendar queue resizes), so comparisons that assert
    /// backend bit-identity must strip this field first.
    #[serde(default)]
    pub obs: Option<hetsched_obs::ObsReport>,
    /// Per-dispatcher-shard detail. Empty for single-dispatcher runs —
    /// including every run archived before the dispatch tier existed,
    /// which deserialize to the empty default.
    #[serde(default)]
    pub shards: Vec<ShardStats>,
    /// State-sync rounds applied during the measurement window (0 when
    /// sync is disabled).
    #[serde(default)]
    pub syncs_applied: u64,
    /// Messages dropped by the unreliable channel model across all three
    /// planes in the measurement window. Zero with reliable channels.
    #[serde(default)]
    pub msgs_lost: u64,
    /// Dispatch retransmissions sent by the ack/timeout machinery.
    #[serde(default)]
    pub retries: u64,
    /// Retry timers that fired (every firing is a timeout; not all lead
    /// to a retransmission — the last one declares the job lost).
    #[serde(default)]
    pub timeouts: u64,
    /// Hedged dispatches whose second attempt won the race.
    #[serde(default)]
    pub hedges_won: u64,
    /// Hedged dispatches whose second attempt lost (or was cancelled).
    #[serde(default)]
    pub hedges_lost: u64,
    /// Dispatch decisions a staleness-aware policy made while its best
    /// candidate's load index was older than the confidence window.
    #[serde(default)]
    pub stale_decisions: u64,
    /// Counted jobs still in flight (dispatched, neither finished nor
    /// lost) when the horizon closed — the third term of the
    /// conservation law `jobs_counted = jobs_finished + jobs_lost +
    /// jobs_in_flight`.
    #[serde(default)]
    pub jobs_in_flight: u64,
    /// Collapsed per-server summaries (present only when the run was
    /// configured with `per_server: summary` and the fleet exceeded
    /// [`PER_SERVER_SUMMARY_THRESHOLD`]; [`RunStats::servers`] is then
    /// empty). Serde-defaulted so archived results load unchanged.
    #[serde(default)]
    pub server_summary: Option<ServerSummarySet>,
    /// Mean slowdown (`response time / inherent size`) over finished
    /// counted jobs. Under rigid service every job's inherent size *is*
    /// its service demand, so this coincides with
    /// [`RunStats::mean_response_ratio`]; the separate accumulator
    /// exists so malleable runs report the objective under its own name
    /// with per-class breakdowns and quantiles.
    #[serde(default)]
    pub mean_slowdown: f64,
    /// 95th percentile of the slowdown (P² estimate).
    #[serde(default)]
    pub p95_slowdown: f64,
    /// 99th percentile of the slowdown (P² estimate).
    #[serde(default)]
    pub p99_slowdown: f64,
    /// Per-class completion statistics (empty unless the run had an
    /// active malleable section; class 0 is the rigid background).
    #[serde(default)]
    pub classes: Vec<crate::malleable::ClassStats>,
    /// Allocation-tier counters (present only when the run's policy
    /// actually ran the malleable server-allocation tier).
    #[serde(default)]
    pub malleable: Option<crate::malleable::MalleableStats>,
}

impl RunStats {
    /// The realized allocation fractions per server, in order.
    pub fn dispatch_fractions(&self) -> Vec<f64> {
        self.servers.iter().map(|s| s.dispatch_fraction).collect()
    }

    /// Applies the `per_server: summary` switch: above the threshold the
    /// per-server vector is summarized into
    /// [`RunStats::server_summary`] and cleared, and any per-server
    /// observability columns are collapsed the same way. A no-op below
    /// the threshold, so small-fleet artifacts keep the full shape.
    pub fn collapse_per_server(&mut self) {
        if self.servers.len() <= PER_SERVER_SUMMARY_THRESHOLD {
            return;
        }
        self.server_summary = Some(ServerSummarySet::of(&self.servers));
        self.servers = Vec::new();
        if let Some(obs) = &mut self.obs {
            obs.collapse_indexed_columns(&["qlen", "util", "up"]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunStats {
        RunStats {
            policy: "test".into(),
            jobs_counted: 100,
            jobs_finished: 99,
            mean_response_time: 10.0,
            mean_response_ratio: 2.0,
            fairness: 1.0,
            p95_response_ratio: 5.0,
            p99_response_ratio: 9.0,
            servers: vec![
                ServerStats {
                    speed: 1.0,
                    dispatched: 25,
                    completed: 25,
                    utilization: 0.5,
                    mean_queue_len: 1.0,
                    dispatch_fraction: 0.25,
                    availability: 1.0,
                    downtime: 0.0,
                    crashes: 0,
                    msgs_lost: 0,
                },
                ServerStats {
                    speed: 3.0,
                    dispatched: 75,
                    completed: 74,
                    utilization: 0.6,
                    mean_queue_len: 2.0,
                    dispatch_fraction: 0.75,
                    availability: 0.9,
                    downtime: 100.0,
                    crashes: 2,
                    msgs_lost: 4,
                },
            ],
            deviations: vec![0.01, 0.02],
            ratio_histogram: None,
            trace: None,
            events_processed: 1234,
            realized_utilization: 0.57,
            jobs_lost: 3,
            jobs_resubmitted: 0,
            jobs_restarted: 0,
            crashes: 2,
            availability: 0.925,
            degraded_jobs: 5,
            mean_degraded_response_time: 20.0,
            mean_degraded_response_ratio: 4.0,
            obs: None,
            shards: vec![
                ShardStats {
                    jobs: 60,
                    share: 0.6,
                },
                ShardStats {
                    jobs: 40,
                    share: 0.4,
                },
            ],
            syncs_applied: 7,
            msgs_lost: 6,
            retries: 4,
            timeouts: 5,
            hedges_won: 1,
            hedges_lost: 2,
            stale_decisions: 3,
            jobs_in_flight: 1,
            server_summary: None,
            mean_slowdown: 2.0,
            p95_slowdown: 5.0,
            p99_slowdown: 9.0,
            classes: vec![crate::malleable::ClassStats {
                class: 0,
                count: 99,
                mean_slowdown: 2.0,
                mean_response: 10.0,
            }],
            malleable: Some(crate::malleable::MalleableStats {
                malleable_jobs: 40,
                reallocations: 200,
                max_cores_in_use: 2.0,
                fleet_cores: 2.0,
            }),
        }
    }

    #[test]
    fn dispatch_fractions_extracts() {
        assert_eq!(dummy().dispatch_fractions(), vec![0.25, 0.75]);
    }

    #[test]
    fn serde_round_trip() {
        let s = dummy();
        let json = serde_json::to_string(&s).unwrap();
        let back: RunStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn pre_fault_json_deserializes_with_defaults() {
        // Archived results from before the fault layer lack the fault
        // fields; they must load with "no faults happened" defaults.
        let s = dummy();
        let mut json = serde_json::to_value(&s).unwrap();
        let obj = json.as_object_mut().unwrap();
        for k in [
            "jobs_lost",
            "jobs_resubmitted",
            "jobs_restarted",
            "crashes",
            "availability",
            "degraded_jobs",
            "mean_degraded_response_time",
            "mean_degraded_response_ratio",
        ] {
            obj.remove(k);
        }
        for server in obj["servers"].as_array_mut().unwrap() {
            let s = server.as_object_mut().unwrap();
            s.remove("availability");
            s.remove("downtime");
            s.remove("crashes");
        }
        let back: RunStats = serde_json::from_value(json).unwrap();
        assert_eq!(back.jobs_lost, 0);
        assert_eq!(back.availability, 1.0);
        assert_eq!(back.servers[1].availability, 1.0);
        assert_eq!(back.servers[1].crashes, 0);
    }

    #[test]
    fn pre_obs_json_deserializes_to_none() {
        // Archived results from before the observability layer lack the
        // obs field; they must load with sampling absent.
        let s = dummy();
        let mut json = serde_json::to_value(&s).unwrap();
        json.as_object_mut().unwrap().remove("obs");
        let back: RunStats = serde_json::from_value(json).unwrap();
        assert_eq!(back, s);
        assert!(back.obs.is_none());
    }

    #[test]
    fn pre_channel_json_deserializes_with_defaults() {
        // Archived results from before the unreliable-messaging layer
        // lack the channel counters; they must load with "nothing was
        // lost" defaults.
        let s = dummy();
        let mut json = serde_json::to_value(&s).unwrap();
        let obj = json.as_object_mut().unwrap();
        for k in [
            "msgs_lost",
            "retries",
            "timeouts",
            "hedges_won",
            "hedges_lost",
            "stale_decisions",
            "jobs_in_flight",
        ] {
            obj.remove(k);
        }
        for server in obj["servers"].as_array_mut().unwrap() {
            server.as_object_mut().unwrap().remove("msgs_lost");
        }
        let back: RunStats = serde_json::from_value(json).unwrap();
        assert_eq!(back.msgs_lost, 0);
        assert_eq!(back.retries, 0);
        assert_eq!(back.timeouts, 0);
        assert_eq!(back.hedges_won, 0);
        assert_eq!(back.hedges_lost, 0);
        assert_eq!(back.stale_decisions, 0);
        assert_eq!(back.jobs_in_flight, 0);
        assert_eq!(back.servers[1].msgs_lost, 0);
    }

    #[test]
    fn pre_scale_json_deserializes_without_summary() {
        // Archived results from before the scale axis lack the
        // server_summary field; they must load with it absent.
        let s = dummy();
        let mut json = serde_json::to_value(&s).unwrap();
        json.as_object_mut().unwrap().remove("server_summary");
        let back: RunStats = serde_json::from_value(json).unwrap();
        assert_eq!(back, s);
        assert!(back.server_summary.is_none());
    }

    #[test]
    fn collapse_is_a_noop_below_threshold() {
        let mut s = dummy();
        let before = s.clone();
        s.collapse_per_server();
        assert_eq!(s, before);
    }

    #[test]
    fn collapse_summarizes_large_fleets() {
        let mut s = dummy();
        let proto = s.servers[0];
        s.servers = (0..PER_SERVER_SUMMARY_THRESHOLD + 36)
            .map(|i| ServerStats {
                utilization: 0.01 * i as f64,
                ..proto
            })
            .collect();
        let n = s.servers.len();
        s.collapse_per_server();
        assert!(s.servers.is_empty());
        let sum = s.server_summary.expect("summary present");
        assert_eq!(sum.count, n);
        assert_eq!(sum.utilization.min, 0.0);
        assert_eq!(sum.utilization.max, 0.01 * (n - 1) as f64);
        assert!(sum.utilization.p99 <= sum.utilization.max);
        assert!(sum.utilization.p99 >= sum.utilization.mean);
    }

    #[test]
    fn metric_summary_percentile_is_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let m = MetricSummary::of(&values);
        assert_eq!(m.min, 1.0);
        assert_eq!(m.max, 100.0);
        assert_eq!(m.p99, 99.0);
        assert_eq!(m.mean, 50.5);
        let empty = MetricSummary::of(&[]);
        assert_eq!(empty.max, 0.0);
    }

    #[test]
    fn pre_malleable_json_deserializes_with_defaults() {
        // Archived results from before the malleable subsystem lack the
        // slowdown/class fields; they must load with empty breakdowns.
        let s = dummy();
        let mut json = serde_json::to_value(&s).unwrap();
        let obj = json.as_object_mut().unwrap();
        for k in [
            "mean_slowdown",
            "p95_slowdown",
            "p99_slowdown",
            "classes",
            "malleable",
        ] {
            obj.remove(k);
        }
        let back: RunStats = serde_json::from_value(json).unwrap();
        assert_eq!(back.mean_slowdown, 0.0);
        assert_eq!(back.p95_slowdown, 0.0);
        assert_eq!(back.p99_slowdown, 0.0);
        assert!(back.classes.is_empty());
        assert!(back.malleable.is_none());
    }

    #[test]
    fn pre_dispatch_json_deserializes_with_defaults() {
        // Archived results from before the dispatch tier lack the shard
        // fields; they must load as single-dispatcher runs.
        let s = dummy();
        let mut json = serde_json::to_value(&s).unwrap();
        let obj = json.as_object_mut().unwrap();
        obj.remove("shards");
        obj.remove("syncs_applied");
        let back: RunStats = serde_json::from_value(json).unwrap();
        assert!(back.shards.is_empty());
        assert_eq!(back.syncs_applied, 0);
    }
}

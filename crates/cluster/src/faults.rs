//! Server crash/repair fault injection.
//!
//! Real networks of heterogeneous computers lose machines: the paper's
//! static allocation assumes every computer stays up for the whole run,
//! and a dead server would silently absorb its α-share of the workload.
//! [`FaultSpec`] describes a per-server *renewal process* of alternating
//! up and down periods, drawn from any [`DistSpec`] (exponential MTBF /
//! MTTR is the classic choice; Weibull models wear-out).
//!
//! ## Determinism contract
//!
//! Each server `i` draws its up/down times from its **own** RNG stream
//! (`Rng64::stream(seed, 4 + i)`), disjoint from the arrival, size,
//! dispatch, and network streams. Two consequences:
//!
//! * a faulted run is a pure function of `(config, seed)` — bit-identical
//!   at any thread count, because each replication is single-threaded
//!   and the sweep pool merges results in replication order;
//! * with `faults: None` the fault streams are never created, so the
//!   simulation is byte-for-byte identical to a build without this
//!   module.
//!
//! ## In-flight job semantics
//!
//! What happens to jobs resident on a crashing server is configurable
//! via [`JobFaultSemantics`]: they can be **lost** (counted, dropped),
//! **resubmitted** through the dispatcher to a surviving server (keeping
//! their original arrival time, so the detour shows up as response
//! time), or **restarted** in place from scratch when the server is
//! repaired.

use hetsched_dist::DistSpec;
use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

/// What happens to the jobs resident on a server when it crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum JobFaultSemantics {
    /// In-flight jobs are dropped and counted as lost.
    #[default]
    Lost,
    /// In-flight jobs go back through the dispatcher immediately,
    /// keeping their original arrival time. If the dispatcher picks a
    /// down server (or every server is down), the job is lost.
    Resubmit,
    /// In-flight jobs stay bound to the server and restart *from
    /// scratch* (full service demand) when it is repaired.
    Restart,
}

/// Per-server crash/repair renewal process configuration.
///
/// Attached to a cluster via `ClusterConfig::faults`; `None` (the serde
/// default) disables fault injection entirely and reproduces the
/// fault-free simulation byte-for-byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Distribution of up (working) periods — the MTBF shape.
    pub up_time: DistSpec,
    /// Distribution of down (repair) periods — the MTTR shape.
    pub down_time: DistSpec,
    /// In-flight job handling on a crash.
    #[serde(default)]
    pub on_crash: JobFaultSemantics,
    /// Mean of the exponential delay before the dispatcher learns of a
    /// membership change (0 = instantaneous notification).
    #[serde(default)]
    pub notice_delay_mean: f64,
    /// If set, only these computer indices run the crash/repair renewal
    /// process (targeted scenarios — e.g. "kill the fastest machine").
    /// `None` (the serde default) faults every computer, reproducing
    /// pre-existing configurations byte-for-byte.
    #[serde(default)]
    pub servers: Option<Vec<usize>>,
}

impl FaultSpec {
    /// The classic Markovian failure model: exponential up times with
    /// mean `mtbf` and exponential repair times with mean `mttr`, lost
    /// in-flight jobs, instantaneous membership notification.
    pub fn exponential(mtbf: f64, mttr: f64) -> Self {
        FaultSpec {
            up_time: DistSpec::Exponential { mean: mtbf },
            down_time: DistSpec::Exponential { mean: mttr },
            on_crash: JobFaultSemantics::default(),
            notice_delay_mean: 0.0,
            servers: None,
        }
    }

    /// Sets the in-flight job semantics.
    #[must_use]
    pub fn with_semantics(mut self, on_crash: JobFaultSemantics) -> Self {
        self.on_crash = on_crash;
        self
    }

    /// Sets the mean membership-notice delay.
    #[must_use]
    pub fn with_notice_delay(mut self, mean: f64) -> Self {
        self.notice_delay_mean = mean;
        self
    }

    /// Restricts the fault process to the given computer indices.
    #[must_use]
    pub fn with_servers(mut self, servers: &[usize]) -> Self {
        self.servers = Some(servers.to_vec());
        self
    }

    /// Whether computer `i` runs the crash/repair renewal process.
    pub fn applies_to(&self, i: usize) -> bool {
        match &self.servers {
            None => true,
            Some(s) => s.contains(&i),
        }
    }

    /// Validates the fault model without building any sampler (so an
    /// invalid spec surfaces as an error instead of a panic deep inside
    /// `DistSpec::build`).
    ///
    /// # Errors
    /// Returns [`HetschedError::InvalidConfig`] naming the offending
    /// knob.
    pub fn validate(&self) -> Result<(), HetschedError> {
        check_dist("fault up_time", &self.up_time)?;
        check_dist("fault down_time", &self.down_time)?;
        if !(self.notice_delay_mean >= 0.0 && self.notice_delay_mean.is_finite()) {
            return Err(HetschedError::InvalidConfig(format!(
                "fault notice_delay_mean must be non-negative and finite, got {}",
                self.notice_delay_mean
            )));
        }
        Ok(())
    }
}

/// Checks the parameters a [`DistSpec::build`] would assert on, but as a
/// `Result` so configuration errors stay panic-free.
fn check_dist(label: &str, d: &DistSpec) -> Result<(), HetschedError> {
    let ok = match *d {
        DistSpec::Exponential { mean } => mean.is_finite() && mean > 0.0,
        DistSpec::Hyperexp2 { mean, cv } => {
            mean.is_finite() && mean > 0.0 && cv.is_finite() && cv >= 1.0
        }
        DistSpec::BoundedPareto { k, p, alpha } => {
            k.is_finite() && k > 0.0 && p.is_finite() && p > k && alpha.is_finite() && alpha > 0.0
        }
        DistSpec::Uniform { lo, hi } => lo.is_finite() && lo >= 0.0 && hi.is_finite() && hi > lo,
        DistSpec::Deterministic { value } => value.is_finite() && value > 0.0,
        DistSpec::Weibull { mean, shape } => {
            mean.is_finite() && mean > 0.0 && shape.is_finite() && shape > 0.0
        }
        DistSpec::LogNormal { mean, cv } => {
            mean.is_finite() && mean > 0.0 && cv.is_finite() && cv > 0.0
        }
    };
    if ok {
        Ok(())
    } else {
        Err(HetschedError::InvalidConfig(format!(
            "{label} has invalid parameters: {d:?}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_constructor_defaults() {
        let f = FaultSpec::exponential(1000.0, 50.0);
        assert_eq!(f.up_time, DistSpec::Exponential { mean: 1000.0 });
        assert_eq!(f.down_time, DistSpec::Exponential { mean: 50.0 });
        assert_eq!(f.on_crash, JobFaultSemantics::Lost);
        assert_eq!(f.notice_delay_mean, 0.0);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn builders_chain() {
        let f = FaultSpec::exponential(1000.0, 50.0)
            .with_semantics(JobFaultSemantics::Restart)
            .with_notice_delay(2.0);
        assert_eq!(f.on_crash, JobFaultSemantics::Restart);
        assert_eq!(f.notice_delay_mean, 2.0);
        assert!(f.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_knobs() {
        assert!(FaultSpec::exponential(0.0, 50.0).validate().is_err());
        assert!(FaultSpec::exponential(1000.0, -1.0).validate().is_err());
        assert!(FaultSpec::exponential(1000.0, 50.0)
            .with_notice_delay(f64::NAN)
            .validate()
            .is_err());
        let weird = FaultSpec {
            up_time: DistSpec::Uniform { lo: 5.0, hi: 2.0 },
            ..FaultSpec::exponential(1.0, 1.0)
        };
        assert!(weird.validate().is_err());
    }

    #[test]
    fn weibull_up_times_are_valid() {
        let f = FaultSpec {
            up_time: DistSpec::Weibull {
                mean: 1000.0,
                shape: 0.7,
            },
            ..FaultSpec::exponential(1.0, 20.0)
        };
        assert!(f.validate().is_ok());
    }

    #[test]
    fn serde_defaults_and_round_trip() {
        // Semantics and notice delay are optional in JSON.
        let f: FaultSpec = serde_json::from_str(
            r#"{"up_time":{"kind":"exponential","mean":500.0},
                "down_time":{"kind":"exponential","mean":25.0}}"#,
        )
        .unwrap();
        assert_eq!(f.on_crash, JobFaultSemantics::Lost);
        assert_eq!(f.notice_delay_mean, 0.0);

        let full = FaultSpec::exponential(500.0, 25.0).with_semantics(JobFaultSemantics::Resubmit);
        let json = serde_json::to_string(&full).unwrap();
        assert!(json.contains("\"resubmit\""), "{json}");
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(full, back);
    }

    #[test]
    fn server_subset_is_optional_and_targets() {
        // Pre-PR-7 JSON (no `servers` key) faults every computer.
        let f: FaultSpec = serde_json::from_str(
            r#"{"up_time":{"kind":"exponential","mean":500.0},
                "down_time":{"kind":"exponential","mean":25.0}}"#,
        )
        .unwrap();
        assert!(f.servers.is_none());
        assert!(f.applies_to(0) && f.applies_to(7));

        let targeted = FaultSpec::exponential(500.0, 25.0).with_servers(&[0, 2]);
        assert!(targeted.applies_to(0));
        assert!(!targeted.applies_to(1));
        assert!(targeted.applies_to(2));
        let json = serde_json::to_string(&targeted).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(targeted, back);
    }
}

//! Load-update feedback path for dynamic policies.
//!
//! §4.2 of the paper: the scheduler's load index of a computer is updated
//! (a) immediately when it dispatches a job there, and (b) by update
//! messages after departures. "Each computer checks its load index every
//! second. Therefore, after a job is completed on a computer, it takes the
//! computer U(0,1) second to detect the load change. Then the computer
//! sends a load update message to the scheduler. The message transfer
//! delay is set to be exponentially distributed with some mean value
//! (currently set at 0.05 second)."
//!
//! [`LoadUpdateModel`] encapsulates the two delays so ablations can vary
//! them (e.g. slower networks widen the gap between Dynamic Least-Load
//! and ORR).

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

/// Delay model of the departure → scheduler feedback path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadUpdateModel {
    /// Maximum of the uniform detection delay (the paper's polling period:
    /// detection takes `U(0, detect_max)`).
    pub detect_max: f64,
    /// Mean of the exponential message transfer delay.
    pub message_delay_mean: f64,
}

impl Default for LoadUpdateModel {
    /// The paper's parameters: `U(0,1)` detection and `Exp(0.05 s)`
    /// transfer delay.
    fn default() -> Self {
        LoadUpdateModel {
            detect_max: 1.0,
            message_delay_mean: 0.05,
        }
    }
}

impl LoadUpdateModel {
    /// Creates a custom delay model.
    ///
    /// # Panics
    /// Panics unless both parameters are positive and finite.
    pub fn new(detect_max: f64, message_delay_mean: f64) -> Self {
        assert!(
            detect_max.is_finite() && detect_max > 0.0,
            "detect_max must be positive and finite, got {detect_max}"
        );
        assert!(
            message_delay_mean.is_finite() && message_delay_mean > 0.0,
            "message_delay_mean must be positive and finite, got {message_delay_mean}"
        );
        LoadUpdateModel {
            detect_max,
            message_delay_mean,
        }
    }

    /// Samples the delay until the computer notices a departure.
    #[inline]
    pub fn detection_delay(&self, rng: &mut Rng64) -> f64 {
        rng.uniform(0.0, self.detect_max)
    }

    /// Samples the network delay of the update message.
    #[inline]
    pub fn message_delay(&self, rng: &mut Rng64) -> f64 {
        rng.exponential(1.0 / self.message_delay_mean)
    }

    /// Mean end-to-end staleness of a departure update.
    pub fn mean_total_delay(&self) -> f64 {
        self.detect_max / 2.0 + self.message_delay_mean
    }
}

/// Samples the delay before the scheduler learns of a crash or repair.
///
/// `mean = 0` models instantaneous detection (e.g. the scheduler's
/// dispatch attempt fails fast); a positive mean draws an exponential
/// delay on the given RNG, modelling heartbeat-style detection. The
/// fault layer calls this with the crashing/repairing server's own
/// fault stream so the draw never perturbs the workload streams.
#[inline]
pub fn membership_notice_delay(mean: f64, rng: &mut Rng64) -> f64 {
    if mean <= 0.0 {
        0.0
    } else {
        rng.exponential(1.0 / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let m = LoadUpdateModel::default();
        assert_eq!(m.detect_max, 1.0);
        assert_eq!(m.message_delay_mean, 0.05);
        assert!((m.mean_total_delay() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn detection_delay_in_range() {
        let m = LoadUpdateModel::default();
        let mut rng = Rng64::from_seed(1);
        for _ in 0..10_000 {
            let d = m.detection_delay(&mut rng);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn message_delay_has_target_mean() {
        let m = LoadUpdateModel::default();
        let mut rng = Rng64::from_seed(2);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| m.message_delay(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.05).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn custom_model() {
        let m = LoadUpdateModel::new(2.0, 0.5);
        assert!((m.mean_total_delay() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "detect_max must be positive")]
    fn rejects_zero_detection() {
        LoadUpdateModel::new(0.0, 0.05);
    }

    #[test]
    fn zero_notice_delay_is_instant_and_draws_nothing() {
        let mut rng = Rng64::from_seed(3);
        let before = rng.next_u64();
        let mut rng = Rng64::from_seed(3);
        assert_eq!(membership_notice_delay(0.0, &mut rng), 0.0);
        assert_eq!(rng.next_u64(), before, "zero mean must not consume RNG");
    }

    #[test]
    fn positive_notice_delay_has_target_mean() {
        let mut rng = Rng64::from_seed(4);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| membership_notice_delay(2.0, &mut rng)).sum();
        assert!((sum / n as f64 - 2.0).abs() < 0.05);
    }
}

//! The simulation-side observability driver.
//!
//! [`ObsDriver`] owns a `hetsched_obs::ProbeRegistry` and the per-window
//! counters the probes read. The simulation actor calls
//! [`ObsDriver::flush_to`] at the top of every event delivery, *before*
//! the event mutates the model: every window whose boundary has passed
//! is closed with an immutable [`ObsView`] snapshot. Because all prior
//! events carried timestamps strictly below the boundary, reading
//! [`Server::busy_integral_at`] at the boundary never runs time
//! backwards, and because the driver only ever reads model state (it
//! never schedules events or touches the RNG streams), a run with
//! observability enabled is bit-identical to one without — the
//! non-perturbation invariant `tests/obs_determinism.rs` enforces.
//!
//! The window arithmetic deliberately mirrors
//! `hetsched_metrics::DeviationTracker`: windows start at `t = 0`,
//! close while `now >= window_start + interval`, and the deviation
//! column uses the exact same accumulation order, so sampling at the
//! Fig. 2 interval reproduces the tracker's series bitwise.

use hetsched_desim::FelStats;
use hetsched_metrics::{P2Quantile, Welford};
use hetsched_obs::{ObsReport, ObsSpec, Probe, ProbeRegistry};

use crate::server::Server;

/// Immutable model snapshot assembled at one window boundary.
///
/// Everything a probe may observe is precomputed here; probes receive
/// only this view, never the model, which makes the read-only contract
/// structural.
#[derive(Debug, Clone)]
pub struct ObsView {
    /// Instantaneous per-server queue length (jobs in system).
    pub queue_lens: Vec<f64>,
    /// Cumulative per-server busy-time integral at the boundary.
    pub busy_integrals: Vec<f64>,
    /// Per-server up/down state (1.0 = up, 0.0 = down).
    pub up: Vec<f64>,
    /// Jobs in flight anywhere in the cluster.
    pub in_flight: f64,
    /// Scheduler arrivals this window divided by the window length.
    pub arrival_rate: f64,
    /// Completions this window divided by the window length.
    pub completion_rate: f64,
    /// Mean response time of jobs completing this window (0 if none).
    pub resp_mean: f64,
    /// P² median response time this window (0 if none completed).
    pub resp_p50: f64,
    /// P² 95th-percentile response time this window (0 if none).
    pub resp_p95: f64,
    /// P² 99th-percentile response time this window (0 if none).
    pub resp_p99: f64,
    /// Fig. 2 workload-allocation deviation for this window.
    pub deviation: f64,
    /// Per-dispatcher-shard arrival share this window (empty unless the
    /// run used more than one dispatcher).
    pub shard_shares: Vec<f64>,
    /// Per-shard workload-allocation deviation this window, measured
    /// against the same expected fractions as the global `deviation`
    /// (empty unless the run used more than one dispatcher).
    pub shard_deviations: Vec<f64>,
    /// Channel messages lost this window divided by the window length
    /// (0 unless the run has an unreliable channel layer).
    pub msg_loss_rate: f64,
    /// Dispatch retransmissions this window divided by the window
    /// length (0 unless the run has an unreliable channel layer).
    pub retry_rate: f64,
    /// Mean slowdown (`response / inherent size`) of counted jobs
    /// completing this window (0 if none; only exported as a column for
    /// runs with an active malleable section).
    pub slowdown_mean: f64,
}

/// Per-server instantaneous queue length, column `qlen[i]`.
struct QueueLenProbe {
    server: usize,
}

impl Probe<ObsView> for QueueLenProbe {
    fn name(&self) -> String {
        format!("qlen[{}]", self.server)
    }
    fn sample(&mut self, _now: f64, view: &ObsView) -> f64 {
        view.queue_lens[self.server]
    }
}

/// Per-server utilization over one window, column `util[i]`.
///
/// Differences the cumulative busy integral across boundaries. When the
/// model discards its warmup history the integral restarts from zero,
/// so the baseline is rebased in `on_reset`; the window straddling the
/// warmup end therefore reports only its post-reset share — a
/// deterministic, documented edge rather than a negative utilization.
struct UtilizationProbe {
    server: usize,
    interval: f64,
    prev: f64,
}

impl Probe<ObsView> for UtilizationProbe {
    fn name(&self) -> String {
        format!("util[{}]", self.server)
    }
    fn sample(&mut self, _now: f64, view: &ObsView) -> f64 {
        let integral = view.busy_integrals[self.server];
        let busy = integral - self.prev;
        self.prev = integral;
        busy / self.interval
    }
    fn on_reset(&mut self, _now: f64) {
        self.prev = 0.0;
    }
}

/// Per-server availability flag, column `up[i]`.
struct UpProbe {
    server: usize,
}

impl Probe<ObsView> for UpProbe {
    fn name(&self) -> String {
        format!("up[{}]", self.server)
    }
    fn sample(&mut self, _now: f64, view: &ObsView) -> f64 {
        view.up[self.server]
    }
}

/// Per-dispatcher-shard arrival share, column `shard_share[d]`.
struct ShardShareProbe {
    shard: usize,
}

impl Probe<ObsView> for ShardShareProbe {
    fn name(&self) -> String {
        format!("shard_share[{}]", self.shard)
    }
    fn sample(&mut self, _now: f64, view: &ObsView) -> f64 {
        view.shard_shares[self.shard]
    }
}

/// Per-dispatcher-shard allocation deviation, column `shard_dev[d]`.
struct ShardDevProbe {
    shard: usize,
}

impl Probe<ObsView> for ShardDevProbe {
    fn name(&self) -> String {
        format!("shard_dev[{}]", self.shard)
    }
    fn sample(&mut self, _now: f64, view: &ObsView) -> f64 {
        view.shard_deviations[self.shard]
    }
}

/// Reader for one cluster-wide scalar column of the view.
type ViewRead = fn(&ObsView) -> f64;

/// A stateless cluster-wide scalar read straight off the view.
struct ViewProbe {
    name: &'static str,
    read: ViewRead,
}

impl Probe<ObsView> for ViewProbe {
    fn name(&self) -> String {
        self.name.into()
    }
    fn sample(&mut self, _now: f64, view: &ObsView) -> f64 {
        (self.read)(view)
    }
}

/// Drives the probe registry from inside the simulation model.
///
/// Constructed only when the run's `ClusterConfig::obs` is set; a run
/// without it carries no observability state at all. All methods are
/// read-only with respect to the simulation (they never schedule events
/// or draw random numbers).
pub struct ObsDriver {
    interval: f64,
    window_start: f64,
    expected: Vec<f64>,
    registry: ProbeRegistry<ObsView>,
    // Per-window counters, zeroed after every boundary.
    arrivals: u64,
    completions: u64,
    dispatch: Vec<u64>,
    dispatch_total: u64,
    resp: Welford,
    p50: P2Quantile,
    p95: P2Quantile,
    p99: P2Quantile,
    // Per-shard dispatch counters (empty when the run has a single
    // dispatcher — the shard probes are then never registered, keeping
    // the report's column set byte-identical to the pre-tier one).
    shard_dispatch: Vec<Vec<u64>>,
    shard_total: Vec<u64>,
    // Per-window channel counters (only fed when the run has an
    // unreliable channel layer; the columns are only registered then,
    // keeping the reliable report schema unchanged).
    msgs_lost: u64,
    retries: u64,
    // Per-window slowdown accumulator (its column is only registered
    // for runs with an active malleable section, keeping the rigid
    // report schema unchanged).
    slow: Welford,
}

impl ObsDriver {
    /// Builds the standard probe set for `n` servers.
    ///
    /// `expected` is the policy's expected workload allocation (the same
    /// fractions `DeviationTracker` is built from); its length must be
    /// `n`. `shards` is the dispatch tier's dispatcher count; values
    /// below 2 disable the per-shard probes entirely, so a
    /// single-dispatcher report keeps the pre-tier column set.
    /// `channels` registers the message-plane rate columns; pass false
    /// for a reliable (or absent) channel layer so its report schema
    /// stays byte-identical to the pre-channel one. `malleable`
    /// registers the slowdown column the same way: pass false for runs
    /// without an active malleable section.
    pub fn new(
        spec: &ObsSpec,
        n: usize,
        expected: Vec<f64>,
        shards: usize,
        channels: bool,
        malleable: bool,
    ) -> Self {
        assert_eq!(expected.len(), n, "one expected fraction per server");
        let interval = spec.sample_interval;
        let mut registry = ProbeRegistry::new();
        for server in 0..n {
            registry.register(Box::new(QueueLenProbe { server }));
            registry.register(Box::new(UtilizationProbe {
                server,
                interval,
                prev: 0.0,
            }));
            registry.register(Box::new(UpProbe { server }));
        }
        let scalars: [(&'static str, ViewRead); 8] = [
            ("in_flight", |v| v.in_flight),
            ("arrival_rate", |v| v.arrival_rate),
            ("completion_rate", |v| v.completion_rate),
            ("resp_mean", |v| v.resp_mean),
            ("resp_p50", |v| v.resp_p50),
            ("resp_p95", |v| v.resp_p95),
            ("resp_p99", |v| v.resp_p99),
            ("deviation", |v| v.deviation),
        ];
        for (name, read) in scalars {
            registry.register(Box::new(ViewProbe { name, read }));
        }
        let shards = if shards >= 2 { shards } else { 0 };
        for shard in 0..shards {
            registry.register(Box::new(ShardShareProbe { shard }));
            registry.register(Box::new(ShardDevProbe { shard }));
        }
        if channels {
            let chan_scalars: [(&'static str, ViewRead); 2] = [
                ("msg_loss_rate", |v| v.msg_loss_rate),
                ("retry_rate", |v| v.retry_rate),
            ];
            for (name, read) in chan_scalars {
                registry.register(Box::new(ViewProbe { name, read }));
            }
        }
        if malleable {
            registry.register(Box::new(ViewProbe {
                name: "slowdown_mean",
                read: |v| v.slowdown_mean,
            }));
        }
        ObsDriver {
            interval,
            window_start: 0.0,
            expected,
            registry,
            arrivals: 0,
            completions: 0,
            dispatch: vec![0; n],
            dispatch_total: 0,
            resp: Welford::new(),
            p50: P2Quantile::new(0.50),
            p95: P2Quantile::new(0.95),
            p99: P2Quantile::new(0.99),
            shard_dispatch: vec![vec![0; n]; shards],
            shard_total: vec![0; shards],
            msgs_lost: 0,
            retries: 0,
            slow: Welford::new(),
        }
    }

    /// Closes every window whose boundary is at or before `now`.
    ///
    /// Same lazy-closing arithmetic as `DeviationTracker::record`: the
    /// boundary at exactly `now` closes *before* the event at `now` is
    /// processed.
    pub fn flush_to(&mut self, now: f64, servers: &[Server], in_flight: usize) {
        while now >= self.window_start + self.interval {
            let boundary = self.window_start + self.interval;
            let view = self.view_at(boundary, servers, in_flight);
            self.registry.sample_all(boundary, &view);
            self.reset_window();
            self.window_start += self.interval;
        }
    }

    /// Records one scheduler arrival (counted even during total outage).
    #[inline]
    pub fn on_arrival(&mut self) {
        self.arrivals += 1;
    }

    /// Records a dispatch decision for `server` — call exactly where
    /// `DeviationTracker::record` is called so the deviation column
    /// reproduces Fig. 2 bitwise.
    #[inline]
    pub fn on_dispatch(&mut self, server: usize) {
        self.dispatch[server] += 1;
        self.dispatch_total += 1;
    }

    /// Records which dispatcher shard routed the dispatch just recorded
    /// via [`ObsDriver::on_dispatch`]. A no-op when the shard probes are
    /// disabled (single-dispatcher runs).
    #[inline]
    pub fn on_shard_dispatch(&mut self, shard: usize, server: usize) {
        if self.shard_total.is_empty() {
            return;
        }
        self.shard_dispatch[shard][server] += 1;
        self.shard_total[shard] += 1;
    }

    /// Records one job completion (counted or not).
    #[inline]
    pub fn on_completion(&mut self) {
        self.completions += 1;
    }

    /// Records one message lost on any channel plane.
    #[inline]
    pub fn on_msg_lost(&mut self) {
        self.msgs_lost += 1;
    }

    /// Records one dispatch retransmission.
    #[inline]
    pub fn on_retry(&mut self) {
        self.retries += 1;
    }

    /// Records the response time of one *counted* job completion.
    #[inline]
    pub fn on_response(&mut self, response: f64) {
        self.resp.push(response);
        self.p50.push(response);
        self.p95.push(response);
        self.p99.push(response);
    }

    /// Records the slowdown of one counted completion. Call only for
    /// runs with an active malleable section — the accumulator's column
    /// is not registered otherwise.
    #[inline]
    pub fn on_slowdown(&mut self, slowdown: f64) {
        self.slow.push(slowdown);
    }

    /// Forwards the end-of-warmup history reset to the probes.
    pub fn on_warmup_reset(&mut self, now: f64) {
        self.registry.notify_reset(now);
    }

    /// Consumes the driver into the exportable report, attaching the
    /// kernel's lifetime counters.
    pub fn into_report(self, kernel: FelStats) -> ObsReport {
        self.registry.into_report(self.interval, kernel.into())
    }

    fn view_at(&self, boundary: f64, servers: &[Server], in_flight: usize) -> ObsView {
        // Identical accumulation order to DeviationTracker::close_interval
        // so the deviation column matches the Fig. 2 series bitwise.
        let deviation: f64 = if self.dispatch_total == 0 {
            self.expected.iter().map(|a| a * a).sum()
        } else {
            let t = self.dispatch_total as f64;
            self.expected
                .iter()
                .zip(&self.dispatch)
                .map(|(&a, &c)| {
                    let actual = c as f64 / t;
                    (a - actual) * (a - actual)
                })
                .sum()
        };
        // Per-shard deviations use the same accumulation formula over
        // each shard's private dispatch counters: how far one shard's
        // realized allocation strays from the tier-wide target.
        let shard_deviations: Vec<f64> = self
            .shard_dispatch
            .iter()
            .zip(&self.shard_total)
            .map(|(counts, &total)| {
                if total == 0 {
                    self.expected.iter().map(|a| a * a).sum()
                } else {
                    let t = total as f64;
                    self.expected
                        .iter()
                        .zip(counts)
                        .map(|(&a, &c)| {
                            let actual = c as f64 / t;
                            (a - actual) * (a - actual)
                        })
                        .sum()
                }
            })
            .collect();
        let shard_shares: Vec<f64> = self
            .shard_total
            .iter()
            .map(|&c| {
                if self.dispatch_total == 0 {
                    0.0
                } else {
                    c as f64 / self.dispatch_total as f64
                }
            })
            .collect();
        ObsView {
            queue_lens: servers.iter().map(|s| s.queue_len() as f64).collect(),
            busy_integrals: servers
                .iter()
                .map(|s| s.busy_integral_at(boundary))
                .collect(),
            up: servers
                .iter()
                .map(|s| if s.is_up() { 1.0 } else { 0.0 })
                .collect(),
            in_flight: in_flight as f64,
            arrival_rate: self.arrivals as f64 / self.interval,
            completion_rate: self.completions as f64 / self.interval,
            resp_mean: self.resp.mean(),
            resp_p50: self.p50.estimate().unwrap_or(0.0),
            resp_p95: self.p95.estimate().unwrap_or(0.0),
            resp_p99: self.p99.estimate().unwrap_or(0.0),
            deviation,
            shard_shares,
            shard_deviations,
            msg_loss_rate: self.msgs_lost as f64 / self.interval,
            retry_rate: self.retries as f64 / self.interval,
            slowdown_mean: self.slow.mean(),
        }
    }

    fn reset_window(&mut self) {
        self.arrivals = 0;
        self.completions = 0;
        self.dispatch.iter_mut().for_each(|c| *c = 0);
        self.dispatch_total = 0;
        self.resp = Welford::new();
        self.p50 = P2Quantile::new(0.50);
        self.p95 = P2Quantile::new(0.95);
        self.p99 = P2Quantile::new(0.99);
        for counts in &mut self.shard_dispatch {
            counts.iter_mut().for_each(|c| *c = 0);
        }
        self.shard_total.iter_mut().for_each(|c| *c = 0);
        self.msgs_lost = 0;
        self.retries = 0;
        self.slow = Welford::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discipline::DisciplineSpec;
    use hetsched_metrics::DeviationTracker;
    use hetsched_obs::ObsSpec;

    fn servers(n: usize) -> Vec<Server> {
        (0..n)
            .map(|_| Server::new(1.0, DisciplineSpec::ProcessorSharing))
            .collect()
    }

    #[test]
    fn standard_columns_in_order() {
        let driver = ObsDriver::new(&ObsSpec::every(100.0), 2, vec![0.5, 0.5], 1, false, false);
        let report = driver.into_report(FelStats::default());
        assert_eq!(
            report.columns,
            vec![
                "qlen[0]",
                "util[0]",
                "up[0]",
                "qlen[1]",
                "util[1]",
                "up[1]",
                "in_flight",
                "arrival_rate",
                "completion_rate",
                "resp_mean",
                "resp_p50",
                "resp_p95",
                "resp_p99",
                "deviation",
            ]
        );
    }

    #[test]
    fn deviation_column_matches_tracker_bitwise() {
        let expected = vec![0.2, 0.3, 0.5];
        let interval = 100.0;
        let mut tracker = DeviationTracker::new(&expected, interval, 0.0);
        let mut driver = ObsDriver::new(
            &ObsSpec::every(interval),
            3,
            expected.clone(),
            1,
            false,
            false,
        );
        let servers = servers(3);

        // Irregular dispatch stream crossing several windows, including
        // an empty window (t jumps from 250 to 470) and a dispatch at an
        // exact boundary (t = 300 closes [200, 300) first).
        let events = [
            (5.0, 0),
            (40.0, 2),
            (99.0, 1),
            (150.0, 2),
            (250.0, 2),
            (300.0, 0),
            (470.0, 1),
            (471.0, 1),
        ];
        for (t, target) in events {
            driver.flush_to(t, &servers, 0);
            driver.on_dispatch(target);
            tracker.record(t, target);
        }
        let horizon = 600.0;
        driver.flush_to(horizon, &servers, 0);
        tracker.advance_to(horizon);

        let report = driver.into_report(FelStats::default());
        let column = report.column("deviation").expect("deviation column");
        assert_eq!(column, tracker.deviations().to_vec());
        assert_eq!(report.times, vec![100.0, 200.0, 300.0, 400.0, 500.0, 600.0]);
    }

    #[test]
    fn empty_window_reports_zero_rates_and_full_deviation() {
        let expected = vec![0.25, 0.75];
        let mut driver =
            ObsDriver::new(&ObsSpec::every(50.0), 2, expected.clone(), 1, false, false);
        let servers = servers(2);
        driver.flush_to(50.0, &servers, 0);
        let report = driver.into_report(FelStats::default());
        assert_eq!(report.len(), 1);
        let row = &report.rows[0];
        let col = |name: &str| {
            let idx = report.columns.iter().position(|c| c == name).unwrap();
            row[idx]
        };
        assert_eq!(col("arrival_rate"), 0.0);
        assert_eq!(col("completion_rate"), 0.0);
        assert_eq!(col("resp_mean"), 0.0);
        assert_eq!(col("resp_p95"), 0.0);
        // No dispatches: deviation degenerates to Σ aᵢ² exactly as the
        // tracker's empty-interval branch does.
        let full: f64 = expected.iter().map(|a| a * a).sum();
        assert_eq!(col("deviation"), full);
    }

    #[test]
    fn window_counters_reset_between_windows() {
        let mut driver = ObsDriver::new(&ObsSpec::every(10.0), 1, vec![1.0], 1, false, false);
        let servers = servers(1);
        driver.on_arrival();
        driver.on_arrival();
        driver.on_completion();
        driver.on_response(3.0);
        driver.flush_to(10.0, &servers, 2);
        driver.on_arrival();
        driver.flush_to(20.0, &servers, 0);
        let report = driver.into_report(FelStats::default());
        let arrivals = report.column("arrival_rate").unwrap();
        assert_eq!(arrivals, vec![0.2, 0.1]);
        let resp = report.column("resp_mean").unwrap();
        assert_eq!(resp, vec![3.0, 0.0]);
        let inflight = report.column("in_flight").unwrap();
        assert_eq!(inflight, vec![2.0, 0.0]);
    }

    #[test]
    fn shard_probes_appear_only_with_multiple_dispatchers() {
        // D = 1 (or 0): no shard columns — the report schema is exactly
        // the pre-dispatch-tier one.
        for shards in [0, 1] {
            let driver = ObsDriver::new(&ObsSpec::every(10.0), 1, vec![1.0], shards, false, false);
            let report = driver.into_report(FelStats::default());
            assert!(
                !report.columns.iter().any(|c| c.starts_with("shard_")),
                "shards={shards}: {:?}",
                report.columns
            );
        }
        // D = 2: share and deviation columns per shard, after "deviation".
        let driver = ObsDriver::new(&ObsSpec::every(10.0), 1, vec![1.0], 2, false, false);
        let report = driver.into_report(FelStats::default());
        let tail: Vec<&str> = report
            .columns
            .iter()
            .rev()
            .take(4)
            .rev()
            .map(String::as_str)
            .collect();
        assert_eq!(
            tail,
            vec![
                "shard_share[0]",
                "shard_dev[0]",
                "shard_share[1]",
                "shard_dev[1]"
            ]
        );
    }

    #[test]
    fn shard_counters_track_shares_and_deviation() {
        let expected = vec![0.5, 0.5];
        let mut driver = ObsDriver::new(&ObsSpec::every(100.0), 2, expected, 2, false, false);
        let servers = servers(2);
        // Shard 0 routes three jobs (two to server 0), shard 1 routes one.
        for (shard, server) in [(0, 0), (0, 1), (0, 0), (1, 1)] {
            driver.on_dispatch(server);
            driver.on_shard_dispatch(shard, server);
        }
        driver.flush_to(100.0, &servers, 0);
        let report = driver.into_report(FelStats::default());
        let col = |name: &str| report.column(name).unwrap()[0];
        assert_eq!(col("shard_share[0]"), 0.75);
        assert_eq!(col("shard_share[1]"), 0.25);
        // Shard 0 realized (2/3, 1/3) against (0.5, 0.5).
        let d0 = (0.5f64 - 2.0 / 3.0).powi(2) + (0.5f64 - 1.0 / 3.0).powi(2);
        assert!((col("shard_dev[0]") - d0).abs() < 1e-15);
        // Shard 1 realized (0, 1): deviation 0.25 + 0.25.
        assert_eq!(col("shard_dev[1]"), 0.5);
    }

    #[test]
    fn channel_columns_appear_only_when_enabled() {
        // Reliable (or absent) channel layer: schema unchanged.
        let driver = ObsDriver::new(&ObsSpec::every(10.0), 1, vec![1.0], 1, false, false);
        let report = driver.into_report(FelStats::default());
        assert!(!report.columns.iter().any(|c| c.contains("msg_loss")));
        assert!(!report.columns.iter().any(|c| c.contains("retry")));

        // Unreliable layer: the rate columns land at the tail and the
        // per-window counters reset across boundaries.
        let mut driver = ObsDriver::new(&ObsSpec::every(10.0), 1, vec![1.0], 1, true, false);
        let servers = servers(1);
        driver.on_msg_lost();
        driver.on_msg_lost();
        driver.on_retry();
        driver.flush_to(10.0, &servers, 0);
        driver.on_retry();
        driver.flush_to(20.0, &servers, 0);
        let report = driver.into_report(FelStats::default());
        let tail: Vec<&str> = report
            .columns
            .iter()
            .rev()
            .take(2)
            .rev()
            .map(String::as_str)
            .collect();
        assert_eq!(tail, vec!["msg_loss_rate", "retry_rate"]);
        assert_eq!(report.column("msg_loss_rate").unwrap(), vec![0.2, 0.0]);
        assert_eq!(report.column("retry_rate").unwrap(), vec![0.1, 0.1]);
    }

    #[test]
    fn slowdown_column_appears_only_with_malleable_tier() {
        // No active malleable section: the report schema is exactly the
        // rigid one.
        let driver = ObsDriver::new(&ObsSpec::every(10.0), 1, vec![1.0], 1, false, false);
        let report = driver.into_report(FelStats::default());
        assert!(
            !report.columns.iter().any(|c| c.contains("slowdown")),
            "{:?}",
            report.columns
        );

        // Active section: the column lands at the tail and the
        // per-window accumulator resets across boundaries.
        let mut driver = ObsDriver::new(&ObsSpec::every(10.0), 1, vec![1.0], 1, false, true);
        let servers = servers(1);
        driver.on_slowdown(2.0);
        driver.on_slowdown(4.0);
        driver.flush_to(10.0, &servers, 0);
        driver.flush_to(20.0, &servers, 0);
        let report = driver.into_report(FelStats::default());
        assert_eq!(
            report.columns.last().map(String::as_str),
            Some("slowdown_mean")
        );
        assert_eq!(report.column("slowdown_mean").unwrap(), vec![3.0, 0.0]);
    }

    #[test]
    fn utilization_probe_differences_and_rebases() {
        let mk_view = |busy: f64| ObsView {
            queue_lens: vec![0.0],
            busy_integrals: vec![busy],
            up: vec![1.0],
            in_flight: 0.0,
            arrival_rate: 0.0,
            completion_rate: 0.0,
            resp_mean: 0.0,
            resp_p50: 0.0,
            resp_p95: 0.0,
            resp_p99: 0.0,
            deviation: 0.0,
            shard_shares: Vec::new(),
            shard_deviations: Vec::new(),
            msg_loss_rate: 0.0,
            retry_rate: 0.0,
            slowdown_mean: 0.0,
        };
        let mut p = UtilizationProbe {
            server: 0,
            interval: 100.0,
            prev: 0.0,
        };
        assert_eq!(p.sample(100.0, &mk_view(50.0)), 0.5);
        assert_eq!(p.sample(200.0, &mk_view(120.0)), 0.7);
        // Warmup reset: the server's integral restarts from zero, so the
        // probe's baseline must too.
        p.on_reset(250.0);
        assert_eq!(p.sample(300.0, &mk_view(30.0)), 0.3);
    }
}

//! Run configuration.
//!
//! [`ClusterConfig`] is the serde-friendly description of one simulation
//! run: the machines, the workload, the service discipline, and the
//! horizon/warmup. Arrival and size processes are described declaratively
//! ([`ArrivalSpec`], [`hetsched_dist::DistSpec`]) so experiment harnesses
//! can log exactly what they ran.
//!
//! The paper's defaults (§4.1) are provided by
//! [`ClusterConfig::paper_default`]: Bounded Pareto `B(10, 21600, 1)` job
//! sizes, hyperexponential arrivals with CV = 3, utilization 0.70,
//! horizon 4·10⁶ s with the first quarter as warmup.

use hetsched_dist::{
    ArrivalProcess, DistSpec, Exponential, Hyperexp2, IidArrivals, MmppArrivals, Moments,
};
use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

use crate::discipline::DisciplineSpec;
use crate::faults::FaultSpec;
use crate::network::LoadUpdateModel;

/// Declarative arrival-process description (built for a target rate).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ArrivalSpec {
    /// Poisson arrivals (inter-arrival CV = 1).
    Poisson,
    /// Two-stage hyperexponential renewal arrivals with the given CV ≥ 1
    /// (the paper's model; CV = 3 by default).
    Hyperexp {
        /// Inter-arrival coefficient of variation (≥ 1).
        cv: f64,
    },
    /// Two-state Markov-modulated Poisson process (burstiness ablation).
    Mmpp {
        /// Ratio of bursty-state to calm-state arrival rate (> 1).
        burst_factor: f64,
        /// Stationary fraction of time in the bursty state, in (0, 1).
        frac_bursty: f64,
        /// Mean calm+burst cycle length in seconds.
        cycle: f64,
    },
}

impl ArrivalSpec {
    /// The paper's arrival process: hyperexponential with CV = 3.
    pub fn paper_default() -> Self {
        ArrivalSpec::Hyperexp { cv: 3.0 }
    }

    /// Materializes the process for a target mean rate (jobs/second).
    pub fn build(self, rate: f64) -> ArrivalKind {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive"
        );
        match self {
            ArrivalSpec::Poisson => {
                ArrivalKind::Poisson(IidArrivals::new(Exponential::from_rate(rate)))
            }
            ArrivalSpec::Hyperexp { cv } => {
                ArrivalKind::H2(IidArrivals::new(Hyperexp2::from_mean_cv(1.0 / rate, cv)))
            }
            ArrivalSpec::Mmpp {
                burst_factor,
                frac_bursty,
                cycle,
            } => ArrivalKind::Mmpp(MmppArrivals::with_rate(
                rate,
                burst_factor,
                frac_bursty,
                cycle,
            )),
        }
    }
}

/// A materialized [`ArrivalSpec`].
#[derive(Debug, Clone)]
pub enum ArrivalKind {
    /// Poisson renewal process.
    Poisson(IidArrivals<Exponential>),
    /// Hyperexponential renewal process.
    H2(IidArrivals<Hyperexp2>),
    /// Markov-modulated Poisson process.
    Mmpp(MmppArrivals),
}

impl ArrivalProcess for ArrivalKind {
    fn next_interarrival(&mut self, rng: &mut hetsched_desim::Rng64) -> f64 {
        match self {
            ArrivalKind::Poisson(p) => p.next_interarrival(rng),
            ArrivalKind::H2(p) => p.next_interarrival(rng),
            ArrivalKind::Mmpp(p) => p.next_interarrival(rng),
        }
    }

    fn mean_rate(&self) -> f64 {
        match self {
            ArrivalKind::Poisson(p) => p.mean_rate(),
            ArrivalKind::H2(p) => p.mean_rate(),
            ArrivalKind::Mmpp(p) => p.mean_rate(),
        }
    }
}

/// Future-event-list backend for the simulation engine.
///
/// Both backends produce bit-identical results (same timestamp order,
/// same FIFO tie-breaks — see `hetsched_desim::fel`); the choice is
/// purely a throughput knob. The heap's constants win for the paper's
/// event populations (tens to hundreds pending); the calendar queue
/// (Brown, CACM 1988) amortizes to O(1) per operation and pays off when
/// scaling to very large fleets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventListBackend {
    /// Binary min-heap (`EventQueue`) — the default.
    #[default]
    Heap,
    /// Brown's calendar queue (`CalendarQueue`).
    Calendar,
}

impl EventListBackend {
    /// Stable lowercase name (matches the CLI flag values and the serde
    /// encoding).
    pub fn label(self) -> &'static str {
        match self {
            EventListBackend::Heap => "heap",
            EventListBackend::Calendar => "calendar",
        }
    }
}

impl std::fmt::Display for EventListBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for EventListBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "heap" => Ok(EventListBackend::Heap),
            "calendar" => Ok(EventListBackend::Calendar),
            other => Err(format!(
                "unknown event-list backend '{other}' (expected 'heap' or 'calendar')"
            )),
        }
    }
}

/// A group of identical machines in the `fleet` config shorthand:
/// `{ "count": 5000, "speed": 1.0 }` stands for 5000 speed-1 machines.
///
/// Groups expand deterministically — in listed order, each repeated
/// `count` times and appended after any explicit `speeds` — so a
/// 10,000-server heterogeneous config is a few lines of JSON instead of
/// a 10,000-entry array.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetGroup {
    /// Number of machines in the group.
    pub count: usize,
    /// Relative speed of every machine in the group.
    pub speed: f64,
}

/// Expands `fleet` groups into an explicit speed vector (listed order,
/// each group's speed repeated `count` times).
pub fn expand_fleet(groups: &[FleetGroup]) -> Vec<f64> {
    let mut speeds = Vec::with_capacity(groups.iter().map(|g| g.count).sum());
    for g in groups {
        speeds.extend(std::iter::repeat_n(g.speed, g.count));
    }
    speeds
}

/// How much per-server detail a run's outputs carry.
///
/// At N = 10,000 the per-server vectors in `RunStats` and the
/// per-server observability columns dominate artifact size and merge
/// time; `summary` collapses them to `{min, mean, max, p99}` once the
/// fleet exceeds the summary threshold. Defaults to `full` (the
/// historical shape), so configs serialized before this knob existed
/// parse and reproduce unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PerServerMode {
    /// Emit the full per-server vectors (the historical shape).
    #[default]
    Full,
    /// Collapse per-server vectors to `{min, mean, max, p99}` summaries
    /// when the fleet exceeds
    /// [`crate::results::PER_SERVER_SUMMARY_THRESHOLD`].
    Summary,
}

/// Full description of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Relative speeds of the computers. The `fleet` shorthand (groups
    /// of `{count, speed}`) is expanded and appended here when the
    /// simulation is constructed, so large fleets never need the
    /// explicit vector spelled out. Serde-defaulted so a config may
    /// spell its machines entirely as `fleet` groups.
    #[serde(default)]
    pub speeds: Vec<f64>,
    /// Unexpanded [`FleetGroup`] shorthand: each group stands for
    /// `count` machines of the given speed, appended after `speeds` in
    /// listed order by [`ClusterConfig::normalize_fleet`] (called by the
    /// simulation constructors). Empty — and structurally invisible —
    /// once normalized, and serde-defaulted so configs serialized before
    /// the shorthand existed parse unchanged.
    #[serde(default)]
    pub fleet: Vec<FleetGroup>,
    /// Target overall utilization `ρ = λ / (μ Σ s_i)`, in (0, 1).
    pub utilization: f64,
    /// Job-size distribution (speed-1 seconds).
    pub job_sizes: DistSpec,
    /// Arrival-process shape.
    pub arrivals: ArrivalSpec,
    /// Per-computer service discipline.
    pub discipline: DisciplineSpec,
    /// Load-update delay model (only used by dynamic policies).
    pub load_updates: LoadUpdateModel,
    /// Total simulated seconds.
    pub horizon: f64,
    /// Seconds of warmup excluded from statistics (jobs *arriving* before
    /// this instant are not counted, per §4.1).
    pub warmup: f64,
    /// If set, track the per-interval workload-allocation deviation
    /// (Figure 2) with this interval length in seconds.
    pub deviation_interval: Option<f64>,
    /// If true, collect a log-spaced histogram of response ratios
    /// (extension metric: full latency distribution, not just the
    /// mean/std the paper reports).
    pub track_ratio_histogram: bool,
    /// If set, capture sampled per-job traces (see [`crate::trace`]).
    pub trace: Option<crate::trace::TraceSpec>,
    /// If set, inject per-server crash/repair processes (see
    /// [`crate::faults`]). `None` reproduces the fault-free simulation
    /// byte-for-byte, so configs serialized before this field existed
    /// keep their exact results.
    #[serde(default)]
    pub faults: Option<FaultSpec>,
    /// Future-event-list backend for the engine. Defaults to the binary
    /// heap; results are bit-identical either way, so configs serialized
    /// before this field existed parse (and reproduce) unchanged.
    #[serde(default)]
    pub event_list: EventListBackend,
    /// If set, sample the run-level observability probes (see
    /// [`crate::obs`]) on this window. Probes only read model state, so
    /// the headline `RunStats` are bit-identical with or without this —
    /// `None` (the serde default) keeps pre-observability configs
    /// parsing and reproducing unchanged.
    #[serde(default)]
    pub obs: Option<hetsched_obs::ObsSpec>,
    /// The front-end dispatch tier (see [`hetsched_dispatch`]). The
    /// serde default — one dispatcher, no state-sync — is structurally
    /// invisible, so configs serialized before the tier existed parse
    /// and reproduce bit-for-bit.
    #[serde(default)]
    pub dispatch: hetsched_dispatch::DispatchSpec,
    /// If set, make the message planes unreliable (see
    /// [`crate::channel`]). `None` — and
    /// [`crate::channel::ChannelSpec::reliable`] —
    /// are structurally invisible: no channel runtime is built, no
    /// channel randomness is drawn, and results are byte-identical to
    /// configs serialized before this field existed.
    #[serde(default)]
    pub channels: Option<crate::channel::ChannelSpec>,
    /// Per-server output detail: `full` (historical default) keeps the
    /// per-server vectors in `RunStats`/`ObsReport`; `summary` collapses
    /// them to `{min, mean, max, p99}` above the summary threshold.
    /// Serde-defaulted, so old configs load unchanged.
    #[serde(default)]
    pub per_server: PerServerMode,
    /// If set, stamp arrivals with malleable job classes (see
    /// [`crate::malleable`]). `None` — or a section whose classes are
    /// all rigid — is structurally invisible: no class stream is
    /// constructed and no allocation tier runs, so such runs are
    /// byte-identical to configs serialized before this field existed.
    #[serde(default)]
    pub malleable: Option<crate::malleable::MalleableSpec>,
}

impl ClusterConfig {
    /// The paper's §4.1 defaults for the given machine speeds.
    pub fn paper_default(speeds: &[f64]) -> Self {
        ClusterConfig {
            speeds: speeds.to_vec(),
            fleet: Vec::new(),
            utilization: 0.70,
            job_sizes: DistSpec::paper_job_sizes(),
            arrivals: ArrivalSpec::paper_default(),
            discipline: DisciplineSpec::ProcessorSharing,
            load_updates: LoadUpdateModel::default(),
            horizon: 4.0e6,
            warmup: 1.0e6,
            deviation_interval: None,
            track_ratio_histogram: false,
            trace: None,
            faults: None,
            event_list: EventListBackend::default(),
            obs: None,
            dispatch: hetsched_dispatch::DispatchSpec::default(),
            channels: None,
            per_server: PerServerMode::default(),
            malleable: None,
        }
    }

    /// The paper's §4.1 defaults over a [`FleetGroup`] shorthand —
    /// the scale-axis constructor for fleets too large to enumerate.
    pub fn paper_default_fleet(groups: &[FleetGroup]) -> Self {
        Self::paper_default(&expand_fleet(groups))
    }

    /// Expands any pending `fleet` groups into `speeds` (listed order,
    /// appended after the explicit entries) and clears the shorthand.
    /// Idempotent; the simulation constructors call it before
    /// validation, so every running model sees only the explicit vector.
    pub fn normalize_fleet(&mut self) {
        if !self.fleet.is_empty() {
            self.speeds.extend(expand_fleet(&self.fleet));
            self.fleet.clear();
        }
    }

    /// Scales horizon and warmup by `factor` (e.g. `0.05` for quick CI
    /// runs). Statistics get noisier; rankings are typically preserved.
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "bad scale factor");
        self.horizon *= factor;
        self.warmup *= factor;
        self
    }

    /// Returns a copy with a different utilization.
    pub fn with_utilization(mut self, rho: f64) -> Self {
        self.utilization = rho;
        self
    }

    /// Mean job size `E[S]` in speed-1 seconds.
    pub fn mean_job_size(&self) -> f64 {
        self.job_sizes.build().mean()
    }

    /// Baseline service rate `μ = 1 / E[S]`.
    pub fn mu(&self) -> f64 {
        1.0 / self.mean_job_size()
    }

    /// Aggregate speed `Σ s_i`.
    pub fn total_speed(&self) -> f64 {
        self.speeds.iter().sum()
    }

    /// Arrival rate `λ = ρ μ Σ s_i`.
    pub fn lambda(&self) -> f64 {
        self.utilization * self.mu() * self.total_speed()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    /// A typed [`HetschedError`] describing the first problem found:
    /// [`HetschedError::NoComputers`] for an empty machine list,
    /// [`HetschedError::Saturated`] for ρ ≥ 1, and
    /// [`HetschedError::InvalidConfig`] for everything else.
    pub fn validate(&self) -> Result<(), HetschedError> {
        if self.speeds.is_empty() {
            return Err(HetschedError::NoComputers);
        }
        if !self.speeds.iter().all(|&s| s.is_finite() && s > 0.0) {
            return Err(HetschedError::InvalidConfig(
                "speeds must be positive and finite".into(),
            ));
        }
        if self.utilization >= 1.0 {
            return Err(HetschedError::Saturated);
        }
        if !(self.utilization.is_finite() && self.utilization > 0.0) {
            return Err(HetschedError::InvalidConfig(format!(
                "utilization must lie in (0,1), got {}",
                self.utilization
            )));
        }
        if !(self.horizon.is_finite() && self.horizon > 0.0) {
            return Err(HetschedError::InvalidConfig(
                "horizon must be positive".into(),
            ));
        }
        if !(self.warmup.is_finite() && self.warmup >= 0.0 && self.warmup < self.horizon) {
            return Err(HetschedError::InvalidConfig(
                "warmup must satisfy 0 ≤ warmup < horizon".into(),
            ));
        }
        if let Some(iv) = self.deviation_interval {
            if !(iv.is_finite() && iv > 0.0) {
                return Err(HetschedError::InvalidConfig(
                    "deviation interval must be positive".into(),
                ));
            }
        }
        if let Some(trace) = &self.trace {
            trace.validate()?;
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        if let Some(obs) = &self.obs {
            obs.validate()?;
        }
        self.dispatch.validate()?;
        if let Some(channels) = &self.channels {
            channels.validate()?;
        }
        if let Some(malleable) = &self.malleable {
            malleable.validate()?;
        }
        if let Some(faults) = &self.faults {
            if let Some(servers) = &faults.servers {
                if let Some(&bad) = servers.iter().find(|&&i| i >= self.speeds.len()) {
                    return Err(HetschedError::InvalidConfig(format!(
                        "faults.servers names computer {bad}, but the fleet has only {}",
                        self.speeds.len()
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_desim::Rng64;

    #[test]
    fn paper_default_values() {
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        assert_eq!(cfg.utilization, 0.70);
        assert_eq!(cfg.horizon, 4.0e6);
        assert_eq!(cfg.warmup, 1.0e6);
        assert!((cfg.mean_job_size() - 76.8).abs() < 0.05);
        cfg.validate().unwrap();
    }

    #[test]
    fn lambda_matches_utilization() {
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0, 3.0]);
        // λ = ρ μ Σs ⇒ ρ = λ / (μ Σs)
        let rho = cfg.lambda() / (cfg.mu() * cfg.total_speed());
        assert!((rho - 0.70).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_produces_1_to_2_million_jobs() {
        // §4.1: "This is sufficient to generate a total of 1 to 2 million
        // jobs." Verify the default config is in that ballpark.
        let cfg = ClusterConfig::paper_default(&[
            1.0, 1.0, 1.0, 1.0, 1.0, 1.5, 1.5, 1.5, 1.5, 2.0, 2.0, 2.0, 5.0, 10.0, 12.0,
        ]);
        let expected_jobs = cfg.lambda() * cfg.horizon;
        assert!(
            (1.0e6..2.1e6).contains(&expected_jobs),
            "expected 1–2M jobs, got {expected_jobs:.0}"
        );
    }

    #[test]
    fn scaled_shrinks_horizon_and_warmup() {
        let cfg = ClusterConfig::paper_default(&[1.0]).scaled(0.1);
        assert_eq!(cfg.horizon, 4.0e5);
        assert_eq!(cfg.warmup, 1.0e5);
    }

    #[test]
    fn validation_catches_errors() {
        let good = ClusterConfig::paper_default(&[1.0]);
        assert!(good.clone().with_utilization(1.0).validate().is_err());
        assert!(good.clone().with_utilization(-0.1).validate().is_err());
        let mut bad = good.clone();
        bad.speeds.clear();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.warmup = bad.horizon;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.deviation_interval = Some(0.0);
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.faults = Some(FaultSpec::exponential(0.0, 10.0));
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.obs = Some(hetsched_obs::ObsSpec::every(-5.0));
        assert!(bad.validate().is_err());
        let mut bad = good;
        bad.dispatch.dispatchers = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validation_errors_are_typed() {
        let good = ClusterConfig::paper_default(&[1.0]);
        let mut bad = good.clone();
        bad.speeds.clear();
        assert!(matches!(bad.validate(), Err(HetschedError::NoComputers)));
        assert!(matches!(
            good.clone().with_utilization(1.2).validate(),
            Err(HetschedError::Saturated)
        ));
        assert!(matches!(
            good.with_utilization(-0.1).validate(),
            Err(HetschedError::InvalidConfig(_))
        ));
    }

    #[test]
    fn config_without_faults_key_deserializes_to_none() {
        // Back-compat: configs serialized before fault injection existed
        // must parse unchanged, with faults disabled.
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut json = serde_json::to_value(&cfg).unwrap();
        json.as_object_mut().unwrap().remove("faults");
        let back: ClusterConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back, cfg);
        assert!(back.faults.is_none());
    }

    #[test]
    fn config_without_event_list_key_deserializes_to_heap() {
        // Back-compat: configs serialized before the backend knob existed
        // must parse unchanged, running on the default heap.
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut json = serde_json::to_value(&cfg).unwrap();
        json.as_object_mut().unwrap().remove("event_list");
        let back: ClusterConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.event_list, EventListBackend::Heap);
    }

    #[test]
    fn config_without_obs_key_deserializes_to_none() {
        // Back-compat: configs serialized before observability existed
        // must parse unchanged, with sampling disabled.
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut json = serde_json::to_value(&cfg).unwrap();
        json.as_object_mut().unwrap().remove("obs");
        let back: ClusterConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back, cfg);
        assert!(back.obs.is_none());
    }

    #[test]
    fn config_without_dispatch_key_deserializes_to_default() {
        // Back-compat: configs serialized before the dispatch tier
        // existed must parse unchanged, with the invisible D=1 tier.
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut json = serde_json::to_value(&cfg).unwrap();
        json.as_object_mut().unwrap().remove("dispatch");
        let back: ClusterConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back, cfg);
        assert!(back.dispatch.is_trivial());
    }

    #[test]
    fn config_without_channels_key_deserializes_to_none() {
        // Back-compat: configs serialized before the unreliable message
        // planes existed must parse unchanged, with reliable channels.
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut json = serde_json::to_value(&cfg).unwrap();
        json.as_object_mut().unwrap().remove("channels");
        let back: ClusterConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back, cfg);
        assert!(back.channels.is_none());
    }

    #[test]
    fn validation_catches_bad_channels_and_fault_targets() {
        let good = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut bad = good.clone();
        bad.channels = Some(crate::channel::ChannelSpec::uniform_loss(1.5));
        assert!(bad.validate().is_err());
        let mut ok = good.clone();
        ok.channels = Some(crate::channel::ChannelSpec::uniform_loss(0.01));
        ok.validate().unwrap();
        // Fault specs restricted to a server subset are bounds-checked
        // against the fleet.
        let mut bad = good.clone();
        bad.faults = Some(FaultSpec::exponential(1e5, 100.0).with_servers(&[2]));
        assert!(bad.validate().is_err());
        let mut ok = good;
        ok.faults = Some(FaultSpec::exponential(1e5, 100.0).with_servers(&[0]));
        ok.validate().unwrap();
    }

    #[test]
    fn event_list_backend_parses_and_displays() {
        assert_eq!(
            "heap".parse::<EventListBackend>(),
            Ok(EventListBackend::Heap)
        );
        assert_eq!(
            "calendar".parse::<EventListBackend>(),
            Ok(EventListBackend::Calendar)
        );
        assert!("fibheap".parse::<EventListBackend>().is_err());
        assert_eq!(EventListBackend::Heap.to_string(), "heap");
        assert_eq!(EventListBackend::Calendar.label(), "calendar");
    }

    #[test]
    fn arrival_specs_build_and_sample() {
        let mut rng = Rng64::from_seed(5);
        for spec in [
            ArrivalSpec::Poisson,
            ArrivalSpec::Hyperexp { cv: 3.0 },
            ArrivalSpec::Mmpp {
                burst_factor: 5.0,
                frac_bursty: 0.2,
                cycle: 100.0,
            },
        ] {
            let mut p = spec.build(0.5);
            assert!((p.mean_rate() - 0.5).abs() < 1e-9, "{spec:?}");
            let g = p.next_interarrival(&mut rng);
            assert!(g >= 0.0 && g.is_finite());
        }
    }

    #[test]
    fn hyperexp_cv_one_equals_poisson_rate() {
        let p = ArrivalSpec::Hyperexp { cv: 1.0 }.build(2.0);
        assert!((p.mean_rate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip() {
        let cfg = ClusterConfig::paper_default(&[1.0, 10.0]);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ClusterConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn fleet_groups_expand_deterministically() {
        let groups = [
            FleetGroup {
                count: 3,
                speed: 1.0,
            },
            FleetGroup {
                count: 0,
                speed: 9.0,
            },
            FleetGroup {
                count: 2,
                speed: 4.0,
            },
        ];
        assert_eq!(expand_fleet(&groups), vec![1.0, 1.0, 1.0, 4.0, 4.0]);
        let cfg = ClusterConfig::paper_default_fleet(&groups);
        assert_eq!(cfg.speeds, vec![1.0, 1.0, 1.0, 4.0, 4.0]);
        cfg.validate().unwrap();
    }

    #[test]
    fn fleet_shorthand_normalizes_into_speeds() {
        // A config may spell the fleet as groups instead of an explicit
        // speeds array; after normalization the two are identical.
        let explicit = ClusterConfig::paper_default(&[1.0, 1.0, 1.0, 4.0, 4.0]);
        let mut json = serde_json::to_value(&explicit).unwrap();
        let obj = json.as_object_mut().unwrap();
        obj.remove("speeds");
        obj.insert(
            "fleet".into(),
            serde_json::from_str(r#"[{"count": 3, "speed": 1.0}, {"count": 2, "speed": 4.0}]"#)
                .unwrap(),
        );
        let mut back: ClusterConfig = serde_json::from_value(json).unwrap();
        assert!(back.speeds.is_empty(), "expansion is deferred");
        back.normalize_fleet();
        assert_eq!(back, explicit);
        // Explicit speeds and fleet groups compose: groups append after
        // the explicit entries, and normalization is idempotent.
        let mut composed = explicit.clone();
        composed.speeds = vec![8.0];
        composed.fleet = vec![FleetGroup {
            count: 2,
            speed: 2.0,
        }];
        composed.normalize_fleet();
        composed.normalize_fleet();
        assert_eq!(composed.speeds, vec![8.0, 2.0, 2.0]);
        assert!(composed.fleet.is_empty());
        // A normalized config round-trips exactly.
        let json = serde_json::to_value(&composed).unwrap();
        let again: ClusterConfig = serde_json::from_value(json).unwrap();
        assert_eq!(again, composed);
    }

    #[test]
    fn config_without_malleable_key_deserializes_to_none() {
        // Back-compat: configs serialized before malleable classes
        // existed must parse unchanged, with the tier disabled.
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut json = serde_json::to_value(&cfg).unwrap();
        json.as_object_mut().unwrap().remove("malleable");
        let back: ClusterConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back, cfg);
        assert!(back.malleable.is_none());
    }

    #[test]
    fn validation_catches_bad_malleable_sections() {
        let good = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut bad = good.clone();
        bad.malleable = Some(crate::malleable::MalleableSpec::power_law(1.5, 0.5));
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.malleable = Some(crate::malleable::MalleableSpec::power_law(0.5, 0.0));
        assert!(bad.validate().is_err());
        let mut ok = good;
        ok.malleable = Some(crate::malleable::MalleableSpec::power_law(0.5, 0.5));
        ok.validate().unwrap();
    }

    #[test]
    fn config_without_per_server_key_deserializes_to_full() {
        // Back-compat: configs serialized before the summary switch
        // existed must parse unchanged, with full per-server detail.
        let cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        let mut json = serde_json::to_value(&cfg).unwrap();
        json.as_object_mut().unwrap().remove("per_server");
        let back: ClusterConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.per_server, PerServerMode::Full);
    }
}

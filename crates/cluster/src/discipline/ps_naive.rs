//! Reference processor sharing — O(n) per event.
//!
//! Maintains explicit remaining work per job and decrements everybody on
//! every advance. Slower than [`super::PsVirtualTime`] but so direct that
//! its correctness is evident by inspection, which makes it the oracle in
//! the differential tests (`discipline::tests::ps_implementations_agree…`)
//! and the `server` benchmark's baseline.

use crate::job::JobId;

use super::{Discipline, EPS_T, EPS_W};

/// Naive PS server state: a flat list of (job, remaining work).
#[derive(Debug, Clone)]
pub struct PsNaive {
    speed: f64,
    last_t: f64,
    jobs: Vec<(JobId, f64)>,
}

impl PsNaive {
    /// Creates an idle server with the given speed.
    ///
    /// # Panics
    /// Panics unless `speed` is positive and finite.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "server speed must be positive and finite, got {speed}"
        );
        PsNaive {
            speed,
            last_t: 0.0,
            jobs: Vec::new(),
        }
    }

    /// Index and remaining work of the job closest to completion, with
    /// JobId tie-break matching the virtual-time implementation.
    fn min_job(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64, JobId)> = None;
        for (i, &(id, rem)) in self.jobs.iter().enumerate() {
            let better = match best {
                None => true,
                Some((_, brem, bid)) => rem < brem || (rem == brem && id < bid),
            };
            if better {
                best = Some((i, rem, id));
            }
        }
        best.map(|(i, rem, _)| (i, rem))
    }
}

impl Discipline for PsNaive {
    fn advance(&mut self, now: f64, completed: &mut Vec<JobId>) {
        debug_assert!(now >= self.last_t - EPS_T, "time ran backwards");
        loop {
            let Some((idx, min_rem)) = self.min_job() else {
                self.last_t = now.max(self.last_t);
                return;
            };
            let n = self.jobs.len() as f64;
            let t_complete = self.last_t + min_rem.max(0.0) * n / self.speed;
            if t_complete <= now + EPS_T {
                let dt = (t_complete - self.last_t).max(0.0);
                let served = dt * self.speed / n;
                for (_, rem) in &mut self.jobs {
                    *rem -= served;
                }
                let (id, rem) = self.jobs.swap_remove(idx);
                debug_assert!(rem.abs() <= EPS_W * n, "popped job had {rem} work left");
                completed.push(id);
                self.last_t = t_complete.min(now.max(self.last_t));
            } else {
                let served = (now - self.last_t).max(0.0) * self.speed / n;
                for (_, rem) in &mut self.jobs {
                    *rem -= served;
                }
                self.last_t = now;
                return;
            }
        }
    }

    fn arrive(&mut self, now: f64, id: JobId, work: f64) {
        debug_assert!(work > 0.0 && work.is_finite(), "bad service demand {work}");
        self.last_t = now.max(self.last_t);
        self.jobs.push((id, work));
    }

    fn next_wakeup(&self) -> Option<f64> {
        self.min_job()
            .map(|(_, rem)| self.last_t + rem.max(0.0) * self.jobs.len() as f64 / self.speed)
    }

    fn queue_len(&self) -> usize {
        self.jobs.len()
    }

    fn work_in_system(&self) -> f64 {
        self.jobs.iter().map(|&(_, rem)| rem.max(0.0)).sum()
    }

    fn drain(&mut self, out: &mut Vec<JobId>) {
        out.extend(self.jobs.iter().map(|&(id, _)| id));
        self.jobs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRecord, JobSlab};

    fn ids(n: usize) -> Vec<JobId> {
        let mut slab = JobSlab::new();
        (0..n)
            .map(|_| {
                slab.insert(JobRecord {
                    size: 1.0,
                    arrival: 0.0,
                    server: 0,
                    counted: true,
                    degraded: false,
                    class: 0,
                })
            })
            .collect()
    }

    #[test]
    fn single_job_completes_on_schedule() {
        let ids = ids(1);
        let mut ps = PsNaive::new(4.0);
        let mut done = Vec::new();
        ps.arrive(0.0, ids[0], 8.0);
        assert_eq!(ps.next_wakeup(), Some(2.0));
        ps.advance(2.0, &mut done);
        assert_eq!(done, vec![ids[0]]);
    }

    #[test]
    fn sharing_delays_completions() {
        let ids = ids(3);
        let mut ps = PsNaive::new(1.0);
        let mut done = Vec::new();
        ps.arrive(0.0, ids[0], 1.0);
        ps.arrive(0.0, ids[1], 2.0);
        ps.arrive(0.0, ids[2], 3.0);
        ps.advance(3.0, &mut done);
        assert_eq!(done, vec![ids[0]]);
        ps.advance(5.0, &mut done);
        assert_eq!(done, vec![ids[0], ids[1]]);
        ps.advance(6.0, &mut done);
        assert_eq!(done.len(), 3);
    }

    #[test]
    fn partial_advance_decrements_everyone() {
        let ids = ids(2);
        let mut ps = PsNaive::new(2.0);
        let mut done = Vec::new();
        ps.arrive(0.0, ids[0], 4.0);
        ps.arrive(0.0, ids[1], 4.0);
        ps.advance(1.0, &mut done);
        assert!(done.is_empty());
        // 1 s at rate 2/2 = 1 per job: 3 work units left each.
        assert!((ps.work_in_system() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn idle_server_reports_no_wakeup() {
        let ps = PsNaive::new(1.0);
        assert_eq!(ps.next_wakeup(), None);
        assert_eq!(ps.queue_len(), 0);
        assert_eq!(ps.work_in_system(), 0.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn rejects_nonpositive_speed() {
        PsNaive::new(-1.0);
    }
}

//! First-come-first-served discipline.
//!
//! Not used by the paper's main experiments (its computers are
//! preemptive), but essential for the discipline ablation: under
//! heavy-tailed job sizes FCFS lets huge jobs block small ones, which is
//! precisely the effect PS avoids and the reason the paper's mean response
//! *ratio* is well-behaved. Comparing PS and FCFS on the same workload
//! quantifies that.

use std::collections::VecDeque;

use crate::job::JobId;

use super::{Discipline, EPS_T};

/// FCFS server state: a queue where only the head receives service.
#[derive(Debug, Clone)]
pub struct Fcfs {
    speed: f64,
    last_t: f64,
    queue: VecDeque<(JobId, f64)>,
}

impl Fcfs {
    /// Creates an idle server with the given speed.
    ///
    /// # Panics
    /// Panics unless `speed` is positive and finite.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "server speed must be positive and finite, got {speed}"
        );
        Fcfs {
            speed,
            last_t: 0.0,
            queue: VecDeque::new(),
        }
    }
}

impl Discipline for Fcfs {
    fn advance(&mut self, now: f64, completed: &mut Vec<JobId>) {
        debug_assert!(now >= self.last_t - EPS_T, "time ran backwards");
        loop {
            let Some(&(id, rem)) = self.queue.front() else {
                self.last_t = now.max(self.last_t);
                return;
            };
            let t_complete = self.last_t + rem.max(0.0) / self.speed;
            if t_complete <= now + EPS_T {
                self.queue.pop_front();
                completed.push(id);
                self.last_t = t_complete.min(now.max(self.last_t));
            } else {
                let served = (now - self.last_t).max(0.0) * self.speed;
                self.queue.front_mut().expect("checked non-empty").1 = rem - served;
                self.last_t = now;
                return;
            }
        }
    }

    fn arrive(&mut self, now: f64, id: JobId, work: f64) {
        debug_assert!(work > 0.0 && work.is_finite(), "bad service demand {work}");
        self.last_t = now.max(self.last_t);
        self.queue.push_back((id, work));
    }

    fn next_wakeup(&self) -> Option<f64> {
        self.queue
            .front()
            .map(|&(_, rem)| self.last_t + rem.max(0.0) / self.speed)
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn work_in_system(&self) -> f64 {
        self.queue.iter().map(|&(_, rem)| rem.max(0.0)).sum()
    }

    fn drain(&mut self, out: &mut Vec<JobId>) {
        out.extend(self.queue.iter().map(|&(id, _)| id));
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRecord, JobSlab};

    fn ids(n: usize) -> Vec<JobId> {
        let mut slab = JobSlab::new();
        (0..n)
            .map(|_| {
                slab.insert(JobRecord {
                    size: 1.0,
                    arrival: 0.0,
                    server: 0,
                    counted: true,
                    degraded: false,
                    class: 0,
                })
            })
            .collect()
    }

    #[test]
    fn serves_in_arrival_order() {
        let ids = ids(3);
        let mut f = Fcfs::new(1.0);
        let mut done = Vec::new();
        f.arrive(0.0, ids[0], 3.0); // head, even though largest
        f.arrive(0.0, ids[1], 1.0);
        f.arrive(0.0, ids[2], 2.0);
        f.advance(10.0, &mut done);
        assert_eq!(done, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn completion_times_are_cumulative() {
        let ids = ids(2);
        let mut f = Fcfs::new(2.0);
        let mut done = Vec::new();
        f.arrive(0.0, ids[0], 4.0);
        f.arrive(0.0, ids[1], 2.0);
        assert_eq!(f.next_wakeup(), Some(2.0));
        f.advance(2.0, &mut done);
        assert_eq!(done, vec![ids[0]]);
        assert_eq!(f.next_wakeup(), Some(3.0));
        f.advance(3.0, &mut done);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn head_of_line_blocking() {
        // A huge head job delays a tiny one — the FCFS pathology.
        let ids = ids(2);
        let mut f = Fcfs::new(1.0);
        let mut done = Vec::new();
        f.arrive(0.0, ids[0], 100.0);
        f.arrive(0.0, ids[1], 0.1);
        f.advance(99.0, &mut done);
        assert!(done.is_empty(), "tiny job must wait behind the huge one");
        f.advance(100.2, &mut done);
        assert_eq!(done, vec![ids[0], ids[1]]);
    }

    #[test]
    fn partial_service_of_head() {
        let ids = ids(1);
        let mut f = Fcfs::new(1.0);
        let mut done = Vec::new();
        f.arrive(0.0, ids[0], 5.0);
        f.advance(2.0, &mut done);
        assert!((f.work_in_system() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_gap_between_jobs() {
        let ids = ids(2);
        let mut f = Fcfs::new(1.0);
        let mut done = Vec::new();
        f.arrive(0.0, ids[0], 1.0);
        f.advance(1.0, &mut done);
        assert_eq!(done.len(), 1);
        f.advance(5.0, &mut done); // idle
        f.arrive(5.0, ids[1], 1.0);
        assert_eq!(f.next_wakeup(), Some(6.0));
    }
}

//! Preemptive round-robin with a finite quantum.
//!
//! The paper's literal processor model (§4.1): the run queue rotates, the
//! head executes for up to `quantum` wall-clock seconds, then is preempted
//! and re-queued. As `quantum → 0` the discipline converges to processor
//! sharing (verified by test); with a large quantum it approaches FCFS.
//! The discipline ablation uses this to confirm the analysis' PS
//! assumption is harmless for realistic quanta.

use std::collections::VecDeque;

use crate::job::JobId;

use super::{Discipline, EPS_T, EPS_W};

/// Quantum-based round-robin server state.
#[derive(Debug, Clone)]
pub struct QuantumRr {
    speed: f64,
    quantum: f64,
    last_t: f64,
    /// Head is the currently executing job.
    queue: VecDeque<(JobId, f64)>,
    /// Wall-clock time the head has used of its current quantum.
    slice_used: f64,
}

impl QuantumRr {
    /// Creates an idle server with the given speed and quantum
    /// (wall-clock seconds per slice).
    ///
    /// # Panics
    /// Panics unless both parameters are positive and finite.
    pub fn new(speed: f64, quantum: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "server speed must be positive and finite, got {speed}"
        );
        assert!(
            quantum.is_finite() && quantum > 0.0,
            "quantum must be positive and finite, got {quantum}"
        );
        QuantumRr {
            speed,
            quantum,
            last_t: 0.0,
            queue: VecDeque::new(),
            slice_used: 0.0,
        }
    }

    /// The configured quantum in seconds.
    pub fn quantum(&self) -> f64 {
        self.quantum
    }
}

impl Discipline for QuantumRr {
    fn advance(&mut self, now: f64, completed: &mut Vec<JobId>) {
        debug_assert!(now >= self.last_t - EPS_T, "time ran backwards");
        loop {
            let Some(&(id, rem)) = self.queue.front() else {
                self.last_t = now.max(self.last_t);
                self.slice_used = 0.0;
                return;
            };
            let wall_to_complete = rem.max(0.0) / self.speed;
            let wall_in_slice = (self.quantum - self.slice_used).max(0.0);
            let step = wall_to_complete.min(wall_in_slice);
            let t_next = self.last_t + step;
            if t_next <= now + EPS_T {
                // Boundary reached inside the window: completion wins ties
                // with rotation (a finished job never rotates).
                let served = step * self.speed;
                self.last_t = t_next.min(now.max(self.last_t));
                if rem - served <= EPS_W {
                    self.queue.pop_front();
                    completed.push(id);
                } else {
                    let mut entry = self.queue.pop_front().expect("checked non-empty");
                    entry.1 = rem - served;
                    self.queue.push_back(entry);
                }
                self.slice_used = 0.0;
            } else {
                let dt = (now - self.last_t).max(0.0);
                self.queue.front_mut().expect("checked non-empty").1 = rem - dt * self.speed;
                self.slice_used += dt;
                self.last_t = now;
                return;
            }
        }
    }

    fn arrive(&mut self, now: f64, id: JobId, work: f64) {
        debug_assert!(work > 0.0 && work.is_finite(), "bad service demand {work}");
        self.last_t = now.max(self.last_t);
        self.queue.push_back((id, work));
    }

    fn next_wakeup(&self) -> Option<f64> {
        self.queue.front().map(|&(_, rem)| {
            let wall_to_complete = rem.max(0.0) / self.speed;
            let wall_in_slice = (self.quantum - self.slice_used).max(0.0);
            self.last_t + wall_to_complete.min(wall_in_slice)
        })
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn work_in_system(&self) -> f64 {
        self.queue.iter().map(|&(_, rem)| rem.max(0.0)).sum()
    }

    fn drain(&mut self, out: &mut Vec<JobId>) {
        out.extend(self.queue.iter().map(|&(id, _)| id));
        self.queue.clear();
        self.slice_used = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRecord, JobSlab};

    fn ids(n: usize) -> Vec<JobId> {
        let mut slab = JobSlab::new();
        (0..n)
            .map(|_| {
                slab.insert(JobRecord {
                    size: 1.0,
                    arrival: 0.0,
                    server: 0,
                    counted: true,
                    degraded: false,
                    class: 0,
                })
            })
            .collect()
    }

    /// Drains all internal events up to `horizon`, firing at each wakeup.
    fn drain(rr: &mut QuantumRr, horizon: f64, done: &mut Vec<JobId>) {
        while let Some(w) = rr.next_wakeup() {
            if w > horizon {
                break;
            }
            rr.advance(w, done);
        }
        rr.advance(horizon, done);
    }

    #[test]
    fn single_short_job_completes_within_first_quantum() {
        let ids = ids(1);
        let mut rr = QuantumRr::new(2.0, 1.0);
        let mut done = Vec::new();
        rr.arrive(0.0, ids[0], 1.0); // 0.5 s at speed 2 < quantum 1 s
        assert_eq!(rr.next_wakeup(), Some(0.5));
        rr.advance(0.5, &mut done);
        assert_eq!(done, vec![ids[0]]);
    }

    #[test]
    fn jobs_alternate_in_quantum_slices() {
        // Two jobs of 2 work units, speed 1, quantum 1: A runs [0,1),
        // B [1,2), A [2,3) completing, B [3,4) completing.
        let ids = ids(2);
        let mut rr = QuantumRr::new(1.0, 1.0);
        let mut done = Vec::new();
        rr.arrive(0.0, ids[0], 2.0);
        rr.arrive(0.0, ids[1], 2.0);
        drain(&mut rr, 2.5, &mut done);
        assert!(done.is_empty(), "no completion before t=3, got {done:?}");
        drain(&mut rr, 3.0, &mut done);
        assert_eq!(done, vec![ids[0]]);
        drain(&mut rr, 4.0, &mut done);
        assert_eq!(done, vec![ids[0], ids[1]]);
    }

    #[test]
    fn short_job_preempts_long_job_quickly() {
        // Long job running; short job arrives and must start within one
        // quantum (the preemption the paper's processors provide).
        let ids = ids(2);
        let mut rr = QuantumRr::new(1.0, 0.5);
        let mut done = Vec::new();
        rr.arrive(0.0, ids[0], 100.0);
        rr.advance(0.25, &mut done); // mid-slice
        rr.arrive(0.25, ids[1], 0.4);
        // Slice ends at 0.5; short job runs [0.5, 0.9) and completes.
        drain(&mut rr, 1.0, &mut done);
        assert_eq!(done, vec![ids[1]]);
    }

    #[test]
    fn completion_exactly_at_quantum_boundary() {
        let ids = ids(2);
        let mut rr = QuantumRr::new(1.0, 1.0);
        let mut done = Vec::new();
        rr.arrive(0.0, ids[0], 1.0); // exactly one quantum of work
        rr.arrive(0.0, ids[1], 1.0);
        drain(&mut rr, 2.0, &mut done);
        assert_eq!(done, vec![ids[0], ids[1]]);
    }

    #[test]
    fn large_quantum_behaves_like_fcfs() {
        let ids = ids(3);
        let mut rr = QuantumRr::new(1.0, 1e6);
        let mut done = Vec::new();
        rr.arrive(0.0, ids[0], 5.0);
        rr.arrive(0.0, ids[1], 1.0);
        rr.arrive(0.0, ids[2], 2.0);
        drain(&mut rr, 10.0, &mut done);
        assert_eq!(done, vec![ids[0], ids[1], ids[2]]);
    }

    #[test]
    fn work_is_conserved() {
        let ids = ids(2);
        let mut rr = QuantumRr::new(2.0, 0.3);
        let mut done = Vec::new();
        rr.arrive(0.0, ids[0], 3.0);
        rr.arrive(0.0, ids[1], 3.0);
        drain(&mut rr, 1.0, &mut done);
        // 1 s at speed 2 = 2 work units served in total.
        assert!((rr.work_in_system() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn rejects_zero_quantum() {
        QuantumRr::new(1.0, 0.0);
    }
}

//! Exact processor sharing via virtual time — O(log n) per event.
//!
//! With `n` active jobs a speed-`s` PS server gives each job service at
//! rate `s/n`. Define the *virtual time* `V(t)` with `dV/dt = s/n(t)`:
//! every active job's remaining work shrinks at exactly `dV/dt`, so a job
//! arriving at virtual time `V₀` with demand `w` completes when
//! `V = V₀ + w` — a value fixed at arrival. Keeping jobs in an ordered set
//! keyed by their finish virtual time gives the next completion in O(log n)
//! and makes each arrival/departure O(log n), versus O(n) for the obvious
//! "decrement everybody" implementation ([`super::PsNaive`], kept as a
//! differential-testing oracle).

use std::collections::BTreeSet;

use crate::job::JobId;

use super::{Discipline, EPS_T};

/// Exact PS server state.
#[derive(Debug, Clone)]
pub struct PsVirtualTime {
    speed: f64,
    /// Virtual time: cumulative per-job service since the start of the
    /// run (speed-1 work units).
    v: f64,
    /// Physical time of the last state update.
    last_t: f64,
    /// Active jobs keyed by (finish-virtual-time bits, id). Finish times
    /// are non-negative finite f64s, so their IEEE-754 bit patterns order
    /// identically to the values.
    queue: BTreeSet<(u64, JobId)>,
}

#[inline]
fn key_bits(v: f64) -> u64 {
    debug_assert!(
        v.is_finite() && v >= 0.0,
        "virtual time must be ≥ 0, got {v}"
    );
    v.to_bits()
}

impl PsVirtualTime {
    /// Creates an idle PS server with the given speed.
    ///
    /// # Panics
    /// Panics unless `speed` is positive and finite.
    pub fn new(speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "server speed must be positive and finite, got {speed}"
        );
        PsVirtualTime {
            speed,
            v: 0.0,
            last_t: 0.0,
            queue: BTreeSet::new(),
        }
    }

    /// The server's relative speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    #[inline]
    fn min_finish(&self) -> Option<f64> {
        self.queue
            .iter()
            .next()
            .map(|&(bits, _)| f64::from_bits(bits))
    }
}

impl Discipline for PsVirtualTime {
    fn advance(&mut self, now: f64, completed: &mut Vec<JobId>) {
        debug_assert!(now >= self.last_t - EPS_T, "time ran backwards");
        loop {
            let Some(fv) = self.min_finish() else {
                self.last_t = now.max(self.last_t);
                return;
            };
            let n = self.queue.len() as f64;
            let t_complete = self.last_t + (fv - self.v).max(0.0) * n / self.speed;
            if t_complete <= now + EPS_T {
                // The earliest job finishes within the window: advance the
                // virtual clock exactly to its finish value and pop it.
                let &(bits, id) = self.queue.iter().next().expect("non-empty");
                self.queue.remove(&(bits, id));
                self.v = fv;
                self.last_t = t_complete.min(now.max(self.last_t));
                completed.push(id);
            } else {
                self.v += (now - self.last_t).max(0.0) * self.speed / n;
                self.last_t = now;
                return;
            }
        }
    }

    fn arrive(&mut self, now: f64, id: JobId, work: f64) {
        debug_assert!(work > 0.0 && work.is_finite(), "bad service demand {work}");
        debug_assert!(
            (now - self.last_t).abs() <= EPS_T || self.queue.is_empty(),
            "arrive() without a preceding advance() to now"
        );
        self.last_t = now.max(self.last_t);
        let inserted = self.queue.insert((key_bits(self.v + work), id));
        debug_assert!(inserted, "duplicate job id in PS queue");
    }

    fn next_wakeup(&self) -> Option<f64> {
        self.min_finish().map(|fv| {
            let n = self.queue.len() as f64;
            self.last_t + (fv - self.v).max(0.0) * n / self.speed
        })
    }

    fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn work_in_system(&self) -> f64 {
        self.queue
            .iter()
            .map(|&(bits, _)| f64::from_bits(bits) - self.v)
            .sum()
    }

    fn drain(&mut self, out: &mut Vec<JobId>) {
        // BTreeSet iteration is ordered, so the eviction order is
        // deterministic. The virtual clock is retained: it is monotone
        // state, not per-job state.
        out.extend(self.queue.iter().map(|&(_, id)| id));
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRecord, JobSlab};

    fn ids(n: usize) -> Vec<JobId> {
        let mut slab = JobSlab::new();
        (0..n)
            .map(|_| {
                slab.insert(JobRecord {
                    size: 1.0,
                    arrival: 0.0,
                    server: 0,
                    counted: true,
                    degraded: false,
                    class: 0,
                })
            })
            .collect()
    }

    #[test]
    fn single_job_runs_at_full_speed() {
        let ids = ids(1);
        let mut ps = PsVirtualTime::new(2.0);
        let mut done = Vec::new();
        ps.advance(0.0, &mut done);
        ps.arrive(0.0, ids[0], 4.0);
        assert_eq!(ps.next_wakeup(), Some(2.0)); // 4 units of work at speed 2
        ps.advance(2.0, &mut done);
        assert_eq!(done, vec![ids[0]]);
        assert_eq!(ps.queue_len(), 0);
        assert_eq!(ps.next_wakeup(), None);
    }

    #[test]
    fn two_equal_jobs_share_equally() {
        let ids = ids(2);
        let mut ps = PsVirtualTime::new(1.0);
        let mut done = Vec::new();
        ps.advance(0.0, &mut done);
        ps.arrive(0.0, ids[0], 1.0);
        ps.arrive(0.0, ids[1], 1.0);
        // Each receives rate 1/2 ⇒ both done at t = 2.
        ps.advance(2.0 + 1e-12, &mut done);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn late_arrival_slows_first_job() {
        let ids = ids(2);
        let mut ps = PsVirtualTime::new(1.0);
        let mut done = Vec::new();
        ps.arrive(0.0, ids[0], 2.0);
        ps.advance(1.0, &mut done); // job 0 has 1 unit left
        ps.arrive(1.0, ids[1], 3.0);
        // Shared service: job 0 needs 1 more unit at rate 1/2 ⇒ t = 3.
        assert!((ps.next_wakeup().unwrap() - 3.0).abs() < 1e-9);
        ps.advance(3.0, &mut done);
        assert_eq!(done, vec![ids[0]]);
        // Job 1: served 1 unit by t=3, 2 left alone at rate 1 ⇒ t = 5.
        assert!((ps.next_wakeup().unwrap() - 5.0).abs() < 1e-9);
        ps.advance(5.0, &mut done);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn completion_order_is_by_remaining_work() {
        let ids = ids(3);
        let mut ps = PsVirtualTime::new(1.0);
        let mut done = Vec::new();
        ps.arrive(0.0, ids[0], 3.0);
        ps.arrive(0.0, ids[1], 1.0);
        ps.arrive(0.0, ids[2], 2.0);
        ps.advance(100.0, &mut done);
        assert_eq!(done, vec![ids[1], ids[2], ids[0]]);
    }

    #[test]
    fn three_way_share_timing() {
        // Jobs of work 1, 2, 3 at speed 1, all at t=0.
        // Job A (1): finishes when each has received 1 unit ⇒ t = 3.
        // Job B (2): then rate 1/2 for 1 more unit ⇒ t = 3 + 2 = 5.
        // Job C (3): then alone, 1 more unit ⇒ t = 6.
        let ids = ids(3);
        let mut ps = PsVirtualTime::new(1.0);
        let mut done = Vec::new();
        ps.arrive(0.0, ids[0], 1.0);
        ps.arrive(0.0, ids[1], 2.0);
        ps.arrive(0.0, ids[2], 3.0);
        for (expect_t, expect_id) in [(3.0, ids[0]), (5.0, ids[1]), (6.0, ids[2])] {
            let w = ps.next_wakeup().unwrap();
            assert!((w - expect_t).abs() < 1e-9, "wake {w}, expected {expect_t}");
            done.clear();
            ps.advance(w, &mut done);
            assert_eq!(done, vec![expect_id]);
        }
    }

    #[test]
    fn work_in_system_tracks_demand() {
        let ids = ids(2);
        let mut ps = PsVirtualTime::new(2.0);
        let mut done = Vec::new();
        ps.arrive(0.0, ids[0], 4.0);
        ps.arrive(0.0, ids[1], 2.0);
        assert!((ps.work_in_system() - 6.0).abs() < 1e-12);
        ps.advance(1.0, &mut done); // 2 seconds of speed-2 service = 2 work units... per job 1 unit each
        assert!((ps.work_in_system() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn idle_period_preserves_state() {
        let ids = ids(1);
        let mut ps = PsVirtualTime::new(1.0);
        let mut done = Vec::new();
        ps.advance(10.0, &mut done); // idle until t=10
        ps.arrive(10.0, ids[0], 1.0);
        assert_eq!(ps.next_wakeup(), Some(11.0));
    }

    #[test]
    fn simultaneous_equal_jobs_tiebreak_deterministically() {
        let ids = ids(2);
        let mut ps = PsVirtualTime::new(1.0);
        let mut done = Vec::new();
        ps.arrive(0.0, ids[0], 1.0);
        ps.arrive(0.0, ids[1], 1.0);
        ps.advance(10.0, &mut done);
        // Equal finish virtual times: lower JobId first.
        assert_eq!(done, vec![ids[0], ids[1]]);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn rejects_zero_speed() {
        PsVirtualTime::new(0.0);
    }
}

//! Per-computer service disciplines.
//!
//! §4.1: "All the computers apply preemptive round-robin processor
//! scheduling", while the analysis (§2.3) models each computer as
//! M/M/1-PS. Processor sharing *is* preemptive round-robin in the limit of
//! a vanishing quantum, so the simulator's default discipline is an exact
//! PS implementation; a finite-quantum round-robin and FCFS are provided
//! for the discipline ablation, and a naive O(n)-per-event PS serves as a
//! differential-testing oracle for the O(log n) virtual-time PS.
//!
//! ## The discipline contract
//!
//! A discipline is a passive object driven by its [`crate::server::Server`]:
//!
//! 1. `advance(now, out)` — move internal time forward to `now`,
//!    appending every job that completes at or before `now` to `out`
//!    in completion order.
//! 2. `arrive(now, id, work)` — admit a job with `work` seconds of
//!    service demand *at speed 1* (the discipline scales by the server
//!    speed). Callers must `advance(now, …)` first.
//! 3. `next_wakeup()` — the absolute time of the next internal event
//!    (completion or quantum rotation) if nothing else changes. The
//!    server schedules an engine timer for it, tagged with an epoch so
//!    stale timers are ignored after arrivals.

mod fcfs;
mod ps;
mod ps_naive;
mod quantum_rr;

pub use fcfs::Fcfs;
pub use ps::PsVirtualTime;
pub use ps_naive::PsNaive;
pub use quantum_rr::QuantumRr;

use serde::{Deserialize, Serialize};

use crate::job::JobId;

/// Slack used when comparing computed completion instants with event
/// timestamps. Job sizes are ≥ seconds; a nanosecond of slack absorbs
/// floating-point drift without affecting any statistic.
pub(crate) const EPS_T: f64 = 1e-9;

/// Slack on remaining work (in speed-1 seconds).
pub(crate) const EPS_W: f64 = 1e-9;

/// A per-computer scheduling discipline.
pub trait Discipline {
    /// Advances internal time to `now`, appending completed jobs to
    /// `completed` in completion order.
    fn advance(&mut self, now: f64, completed: &mut Vec<JobId>);

    /// Admits a job with `work` seconds of speed-1 service demand.
    /// The caller must have advanced to `now` first.
    fn arrive(&mut self, now: f64, id: JobId, work: f64);

    /// Absolute time of the next internal event, or `None` when idle.
    fn next_wakeup(&self) -> Option<f64>;

    /// Number of jobs currently in the system (the paper's run-queue
    /// length load index).
    fn queue_len(&self) -> usize;

    /// Total remaining work across all jobs, in speed-1 seconds
    /// (diagnostics/testing).
    fn work_in_system(&self) -> f64;

    /// Evicts every resident job (a server crash), appending their ids
    /// to `out` in a deterministic order. The discipline ends up empty;
    /// the caller must have advanced to the crash instant first so jobs
    /// completing before it are credited as completions.
    fn drain(&mut self, out: &mut Vec<JobId>);
}

/// Serde-friendly choice of discipline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
#[derive(Default)]
pub enum DisciplineSpec {
    /// Exact processor sharing (virtual-time implementation) — the
    /// default, matching the paper's analysis.
    #[default]
    ProcessorSharing,
    /// O(n)-per-event reference PS (testing oracle).
    PsReference,
    /// Preemptive round-robin with a wall-clock quantum in seconds — the
    /// paper's literal processor model.
    QuantumRoundRobin {
        /// Slice length in wall-clock seconds.
        quantum: f64,
    },
    /// First-come-first-served (ablation).
    Fcfs,
}

impl DisciplineSpec {
    /// Materializes the discipline for a server of the given speed.
    pub fn build(self, speed: f64) -> DisciplineKind {
        match self {
            DisciplineSpec::ProcessorSharing => DisciplineKind::Ps(PsVirtualTime::new(speed)),
            DisciplineSpec::PsReference => DisciplineKind::PsNaive(PsNaive::new(speed)),
            DisciplineSpec::QuantumRoundRobin { quantum } => {
                DisciplineKind::QuantumRr(QuantumRr::new(speed, quantum))
            }
            DisciplineSpec::Fcfs => DisciplineKind::Fcfs(Fcfs::new(speed)),
        }
    }
}

/// Enum dispatch over the concrete disciplines (keeps servers homogeneous
/// in type and the hot path free of virtual calls).
#[derive(Debug, Clone)]
pub enum DisciplineKind {
    /// Exact PS.
    Ps(PsVirtualTime),
    /// Reference PS.
    PsNaive(PsNaive),
    /// Finite-quantum round-robin.
    QuantumRr(QuantumRr),
    /// First-come-first-served.
    Fcfs(Fcfs),
}

macro_rules! fwd {
    ($self:expr, $d:ident => $body:expr) => {
        match $self {
            DisciplineKind::Ps($d) => $body,
            DisciplineKind::PsNaive($d) => $body,
            DisciplineKind::QuantumRr($d) => $body,
            DisciplineKind::Fcfs($d) => $body,
        }
    };
}

impl Discipline for DisciplineKind {
    fn advance(&mut self, now: f64, completed: &mut Vec<JobId>) {
        fwd!(self, d => d.advance(now, completed))
    }

    fn arrive(&mut self, now: f64, id: JobId, work: f64) {
        fwd!(self, d => d.arrive(now, id, work))
    }

    fn next_wakeup(&self) -> Option<f64> {
        fwd!(self, d => d.next_wakeup())
    }

    fn queue_len(&self) -> usize {
        fwd!(self, d => d.queue_len())
    }

    fn work_in_system(&self) -> f64 {
        fwd!(self, d => d.work_in_system())
    }

    fn drain(&mut self, out: &mut Vec<JobId>) {
        fwd!(self, d => d.drain(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRecord, JobSlab};
    use hetsched_desim::Rng64;

    fn mk_ids(n: usize) -> (JobSlab, Vec<JobId>) {
        let mut slab = JobSlab::new();
        let ids = (0..n)
            .map(|_| {
                slab.insert(JobRecord {
                    size: 1.0,
                    arrival: 0.0,
                    server: 0,
                    counted: true,
                    degraded: false,
                    class: 0,
                })
            })
            .collect();
        (slab, ids)
    }

    /// Drives a discipline with a random arrival schedule and returns
    /// (completion order, completion times) by polling next_wakeup.
    fn run_schedule(
        disc: &mut dyn Discipline,
        arrivals: &[(f64, JobId, f64)],
    ) -> Vec<(JobId, f64)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        let mut idx = 0;
        loop {
            let next_arrival = arrivals.get(idx).map(|&(t, _, _)| t);
            let next_wake = disc.next_wakeup();
            let next = match (next_arrival, next_wake) {
                (Some(a), Some(w)) => a.min(w),
                (Some(a), None) => a,
                (None, Some(w)) => w,
                (None, None) => break,
            };
            let now = next;
            buf.clear();
            disc.advance(now, &mut buf);
            for &id in &buf {
                out.push((id, now));
            }
            while idx < arrivals.len() && arrivals[idx].0 <= now + EPS_T {
                let (_, id, work) = arrivals[idx];
                disc.arrive(now, id, work);
                idx += 1;
            }
        }
        out
    }

    #[test]
    fn spec_builds_every_kind() {
        let specs = [
            DisciplineSpec::ProcessorSharing,
            DisciplineSpec::PsReference,
            DisciplineSpec::QuantumRoundRobin { quantum: 0.1 },
            DisciplineSpec::Fcfs,
        ];
        for spec in specs {
            let d = spec.build(2.0);
            assert_eq!(d.queue_len(), 0);
            assert_eq!(d.next_wakeup(), None);
        }
    }

    #[test]
    fn default_is_processor_sharing() {
        assert_eq!(DisciplineSpec::default(), DisciplineSpec::ProcessorSharing);
    }

    /// Differential test: all preemptive disciplines must agree with the
    /// reference PS on *total* work conservation, and the two PS
    /// implementations must agree on completion times exactly.
    #[test]
    fn ps_implementations_agree_on_random_schedules() {
        let mut rng = Rng64::from_seed(77);
        for trial in 0..50 {
            let n = 1 + (rng.below(20) as usize);
            let (_slab, ids) = mk_ids(n);
            let mut t = 0.0;
            let arrivals: Vec<(f64, JobId, f64)> = ids
                .iter()
                .map(|&id| {
                    t += rng.exponential(1.0);
                    (t, id, 0.1 + rng.next_f64() * 5.0)
                })
                .collect();
            let speed = 0.5 + rng.next_f64() * 4.0;
            let mut fast = DisciplineSpec::ProcessorSharing.build(speed);
            let mut slow = DisciplineSpec::PsReference.build(speed);
            let a = run_schedule(&mut fast, &arrivals);
            let b = run_schedule(&mut slow, &arrivals);
            assert_eq!(a.len(), b.len(), "trial {trial}");
            for ((ida, ta), (idb, tb)) in a.iter().zip(&b) {
                assert_eq!(ida, idb, "completion order differs (trial {trial})");
                assert!(
                    (ta - tb).abs() < 1e-6,
                    "completion times differ: {ta} vs {tb} (trial {trial})"
                );
            }
        }
    }

    /// Quantum round-robin converges to PS as the quantum shrinks.
    #[test]
    fn quantum_rr_converges_to_ps() {
        let (_slab, ids) = mk_ids(3);
        let arrivals: Vec<(f64, JobId, f64)> =
            vec![(0.0, ids[0], 3.0), (0.5, ids[1], 1.0), (1.0, ids[2], 2.0)];
        let mut ps = DisciplineSpec::ProcessorSharing.build(1.0);
        let ps_out = run_schedule(&mut ps, &arrivals);
        let mut max_gap_small = 0.0f64;
        let mut max_gap_large = 0.0f64;
        for (quantum, max_gap) in [(0.001, &mut max_gap_small), (0.5, &mut max_gap_large)] {
            let mut rr = DisciplineSpec::QuantumRoundRobin { quantum }.build(1.0);
            let rr_out = run_schedule(&mut rr, &arrivals);
            assert_eq!(rr_out.len(), ps_out.len());
            for ((_, ta), (_, tb)) in ps_out.iter().zip(&rr_out) {
                *max_gap = max_gap.max((ta - tb).abs());
            }
        }
        assert!(
            max_gap_small < 0.01,
            "quantum 1 ms should track PS closely, gap {max_gap_small}"
        );
        assert!(max_gap_small < max_gap_large);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Strategy: a random arrival schedule (gaps, works) and a speed.
        fn schedule_strategy() -> impl Strategy<Value = (Vec<(f64, f64)>, f64)> {
            (
                prop::collection::vec((0.0f64..5.0, 0.01f64..10.0), 1..40),
                0.2f64..8.0,
            )
        }

        proptest! {
            /// The O(log n) and O(n) PS implementations agree on
            /// completion order and times for arbitrary schedules.
            #[test]
            fn ps_fast_equals_naive((gaps, speed) in schedule_strategy()) {
                let (_slab, ids) = mk_ids(gaps.len());
                let mut t = 0.0;
                let arrivals: Vec<(f64, JobId, f64)> = gaps
                    .iter()
                    .zip(&ids)
                    .map(|(&(gap, work), &id)| {
                        t += gap;
                        (t, id, work)
                    })
                    .collect();
                let mut fast = DisciplineSpec::ProcessorSharing.build(speed);
                let mut slow = DisciplineSpec::PsReference.build(speed);
                let a = run_schedule(&mut fast, &arrivals);
                let b = run_schedule(&mut slow, &arrivals);
                prop_assert_eq!(a.len(), b.len());
                for ((ida, ta), (idb, tb)) in a.iter().zip(&b) {
                    prop_assert_eq!(ida, idb);
                    prop_assert!((ta - tb).abs() < 1e-6, "{} vs {}", ta, tb);
                }
            }

            /// Every discipline completes every job, never before its
            /// earliest possible finish (arrival + work/speed), and
            /// conserves total work.
            #[test]
            fn all_disciplines_complete_everything((gaps, speed) in schedule_strategy()) {
                let (_slab, ids) = mk_ids(gaps.len());
                let mut t = 0.0;
                let arrivals: Vec<(f64, JobId, f64)> = gaps
                    .iter()
                    .zip(&ids)
                    .map(|(&(gap, work), &id)| {
                        t += gap;
                        (t, id, work)
                    })
                    .collect();
                for spec in [
                    DisciplineSpec::ProcessorSharing,
                    DisciplineSpec::QuantumRoundRobin { quantum: 0.3 },
                    DisciplineSpec::Fcfs,
                ] {
                    let mut d = spec.build(speed);
                    let out = run_schedule(&mut d, &arrivals);
                    prop_assert_eq!(out.len(), arrivals.len(), "{:?}", spec);
                    prop_assert_eq!(d.queue_len(), 0);
                    for &(id, done_at) in &out {
                        let (arr, _, work) = arrivals
                            .iter()
                            .find(|&&(_, jid, _)| jid == id)
                            .copied()
                            .expect("job exists");
                        prop_assert!(
                            done_at + 1e-6 >= arr + work / speed,
                            "{:?}: job finished at {} before lower bound {}",
                            spec, done_at, arr + work / speed
                        );
                    }
                    // Work conservation: last completion can be no earlier
                    // than total work / speed.
                    let total_work: f64 = arrivals.iter().map(|&(_, _, w)| w).sum();
                    let last = out.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
                    prop_assert!(last + 1e-6 >= total_work / speed);
                }
            }
        }
    }

    /// Draining (a crash) empties every discipline and leaves it usable.
    #[test]
    fn drain_evicts_everything_and_discipline_recovers() {
        let (_slab, ids) = mk_ids(4);
        for spec in [
            DisciplineSpec::ProcessorSharing,
            DisciplineSpec::PsReference,
            DisciplineSpec::QuantumRoundRobin { quantum: 0.25 },
            DisciplineSpec::Fcfs,
        ] {
            let mut d = spec.build(2.0);
            let mut evicted = Vec::new();
            let mut buf = Vec::new();
            for (i, &id) in ids.iter().take(3).enumerate() {
                // Disciplines require advancing to `now` before an arrival.
                d.advance(i as f64 * 0.1, &mut buf);
                d.arrive(i as f64 * 0.1, id, 5.0);
            }
            d.advance(0.5, &mut buf);
            assert!(buf.is_empty(), "{spec:?}: nothing finishes by 0.5");
            d.drain(&mut evicted);
            assert_eq!(evicted.len(), 3, "{spec:?}");
            assert_eq!(d.queue_len(), 0, "{spec:?}");
            assert_eq!(d.next_wakeup(), None, "{spec:?}");
            assert_eq!(d.work_in_system(), 0.0, "{spec:?}");
            // The discipline still serves jobs after the crash (repair).
            d.arrive(1.0, ids[3], 2.0);
            d.advance(10.0, &mut buf);
            assert_eq!(buf, vec![ids[3]], "{spec:?}");
        }
    }

    /// All disciplines conserve work: total service time equals total
    /// demand / speed when the server never idles.
    #[test]
    fn work_conservation_across_disciplines() {
        let (_slab, ids) = mk_ids(5);
        // Back-to-back arrivals keep the server busy throughout.
        let arrivals: Vec<(f64, JobId, f64)> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| (i as f64 * 0.1, id, 2.0))
            .collect();
        let total_work = 10.0;
        let speed = 2.0;
        for spec in [
            DisciplineSpec::ProcessorSharing,
            DisciplineSpec::PsReference,
            DisciplineSpec::QuantumRoundRobin { quantum: 0.25 },
            DisciplineSpec::Fcfs,
        ] {
            let mut d = spec.build(speed);
            let out = run_schedule(&mut d, &arrivals);
            assert_eq!(out.len(), 5, "{spec:?}");
            let last = out.last().unwrap().1;
            // Busy period starts at 0 and ends when all work is done.
            assert!(
                (last - total_work / speed).abs() < 1e-6,
                "{spec:?}: busy period ended at {last}, expected {}",
                total_work / speed
            );
        }
    }
}

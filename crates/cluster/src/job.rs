//! Job records and their slab allocator.
//!
//! A full paper-scale run generates 1–2 million jobs, but at utilization
//! 0.7 only a handful are in flight at any instant. [`JobSlab`] keeps
//! in-flight job records in a free-list slab: O(1) insert/remove, stable
//! [`JobId`]s with generation counters so a stale id (a model bug) is
//! detected instead of silently reading a recycled slot.

use hetsched_error::HetschedError;

/// Identifier of an in-flight job: slot index + generation.
///
/// `Ord` is derived so ids can break ties deterministically inside
/// ordered discipline queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId {
    index: u32,
    generation: u32,
}

impl JobId {
    /// Slot index (for diagnostics).
    pub fn index(&self) -> u32 {
        self.index
    }
}

/// What the simulator needs to remember about an in-flight job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobRecord {
    /// Service demand in seconds on an idle speed-1 machine (the paper's
    /// "job size").
    pub size: f64,
    /// Arrival time at the central scheduler.
    pub arrival: f64,
    /// The computer the job was dispatched to.
    pub server: usize,
    /// Whether the job arrived after the warmup period and therefore
    /// counts toward statistics.
    pub counted: bool,
    /// Whether the job experienced churn: it arrived while at least one
    /// server was down, or was resubmitted/restarted after a crash.
    pub degraded: bool,
    /// Stamped malleable class id (see [`crate::malleable`]); `0` is the
    /// rigid background class, and the only value ever stamped when the
    /// malleable section is absent or all-rigid.
    pub class: u16,
}

enum Slot {
    Occupied {
        generation: u32,
        record: JobRecord,
    },
    Free {
        generation: u32,
        next_free: Option<u32>,
    },
}

/// Free-list slab of in-flight jobs.
#[derive(Default)]
pub struct JobSlab {
    slots: Vec<Slot>,
    free_head: Option<u32>,
    live: usize,
    total_inserted: u64,
}

/// Computes the next fresh slot index, or a typed error when the `u32`
/// index space is exhausted (more than `u32::MAX + 1` jobs in flight at
/// once). Split out of `try_insert` so the exhaustion path is testable
/// without allocating four billion slots.
fn fresh_index(slots_len: usize, live: usize, total_inserted: u64) -> Result<u32, HetschedError> {
    u32::try_from(slots_len).map_err(|_| {
        HetschedError::Capacity(format!(
            "job slab index space (u32) full: {live} jobs in flight, \
             {total_inserted} inserted in total — the cluster cannot hold \
             more than {} concurrent jobs",
            u32::MAX as u64 + 1
        ))
    })
}

impl JobSlab {
    /// An empty slab.
    pub fn new() -> Self {
        JobSlab::default()
    }

    /// An empty slab with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        JobSlab {
            slots: Vec::with_capacity(cap),
            ..JobSlab::default()
        }
    }

    /// Inserts a job, returning its id.
    ///
    /// # Panics
    /// Panics when the slab's `u32` index space is exhausted; use
    /// [`JobSlab::try_insert`] to get the typed error instead.
    pub fn insert(&mut self, record: JobRecord) -> JobId {
        self.try_insert(record).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Inserts a job, returning its id, or a typed
    /// [`HetschedError::Capacity`] when more than `u32::MAX + 1` jobs
    /// would be in flight at once.
    pub fn try_insert(&mut self, record: JobRecord) -> Result<JobId, HetschedError> {
        let id = match self.free_head {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                let Slot::Free {
                    generation,
                    next_free,
                } = *slot
                else {
                    unreachable!("free list points at an occupied slot");
                };
                self.free_head = next_free;
                let generation = generation.wrapping_add(1);
                *slot = Slot::Occupied { generation, record };
                JobId { index, generation }
            }
            None => {
                let index = fresh_index(self.slots.len(), self.live, self.total_inserted)?;
                self.slots.push(Slot::Occupied {
                    generation: 0,
                    record,
                });
                JobId {
                    index,
                    generation: 0,
                }
            }
        };
        self.live += 1;
        self.total_inserted += 1;
        Ok(id)
    }

    /// Reads a live job record.
    ///
    /// # Panics
    /// Panics on a stale or never-issued id — that is a simulator bug and
    /// must not be masked.
    pub fn get(&self, id: JobId) -> &JobRecord {
        match self.slots.get(id.index as usize) {
            Some(Slot::Occupied { generation, record }) if *generation == id.generation => record,
            _ => panic!("stale or invalid job id {id:?}"),
        }
    }

    /// Mutable access to a live job record.
    ///
    /// # Panics
    /// Panics on a stale or never-issued id — that is a simulator bug and
    /// must not be masked.
    pub fn get_mut(&mut self, id: JobId) -> &mut JobRecord {
        match self.slots.get_mut(id.index as usize) {
            Some(Slot::Occupied { generation, record }) if *generation == id.generation => record,
            _ => panic!("stale or invalid job id {id:?}"),
        }
    }

    /// Removes a live job, returning its record.
    ///
    /// # Panics
    /// Panics on a stale or never-issued id.
    pub fn remove(&mut self, id: JobId) -> JobRecord {
        let slot = self
            .slots
            .get_mut(id.index as usize)
            .unwrap_or_else(|| panic!("invalid job id {id:?}"));
        match *slot {
            Slot::Occupied { generation, record } if generation == id.generation => {
                *slot = Slot::Free {
                    generation,
                    next_free: self.free_head,
                };
                self.free_head = Some(id.index);
                self.live -= 1;
                record
            }
            _ => panic!("stale job id {id:?}"),
        }
    }

    /// Whether `id` currently names a live job (false for stale or
    /// never-issued ids — used by the channel runtime to detect orphaned
    /// dispatch attempts without panicking).
    pub fn is_live(&self, id: JobId) -> bool {
        matches!(
            self.slots.get(id.index as usize),
            Some(Slot::Occupied { generation, .. }) if *generation == id.generation
        )
    }

    /// Iterates over the live job records (order = slot order; used at
    /// finalize time to count still-in-flight jobs for the conservation
    /// law).
    pub fn iter(&self) -> impl Iterator<Item = &JobRecord> {
        self.slots.iter().filter_map(|slot| match slot {
            Slot::Occupied { record, .. } => Some(record),
            Slot::Free { .. } => None,
        })
    }

    /// Number of live jobs.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no jobs are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of slots ever allocated (high-water mark of concurrency).
    pub fn capacity_used(&self) -> usize {
        self.slots.len()
    }

    /// Total jobs ever inserted.
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: f64) -> JobRecord {
        JobRecord {
            size,
            arrival: 0.0,
            server: 0,
            counted: true,
            degraded: false,
            class: 0,
        }
    }

    #[test]
    fn insert_get_remove() {
        let mut slab = JobSlab::new();
        let a = slab.insert(rec(1.0));
        let b = slab.insert(rec(2.0));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a).size, 1.0);
        assert_eq!(slab.get(b).size, 2.0);
        let removed = slab.remove(a);
        assert_eq!(removed.size, 1.0);
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slots_are_recycled() {
        let mut slab = JobSlab::new();
        let a = slab.insert(rec(1.0));
        slab.remove(a);
        let b = slab.insert(rec(2.0));
        // Same slot, new generation.
        assert_eq!(a.index(), b.index());
        assert_ne!(a, b);
        assert_eq!(slab.capacity_used(), 1);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn stale_id_get_panics() {
        let mut slab = JobSlab::new();
        let a = slab.insert(rec(1.0));
        slab.remove(a);
        slab.insert(rec(2.0));
        slab.get(a);
    }

    #[test]
    #[should_panic(expected = "stale")]
    fn double_remove_panics() {
        let mut slab = JobSlab::new();
        let a = slab.insert(rec(1.0));
        slab.remove(a);
        slab.insert(rec(2.0)); // reoccupies the slot
        slab.remove(a);
    }

    #[test]
    fn high_churn_keeps_capacity_bounded() {
        let mut slab = JobSlab::with_capacity(4);
        for i in 0..10_000 {
            let id = slab.insert(rec(i as f64));
            slab.remove(id);
        }
        assert_eq!(slab.capacity_used(), 1, "churn should reuse one slot");
        assert_eq!(slab.total_inserted(), 10_000);
        assert!(slab.is_empty());
    }

    #[test]
    fn slab_exhaustion_is_a_typed_capacity_error() {
        // The real condition needs > 4e9 concurrent jobs; exercise the
        // extracted index computation instead.
        assert!(fresh_index(12, 12, 40).is_ok());
        assert_eq!(fresh_index(u32::MAX as usize, 5, 10).unwrap(), u32::MAX);
        let err = fresh_index(u32::MAX as usize + 1, 4_294_967_296, 9_999).unwrap_err();
        match &err {
            HetschedError::Capacity(msg) => {
                assert!(msg.contains("4294967296 jobs in flight"), "{msg}");
                assert!(msg.contains("9999 inserted"), "{msg}");
            }
            other => panic!("expected Capacity, got {other:?}"),
        }
        assert!(err.to_string().starts_with("capacity exhausted:"));
    }

    #[test]
    fn try_insert_matches_insert_bookkeeping() {
        let mut slab = JobSlab::new();
        let a = slab.try_insert(rec(1.0)).unwrap();
        assert_eq!(slab.len(), 1);
        assert_eq!(slab.total_inserted(), 1);
        assert_eq!(slab.get(a).size, 1.0);
        slab.remove(a);
        let b = slab.try_insert(rec(2.0)).unwrap();
        assert_eq!(a.index(), b.index());
        assert_ne!(a, b);
    }

    #[test]
    fn is_live_and_iter_track_occupancy() {
        let mut slab = JobSlab::new();
        let a = slab.insert(rec(1.0));
        let b = slab.insert(rec(2.0));
        assert!(slab.is_live(a) && slab.is_live(b));
        slab.remove(a);
        assert!(!slab.is_live(a), "removed id is dead");
        let c = slab.insert(rec(3.0)); // recycles a's slot
        assert!(!slab.is_live(a), "stale generation stays dead");
        assert!(slab.is_live(c));
        let sizes: Vec<f64> = slab.iter().map(|r| r.size).collect();
        assert_eq!(sizes, vec![3.0, 2.0], "slot order, live records only");
    }

    #[test]
    fn interleaved_lifetimes() {
        let mut slab = JobSlab::new();
        let ids: Vec<JobId> = (0..100).map(|i| slab.insert(rec(i as f64))).collect();
        // Remove evens, verify odds intact.
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                slab.remove(id);
            }
        }
        for (i, &id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(slab.get(id).size, i as f64);
            }
        }
        assert_eq!(slab.len(), 50);
        // Reinsert into freed slots.
        for i in 0..50 {
            slab.insert(rec(1000.0 + i as f64));
        }
        assert_eq!(slab.len(), 100);
        assert_eq!(slab.capacity_used(), 100);
    }
}

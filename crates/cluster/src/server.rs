//! A computer in the network: discipline + accounting + timer epochs.
//!
//! [`Server`] wraps a [`DisciplineKind`] with:
//!
//! * **epoch-tagged wake timers** — every arrival invalidates the
//!   previously scheduled completion estimate; instead of cancelling queue
//!   entries, the server bumps an epoch counter and the simulation ignores
//!   wake events whose epoch is stale (the cheap idiom recommended by
//!   `hetsched-desim`);
//! * **utilization and queue-length accounting** — time-weighted signals,
//!   resettable at the end of the warmup period so reported statistics
//!   cover only the measurement window, as in §4.1;
//! * **dispatch/completion counters** — per-computer job counts used for
//!   Table 1's workload-distribution percentages;
//! * **crash/repair state** — an up/down flag with availability and
//!   downtime accounting for the fault-injection layer ([`crate::faults`]).
//!   [`Server::fail`] evicts the resident jobs (the simulation decides
//!   their fate) and [`Server::repair`] brings the computer back empty.

use hetsched_metrics::TimeWeighted;

use crate::discipline::{Discipline, DisciplineKind, DisciplineSpec};
use crate::job::JobId;

/// A simulated computer.
#[derive(Debug, Clone)]
pub struct Server {
    speed: f64,
    disc: DisciplineKind,
    epoch: u64,
    busy: TimeWeighted,
    qlen: TimeWeighted,
    dispatched: u64,
    completed: u64,
    up: bool,
    avail: TimeWeighted,
    crashes: u64,
    down_since: Option<f64>,
    downtime: f64,
    /// Fraction of this server the malleable allocation tier currently
    /// occupies. Stays exactly `0.0` for every run without an active
    /// tier, so the busy signal below is bit-identical to the seed
    /// path's `qlen > 0` indicator.
    tier_share: f64,
}

impl Server {
    /// Creates an idle server.
    ///
    /// # Panics
    /// Panics unless `speed` is positive and finite (delegated to the
    /// discipline constructor).
    pub fn new(speed: f64, spec: DisciplineSpec) -> Self {
        Server {
            speed,
            disc: spec.build(speed),
            epoch: 0,
            busy: TimeWeighted::new(0.0, 0.0),
            qlen: TimeWeighted::new(0.0, 0.0),
            dispatched: 0,
            completed: 0,
            up: true,
            avail: TimeWeighted::new(0.0, 1.0),
            crashes: 0,
            down_since: None,
            downtime: 0.0,
            tier_share: 0.0,
        }
    }

    /// The server's relative speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Current run-queue length (the paper's load index).
    pub fn queue_len(&self) -> usize {
        self.disc.queue_len()
    }

    /// Remaining work in the system, speed-1 seconds.
    pub fn work_in_system(&self) -> f64 {
        self.disc.work_in_system()
    }

    /// Current timer epoch. Wake events carrying an older epoch are stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Invalidates outstanding wake timers and returns the new epoch to
    /// stamp on the replacement timer.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Next internal event time (completion/rotation) if left undisturbed.
    pub fn next_wakeup(&self) -> Option<f64> {
        self.disc.next_wakeup()
    }

    /// Advances the discipline to `now`, appending completions, and
    /// refreshes the time-weighted accounting.
    pub fn advance(&mut self, now: f64, completed: &mut Vec<JobId>) {
        let before = completed.len();
        self.disc.advance(now, completed);
        self.completed += (completed.len() - before) as u64;
        self.refresh(now);
    }

    /// Admits a job with `work` speed-1 seconds of demand. The caller must
    /// have advanced the server to `now` first.
    pub fn arrive(&mut self, now: f64, id: JobId, work: f64) {
        debug_assert!(self.up, "dispatched a job to a down server");
        self.disc.arrive(now, id, work);
        self.dispatched += 1;
        self.refresh(now);
    }

    /// Whether the computer is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Crashes the computer at `now`: evicts every resident job into
    /// `evicted` (deterministic order) and marks the server down. The
    /// caller must have advanced the server to `now` first and decides
    /// what happens to the evicted jobs (lost / resubmitted / restarted).
    pub fn fail(&mut self, now: f64, evicted: &mut Vec<JobId>) {
        debug_assert!(self.up, "fail() on a server that is already down");
        self.refresh(now);
        self.up = false;
        self.crashes += 1;
        self.down_since = Some(now);
        self.disc.drain(evicted);
        self.refresh(now);
    }

    /// Repairs the computer at `now`: it comes back up with an empty run
    /// queue, ready to accept arrivals.
    pub fn repair(&mut self, now: f64) {
        debug_assert!(!self.up, "repair() on a server that is already up");
        self.up = true;
        if let Some(t0) = self.down_since.take() {
            self.downtime += now - t0;
        }
        self.refresh(now);
    }

    fn refresh(&mut self, now: f64) {
        let n = self.disc.queue_len();
        // Tier jobs occupy fractional cores without entering the run
        // queue; their share contributes to the busy signal when the
        // queue itself is idle. `tier_share` is exactly 0.0 whenever no
        // allocation tier is active, preserving the seed path's signal.
        let busy = if n > 0 { 1.0 } else { self.tier_share };
        self.busy.update(now, busy);
        self.qlen.update(now, n as f64);
        self.avail.update(now, if self.up { 1.0 } else { 0.0 });
    }

    /// Updates the malleable tier's occupancy of this server (a
    /// fraction in `[0, 1]`), closing the busy integral at `now` first.
    pub fn set_tier_share(&mut self, now: f64, share: f64) {
        self.refresh(now);
        self.tier_share = share;
    }

    /// Restarts the measurement window (end of warmup): clears counters
    /// and the time-weighted integrals, keeping in-flight state.
    pub fn reset_window(&mut self, now: f64) {
        self.refresh(now);
        self.busy.reset_window(now);
        self.qlen.reset_window(now);
        self.avail.reset_window(now);
        self.dispatched = 0;
        self.completed = 0;
        self.crashes = 0;
        self.downtime = 0.0;
        // A crash that straddles the warmup boundary only counts its
        // in-window part toward downtime.
        if !self.up {
            self.down_since = Some(now);
        }
    }

    /// Closes the accounting integrals at the horizon.
    pub fn finalize(&mut self, now: f64) {
        self.refresh(now);
        if !self.up {
            if let Some(t0) = self.down_since.replace(now) {
                self.downtime += now - t0;
            }
        }
    }

    /// Fraction of the measurement window the server was busy.
    pub fn utilization(&self) -> f64 {
        self.busy.time_average()
    }

    /// Cumulative busy-time integral extended to `now` *without*
    /// mutating the accounting.
    ///
    /// Observability probes difference this across sampling boundaries
    /// to get per-window utilization; a mutating read here would change
    /// the floating-point accrual sequence behind
    /// [`Server::utilization`] and break the bit-identical-with-probes
    /// invariant.
    pub fn busy_integral_at(&self, now: f64) -> f64 {
        self.busy.integral_at(now)
    }

    /// Time-average queue length over the measurement window.
    pub fn mean_queue_len(&self) -> f64 {
        self.qlen.time_average()
    }

    /// Jobs dispatched to this server in the measurement window.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Jobs completed on this server in the measurement window.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Fraction of the measurement window the server was up.
    pub fn availability(&self) -> f64 {
        self.avail.time_average()
    }

    /// Total seconds the server spent down in the measurement window.
    pub fn downtime(&self) -> f64 {
        self.downtime
    }

    /// Crashes in the measurement window.
    pub fn crashes(&self) -> u64 {
        self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRecord, JobSlab};

    fn job(slab: &mut JobSlab, size: f64) -> JobId {
        slab.insert(JobRecord {
            size,
            arrival: 0.0,
            server: 0,
            counted: true,
            degraded: false,
            class: 0,
        })
    }

    #[test]
    fn tier_share_feeds_busy_when_queue_idle() {
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        s.advance(0.0, &mut done);
        // Tier occupies half the server on [0, 2), nothing on [2, 4).
        s.set_tier_share(0.0, 0.5);
        s.set_tier_share(2.0, 0.0);
        s.finalize(4.0);
        assert!((s.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn epoch_bumps_monotonically() {
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        assert_eq!(s.epoch(), 0);
        assert_eq!(s.bump_epoch(), 1);
        assert_eq!(s.bump_epoch(), 2);
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(2.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        // Busy on [0, 1): one job of 2 work units at speed 2.
        s.advance(0.0, &mut done);
        s.arrive(0.0, job(&mut slab, 2.0), 2.0);
        s.advance(1.0, &mut done);
        assert_eq!(done.len(), 1);
        // Idle on [1, 4).
        s.finalize(4.0);
        assert!((s.utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mean_queue_len_integrates() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        // Two jobs for 1 s, then one for 1 s, then idle 2 s: mean = 3/4...
        // jobs: sizes 1 and 2 at t=0 (PS: first done at t=2, second at t=3).
        s.advance(0.0, &mut done);
        s.arrive(0.0, job(&mut slab, 1.0), 1.0);
        s.arrive(0.0, job(&mut slab, 2.0), 2.0);
        s.advance(2.0, &mut done); // first completes at t=2
        s.advance(3.0, &mut done); // second at t=3
        s.finalize(4.0);
        // qlen: 2 on [0,2), 1 on [2,3), 0 on [3,4) → (4+1)/4.
        assert!((s.mean_queue_len() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn reset_window_clears_counters() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        s.advance(0.0, &mut done);
        s.arrive(0.0, job(&mut slab, 1.0), 1.0);
        s.advance(1.0, &mut done);
        assert_eq!(s.dispatched(), 1);
        assert_eq!(s.completed(), 1);
        s.reset_window(2.0);
        assert_eq!(s.dispatched(), 0);
        assert_eq!(s.completed(), 0);
        s.finalize(4.0);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn fail_evicts_jobs_and_accounts_downtime() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        s.advance(0.0, &mut done);
        let a = job(&mut slab, 10.0);
        let b = job(&mut slab, 20.0);
        s.arrive(0.0, a, 10.0);
        s.arrive(0.0, b, 20.0);
        let mut evicted = Vec::new();
        s.advance(1.0, &mut done);
        s.fail(1.0, &mut evicted);
        assert!(!s.is_up());
        assert_eq!(evicted, vec![a, b]);
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.crashes(), 1);
        // Down on [1, 3), up again on [3, 4].
        s.repair(3.0);
        assert!(s.is_up());
        s.finalize(4.0);
        assert!((s.downtime() - 2.0).abs() < 1e-12);
        assert!((s.availability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn downtime_straddling_reset_counts_window_part_only() {
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut evicted = Vec::new();
        let mut done = Vec::new();
        s.advance(0.0, &mut done);
        s.fail(0.0, &mut evicted);
        s.reset_window(5.0); // crash predates the window
        s.repair(7.0);
        s.finalize(10.0);
        assert_eq!(s.crashes(), 0, "pre-window crash does not count");
        assert!((s.downtime() - 2.0).abs() < 1e-12);
        assert!((s.availability() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn still_down_at_horizon_closes_downtime() {
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut evicted = Vec::new();
        let mut done = Vec::new();
        s.advance(0.0, &mut done);
        s.fail(2.0, &mut evicted);
        s.finalize(6.0);
        assert!((s.downtime() - 4.0).abs() < 1e-12);
        assert!((s.availability() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn in_flight_work_survives_reset() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        s.advance(0.0, &mut done);
        s.arrive(0.0, job(&mut slab, 10.0), 10.0);
        s.reset_window(1.0);
        // The job is still there and still completes at t = 10.
        assert_eq!(s.queue_len(), 1);
        s.advance(10.0, &mut done);
        assert_eq!(done.len(), 1);
        // Utilization over [1, 10] window plus finalize at 10: busy 9/9.
        s.finalize(10.0);
        assert!((s.utilization() - 1.0).abs() < 1e-9);
    }
}

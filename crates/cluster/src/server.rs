//! A computer in the network: discipline + accounting + timer epochs.
//!
//! [`Server`] wraps a [`DisciplineKind`] with:
//!
//! * **epoch-tagged wake timers** — every arrival invalidates the
//!   previously scheduled completion estimate; instead of cancelling queue
//!   entries, the server bumps an epoch counter and the simulation ignores
//!   wake events whose epoch is stale (the cheap idiom recommended by
//!   `hetsched-desim`);
//! * **utilization and queue-length accounting** — time-weighted signals,
//!   resettable at the end of the warmup period so reported statistics
//!   cover only the measurement window, as in §4.1;
//! * **dispatch/completion counters** — per-computer job counts used for
//!   Table 1's workload-distribution percentages.

use hetsched_metrics::TimeWeighted;

use crate::discipline::{Discipline, DisciplineKind, DisciplineSpec};
use crate::job::JobId;

/// A simulated computer.
#[derive(Debug, Clone)]
pub struct Server {
    speed: f64,
    disc: DisciplineKind,
    epoch: u64,
    busy: TimeWeighted,
    qlen: TimeWeighted,
    dispatched: u64,
    completed: u64,
}

impl Server {
    /// Creates an idle server.
    ///
    /// # Panics
    /// Panics unless `speed` is positive and finite (delegated to the
    /// discipline constructor).
    pub fn new(speed: f64, spec: DisciplineSpec) -> Self {
        Server {
            speed,
            disc: spec.build(speed),
            epoch: 0,
            busy: TimeWeighted::new(0.0, 0.0),
            qlen: TimeWeighted::new(0.0, 0.0),
            dispatched: 0,
            completed: 0,
        }
    }

    /// The server's relative speed.
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Current run-queue length (the paper's load index).
    pub fn queue_len(&self) -> usize {
        self.disc.queue_len()
    }

    /// Remaining work in the system, speed-1 seconds.
    pub fn work_in_system(&self) -> f64 {
        self.disc.work_in_system()
    }

    /// Current timer epoch. Wake events carrying an older epoch are stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Invalidates outstanding wake timers and returns the new epoch to
    /// stamp on the replacement timer.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Next internal event time (completion/rotation) if left undisturbed.
    pub fn next_wakeup(&self) -> Option<f64> {
        self.disc.next_wakeup()
    }

    /// Advances the discipline to `now`, appending completions, and
    /// refreshes the time-weighted accounting.
    pub fn advance(&mut self, now: f64, completed: &mut Vec<JobId>) {
        let before = completed.len();
        self.disc.advance(now, completed);
        self.completed += (completed.len() - before) as u64;
        self.refresh(now);
    }

    /// Admits a job with `work` speed-1 seconds of demand. The caller must
    /// have advanced the server to `now` first.
    pub fn arrive(&mut self, now: f64, id: JobId, work: f64) {
        self.disc.arrive(now, id, work);
        self.dispatched += 1;
        self.refresh(now);
    }

    fn refresh(&mut self, now: f64) {
        let n = self.disc.queue_len();
        self.busy.update(now, if n > 0 { 1.0 } else { 0.0 });
        self.qlen.update(now, n as f64);
    }

    /// Restarts the measurement window (end of warmup): clears counters
    /// and the time-weighted integrals, keeping in-flight state.
    pub fn reset_window(&mut self, now: f64) {
        self.refresh(now);
        self.busy.reset_window(now);
        self.qlen.reset_window(now);
        self.dispatched = 0;
        self.completed = 0;
    }

    /// Closes the accounting integrals at the horizon.
    pub fn finalize(&mut self, now: f64) {
        self.refresh(now);
    }

    /// Fraction of the measurement window the server was busy.
    pub fn utilization(&self) -> f64 {
        self.busy.time_average()
    }

    /// Time-average queue length over the measurement window.
    pub fn mean_queue_len(&self) -> f64 {
        self.qlen.time_average()
    }

    /// Jobs dispatched to this server in the measurement window.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Jobs completed on this server in the measurement window.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobRecord, JobSlab};

    fn job(slab: &mut JobSlab, size: f64) -> JobId {
        slab.insert(JobRecord {
            size,
            arrival: 0.0,
            server: 0,
            counted: true,
        })
    }

    #[test]
    fn epoch_bumps_monotonically() {
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        assert_eq!(s.epoch(), 0);
        assert_eq!(s.bump_epoch(), 1);
        assert_eq!(s.bump_epoch(), 2);
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(2.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        // Busy on [0, 1): one job of 2 work units at speed 2.
        s.advance(0.0, &mut done);
        s.arrive(0.0, job(&mut slab, 2.0), 2.0);
        s.advance(1.0, &mut done);
        assert_eq!(done.len(), 1);
        // Idle on [1, 4).
        s.finalize(4.0);
        assert!((s.utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mean_queue_len_integrates() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        // Two jobs for 1 s, then one for 1 s, then idle 2 s: mean = 3/4...
        // jobs: sizes 1 and 2 at t=0 (PS: first done at t=2, second at t=3).
        s.advance(0.0, &mut done);
        s.arrive(0.0, job(&mut slab, 1.0), 1.0);
        s.arrive(0.0, job(&mut slab, 2.0), 2.0);
        s.advance(2.0, &mut done); // first completes at t=2
        s.advance(3.0, &mut done); // second at t=3
        s.finalize(4.0);
        // qlen: 2 on [0,2), 1 on [2,3), 0 on [3,4) → (4+1)/4.
        assert!((s.mean_queue_len() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn reset_window_clears_counters() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        s.advance(0.0, &mut done);
        s.arrive(0.0, job(&mut slab, 1.0), 1.0);
        s.advance(1.0, &mut done);
        assert_eq!(s.dispatched(), 1);
        assert_eq!(s.completed(), 1);
        s.reset_window(2.0);
        assert_eq!(s.dispatched(), 0);
        assert_eq!(s.completed(), 0);
        s.finalize(4.0);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn in_flight_work_survives_reset() {
        let mut slab = JobSlab::new();
        let mut s = Server::new(1.0, DisciplineSpec::ProcessorSharing);
        let mut done = Vec::new();
        s.advance(0.0, &mut done);
        s.arrive(0.0, job(&mut slab, 10.0), 10.0);
        s.reset_window(1.0);
        // The job is still there and still completes at t = 10.
        assert_eq!(s.queue_len(), 1);
        s.advance(10.0, &mut done);
        assert_eq!(done.len(), 1);
        // Utilization over [1, 10] window plus finalize at 10: busy 9/9.
        s.finalize(10.0);
        assert!((s.utilization() - 1.0).abs() < 1e-9);
    }
}

//! # hetsched-cluster — the simulated network of heterogeneous computers
//!
//! The discrete-event simulator of §4.1 of the paper: a collection of
//! computers with different speeds connected by a high-speed network, fed
//! by a central scheduler. Jobs arrive at the scheduler, are dispatched
//! immediately according to a pluggable [`Policy`], run to completion on
//! the assigned computer (no rescheduling), and report their response time
//! on completion. Program/data files live on a dedicated file server, so
//! dispatching costs only a command line — no transfer delay is modelled,
//! exactly as in the paper.
//!
//! Components:
//!
//! * [`job`] — job records and the slab allocator that recycles them
//!   (a 4·10⁶-second run creates 1–2 million jobs; only in-flight ones
//!   are kept).
//! * [`discipline`] — per-computer service disciplines: exact processor
//!   sharing in O(log n) per event ([`discipline::PsVirtualTime`]), an
//!   O(n) reference PS used to cross-validate it, preemptive round-robin
//!   with a finite quantum (the paper's "preemptive round-robin processor
//!   scheduling"; PS is its quantum→0 limit), and FCFS for ablations.
//! * [`server`] — wraps a discipline with utilization/queue-length
//!   accounting and the *epoch* pattern for stale completion timers.
//! * [`policy`] — the dispatch-policy trait the scheduler calls; concrete
//!   policies (random, round-robin, dynamic least-load, …) live in
//!   `hetsched-policies`.
//! * [`network`] — the load-update feedback path for dynamic policies:
//!   U(0,1) departure-detection delay + Exp(0.05 s) message delay (§4.2).
//! * [`channel`] — unreliable message planes (loss / duplication /
//!   jitter / partitions per plane on dedicated RNG streams) plus the
//!   recovery machinery: ack-based dispatch with timeout + exponential
//!   backoff + bounded retries, and hedged dispatch. The reliable
//!   default is structurally invisible.
//! * [`faults`] — per-server crash/repair renewal processes with
//!   configurable in-flight-job semantics (lost / resubmitted /
//!   restarted), driven by dedicated RNG streams so fault runs stay
//!   bit-reproducible and `faults: None` reproduces the fault-free
//!   simulation byte-for-byte.
//! * [`malleable`] — malleable job classes with concave speedup curves
//!   and the heSRPT-style allocation tier: one job may hold `k`
//!   fractional servers, preemptively reallocated at every arrival,
//!   completion, crash, and repair. An absent or all-rigid section is
//!   structurally invisible, so such runs stay bit-identical to the
//!   rigid seed path.
//! * the dispatch tier (`hetsched-dispatch`, re-exported here) — an
//!   optional front-end of `D` dispatcher shards, each running a private
//!   [`Policy`] instance over a partition of the arrival stream, with an
//!   optional periodic state-sync plane. One dispatcher with sync
//!   disabled (the default) is bit-identical to the classic
//!   single-scheduler simulation.
//! * [`obs`] — the run-level observability driver: a
//!   `hetsched-obs` probe registry sampled on a fixed window, recording
//!   per-server queue length / utilization / availability, cluster-wide
//!   rates and response quantiles, and the Fig. 2 deviation — without
//!   perturbing the run (probes read, never schedule).
//! * [`config`] / [`results`] — serde-friendly run configuration and
//!   output statistics (mean response time / response ratio / fairness /
//!   per-server detail).
//! * [`simulation`] — the actor that wires everything to the
//!   `hetsched-desim` engine.

#![warn(missing_docs)]

pub mod channel;
pub mod config;
pub mod discipline;
pub mod faults;
pub mod index;
pub mod job;
pub mod malleable;
pub mod network;
pub mod obs;
pub mod pdes;
pub mod policy;
pub mod results;
pub mod server;
pub mod simulation;
pub mod trace;

pub use channel::{ChannelSpec, HedgeSpec, PlaneSpec, RetrySpec, CHANNEL_STREAM_BASE};
pub use config::{ArrivalSpec, ClusterConfig, EventListBackend, FleetGroup, PerServerMode};
pub use discipline::{Discipline, DisciplineSpec};
pub use faults::{FaultSpec, JobFaultSemantics};
pub use hetsched_dispatch::{
    compensated_total, consensus_coordinated, level_shift, Coordination, DispatchSpec,
    SplitterSpec, SyncSpec, SyncState,
};
pub use hetsched_dist::SpeedupCurve;
pub use hetsched_obs::{KernelCounters, ObsReport, ObsSpec};
pub use index::{ArgminTree, FleetState};
pub use job::{JobId, JobRecord, JobSlab};
pub use malleable::{AllocatorKind, ClassStats, MalleableClass, MalleableSpec, MalleableStats};
pub use obs::{ObsDriver, ObsView};
pub use pdes::{shard_config, shard_ranges, ParallelSimulation, PdesTiming, PDES_STREAM_BASE};
pub use policy::{DispatchCtx, Policy};
pub use results::{MetricSummary, RunStats, ServerStats, ServerSummarySet, ShardStats};
pub use simulation::Simulation;
pub use trace::{JobTrace, TraceCollector, TraceSpec};

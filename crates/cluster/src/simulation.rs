//! The simulation: wiring arrivals, the scheduler, servers, and the
//! feedback network to the event engine.
//!
//! Event flow per the paper's model (§4.1–4.2):
//!
//! 1. `Arrival` — the next job reaches the central scheduler. The model
//!    samples its size, asks the [`Policy`] for a destination, admits the
//!    job to that server, and schedules the following arrival.
//! 2. `ServerWake { server, epoch }` — the server's next internal event
//!    (completion or quantum rotation) fires. Stale epochs (superseded by
//!    an arrival) are ignored. Completions are recorded and, for dynamic
//!    policies, kick off the departure-detection → update-message chain.
//! 3. `LoadDetect { server }` — the computer notices its queue changed
//!    (U(0,1) after a departure) and sends an update message.
//! 4. `LoadUpdate { server, queue_len }` — the message reaches the
//!    scheduler after the exponential network delay; the policy's believed
//!    load is refreshed.
//! 5. `WarmupEnd` — counters reset so statistics cover only the steady
//!    state.
//! 6. `ServerCrash` / `ServerRepair` — the fault layer's renewal process
//!    (only scheduled when [`ClusterConfig::faults`] is set): a crash
//!    evicts the resident jobs (lost / resubmitted / parked for restart,
//!    see [`crate::faults`]) and a repair brings the server back empty.
//!    `MembershipNotice` delivers the (optionally delayed) up/down view
//!    to the policy.
//! 7. `SyncPublish` / `SyncApply` — the dispatch tier's periodic
//!    state-sync (only scheduled when [`ClusterConfig::dispatch`] has a
//!    sync plane): every `interval` seconds the shards' mergeable policy
//!    state is snapshotted, the elementwise-mean consensus computed, and
//!    — after the configured one-way latency — merged back into every
//!    shard.
//! 8. `DispatchDeliver` / `RetryTimer` / `HedgeTimer` — the unreliable
//!    dispatch plane's machinery (only when [`ClusterConfig::channels`]
//!    is set and not [`ChannelSpec::reliable`]): a job copy crossing
//!    the wire, the ack timeout arming a retransmission, and the hedge
//!    trigger duplicating an unacked dispatch to a second pick.
//! 9. `TierWake` — the malleable allocation tier's next completion on a
//!    shard (only when an active [`ClusterConfig::malleable`] section is
//!    paired with an allocator policy, see [`crate::malleable`]):
//!    harvested jobs leave the tier and the remaining shares re-solve,
//!    cancelling and re-arming the wake through the O(1)-cancel path.
//!
//! The dispatch tier: `ClusterConfig::dispatch.dispatchers` front-end
//! dispatchers each run a private [`Policy`] instance; a
//! [`Splitter`] partitions the arrival stream across them. With one
//! dispatcher and sync disabled the tier is structurally invisible —
//! the splitter routes without creating or drawing from any RNG and no
//! sync event exists — so a `D = 1` run is bit-identical to the
//! pre-tier simulation.
//!
//! Determinism: every stochastic component draws from its own
//! seed-derived stream — arrivals (0), sizes (1), dispatch (2), network
//! (3), one fault stream per server (4 + i), and the splitter's own
//! stream (`hetsched_dispatch::SPLITTER_STREAM`, far above any server
//! index) — so two runs with the same seed are identical and runs with
//! different seeds are the paper's "independent runs". With
//! `faults: None` the fault streams are never created and no fault
//! event is ever scheduled, so the simulation is byte-for-byte the
//! fault-free one; the same construction applies to the dispatch tier
//! and to the channel layer (its three plane streams live far above
//! everything else at [`crate::channel::CHANNEL_STREAM_BASE`] and are
//! only instantiated for a non-reliable [`ChannelSpec`]).

use std::collections::{HashMap, VecDeque};
use std::ops::Range;

use hetsched_desim::{
    Actor, CalendarQueue, Engine, EventId, EventQueue, FelStats, FutureEventList, Rng64, Scheduler,
    SimTime,
};
use hetsched_dispatch::{
    consensus, consensus_coordinated, Coordination, Splitter, SyncSpec, SyncState,
};
use hetsched_dist::{ArrivalProcess, BuiltDist, Sample};
use hetsched_error::HetschedError;
use hetsched_metrics::{DeviationTracker, Histogram, P2Quantile, Welford};

use crate::channel::{ChannelSpec, PlaneSpec};
use crate::config::{ArrivalKind, ClusterConfig, EventListBackend};
use crate::faults::{FaultSpec, JobFaultSemantics};
use crate::index::FleetState;
use crate::job::{JobId, JobRecord, JobSlab};
use crate::malleable::{ClassStats, MalleableRuntime, MalleableSpec, MalleableStats};
use crate::network::membership_notice_delay;
use crate::obs::ObsDriver;
use crate::policy::{DispatchCtx, Policy};
use crate::results::{RunStats, ServerStats, ShardStats};
use crate::server::Server;
use crate::trace::TraceCollector;

/// Events of the cluster model.
///
/// `pub(crate)` so the conservative-parallel driver in [`crate::pdes`]
/// can schedule `SyncApply` events at epoch barriers from outside the
/// actor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Ev {
    /// A job arrives at the central scheduler.
    Arrival,
    /// A server's next internal event (completion/rotation).
    ServerWake { server: usize, epoch: u64 },
    /// A computer notices a departure and emits an update message.
    LoadDetect { server: usize },
    /// The update message reaches the scheduler.
    LoadUpdate { server: usize, queue_len: usize },
    /// End of the warmup period.
    WarmupEnd,
    /// A server's up period expires: it crashes.
    ServerCrash { server: usize },
    /// A server's repair completes: it rejoins empty.
    ServerRepair { server: usize },
    /// A delayed crash/repair notification reaches the scheduler; the
    /// policy is shown the *current* membership at delivery time.
    MembershipNotice,
    /// The dispatch tier snapshots every shard's mergeable policy state
    /// and computes the consensus (scheduled only when the config has a
    /// sync plane).
    SyncPublish,
    /// A previously published consensus, delayed by the sync latency,
    /// reaches the shards and is merged into every policy instance.
    SyncApply,
    /// A dispatch-plane copy of a job reaches its target server (only
    /// scheduled with an unreliable channel layer; a copy whose
    /// transfer has already resolved is dropped as an orphan).
    DispatchDeliver {
        /// Transfer slot.
        tx: u32,
        /// Transfer generation (stale = orphan copy).
        gen: u32,
        /// Server this copy was addressed to.
        target: usize,
        /// Whether the copy is the hedge duplicate.
        hedged: bool,
    },
    /// The ack timeout of an in-flight transfer expires.
    RetryTimer {
        /// Transfer slot.
        tx: u32,
        /// Transfer generation.
        gen: u32,
    },
    /// The hedge delay of a still-unacked transfer expires.
    HedgeTimer {
        /// Transfer slot.
        tx: u32,
        /// Transfer generation.
        gen: u32,
    },
    /// The malleable allocation tier's next completion on a shard (only
    /// scheduled when an active [`ClusterConfig::malleable`] section is
    /// paired with an allocator policy). Cancelled and re-armed on every
    /// reallocation through the O(1)-cancel event list.
    TierWake {
        /// Dispatch shard whose tier runtime completes next.
        shard: usize,
    },
}

/// RNG stream of the malleable class stamper, far above every other
/// stream family (classic 0–3, faults `4 + i`, splitter `1 << 40`, PDES
/// shards `1 << 41`, channels `1 << 42`). Only constructed for an
/// *active* malleable section, so all-rigid runs draw nothing from it.
pub(crate) const MALLEABLE_STREAM: u64 = 1 << 43;

/// A configured, seeded simulation ready to run.
pub struct Simulation<P: Policy> {
    cfg: ClusterConfig,
    /// One policy instance per dispatcher shard (exactly one for the
    /// classic single-dispatcher simulation).
    policies: Vec<P>,
    /// Built eagerly so a bad trace spec is a typed constructor error
    /// rather than a mid-run panic.
    trace: Option<TraceCollector>,
    seed: u64,
}

impl<P: Policy> Simulation<P> {
    /// Creates a single-dispatcher simulation.
    ///
    /// # Errors
    /// Returns the typed validation error of [`ClusterConfig::validate`],
    /// or [`HetschedError::InvalidConfig`] when the config asks for more
    /// than one dispatcher — build those with
    /// [`Simulation::with_policies`], which takes one policy instance
    /// per shard.
    pub fn new(cfg: ClusterConfig, policy: P, seed: u64) -> Result<Self, HetschedError> {
        if cfg.dispatch.dispatchers != 1 {
            return Err(HetschedError::InvalidConfig(format!(
                "config asks for {} dispatchers but Simulation::new wires a \
                 single policy; use Simulation::with_policies with one \
                 instance per shard",
                cfg.dispatch.dispatchers
            )));
        }
        Self::with_policies(cfg, vec![policy], seed)
    }

    /// Creates a simulation with one policy instance per dispatcher
    /// shard (`policies.len()` must equal
    /// `cfg.dispatch.dispatchers`).
    ///
    /// # Errors
    /// Returns the typed validation error of [`ClusterConfig::validate`],
    /// or [`HetschedError::InvalidConfig`] on a shard-count mismatch.
    pub fn with_policies(
        mut cfg: ClusterConfig,
        policies: Vec<P>,
        seed: u64,
    ) -> Result<Self, HetschedError> {
        cfg.normalize_fleet();
        cfg.validate()?;
        if policies.len() != cfg.dispatch.dispatchers {
            return Err(HetschedError::InvalidConfig(format!(
                "config asks for {} dispatchers but {} policy instances \
                 were supplied",
                cfg.dispatch.dispatchers,
                policies.len()
            )));
        }
        // Tier jobs never cross the dispatch plane (they are held by the
        // allocation tier, not sent to a single server), so pairing the
        // tier with an unreliable channel layer would silently exempt
        // most jobs from the configured loss model. Reject the
        // combination instead of mis-modelling it.
        if cfg.malleable.as_ref().is_some_and(|m| m.active())
            && policies.iter().any(|p| p.malleable_allocator().is_some())
            && matches!(&cfg.channels, Some(c) if !c.is_reliable())
        {
            return Err(HetschedError::InvalidConfig(
                "the malleable allocation tier requires reliable channels: \
                 tier-held jobs bypass the dispatch plane, so an unreliable \
                 channel spec would not apply to them"
                    .into(),
            ));
        }
        let trace = cfg.trace.map(TraceCollector::new).transpose()?;
        Ok(Simulation {
            cfg,
            policies,
            trace,
            seed,
        })
    }

    /// Runs to the horizon and returns the collected statistics.
    ///
    /// The event-list backend is picked from
    /// [`ClusterConfig::event_list`]; both backends are bit-identical in
    /// results (see `hetsched_desim::fel`), so the knob only affects
    /// throughput.
    pub fn run(self) -> RunStats {
        match self.cfg.event_list {
            EventListBackend::Heap => self.run_on(EventQueue::with_capacity(1024)),
            EventListBackend::Calendar => self.run_on(CalendarQueue::with_capacity(1024)),
        }
    }

    fn run_on<Q: FutureEventList<Ev>>(self, queue: Q) -> RunStats {
        let Simulation {
            cfg,
            policies,
            trace,
            seed,
        } = self;
        let mut model = Model::build(&cfg, policies, seed, trace, None, StreamPlan::classic());
        let mut engine: Engine<Ev, Q> = Engine::with_queue(queue);
        model.seed_initial_events(&mut engine, &cfg);
        engine.run_until(&mut model, SimTime::new(cfg.horizon));

        let kernel = engine.fel_stats();
        let mut stats = model.finalize(cfg.horizon, engine.processed_total(), kernel);
        if cfg.per_server == crate::config::PerServerMode::Summary {
            stats.collapse_per_server();
        }
        stats
    }
}

/// A pre-generated arrival script: the splitter's partition of the
/// global arrival stream, materialized before the run starts.
///
/// The last entry is always a *sentinel* — the first arrival past the
/// horizon, with an unsampled size of `0.0`. It is scheduled (so the
/// kernel's `scheduled` counter matches the live path, which always has
/// one beyond-horizon arrival pending) but never fires.
pub(crate) struct ScriptedArrivals {
    /// `(arrival time, job size, malleable class)` in arrival order
    /// (class `0` for every job when the malleable section is inactive).
    pub(crate) jobs: Vec<(f64, f64, u16)>,
    /// Next entry to deliver.
    pub(crate) cursor: usize,
}

/// Which RNG streams a model instance draws from.
///
/// The classic simulation uses the historical layout (dispatch 2,
/// network 3, faults `4 + server`). A PDES shard keeps its fault streams
/// globally indexed (`4 + global server index`, disjoint across shards)
/// and moves its dispatch/network draws onto reserved high streams so
/// shards never share a stateful generator.
pub(crate) struct StreamPlan {
    pub(crate) dispatch: u64,
    pub(crate) net: u64,
    /// Fault stream for *local* server `i` is `fault_base + i`.
    pub(crate) fault_base: u64,
    /// Channel-plane streams are `chan_base + {0, 1, 2}` for the
    /// dispatch/load/sync planes (only instantiated for a non-reliable
    /// [`ChannelSpec`]).
    pub(crate) chan_base: u64,
}

impl StreamPlan {
    /// The seed path's historical stream layout.
    pub(crate) fn classic() -> Self {
        StreamPlan {
            dispatch: 2,
            net: 3,
            fault_base: 4,
            chan_base: crate::channel::CHANNEL_STREAM_BASE,
        }
    }
}

/// Per-run fault-injection state (present only when configured).
pub(crate) struct FaultRuntime {
    spec: FaultSpec,
    up_dist: BuiltDist,
    down_dist: BuiltDist,
    /// One RNG stream per server (`Rng64::stream(seed, 4 + i)`), used
    /// for that server's up/down draws and notice delays.
    rngs: Vec<Rng64>,
    /// Jobs awaiting restart on each down server
    /// ([`JobFaultSemantics::Restart`] only).
    parked: Vec<Vec<JobId>>,
}

/// One logical job crossing the unreliable dispatch plane, possibly
/// over several attempts (retransmissions and/or a hedge copy).
struct Transfer {
    job: JobId,
    /// The dispatcher shard that owns the job; retransmissions and the
    /// hedge re-consult this shard's policy.
    shard: usize,
    /// Primary attempts made so far (the hedge copy is not an attempt:
    /// it rides the first attempt's ack machinery).
    attempts: u32,
    /// Whether some copy already landed on a server; later copies are
    /// dropped as duplicates.
    delivered: bool,
    /// Copies currently in the air (scheduled `DispatchDeliver`s).
    copies_in_flight: u32,
    /// Whether the hedge copy has been sent.
    hedged: bool,
    retry_timer: Option<EventId>,
    hedge_timer: Option<EventId>,
}

/// Generational transfer slot: a stale `(tx, gen)` in a late event is an
/// orphan (the transfer already resolved) and is dropped, never
/// misapplied to a recycled slot.
struct TxSlot {
    gen: u32,
    tr: Option<Transfer>,
}

/// Per-run channel state (present only for a non-reliable
/// [`ChannelSpec`] — a reliable spec constructs nothing, which is what
/// makes it structurally invisible).
pub(crate) struct ChannelRuntime {
    spec: ChannelSpec,
    /// Dispatch-plane randomness (`chan_base + 0`): copy loss, ack
    /// loss, duplication, jitter.
    rng_dispatch: Rng64,
    /// Load-plane randomness (`chan_base + 1`).
    rng_load: Rng64,
    /// Sync-plane randomness (`chan_base + 2`).
    rng_sync: Rng64,
    slots: Vec<TxSlot>,
    free: Vec<u32>,
    /// Measurement-window counters (reset at warmup end; `pub(crate)`
    /// so the parallel driver can merge them in shard order).
    pub(crate) msgs_lost: u64,
    pub(crate) retries: u64,
    pub(crate) timeouts: u64,
    pub(crate) hedges_won: u64,
    pub(crate) hedges_lost: u64,
    /// Lost messages attributed per server (dispatch copies/acks to the
    /// target, load updates to the sender; sync losses have no server).
    pub(crate) server_msgs_lost: Vec<u64>,
}

impl ChannelRuntime {
    fn new(spec: ChannelSpec, seed: u64, chan_base: u64, n: usize) -> Self {
        ChannelRuntime {
            rng_dispatch: Rng64::stream(seed, chan_base),
            rng_load: Rng64::stream(seed, chan_base + 1),
            rng_sync: Rng64::stream(seed, chan_base + 2),
            slots: Vec::new(),
            free: Vec::new(),
            msgs_lost: 0,
            retries: 0,
            timeouts: 0,
            hedges_won: 0,
            hedges_lost: 0,
            server_msgs_lost: vec![0; n],
            spec,
        }
    }

    fn insert(&mut self, job: JobId, shard: usize) -> (u32, u32) {
        let tr = Transfer {
            job,
            shard,
            attempts: 0,
            delivered: false,
            copies_in_flight: 0,
            hedged: false,
            retry_timer: None,
            hedge_timer: None,
        };
        match self.free.pop() {
            Some(tx) => {
                let slot = &mut self.slots[tx as usize];
                slot.tr = Some(tr);
                (tx, slot.gen)
            }
            None => {
                let tx = u32::try_from(self.slots.len())
                    .expect("transfer slab index space (u32) exhausted");
                self.slots.push(TxSlot {
                    gen: 0,
                    tr: Some(tr),
                });
                (tx, 0)
            }
        }
    }

    fn get_mut(&mut self, tx: u32, gen: u32) -> Option<&mut Transfer> {
        let slot = self.slots.get_mut(tx as usize)?;
        if slot.gen != gen {
            return None;
        }
        slot.tr.as_mut()
    }

    /// Resolves a transfer: frees the slot and bumps its generation so
    /// every copy or timer still in the air becomes a detectable orphan.
    fn take(&mut self, tx: u32, gen: u32) -> Option<Transfer> {
        let slot = self.slots.get_mut(tx as usize)?;
        if slot.gen != gen {
            return None;
        }
        let tr = slot.tr.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(tx);
        Some(tr)
    }

    /// Whether a message on `plane` sent at `now` is lost. Partition
    /// windows drop deterministically without consuming randomness; the
    /// Bernoulli draw only happens for a configured loss probability, so
    /// enabling one knob never shifts another knob's stream.
    fn lose(plane: &PlaneSpec, rng: &mut Rng64, now: f64) -> bool {
        plane.in_partition(now) || (plane.loss > 0.0 && rng.next_f64() < plane.loss)
    }

    /// Extra delivery delay on `plane` (0 when jitter is disabled).
    fn jitter(plane: &PlaneSpec, rng: &mut Rng64) -> f64 {
        if plane.jitter > 0.0 {
            rng.exponential(1.0 / plane.jitter)
        } else {
            0.0
        }
    }

    /// Whether a delivered message on `plane` is duplicated.
    fn dup(plane: &PlaneSpec, rng: &mut Rng64) -> bool {
        plane.duplicate > 0.0 && rng.next_f64() < plane.duplicate
    }

    /// Resets the measurement-window counters at warmup end.
    fn reset_window(&mut self) {
        self.msgs_lost = 0;
        self.retries = 0;
        self.timeouts = 0;
        self.hedges_won = 0;
        self.hedges_lost = 0;
        self.server_msgs_lost.iter_mut().for_each(|c| *c = 0);
    }
}

/// Runtime state of the coordinated (phase-preserving) dispatch tier.
///
/// The splitter centrally observes every arrival, so it can stamp each
/// one with a global sequence number — exactly the information a real
/// L4 front-end has. Before a shard makes a real decision it replays the
/// arrivals its peers handled since its own last one as *virtual*
/// rotation steps ([`Policy::advance_rotation`]), keeping its private
/// rotation machine on the global credit trajectory: the union of the
/// shards' decisions reconstructs the single-dispatcher sequence.
///
/// The per-shard arrival counters feed the sync plane's rate payload,
/// which lets a rate-aware policy (ReORR) re-solve Algorithm 1 at the
/// tier's *measured* utilization.
struct CoordState {
    /// Global sequence number of the last arrival each shard handled
    /// (0 = none yet; the splitter stamps arrivals from 1).
    last_seq: Vec<u64>,
    /// Arrivals routed to each shard since the run began. Feeds the
    /// sync plane's cumulative rate payload (`seen / now`): a long-run
    /// average rather than a per-interval estimate, because one sync
    /// window holds too few bursty arrivals to re-solve Algorithm 1
    /// against without whipsawing the allocation.
    seen: Vec<u64>,
}

/// Runtime state of the malleable allocation tier: one
/// [`MalleableRuntime`] per dispatch shard, each confined to that
/// shard's contiguous server slice (the same partition the PDES engine
/// uses, so the classic and parallel paths build identical tiers). With
/// one dispatcher the single runtime spans the whole fleet.
///
/// Only constructed when an *active* [`MalleableSpec`] is paired with a
/// policy whose [`Policy::malleable_allocator`] is `Some` — otherwise
/// stamped jobs dispatch rigidly through [`Policy::choose`] as usual.
pub(crate) struct MalleableTier {
    /// One allocation runtime per dispatch shard.
    pub(crate) runtimes: Vec<MalleableRuntime>,
    /// Each shard's contiguous server slice.
    pub(crate) ranges: Vec<Range<usize>>,
    /// Server index → owning shard.
    pub(crate) shard_of: Vec<usize>,
    /// The pending `TierWake` per shard (cancelled on reallocation).
    pub(crate) wakes: Vec<Option<EventId>>,
    /// Tier-local job key → slab id, per shard. Never iterated, so the
    /// hash order cannot leak into results.
    pub(crate) ids: Vec<HashMap<usize, JobId>>,
    /// Next tier-local job key, per shard.
    pub(crate) next_id: Vec<usize>,
}

pub(crate) struct Model<P: Policy> {
    /// One policy instance per dispatcher shard.
    pub(crate) policies: Vec<P>,
    /// Routes each arrival to a shard (trivial for one dispatcher).
    splitter: Splitter,
    /// Present iff the tier runs in coordinated (phase-preserving) mode
    /// with more than one shard; `None` is the uncoordinated baseline.
    coord: Option<CoordState>,
    /// Counted jobs routed per shard (reported only for `D > 1`).
    pub(crate) shard_routed: Vec<u64>,
    /// The sync plane, when configured.
    sync: Option<SyncSpec>,
    /// Published consensus snapshots in flight to the shards. The sync
    /// latency is constant, so FIFO order matches event order.
    pub(crate) pending_sync: VecDeque<SyncState>,
    pub(crate) syncs_applied: u64,
    pub(crate) servers: Vec<Server>,
    arrivals: ArrivalKind,
    sizes: BuiltDist,
    load_updates: crate::network::LoadUpdateModel,
    warmup: f64,
    rng_arrival: Rng64,
    rng_size: Rng64,
    rng_dispatch: Rng64,
    rng_net: Rng64,
    /// When set, arrivals replay this pre-generated script instead of
    /// drawing from the arrival/size streams (the PDES shard path).
    script: Option<ScriptedArrivals>,
    pub(crate) slab: JobSlab,
    /// Cache-dense per-server hot state (queue-length mirror + optional
    /// true-load argmin index), maintained incrementally at every queue
    /// mutation instead of being rebuilt `O(N)` per dispatch decision.
    fleet: FleetState,
    /// Reusable membership-notice buffer (avoids a per-notice alloc).
    up_buf: Vec<bool>,
    done_buf: Vec<JobId>,
    pub(crate) resp_time: Welford,
    pub(crate) resp_ratio: Welford,
    pub(crate) ratio_p95: P2Quantile,
    pub(crate) ratio_p99: P2Quantile,
    pub(crate) ratio_histogram: Option<Histogram>,
    pub(crate) trace: Option<crate::trace::TraceCollector>,
    pub(crate) deviation: Option<DeviationTracker>,
    pub(crate) obs: Option<ObsDriver>,
    pub(crate) jobs_counted: u64,
    pub(crate) speeds: Vec<f64>,
    faults: Option<FaultRuntime>,
    down_count: usize,
    pub(crate) jobs_lost: u64,
    pub(crate) jobs_resubmitted: u64,
    pub(crate) jobs_restarted: u64,
    pub(crate) degraded_time: Welford,
    pub(crate) degraded_ratio: Welford,
    /// The unreliable-messaging layer (None for a reliable or absent
    /// [`ClusterConfig::channels`] — structurally invisible).
    pub(crate) channels: Option<ChannelRuntime>,
    /// Stale-decision count at warmup end, subtracted at finalize so the
    /// reported counter covers the measurement window only.
    pub(crate) stale_baseline: u64,
    /// The active malleable section, when one is configured (None for
    /// absent or all-rigid sections — structurally invisible).
    stamping: Option<MalleableSpec>,
    /// The class stamper's RNG stream (live arrivals only; scripted
    /// feeds carry pre-stamped classes).
    rng_class: Option<Rng64>,
    /// The allocation tier (Some iff stamping is active AND the lead
    /// policy is an allocator).
    pub(crate) tier: Option<MalleableTier>,
    /// Mean slowdown accumulator: `response / inherent size` per counted
    /// job. Numerically identical to the response ratio on the rigid
    /// path (both divide response by the speed-1 service demand), kept
    /// as its own accumulator so the slowdown objective stays exact if
    /// the two definitions ever diverge.
    pub(crate) slowdown: Welford,
    pub(crate) slow_p95: P2Quantile,
    pub(crate) slow_p99: P2Quantile,
    /// Per-class `(response, slowdown)` accumulators, indexed by stamped
    /// class id; only allocated when stamping is active.
    pub(crate) class_stats: Option<Vec<(Welford, Welford)>>,
    /// Jobs stamped with a non-rigid class (lifetime counter, like the
    /// tier's reallocation count).
    pub(crate) malleable_jobs: u64,
}

impl<P: Policy> Model<P> {
    /// Builds a model instance over `cfg` with an explicit stream plan
    /// and (optionally) a scripted arrival feed.
    ///
    /// The classic path calls this with `script: None` and
    /// [`StreamPlan::classic`], reproducing the historical construction
    /// exactly; the PDES driver calls it once per shard with that
    /// shard's slice of the pre-partitioned arrival stream.
    pub(crate) fn build(
        cfg: &ClusterConfig,
        policies: Vec<P>,
        seed: u64,
        trace: Option<TraceCollector>,
        script: Option<ScriptedArrivals>,
        streams: StreamPlan,
    ) -> Self {
        let lambda = cfg.lambda();
        let servers: Vec<Server> = cfg
            .speeds
            .iter()
            .map(|&s| Server::new(s, cfg.discipline))
            .collect();
        let n = cfg.speeds.len();
        // The deviation tracker and the observability plane both compare
        // realized dispatch fractions with the policy's *target*
        // fractions; policies without a target (dynamic ones) are
        // measured against an equal split. The shards run identical
        // policy instances, so shard 0 speaks for the tier.
        let expected = policies[0]
            .expected_fractions()
            .unwrap_or_else(|| vec![1.0 / n as f64; n]);
        let deviation = cfg
            .deviation_interval
            .map(|iv| DeviationTracker::new(&expected, iv, 0.0));
        // The channel runtime (and its RNG streams) only exists for a
        // non-reliable spec: `channels: None` and
        // `Some(ChannelSpec::reliable())` build byte-identical models.
        let channels_active = matches!(&cfg.channels, Some(c) if !c.is_reliable());
        // Same construction discipline for the malleable section: an
        // absent or all-rigid section builds no stamper stream, no class
        // accumulators, no tier, and no slowdown obs column.
        let stamping = cfg.malleable.clone().filter(|m| m.active());
        let obs = cfg.obs.as_ref().map(|spec| {
            ObsDriver::new(
                spec,
                n,
                expected,
                cfg.dispatch.dispatchers,
                channels_active,
                stamping.is_some(),
            )
        });
        // Fault streams are only created when faults are configured, so a
        // `faults: None` run draws exactly the same values from exactly
        // the same streams as a build without the fault layer.
        let faults = cfg.faults.clone().map(|spec| FaultRuntime {
            up_dist: spec.up_time.build(),
            down_dist: spec.down_time.build(),
            rngs: (0..n)
                .map(|i| Rng64::stream(seed, streams.fault_base + i as u64))
                .collect(),
            parked: vec![Vec::new(); n],
            spec,
        });
        let channels = if channels_active {
            let spec = cfg.channels.clone().expect("checked above");
            Some(ChannelRuntime::new(spec, seed, streams.chan_base, n))
        } else {
            None
        };
        let shards = cfg.dispatch.dispatchers;
        // The allocation tier partitions the fleet exactly like the PDES
        // engine (contiguous balanced slices, one per dispatch shard),
        // so a D = 1 tier spans the whole cluster and a sharded classic
        // run allocates over the same slices a parallel run would.
        let tier = stamping.as_ref().and_then(|spec| {
            policies[0].malleable_allocator().map(|kind| {
                let d = shards.max(1);
                let ranges = crate::pdes::shard_ranges(n, d);
                let mut shard_of = vec![0; n];
                for (s, r) in ranges.iter().enumerate() {
                    for i in r.clone() {
                        shard_of[i] = s;
                    }
                }
                MalleableTier {
                    runtimes: (0..d).map(|_| MalleableRuntime::new(kind, spec)).collect(),
                    ranges,
                    shard_of,
                    wakes: vec![None; d],
                    ids: vec![HashMap::new(); d],
                    next_id: vec![0; d],
                }
            })
        });
        let class_stats = stamping
            .as_ref()
            .map(|spec| vec![(Welford::new(), Welford::new()); spec.classes.len() + 1]);
        let rng_class =
            (stamping.is_some() && script.is_none()).then(|| Rng64::stream(seed, MALLEABLE_STREAM));
        // The true-load index costs O(log N) per queue mutation, so it
        // only exists when some policy in the tier reads it.
        let mut fleet = FleetState::new(n, policies.iter().any(|p| p.wants_true_load_index()));
        fleet.seed_keys(&cfg.speeds);
        Model {
            policies,
            // D = 1 builds the trivial splitter: shard 0 always, no RNG.
            splitter: Splitter::new(&cfg.dispatch, seed),
            // Coordination with one shard is structurally invisible (a
            // single shard never has peer gaps to replay), so the state
            // is only built when it can matter.
            coord: (cfg.dispatch.coordination == Coordination::PhasePreserving && shards > 1).then(
                || CoordState {
                    last_seq: vec![0; shards],
                    seen: vec![0; shards],
                },
            ),
            shard_routed: vec![0; shards],
            sync: cfg.dispatch.sync,
            pending_sync: VecDeque::new(),
            syncs_applied: 0,
            servers,
            arrivals: cfg.arrivals.build(lambda),
            sizes: cfg.job_sizes.build(),
            load_updates: cfg.load_updates,
            warmup: cfg.warmup,
            rng_arrival: Rng64::stream(seed, 0),
            rng_size: Rng64::stream(seed, 1),
            rng_dispatch: Rng64::stream(seed, streams.dispatch),
            rng_net: Rng64::stream(seed, streams.net),
            script,
            slab: JobSlab::with_capacity(64),
            fleet,
            up_buf: Vec::new(),
            done_buf: Vec::new(),
            resp_time: Welford::new(),
            resp_ratio: Welford::new(),
            ratio_p95: P2Quantile::new(0.95),
            ratio_p99: P2Quantile::new(0.99),
            ratio_histogram: cfg
                .track_ratio_histogram
                .then(|| Histogram::new(1e-4, 1e6, 1.05)),
            trace,
            deviation,
            obs,
            jobs_counted: 0,
            speeds: cfg.speeds.clone(),
            faults,
            down_count: 0,
            jobs_lost: 0,
            jobs_resubmitted: 0,
            jobs_restarted: 0,
            degraded_time: Welford::new(),
            degraded_ratio: Welford::new(),
            channels,
            stale_baseline: 0,
            stamping,
            rng_class,
            tier,
            slowdown: Welford::new(),
            slow_p95: P2Quantile::new(0.95),
            slow_p99: P2Quantile::new(0.99),
            class_stats,
            malleable_jobs: 0,
        }
    }

    /// Schedules the run's initial events: the first arrival, the warmup
    /// boundary, the first sync publish (when a sync plane exists), and
    /// the first crash of every server (when faults are configured) —
    /// in exactly the seed path's order.
    pub(crate) fn seed_initial_events<Q: FutureEventList<Ev>>(
        &mut self,
        engine: &mut Engine<Ev, Q>,
        cfg: &ClusterConfig,
    ) {
        match &self.script {
            Some(script) => {
                // The script always carries at least the sentinel; the
                // first entry (real or sentinel) mirrors the live path's
                // always-pending next arrival.
                if let Some(&(t, _, _)) = script.jobs.first() {
                    engine.schedule_at(SimTime::new(t), Ev::Arrival);
                }
            }
            None => {
                let first_gap = self.arrivals.next_interarrival(&mut self.rng_arrival);
                engine.schedule_at(SimTime::new(first_gap), Ev::Arrival);
            }
        }
        if cfg.warmup > 0.0 {
            engine.schedule_at(SimTime::new(cfg.warmup), Ev::WarmupEnd);
        }
        // The sync plane exists only when configured; without it no sync
        // event is ever scheduled (the D=1 invisibility path).
        if let Some(sync) = cfg.dispatch.sync {
            engine.schedule_at(SimTime::new(sync.interval), Ev::SyncPublish);
        }
        if let Some(fr) = &mut self.faults {
            for i in 0..self.servers.len() {
                // A targeted fault spec leaves the other servers' renewal
                // processes unscheduled *and* undrawn, so narrowing the
                // target set never perturbs the targeted servers' draws.
                if !fr.spec.applies_to(i) {
                    continue;
                }
                let first_up = fr.up_dist.sample(&mut fr.rngs[i]);
                engine.schedule_at(SimTime::new(first_up), Ev::ServerCrash { server: i });
            }
        }
    }
    /// Refreshes the fleet's dense queue-length mirror (and argmin
    /// index, when present) for `server` after a queue mutation.
    #[inline]
    fn sync_fleet(&mut self, server: usize) {
        self.fleet.sync(
            server,
            self.servers[server].queue_len(),
            self.speeds[server],
        );
    }

    /// Re-arms the wake timer of `server` after any state change.
    fn reschedule<Q: FutureEventList<Ev>>(
        &mut self,
        server: usize,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let epoch = self.servers[server].bump_epoch();
        if let Some(t) = self.servers[server].next_wakeup() {
            // Guard against sub-epsilon drift putting the wake a hair in
            // the past.
            let t = t.max(sched.now().as_secs());
            sched.schedule_at(SimTime::new(t), Ev::ServerWake { server, epoch });
        }
    }

    /// Handles completions gathered in `done_buf` for `server` at `now`.
    fn drain_completions<Q: FutureEventList<Ev>>(
        &mut self,
        server: usize,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        if self.done_buf.is_empty() {
            return;
        }
        let needs_updates = self.policies[0].needs_load_updates();
        for idx in 0..self.done_buf.len() {
            let id = self.done_buf[idx];
            let rec = self.slab.remove(id);
            debug_assert_eq!(rec.server, server);
            if let Some(obs) = &mut self.obs {
                obs.on_completion();
            }
            if rec.counted {
                let response = now - rec.arrival;
                if let Some(obs) = &mut self.obs {
                    obs.on_response(response);
                }
                self.resp_time.push(response);
                let ratio = response / rec.size;
                self.resp_ratio.push(ratio);
                self.ratio_p95.push(ratio);
                self.ratio_p99.push(ratio);
                self.record_slowdown(ratio, rec.class, response);
                if rec.degraded {
                    self.degraded_time.push(response);
                    self.degraded_ratio.push(ratio);
                }
                if let Some(h) = &mut self.ratio_histogram {
                    h.record(ratio);
                }
                if let Some(tr) = &mut self.trace {
                    tr.record(crate::trace::JobTrace {
                        arrival: rec.arrival,
                        completion: now,
                        size: rec.size,
                        server,
                    });
                }
            }
            if needs_updates {
                let delay = self.load_updates.detection_delay(&mut self.rng_net);
                sched.schedule_in(delay, Ev::LoadDetect { server });
            }
        }
        self.done_buf.clear();
    }

    /// Records one counted completion into the slowdown objective
    /// (always-on) and the per-class breakdown (stamping runs only).
    ///
    /// `slowdown = response / inherent size`, which on the rigid path
    /// coincides numerically with the response ratio — same numerator,
    /// same speed-1 service demand in the denominator.
    fn record_slowdown(&mut self, slowdown: f64, class: u16, response: f64) {
        self.slowdown.push(slowdown);
        self.slow_p95.push(slowdown);
        self.slow_p99.push(slowdown);
        if let Some(stats) = &mut self.class_stats {
            let (resp, slow) = &mut stats[usize::from(class)];
            resp.push(response);
            slow.push(slowdown);
            if let Some(obs) = &mut self.obs {
                obs.on_slowdown(slowdown);
            }
        }
    }

    /// Admits one stamped job into shard `shard`'s allocation runtime:
    /// progress the tier to `now`, harvest any completions, enrol the
    /// job, and re-solve the allocation.
    fn tier_admit<Q: FutureEventList<Ev>>(
        &mut self,
        shard: usize,
        id: JobId,
        class: u16,
        size: f64,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        self.tier_reap(shard, now);
        let tier = self.tier.as_mut().expect("tier admit without a tier");
        let key = tier.next_id[shard];
        tier.next_id[shard] += 1;
        tier.ids[shard].insert(key, id);
        tier.runtimes[shard].admit(key, class, size);
        self.tier_reallocate(shard, now, sched);
    }

    /// Progresses shard `shard`'s tier to `now` and completes every
    /// finished job (in admission order — the runtime reaps
    /// deterministically).
    fn tier_reap(&mut self, shard: usize, now: f64) {
        let (done, front) = {
            let tier = self.tier.as_mut().expect("tier reap without a tier");
            tier.runtimes[shard].advance(now);
            let reaped = tier.runtimes[shard].reap();
            let done: Vec<JobId> = reaped
                .iter()
                .map(|tj| {
                    tier.ids[shard]
                        .remove(&tj.id)
                        .expect("tier job key unknown to the id map")
                })
                .collect();
            (done, tier.ranges[shard].start)
        };
        for id in done {
            self.tier_complete(id, front, now);
        }
    }

    /// Full completion bookkeeping for one tier job — the tier-side
    /// mirror of [`Model::drain_completions`]. `server` is the shard's
    /// first server index, the representative the trace records for a
    /// job that ran on a fractional slice of the whole shard.
    fn tier_complete(&mut self, id: JobId, server: usize, now: f64) {
        let rec = self.slab.remove(id);
        if let Some(obs) = &mut self.obs {
            obs.on_completion();
        }
        if rec.counted {
            let response = now - rec.arrival;
            if let Some(obs) = &mut self.obs {
                obs.on_response(response);
            }
            self.resp_time.push(response);
            let ratio = response / rec.size;
            self.resp_ratio.push(ratio);
            self.ratio_p95.push(ratio);
            self.ratio_p99.push(ratio);
            self.record_slowdown(ratio, rec.class, response);
            if rec.degraded {
                self.degraded_time.push(response);
                self.degraded_ratio.push(ratio);
            }
            if let Some(h) = &mut self.ratio_histogram {
                h.record(ratio);
            }
            if let Some(tr) = &mut self.trace {
                tr.record(crate::trace::JobTrace {
                    arrival: rec.arrival,
                    completion: now,
                    size: rec.size,
                    server,
                });
            }
        }
    }

    /// Re-solves shard `shard`'s allocation for its current capacity
    /// (up servers in the slice at their mean speed), re-arms the
    /// shard's completion wake through the O(1)-cancel path, and mirrors
    /// the allocated fraction onto the slice's servers so utilization
    /// integrals stay honest.
    fn tier_reallocate<Q: FutureEventList<Ev>>(
        &mut self,
        shard: usize,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let range = self
            .tier
            .as_ref()
            .expect("tier reallocate without a tier")
            .ranges[shard]
            .clone();
        let mut cores = 0u32;
        let mut speed_sum = 0.0;
        for i in range.clone() {
            if self.servers[i].is_up() {
                cores += 1;
                speed_sum += self.speeds[i];
            }
        }
        // Zero capacity (whole slice down) stalls the tier: rates drop
        // to 0, no completion is pending, and the repair hook restarts
        // progress — the tier's analogue of parked Restart jobs.
        let core_speed = if cores > 0 {
            speed_sum / f64::from(cores)
        } else {
            0.0
        };
        let tier = self.tier.as_mut().expect("checked above");
        let rt = &mut tier.runtimes[shard];
        rt.reallocate(f64::from(cores), core_speed);
        let per_server = if cores > 0 {
            rt.cores_in_use() / f64::from(cores)
        } else {
            0.0
        };
        let next = rt.next_completion();
        if let Some(ev) = tier.wakes[shard].take() {
            sched.cancel(ev);
        }
        if let Some(t) = next {
            tier.wakes[shard] =
                Some(sched.schedule_at(SimTime::new(t.max(now)), Ev::TierWake { shard }));
        }
        for i in range {
            let share = if self.servers[i].is_up() {
                per_server
            } else {
                0.0
            };
            self.servers[i].set_tier_share(now, share);
        }
    }

    /// A tier completion fires on `shard`: harvest it (and any that
    /// finished in the same instant) and re-solve the allocation for
    /// the survivors.
    fn handle_tier_wake<Q: FutureEventList<Ev>>(
        &mut self,
        shard: usize,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        match &mut self.tier {
            Some(tier) => tier.wakes[shard] = None,
            None => return,
        }
        self.tier_reap(shard, now);
        self.tier_reallocate(shard, now, sched);
    }

    /// Capacity-change hook for the tier: a crash or repair of `server`
    /// resizes its shard's slice. Jobs progress at the old rates up to
    /// `now`, then the allocation re-solves against the new capacity —
    /// migration semantics, nothing is evicted or lost.
    fn tier_capacity_changed<Q: FutureEventList<Ev>>(
        &mut self,
        server: usize,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let Some(tier) = &self.tier else {
            return;
        };
        let shard = tier.shard_of[server];
        self.tier_reap(shard, now);
        self.tier_reallocate(shard, now, sched);
    }

    /// Coordinated-tier catch-up, called immediately after the splitter
    /// routes an arrival to `shard`: replays the global arrivals peer
    /// shards handled since this shard's previous one as virtual
    /// rotation steps, so the shard's real decision lands exactly where
    /// the single-dispatcher machine would put it. No-op for the
    /// uncoordinated baseline.
    fn coordinate(&mut self, shard: usize) {
        let Some(coord) = &mut self.coord else {
            return;
        };
        let seq = self.splitter.sequence();
        let steps = seq - coord.last_seq[shard] - 1;
        if steps > 0 {
            self.policies[shard].advance_rotation(steps);
        }
        coord.last_seq[shard] = seq;
        coord.seen[shard] += 1;
    }

    fn handle_arrival<Q: FutureEventList<Ev>>(
        &mut self,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        // Keep the arrival stream flowing. A scripted feed (the PDES
        // shard path) replays pre-generated (time, size) pairs instead
        // of drawing, preserving the live path's order of operations:
        // schedule the next arrival first, then observe, then take the
        // size. The script's final entry is a past-horizon sentinel that
        // is scheduled but never delivered, mirroring the live path's
        // always-pending next arrival.
        let (size, class) = match &mut self.script {
            Some(script) => {
                if let Some(&(t, _, _)) = script.jobs.get(script.cursor + 1) {
                    sched.schedule_at(SimTime::new(t), Ev::Arrival);
                }
                if let Some(obs) = &mut self.obs {
                    obs.on_arrival();
                }
                let (_, size, class) = script.jobs[script.cursor];
                script.cursor += 1;
                (size, class)
            }
            None => {
                let gap = self.arrivals.next_interarrival(&mut self.rng_arrival);
                sched.schedule_in(gap, Ev::Arrival);
                if let Some(obs) = &mut self.obs {
                    obs.on_arrival();
                }
                let size = self.sizes.sample(&mut self.rng_size);
                // Class stamping draws from its own stream, once per
                // live arrival (even for jobs lost to a total outage),
                // keeping the stamper aligned with the PDES pre-draw.
                let class = match (&self.stamping, &mut self.rng_class) {
                    (Some(spec), Some(rng)) => spec.stamp(rng.next_f64()),
                    _ => 0,
                };
                (size, class)
            }
        };
        let counted = now >= self.warmup;
        if self.down_count == self.servers.len() {
            // Total outage: no destination exists, so the policy is not
            // consulted (keeping its bookkeeping consistent with the
            // jobs it actually placed) and the job is lost. The size was
            // already sampled, keeping the size stream aligned.
            if counted {
                self.jobs_counted += 1;
                self.jobs_lost += 1;
            }
            return;
        }
        if self.tier.is_some() {
            // The allocation tier owns EVERY job when active — rigid
            // class-0 jobs included (they hold exactly one core, the
            // degenerate water level). The shard's policy is not
            // consulted and no per-server dispatch is recorded: tier
            // jobs have no single destination.
            if counted {
                self.jobs_counted += 1;
            }
            let shard = self.splitter.route();
            self.coordinate(shard);
            if counted {
                self.shard_routed[shard] += 1;
            }
            if class != 0 {
                self.malleable_jobs += 1;
            }
            let id = self.slab.insert(JobRecord {
                size,
                arrival: now,
                // Tier jobs run on a fractional slice of the shard, not
                // a single server; MAX keeps accidental reads loud.
                server: usize::MAX,
                counted,
                degraded: self.down_count > 0,
                class,
            });
            self.tier_admit(shard, id, class, size, now, sched);
            return;
        }
        if self.channels.is_some() {
            // Unreliable dispatch plane: the job becomes an in-flight
            // transfer; the attempt/ack machinery takes it from here.
            if counted {
                self.jobs_counted += 1;
            }
            let shard = self.splitter.route();
            // The rotation catch-up happens at *routing* time; the
            // actual decision (and any retry re-decisions) in
            // `start_attempt` then runs on the caught-up machine. Retry
            // attempts are extra decisions the global sequence never
            // saw — a small, documented phase perturbation.
            self.coordinate(shard);
            if counted {
                self.shard_routed[shard] += 1;
            }
            let id = self.slab.insert(JobRecord {
                size,
                arrival: now,
                // Overwritten when a copy lands; MAX keeps a read of an
                // undelivered job's server loud.
                server: usize::MAX,
                counted,
                degraded: self.down_count > 0,
                class,
            });
            let (tx, gen) = self
                .channels
                .as_mut()
                .expect("checked above")
                .insert(id, shard);
            self.start_attempt(tx, gen, false, now, sched);
            return;
        }
        // The splitter picks the dispatcher; that shard's private policy
        // instance picks the server. All shards share the dispatch RNG
        // stream, so with one shard the draw sequence is exactly the
        // single-dispatcher one. In coordinated mode the shard first
        // replays its peers' arrivals as virtual rotation steps.
        let shard = self.splitter.route();
        self.coordinate(shard);
        let ctx = DispatchCtx {
            now,
            job_size: size,
            queue_lens: &self.fleet.qlens,
            speeds: &self.speeds,
            true_load_index: self.fleet.index.as_ref(),
        };
        let target = self.policies[shard].choose(&ctx, &mut self.rng_dispatch);
        debug_assert!(target < self.servers.len(), "policy chose {target}");

        if counted {
            self.jobs_counted += 1;
            self.shard_routed[shard] += 1;
        }
        if let Some(dev) = &mut self.deviation {
            dev.record(now, target);
        }
        if let Some(obs) = &mut self.obs {
            obs.on_dispatch(target);
            obs.on_shard_dispatch(shard, target);
        }
        if !self.servers[target].is_up() {
            // The dispatcher (stale or failure-unaware) sent the job to
            // a dead machine: the job is lost. This is the cost a policy
            // pays for ignoring membership notices.
            if counted {
                self.jobs_lost += 1;
            }
            return;
        }
        let id = self.slab.insert(JobRecord {
            size,
            arrival: now,
            server: target,
            counted,
            degraded: self.down_count > 0,
            class,
        });
        // Catch any boundary-epsilon completion before admitting.
        self.servers[target].advance(now, &mut self.done_buf);
        self.drain_completions(target, now, sched);
        self.servers[target].arrive(now, id, size);
        self.sync_fleet(target);
        self.reschedule(target, sched);
    }

    /// Launches one dispatch attempt (primary, retransmission, or hedge
    /// copy) for transfer `(tx, gen)`: the owning shard's policy picks a
    /// target against fresh queue lengths, the dispatch plane decides
    /// the copy's fate, and — for primary attempts — the ack timers are
    /// armed.
    fn start_attempt<Q: FutureEventList<Ev>>(
        &mut self,
        tx: u32,
        gen: u32,
        hedged: bool,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let (job, shard, attempts) = {
            let ch = self.channels.as_mut().expect("attempt without channels");
            let Some(tr) = ch.get_mut(tx, gen) else {
                return; // transfer resolved while this attempt was queued
            };
            if !hedged {
                tr.attempts += 1;
            }
            (tr.job, tr.shard, tr.attempts)
        };
        let size = self.slab.get(job).size;
        let ctx = DispatchCtx {
            now,
            job_size: size,
            queue_lens: &self.fleet.qlens,
            speeds: &self.speeds,
            true_load_index: self.fleet.index.as_ref(),
        };
        // Every attempt is a real dispatch decision: it re-consults the
        // policy (so retries see fresh believed state) and is counted by
        // the deviation tracker and the observability plane.
        let target = self.policies[shard].choose(&ctx, &mut self.rng_dispatch);
        debug_assert!(target < self.servers.len(), "policy chose {target}");
        if let Some(dev) = &mut self.deviation {
            dev.record(now, target);
        }
        if let Some(obs) = &mut self.obs {
            obs.on_dispatch(target);
            obs.on_shard_dispatch(shard, target);
        }
        // The copy — and possibly a duplicate of it — crosses the plane.
        let (deliveries, retry, hedge_delay) = {
            let ch = self.channels.as_mut().expect("checked above");
            let mut deliveries: [Option<f64>; 2] = [None, None];
            if ChannelRuntime::lose(&ch.spec.dispatch, &mut ch.rng_dispatch, now) {
                ch.msgs_lost += 1;
                ch.server_msgs_lost[target] += 1;
                if let Some(obs) = &mut self.obs {
                    obs.on_msg_lost();
                }
            } else {
                deliveries[0] = Some(ChannelRuntime::jitter(
                    &ch.spec.dispatch,
                    &mut ch.rng_dispatch,
                ));
                if ChannelRuntime::dup(&ch.spec.dispatch, &mut ch.rng_dispatch) {
                    deliveries[1] = Some(ChannelRuntime::jitter(
                        &ch.spec.dispatch,
                        &mut ch.rng_dispatch,
                    ));
                }
            }
            let copies = deliveries.iter().flatten().count() as u32;
            let tr = ch.get_mut(tx, gen).expect("transfer vanished mid-attempt");
            tr.copies_in_flight += copies;
            (deliveries, ch.spec.retry, ch.spec.hedge.map(|h| h.delay))
        };
        // Arm the ack timers *before* any inline delivery: a zero-jitter
        // ack can resolve the transfer — and cancel them — in the same
        // instant.
        if !hedged {
            if let Some(r) = retry {
                let timer = sched.schedule_in(
                    r.delay_for_attempt(attempts - 1),
                    Ev::RetryTimer { tx, gen },
                );
                let hedge_timer = if attempts == 1 {
                    hedge_delay.map(|d| sched.schedule_in(d, Ev::HedgeTimer { tx, gen }))
                } else {
                    None
                };
                let ch = self.channels.as_mut().expect("checked above");
                if let Some(tr) = ch.get_mut(tx, gen) {
                    tr.retry_timer = Some(timer);
                    if hedge_timer.is_some() {
                        tr.hedge_timer = hedge_timer;
                    }
                }
            }
        }
        for d in deliveries.into_iter().flatten() {
            if d > 0.0 {
                sched.schedule_in(
                    d,
                    Ev::DispatchDeliver {
                        tx,
                        gen,
                        target,
                        hedged,
                    },
                );
            } else {
                self.deliver_dispatch(tx, gen, target, hedged, now, sched);
            }
        }
        // Fire-and-forget with every copy lost: the job dies at the send.
        if retry.is_none() {
            let dead = {
                let ch = self.channels.as_mut().expect("checked above");
                matches!(
                    ch.get_mut(tx, gen),
                    Some(tr) if !tr.delivered && tr.copies_in_flight == 0
                )
            };
            if dead {
                self.resolve_lost(tx, gen, sched);
            }
        }
    }

    /// A dispatch-plane copy reaches `target`: dedup, orphan-drop, land
    /// the job, and race the ack back.
    fn deliver_dispatch<Q: FutureEventList<Ev>>(
        &mut self,
        tx: u32,
        gen: u32,
        target: usize,
        hedged: bool,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        /// What became of the copy, decided under the channel borrow.
        enum Fate {
            /// Copy reached a dead server and no recovery path remains.
            Lost,
            /// First copy to land: admit the job.
            Land {
                job: JobId,
                hedge_sent: bool,
                retry: bool,
            },
        }
        let fate = {
            let Some(ch) = self.channels.as_mut() else {
                return;
            };
            let retry = ch.spec.retry.is_some();
            let Some(tr) = ch.get_mut(tx, gen) else {
                return; // orphan copy: the transfer already resolved
            };
            tr.copies_in_flight = tr.copies_in_flight.saturating_sub(1);
            if tr.delivered {
                return; // duplicate copy: the job already landed
            }
            if !self.servers[target].is_up() {
                // The copy reached a dead machine and will never be
                // acked. With retries the timer recovers; without, the
                // job dies once no other copy is in the air.
                if !retry && tr.copies_in_flight == 0 {
                    Fate::Lost
                } else {
                    return;
                }
            } else {
                tr.delivered = true;
                Fate::Land {
                    job: tr.job,
                    hedge_sent: tr.hedged,
                    retry,
                }
            }
        };
        match fate {
            Fate::Lost => self.resolve_lost(tx, gen, sched),
            Fate::Land {
                job,
                hedge_sent,
                retry,
            } => {
                if hedge_sent {
                    // First landing decides the race; the loser's copies
                    // become orphans when the ack resolves the transfer.
                    let ch = self.channels.as_mut().expect("checked above");
                    if hedged {
                        ch.hedges_won += 1;
                    } else {
                        ch.hedges_lost += 1;
                    }
                }
                let size = {
                    let rec = self.slab.get_mut(job);
                    rec.server = target;
                    rec.size
                };
                self.servers[target].advance(now, &mut self.done_buf);
                self.drain_completions(target, now, sched);
                self.servers[target].arrive(now, job, size);
                self.sync_fleet(target);
                self.reschedule(target, sched);
                if retry {
                    // The ack races back across the same plane; a lost
                    // ack leaves the timers armed and the retry timer
                    // settles the (already delivered) transfer later.
                    let ack_lost = {
                        let ch = self.channels.as_mut().expect("checked above");
                        let lost =
                            ChannelRuntime::lose(&ch.spec.dispatch, &mut ch.rng_dispatch, now);
                        if lost {
                            ch.msgs_lost += 1;
                            ch.server_msgs_lost[target] += 1;
                        }
                        lost
                    };
                    if ack_lost {
                        if let Some(obs) = &mut self.obs {
                            obs.on_msg_lost();
                        }
                    } else {
                        self.resolve_success(tx, gen, sched);
                    }
                } else {
                    self.resolve_success(tx, gen, sched);
                }
            }
        }
    }

    /// The transfer is settled (job landed and, with retries, acked):
    /// cancel both timers through the O(1)-cancel event list and free
    /// the slot.
    fn resolve_success<Q: FutureEventList<Ev>>(
        &mut self,
        tx: u32,
        gen: u32,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let ch = self.channels.as_mut().expect("resolve without channels");
        let Some(tr) = ch.take(tx, gen) else { return };
        if let Some(id) = tr.retry_timer {
            sched.cancel(id);
        }
        if let Some(id) = tr.hedge_timer {
            sched.cancel(id);
        }
    }

    /// Orphan detection: the transfer is abandoned, its slab entry
    /// reclaimed, and the loss counted.
    fn resolve_lost<Q: FutureEventList<Ev>>(
        &mut self,
        tx: u32,
        gen: u32,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let tr = {
            let ch = self.channels.as_mut().expect("resolve without channels");
            match ch.take(tx, gen) {
                Some(tr) => tr,
                None => return,
            }
        };
        if let Some(id) = tr.retry_timer {
            sched.cancel(id);
        }
        if let Some(id) = tr.hedge_timer {
            sched.cancel(id);
        }
        if self.slab.remove(tr.job).counted {
            self.jobs_lost += 1;
        }
    }

    /// The ack timeout fired: settle a delivered-but-unacked transfer,
    /// give up after `max_retries` retransmissions, or retransmit with
    /// exponential backoff.
    fn handle_retry_timer<Q: FutureEventList<Ev>>(
        &mut self,
        tx: u32,
        gen: u32,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let (delivered, exhausted) = {
            let Some(ch) = self.channels.as_mut() else {
                return;
            };
            let max_retries = ch.spec.retry.map(|r| r.max_retries).unwrap_or(0);
            let Some(tr) = ch.get_mut(tx, gen) else {
                return; // resolved; the cancel raced the pop
            };
            tr.retry_timer = None;
            let delivered = tr.delivered;
            let attempts = tr.attempts;
            ch.timeouts += 1;
            (delivered, attempts > max_retries)
        };
        if delivered {
            // The job landed but every ack was lost: stop retransmitting
            // (the job must not run twice) and settle the transfer.
            self.resolve_success(tx, gen, sched);
        } else if exhausted {
            self.resolve_lost(tx, gen, sched);
        } else {
            {
                let ch = self.channels.as_mut().expect("checked above");
                ch.retries += 1;
            }
            if let Some(obs) = &mut self.obs {
                obs.on_retry();
            }
            self.start_attempt(tx, gen, false, now, sched);
        }
    }

    /// The hedge delay fired with no ack yet: duplicate the dispatch to
    /// a second policy pick (first landing wins the race).
    fn handle_hedge_timer<Q: FutureEventList<Ev>>(
        &mut self,
        tx: u32,
        gen: u32,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        {
            let Some(ch) = self.channels.as_mut() else {
                return;
            };
            let Some(tr) = ch.get_mut(tx, gen) else {
                return;
            };
            tr.hedge_timer = None;
            if tr.delivered {
                return; // landed (ack lost): hedging would double-run it
            }
            tr.hedged = true;
        }
        self.start_attempt(tx, gen, true, now, sched);
    }

    /// A server noticed a departure: the update message crosses the load
    /// plane (loss/jitter/duplication when unreliable) on its way to the
    /// network-delay model. Channel fate is decided *before* the
    /// network-delay draw, so a lost update consumes no `rng_net`
    /// randomness.
    fn handle_load_detect<Q: FutureEventList<Ev>>(
        &mut self,
        server: usize,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let queue_len = self.servers[server].queue_len();
        let lossy = matches!(&self.channels, Some(c) if !c.spec.load.is_reliable());
        if !lossy {
            let delay = self.load_updates.message_delay(&mut self.rng_net);
            sched.schedule_in(delay, Ev::LoadUpdate { server, queue_len });
            return;
        }
        let ch = self.channels.as_mut().expect("checked above");
        if ChannelRuntime::lose(&ch.spec.load, &mut ch.rng_load, now) {
            ch.msgs_lost += 1;
            ch.server_msgs_lost[server] += 1;
            if let Some(obs) = &mut self.obs {
                obs.on_msg_lost();
            }
            return;
        }
        let base = self.load_updates.message_delay(&mut self.rng_net);
        let delay = base + ChannelRuntime::jitter(&ch.spec.load, &mut ch.rng_load);
        sched.schedule_in(delay, Ev::LoadUpdate { server, queue_len });
        if ChannelRuntime::dup(&ch.spec.load, &mut ch.rng_load) {
            let dup_delay = base + ChannelRuntime::jitter(&ch.spec.load, &mut ch.rng_load);
            sched.schedule_in(dup_delay, Ev::LoadUpdate { server, queue_len });
        }
    }

    fn handle_wake<Q: FutureEventList<Ev>>(
        &mut self,
        server: usize,
        epoch: u64,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        if epoch != self.servers[server].epoch() {
            return; // superseded by a later arrival
        }
        self.servers[server].advance(now, &mut self.done_buf);
        self.drain_completions(server, now, sched);
        self.sync_fleet(server);
        self.reschedule(server, sched);
    }

    fn handle_crash<Q: FutureEventList<Ev>>(
        &mut self,
        server: usize,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        // Completions landing exactly at the crash instant still count.
        self.servers[server].advance(now, &mut self.done_buf);
        self.drain_completions(server, now, sched);

        let fr = self.faults.as_mut().expect("crash event without faults");
        // Fixed per-crash draw order on the server's own stream: repair
        // time first, then (optionally) the notice delay.
        let semantics = fr.spec.on_crash;
        let down_for = fr.down_dist.sample(&mut fr.rngs[server]);
        let notice = membership_notice_delay(fr.spec.notice_delay_mean, &mut fr.rngs[server]);
        sched.schedule_in(down_for, Ev::ServerRepair { server });

        let mut evicted = Vec::new();
        self.servers[server].fail(now, &mut evicted);
        self.servers[server].bump_epoch(); // orphan the pending wake
        self.sync_fleet(server); // the evicted queue drains to 0
        self.down_count += 1;
        self.notify_membership(notice, now, sched);
        // Tier jobs are not evicted by the crash — the shard's slice
        // just shrank, so their shares re-solve over what remains.
        self.tier_capacity_changed(server, now, sched);

        match semantics {
            JobFaultSemantics::Lost => {
                for id in evicted {
                    if self.slab.remove(id).counted {
                        self.jobs_lost += 1;
                    }
                }
            }
            JobFaultSemantics::Resubmit => {
                // Evicted in deterministic discipline order; each goes
                // back through the dispatcher at the crash instant. With
                // an instantaneous notice the policy has already been
                // told about the outage; with a delayed one it may well
                // re-pick the dead server and lose the job.
                for id in evicted {
                    self.resubmit(id, now, sched);
                }
            }
            JobFaultSemantics::Restart => {
                let fr = self.faults.as_mut().expect("checked above");
                fr.parked[server] = evicted;
            }
        }
    }

    /// Pushes a crash-evicted job back through the dispatcher with its
    /// full service demand and original arrival time.
    fn resubmit<Q: FutureEventList<Ev>>(
        &mut self,
        id: JobId,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let mut rec = self.slab.remove(id);
        if self.down_count == self.servers.len() {
            if rec.counted {
                self.jobs_lost += 1;
            }
            return;
        }
        // Resubmissions go back through the splitter like fresh
        // arrivals: the original shard is not remembered — and in
        // coordinated mode they get a fresh sequence stamp, so the
        // replay bookkeeping stays exact.
        let shard = self.splitter.route();
        self.coordinate(shard);
        let ctx = DispatchCtx {
            now,
            job_size: rec.size,
            queue_lens: &self.fleet.qlens,
            speeds: &self.speeds,
            true_load_index: self.fleet.index.as_ref(),
        };
        let target = self.policies[shard].choose(&ctx, &mut self.rng_dispatch);
        debug_assert!(target < self.servers.len(), "policy chose {target}");
        if !self.servers[target].is_up() {
            if rec.counted {
                self.jobs_lost += 1;
            }
            return;
        }
        if rec.counted {
            self.jobs_resubmitted += 1;
            self.shard_routed[shard] += 1;
        }
        if let Some(dev) = &mut self.deviation {
            dev.record(now, target);
        }
        if let Some(obs) = &mut self.obs {
            obs.on_dispatch(target);
            obs.on_shard_dispatch(shard, target);
        }
        rec.server = target;
        rec.degraded = true;
        let size = rec.size;
        let new_id = self.slab.insert(rec);
        self.servers[target].advance(now, &mut self.done_buf);
        self.drain_completions(target, now, sched);
        self.servers[target].arrive(now, new_id, size);
        self.sync_fleet(target);
        self.reschedule(target, sched);
    }

    fn handle_repair<Q: FutureEventList<Ev>>(
        &mut self,
        server: usize,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        self.servers[server].repair(now);
        self.down_count -= 1;

        let fr = self.faults.as_mut().expect("repair event without faults");
        // Per-repair draw order mirrors the crash: next up time first,
        // then (optionally) the notice delay.
        let up_for = fr.up_dist.sample(&mut fr.rngs[server]);
        let notice = membership_notice_delay(fr.spec.notice_delay_mean, &mut fr.rngs[server]);
        let parked = std::mem::take(&mut fr.parked[server]);
        sched.schedule_in(up_for, Ev::ServerCrash { server });
        self.notify_membership(notice, now, sched);

        // Restart semantics: parked jobs re-enter with their full demand
        // and original arrival time, so the outage shows up as response
        // time.
        for id in parked {
            let mut rec = self.slab.remove(id);
            rec.degraded = true;
            debug_assert_eq!(rec.server, server);
            if rec.counted {
                self.jobs_restarted += 1;
            }
            let size = rec.size;
            let new_id = self.slab.insert(rec);
            self.servers[server].arrive(now, new_id, size);
        }
        self.sync_fleet(server);
        self.reschedule(server, sched);
        // The repaired server rejoins its shard's slice: tier shares
        // re-solve over the grown capacity (and a fully-stalled shard
        // resumes progress).
        self.tier_capacity_changed(server, now, sched);
    }

    /// Delivers (or schedules) a membership notice to the policy.
    fn notify_membership<Q: FutureEventList<Ev>>(
        &mut self,
        delay: f64,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        if delay <= 0.0 {
            self.deliver_membership(now);
        } else {
            sched.schedule_in(delay, Ev::MembershipNotice);
        }
    }

    fn deliver_membership(&mut self, now: f64) {
        // A coordinated tier first brings every shard to the current
        // global sequence position. Shards replay peer arrivals lazily,
        // so without this each shard would apply the membership change
        // at a *different* point of its replayed trajectory — the
        // trajectories would permanently diverge into slightly-offset
        // copies of the same full-rate cycle, whose thinned unions
        // clump jobs (the phase-locking pathology coordination exists
        // to avoid). Catching up first makes the change a consistent
        // cut: every shard's trajectory switches membership at the same
        // arrival, so the global-sequence reconstruction survives
        // crashes and repairs.
        if let Some(coord) = &mut self.coord {
            let seq = self.splitter.sequence();
            for (shard, last) in coord.last_seq.iter_mut().enumerate() {
                let steps = seq - *last;
                if steps > 0 {
                    self.policies[shard].advance_rotation(steps);
                }
                *last = seq;
            }
        }
        self.up_buf.clear();
        self.up_buf.extend(self.servers.iter().map(|s| s.is_up()));
        // Membership is cluster-wide infrastructure news: every shard's
        // dispatcher hears the same notice at the same instant.
        for policy in &mut self.policies {
            policy.on_membership_change(&self.up_buf, now);
        }
    }

    /// Snapshots every shard's mergeable state, computes the consensus,
    /// and ships it back (inline for zero latency, else via `SyncApply`).
    /// Reschedules itself: the publish cadence is a fixed clock, not
    /// completion-driven.
    fn handle_sync_publish<Q: FutureEventList<Ev>>(
        &mut self,
        now: f64,
        sched: &mut Scheduler<'_, Ev, Q>,
    ) {
        let sync = self.sync.expect("sync event without a sync plane");
        sched.schedule_in(sync.interval, Ev::SyncPublish);
        let merged = match &mut self.coord {
            None => {
                let states: Vec<SyncState> = self
                    .policies
                    .iter()
                    .filter_map(|p| p.sync_state())
                    .collect();
                consensus(&states)
            }
            Some(coord) => {
                // Coordinated publish: each shard's snapshot carries its
                // realized substream arrival rate — cumulative since the
                // run began, because a single publish window holds too
                // few (bursty) arrivals to estimate λ stably, and a
                // noisy λ would whipsaw a rate-aware policy's
                // allocation from round to round. The fold is the
                // phase-preserving one; the consensus rate is the tier
                // total — the λ ReORR re-solves Algorithm 1 against.
                let states: Vec<SyncState> = self
                    .policies
                    .iter()
                    .enumerate()
                    .filter_map(|(s, p)| {
                        p.sync_state().map(|mut st| {
                            if now > 0.0 {
                                st.rate = coord.seen[s] as f64 / now;
                            }
                            st
                        })
                    })
                    .collect();
                consensus_coordinated(&states)
            }
        };
        let Some(merged) = merged else {
            return; // nothing mergeable this round
        };
        if sync.latency <= 0.0 {
            self.apply_sync(&merged, now);
        } else {
            self.pending_sync.push_back(merged);
            sched.schedule_in(sync.latency, Ev::SyncApply);
        }
    }

    /// Merges a consensus snapshot into every shard's policy instance.
    ///
    /// With an unreliable sync plane each shard's copy of the consensus
    /// is lost independently (loss probability and partition windows;
    /// duplication/jitter are delivery-path concepts and do not apply to
    /// an inline merge). A round counts as applied when at least one
    /// shard merged it.
    fn apply_sync(&mut self, merged: &SyncState, now: f64) {
        let lossy = matches!(&self.channels, Some(c) if !c.spec.sync.is_reliable());
        if !lossy {
            for policy in &mut self.policies {
                policy.merge_sync(merged, now);
            }
            self.syncs_applied += 1;
            return;
        }
        let ch = self.channels.as_mut().expect("checked above");
        let mut applied = 0u32;
        for policy in &mut self.policies {
            if ChannelRuntime::lose(&ch.spec.sync, &mut ch.rng_sync, now) {
                ch.msgs_lost += 1;
                if let Some(obs) = &mut self.obs {
                    obs.on_msg_lost();
                }
                continue;
            }
            policy.merge_sync(merged, now);
            applied += 1;
        }
        if applied > 0 {
            self.syncs_applied += 1;
        }
    }

    pub(crate) fn finalize(mut self, horizon: f64, events: u64, kernel: FelStats) -> RunStats {
        // Close the remaining whole observability windows *before* the
        // servers flush their integrals at the horizon: every boundary
        // up to the horizon reads state as of that boundary.
        let obs = self.obs.take().map(|mut o| {
            o.flush_to(horizon, &self.servers, self.slab.len());
            o.into_report(kernel)
        });
        for s in &mut self.servers {
            s.finalize(horizon);
        }
        if let Some(dev) = &mut self.deviation {
            dev.advance_to(horizon);
        }
        let total_dispatched: u64 = self.servers.iter().map(|s| s.dispatched()).sum();
        let servers: Vec<ServerStats> = self
            .servers
            .iter()
            .enumerate()
            .map(|(i, s)| ServerStats {
                speed: s.speed(),
                dispatched: s.dispatched(),
                completed: s.completed(),
                utilization: s.utilization(),
                mean_queue_len: s.mean_queue_len(),
                dispatch_fraction: if total_dispatched == 0 {
                    0.0
                } else {
                    s.dispatched() as f64 / total_dispatched as f64
                },
                availability: s.availability(),
                downtime: s.downtime(),
                crashes: s.crashes(),
                msgs_lost: self
                    .channels
                    .as_ref()
                    .map(|c| c.server_msgs_lost[i])
                    .unwrap_or(0),
            })
            .collect();
        let total_speed: f64 = self.speeds.iter().sum();
        let realized_utilization = self
            .servers
            .iter()
            .map(|s| s.utilization() * s.speed())
            .sum::<f64>()
            / total_speed;
        let availability = self
            .servers
            .iter()
            .map(|s| s.availability() * s.speed())
            .sum::<f64>()
            / total_speed;
        let crashes = self.servers.iter().map(|s| s.crashes()).sum();
        let degraded_jobs = self.degraded_ratio.count();
        // Shard detail only exists for a real multi-dispatcher tier; a
        // D = 1 run reports the pre-tier shape (empty vec) bit-for-bit.
        let shards = if self.shard_routed.len() > 1 {
            let total: u64 = self.shard_routed.iter().sum();
            self.shard_routed
                .iter()
                .map(|&jobs| ShardStats {
                    jobs,
                    share: if total == 0 {
                        0.0
                    } else {
                        jobs as f64 / total as f64
                    },
                })
                .collect()
        } else {
            Vec::new()
        };
        // Per-class breakdown only exists for stamping runs; every
        // stamped class id appears, even with zero completions, so the
        // sharded merge can fold tables elementwise.
        let classes: Vec<ClassStats> = self
            .class_stats
            .as_ref()
            .map(|stats| {
                stats
                    .iter()
                    .enumerate()
                    .map(|(c, (resp, slow))| ClassStats {
                        class: c as u16,
                        count: resp.count(),
                        mean_slowdown: slow.mean(),
                        mean_response: resp.mean(),
                    })
                    .collect()
            })
            .unwrap_or_default();
        let malleable = self.tier.as_ref().map(|tier| MalleableStats {
            malleable_jobs: self.malleable_jobs,
            reallocations: tier.runtimes.iter().map(|r| r.reallocations).sum(),
            max_cores_in_use: tier.runtimes.iter().map(|r| r.max_cores_in_use).sum(),
            fleet_cores: self.servers.len() as f64,
        });
        RunStats {
            policy: self.policies[0].name(),
            jobs_counted: self.jobs_counted,
            jobs_finished: self.resp_ratio.count(),
            mean_response_time: self.resp_time.mean(),
            mean_response_ratio: self.resp_ratio.mean(),
            fairness: self.resp_ratio.std_dev(),
            p95_response_ratio: self.ratio_p95.estimate().unwrap_or(0.0),
            p99_response_ratio: self.ratio_p99.estimate().unwrap_or(0.0),
            servers,
            deviations: self
                .deviation
                .map(|d| d.deviations().to_vec())
                .unwrap_or_default(),
            ratio_histogram: self.ratio_histogram,
            trace: self.trace,
            events_processed: events,
            realized_utilization,
            jobs_lost: self.jobs_lost,
            jobs_resubmitted: self.jobs_resubmitted,
            jobs_restarted: self.jobs_restarted,
            crashes,
            availability,
            degraded_jobs,
            mean_degraded_response_time: if degraded_jobs == 0 {
                0.0
            } else {
                self.degraded_time.mean()
            },
            mean_degraded_response_ratio: if degraded_jobs == 0 {
                0.0
            } else {
                self.degraded_ratio.mean()
            },
            obs,
            shards,
            syncs_applied: self.syncs_applied,
            msgs_lost: self.channels.as_ref().map(|c| c.msgs_lost).unwrap_or(0),
            retries: self.channels.as_ref().map(|c| c.retries).unwrap_or(0),
            timeouts: self.channels.as_ref().map(|c| c.timeouts).unwrap_or(0),
            hedges_won: self.channels.as_ref().map(|c| c.hedges_won).unwrap_or(0),
            hedges_lost: self.channels.as_ref().map(|c| c.hedges_lost).unwrap_or(0),
            stale_decisions: self
                .policies
                .iter()
                .map(|p| p.stale_decisions())
                .sum::<u64>()
                .saturating_sub(self.stale_baseline),
            // Conservation law: counted = finished + lost + in flight.
            jobs_in_flight: self.slab.iter().filter(|r| r.counted).count() as u64,
            // Summary collapse happens at the top-level run exits, never
            // here: sharded finalization still needs the full vectors.
            server_summary: None,
            mean_slowdown: self.slowdown.mean(),
            p95_slowdown: self.slow_p95.estimate().unwrap_or(0.0),
            p99_slowdown: self.slow_p99.estimate().unwrap_or(0.0),
            classes,
            malleable,
        }
    }
}

impl<P: Policy, Q: FutureEventList<Ev>> Actor<Ev, Q> for Model<P> {
    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev, Q>) {
        let t = now.as_secs();
        // Observability windows close *before* the event at their
        // boundary is processed — the same lazy arithmetic as the
        // deviation tracker. The flush only reads model state; it never
        // schedules events or draws random numbers, so the run is
        // bit-identical with observability on or off.
        if let Some(obs) = &mut self.obs {
            obs.flush_to(t, &self.servers, self.slab.len());
        }
        match event {
            Ev::Arrival => self.handle_arrival(t, sched),
            Ev::ServerWake { server, epoch } => self.handle_wake(server, epoch, t, sched),
            Ev::LoadDetect { server } => self.handle_load_detect(server, t, sched),
            Ev::LoadUpdate { server, queue_len } => {
                // Update messages come from the servers, not from a
                // shard: every dispatcher sees the same (delayed) load
                // news, as each would in a real broadcast.
                for policy in &mut self.policies {
                    policy.on_load_update(server, queue_len, t);
                }
            }
            Ev::WarmupEnd => {
                for s in &mut self.servers {
                    s.reset_window(t);
                }
                // Fault metrics are measurement-window quantities too.
                self.jobs_lost = 0;
                self.jobs_resubmitted = 0;
                self.jobs_restarted = 0;
                self.syncs_applied = 0;
                self.degraded_time = Welford::new();
                self.degraded_ratio = Welford::new();
                // Channel counters and the staleness tally are
                // measurement-window quantities as well.
                if let Some(ch) = &mut self.channels {
                    ch.reset_window();
                }
                self.stale_baseline = self.policies.iter().map(|p| p.stale_decisions()).sum();
                // Probes differencing cumulative server counters must
                // rebase on the same reset.
                if let Some(obs) = &mut self.obs {
                    obs.on_warmup_reset(t);
                }
            }
            Ev::ServerCrash { server } => self.handle_crash(server, t, sched),
            Ev::ServerRepair { server } => self.handle_repair(server, t, sched),
            Ev::MembershipNotice => self.deliver_membership(t),
            Ev::SyncPublish => self.handle_sync_publish(t, sched),
            Ev::SyncApply => {
                let merged = self
                    .pending_sync
                    .pop_front()
                    .expect("sync apply without pending consensus");
                self.apply_sync(&merged, t);
            }
            Ev::DispatchDeliver {
                tx,
                gen,
                target,
                hedged,
            } => self.deliver_dispatch(tx, gen, target, hedged, t, sched),
            Ev::RetryTimer { tx, gen } => self.handle_retry_timer(tx, gen, t, sched),
            Ev::HedgeTimer { tx, gen } => self.handle_hedge_timer(tx, gen, t, sched),
            Ev::TierWake { shard } => self.handle_tier_wake(shard, t, sched),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrivalSpec;
    use crate::discipline::DisciplineSpec;
    use hetsched_dist::DistSpec;

    /// Round-robin over all servers — simple deterministic test policy.
    struct Cyclic {
        next: usize,
    }

    impl Policy for Cyclic {
        fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
            let pick = self.next;
            self.next = (self.next + 1) % ctx.speeds.len();
            pick
        }

        fn name(&self) -> String {
            "cyclic-test".into()
        }
    }

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            speeds: vec![1.0, 1.0],
            fleet: Vec::new(),
            utilization: 0.5,
            job_sizes: DistSpec::Exponential { mean: 10.0 },
            arrivals: ArrivalSpec::Poisson,
            discipline: DisciplineSpec::ProcessorSharing,
            load_updates: crate::network::LoadUpdateModel::default(),
            horizon: 20_000.0,
            warmup: 2_000.0,
            deviation_interval: None,
            track_ratio_histogram: false,
            trace: None,
            faults: None,
            event_list: EventListBackend::default(),
            obs: None,
            dispatch: Default::default(),
            channels: None,
            per_server: Default::default(),
            malleable: None,
        }
    }

    #[test]
    fn runs_and_produces_sane_stats() {
        let sim = Simulation::new(small_cfg(), Cyclic { next: 0 }, 42).unwrap();
        let stats = sim.run();
        assert!(stats.jobs_counted > 500, "counted {}", stats.jobs_counted);
        assert!(stats.jobs_finished > 0);
        assert!(stats.jobs_finished <= stats.jobs_counted);
        assert!(stats.mean_response_time > 0.0);
        // Response ratio is at least 1 for every job (a job cannot beat
        // its own size on a speed-1 machine).
        assert!(stats.mean_response_ratio >= 1.0);
        assert!(stats.fairness >= 0.0);
        assert_eq!(stats.policy, "cyclic-test");
    }

    #[test]
    fn backends_produce_identical_results() {
        // The whole-model differential: heap and calendar engines must
        // agree bit-for-bit, fault-free and under heavy fault churn.
        for faults in [
            None,
            Some(
                crate::faults::FaultSpec::exponential(1_000.0, 100.0)
                    .with_semantics(crate::faults::JobFaultSemantics::Resubmit)
                    .with_notice_delay(5.0),
            ),
        ] {
            let has_faults = faults.is_some();
            let mut heap_cfg = small_cfg();
            heap_cfg.faults = faults;
            let mut cal_cfg = heap_cfg.clone();
            cal_cfg.event_list = EventListBackend::Calendar;
            let heap = Simulation::new(heap_cfg, Cyclic { next: 0 }, 13)
                .unwrap()
                .run();
            let cal = Simulation::new(cal_cfg, Cyclic { next: 0 }, 13)
                .unwrap()
                .run();
            assert_eq!(heap, cal, "faults: {has_faults}");
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = Simulation::new(small_cfg(), Cyclic { next: 0 }, 7)
            .unwrap()
            .run();
        let b = Simulation::new(small_cfg(), Cyclic { next: 0 }, 7)
            .unwrap()
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(small_cfg(), Cyclic { next: 0 }, 1)
            .unwrap()
            .run();
        let b = Simulation::new(small_cfg(), Cyclic { next: 0 }, 2)
            .unwrap()
            .run();
        assert_ne!(a.mean_response_ratio, b.mean_response_ratio);
    }

    #[test]
    fn realized_utilization_tracks_configured() {
        let mut cfg = small_cfg();
        cfg.horizon = 200_000.0;
        cfg.warmup = 20_000.0;
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 3).unwrap().run();
        assert!(
            (stats.realized_utilization - 0.5).abs() < 0.05,
            "realized {} vs configured 0.5",
            stats.realized_utilization
        );
    }

    #[test]
    fn cyclic_dispatch_splits_evenly() {
        let stats = Simulation::new(small_cfg(), Cyclic { next: 0 }, 4)
            .unwrap()
            .run();
        let f = stats.dispatch_fractions();
        assert!((f[0] - 0.5).abs() < 0.01, "{f:?}");
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = small_cfg();
        cfg.utilization = 2.0;
        assert!(Simulation::new(cfg, Cyclic { next: 0 }, 0).is_err());
    }

    #[test]
    fn ratio_histogram_collects_when_enabled() {
        let mut cfg = small_cfg();
        cfg.track_ratio_histogram = true;
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 6).unwrap().run();
        let h = stats.ratio_histogram.as_ref().expect("histogram present");
        assert_eq!(h.count(), stats.jobs_finished);
        // The histogram's median should sit near the mean ratio for this
        // mildly loaded system.
        let median = h.quantile(0.5).expect("non-empty");
        assert!(
            median > 0.5 && median < 2.0 * stats.mean_response_ratio,
            "median {median}"
        );
        // Disabled by default.
        let stats2 = Simulation::new(small_cfg(), Cyclic { next: 0 }, 6)
            .unwrap()
            .run();
        assert!(stats2.ratio_histogram.is_none());
    }

    #[test]
    fn trace_capture_collects_jobs() {
        let mut cfg = small_cfg();
        cfg.trace = Some(crate::trace::TraceSpec {
            sample_every: 3,
            max_records: 100_000,
        });
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 8).unwrap().run();
        let tr = stats.trace.as_ref().expect("trace present");
        assert_eq!(tr.seen(), stats.jobs_finished);
        // Every third finished job is retained.
        assert_eq!(tr.records().len() as u64, stats.jobs_finished.div_ceil(3));
        for r in tr.records() {
            assert!(r.completion >= r.arrival);
            assert!(r.arrival >= 2_000.0, "only counted jobs are traced");
            assert!(r.server < 2);
        }
        // The traced mean ratio approximates the run's mean ratio.
        let mean_ratio: f64 = tr.records().iter().map(|r| r.response_ratio()).sum::<f64>()
            / tr.records().len() as f64;
        assert!(
            (mean_ratio - stats.mean_response_ratio).abs() / stats.mean_response_ratio < 0.1,
            "traced mean {mean_ratio} vs run mean {}",
            stats.mean_response_ratio
        );
    }

    #[test]
    fn faults_inject_crashes_and_losses() {
        let mut cfg = small_cfg();
        cfg.faults = Some(crate::faults::FaultSpec::exponential(2_000.0, 200.0));
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 11).unwrap().run();
        assert!(stats.crashes > 0, "expected crashes, got {}", stats.crashes);
        assert!(stats.availability < 1.0);
        assert!(stats.availability > 0.5, "MTTR/MTBF ≈ 0.09");
        assert!(stats.jobs_lost > 0, "Lost semantics must lose jobs");
        assert_eq!(stats.jobs_resubmitted, 0);
        assert_eq!(stats.jobs_restarted, 0);
        let total_downtime: f64 = stats.servers.iter().map(|s| s.downtime).sum();
        assert!(total_downtime > 0.0);
        assert!(stats.servers.iter().any(|s| s.availability < 1.0));
        // Churn-conditioned metrics exist and degraded jobs fared no
        // better than the average job (they arrived during outages).
        assert!(stats.degraded_jobs > 0);
        assert!(stats.mean_degraded_response_time > 0.0);
    }

    #[test]
    fn inactive_faults_match_faults_none_exactly() {
        // An enabled fault layer whose first crash lies beyond the
        // horizon must reproduce the fault-free run bit-for-bit: the
        // fault streams are disjoint from the workload streams.
        let mut cfg = small_cfg();
        cfg.faults = Some(crate::faults::FaultSpec {
            up_time: hetsched_dist::DistSpec::Deterministic { value: 1e12 },
            down_time: hetsched_dist::DistSpec::Exponential { mean: 100.0 },
            on_crash: crate::faults::JobFaultSemantics::Lost,
            notice_delay_mean: 0.0,
            servers: None,
        });
        let faulted = Simulation::new(cfg, Cyclic { next: 0 }, 7).unwrap().run();
        let baseline = Simulation::new(small_cfg(), Cyclic { next: 0 }, 7)
            .unwrap()
            .run();
        assert_eq!(faulted, baseline);
    }

    #[test]
    fn resubmit_semantics_reroute_in_flight_jobs() {
        let mut cfg = small_cfg();
        cfg.faults = Some(
            crate::faults::FaultSpec::exponential(2_000.0, 200.0)
                .with_semantics(crate::faults::JobFaultSemantics::Resubmit),
        );
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 11).unwrap().run();
        assert!(stats.crashes > 0);
        assert!(stats.jobs_resubmitted > 0);
        assert_eq!(stats.jobs_restarted, 0);
    }

    #[test]
    fn restart_semantics_rerun_jobs_on_repair() {
        let mut cfg = small_cfg();
        cfg.faults = Some(
            crate::faults::FaultSpec::exponential(2_000.0, 200.0)
                .with_semantics(crate::faults::JobFaultSemantics::Restart),
        );
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 11).unwrap().run();
        assert!(stats.crashes > 0);
        assert!(stats.jobs_restarted > 0);
        assert_eq!(stats.jobs_resubmitted, 0);
        // Restarted jobs sat through the outage: their conditioned
        // response time dwarfs the overall mean.
        assert!(stats.mean_degraded_response_time > stats.mean_response_time);
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let mut cfg = small_cfg();
        cfg.faults = Some(
            crate::faults::FaultSpec::exponential(1_000.0, 100.0)
                .with_semantics(crate::faults::JobFaultSemantics::Resubmit)
                .with_notice_delay(5.0),
        );
        let a = Simulation::new(cfg.clone(), Cyclic { next: 0 }, 9)
            .unwrap()
            .run();
        let b = Simulation::new(cfg, Cyclic { next: 0 }, 9).unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn obs_probes_do_not_perturb_the_run() {
        // The tentpole invariant: with observability on, RunStats must be
        // bit-identical to the unobserved run once the report itself is
        // set aside — probes read, they never schedule.
        let mut cfg = small_cfg();
        cfg.deviation_interval = Some(500.0);
        let mut obs_cfg = cfg.clone();
        obs_cfg.obs = Some(hetsched_obs::ObsSpec::every(500.0));
        let mut observed = Simulation::new(obs_cfg, Cyclic { next: 0 }, 5)
            .unwrap()
            .run();
        let baseline = Simulation::new(cfg, Cyclic { next: 0 }, 5).unwrap().run();

        let report = observed.obs.take().expect("obs report present");
        assert_eq!(observed, baseline);
        assert!(baseline.obs.is_none());

        // 20 000 s horizon / 500 s windows = 40 whole windows, with
        // strictly increasing boundaries.
        assert_eq!(report.len(), 40);
        assert!(report.times.windows(2).all(|w| w[0] < w[1]));
        // Sampled at the deviation interval, the deviation column IS the
        // Fig. 2 series.
        assert_eq!(report.column("deviation").unwrap(), baseline.deviations);
        // Kernel counters came along for the ride.
        assert!(report.kernel.scheduled >= report.kernel.popped);
        assert!(report.kernel.high_water > 0);
        assert_eq!(report.kernel.resizes, 0, "heap backend never resizes");
    }

    /// Cyclic with a mergeable credit vector, for sync-plane tests.
    struct SyncedCyclic {
        next: usize,
    }

    impl Policy for SyncedCyclic {
        fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
            let pick = self.next;
            self.next = (self.next + 1) % ctx.speeds.len();
            pick
        }

        fn sync_state(&self) -> Option<SyncState> {
            Some(SyncState::with_credits(vec![self.next as f64]))
        }

        fn merge_sync(&mut self, consensus: &SyncState, _now: f64) {
            if let Some(&c) = consensus.credits.first() {
                self.next = c as usize;
            }
        }

        fn name(&self) -> String {
            "synced-cyclic".into()
        }
    }

    #[test]
    fn single_dispatcher_tier_is_invisible() {
        // The tentpole contract: a D = 1 run — whatever the splitter
        // kind, sync disabled — is bit-identical to the pre-tier
        // simulation, and reports the pre-tier result shape.
        let baseline = Simulation::new(small_cfg(), Cyclic { next: 0 }, 21)
            .unwrap()
            .run();
        for splitter in [
            hetsched_dispatch::SplitterSpec::RoundRobin,
            hetsched_dispatch::SplitterSpec::IidRandom,
            hetsched_dispatch::SplitterSpec::SourceHash { sources: 64 },
        ] {
            let mut cfg = small_cfg();
            cfg.dispatch = hetsched_dispatch::DispatchSpec {
                dispatchers: 1,
                splitter,
                sync: None,
                ..Default::default()
            };
            let tiered = Simulation::new(cfg, Cyclic { next: 0 }, 21).unwrap().run();
            assert_eq!(tiered, baseline);
            assert!(tiered.shards.is_empty());
            assert_eq!(tiered.syncs_applied, 0);
        }
    }

    #[test]
    fn sharded_run_reports_shard_detail() {
        let mut cfg = small_cfg();
        cfg.dispatch = hetsched_dispatch::DispatchSpec::sharded(
            4,
            hetsched_dispatch::SplitterSpec::RoundRobin,
        );
        let policies = (0..4).map(|_| Cyclic { next: 0 }).collect();
        let stats = Simulation::with_policies(cfg, policies, 22).unwrap().run();
        assert_eq!(stats.shards.len(), 4);
        let routed: u64 = stats.shards.iter().map(|s| s.jobs).sum();
        assert_eq!(routed, stats.jobs_counted, "every counted job routed");
        let share_sum: f64 = stats.shards.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
        // A round-robin splitter hands each shard a quarter (±1 job).
        for s in &stats.shards {
            assert!((s.share - 0.25).abs() < 0.01, "{:?}", stats.shards);
        }
    }

    #[test]
    fn sharded_backends_agree() {
        // The backend bit-identity contract extends to the tier.
        let mut cfg = small_cfg();
        cfg.dispatch =
            hetsched_dispatch::DispatchSpec::sharded(3, hetsched_dispatch::SplitterSpec::IidRandom)
                .with_sync(hetsched_dispatch::SyncSpec::every(500.0).with_latency(25.0));
        let mut cal_cfg = cfg.clone();
        cal_cfg.event_list = EventListBackend::Calendar;
        let mk = || (0..3).map(|_| SyncedCyclic { next: 0 }).collect();
        let heap = Simulation::with_policies(cfg, mk(), 23).unwrap().run();
        let cal = Simulation::with_policies(cal_cfg, mk(), 23).unwrap().run();
        assert_eq!(heap, cal);
    }

    #[test]
    fn constructors_check_shard_counts() {
        let mut cfg = small_cfg();
        cfg.dispatch = hetsched_dispatch::DispatchSpec::sharded(
            2,
            hetsched_dispatch::SplitterSpec::RoundRobin,
        );
        let Err(err) = Simulation::new(cfg.clone(), Cyclic { next: 0 }, 0) else {
            panic!("new() must reject a multi-dispatcher config");
        };
        assert!(
            err.to_string().contains("Simulation::with_policies"),
            "{err}"
        );
        let Err(err) = Simulation::with_policies(cfg, vec![Cyclic { next: 0 }], 0) else {
            panic!("with_policies must reject a shard-count mismatch");
        };
        assert!(
            err.to_string().contains("2 dispatchers but 1 policy"),
            "{err}"
        );
    }

    #[test]
    fn sync_plane_applies_rounds() {
        // With mergeable policies the sync clock ticks: publishes every
        // 500 s over an 18 000 s post-warmup window, applied after the
        // one-way latency.
        let mut cfg = small_cfg();
        cfg.dispatch = hetsched_dispatch::DispatchSpec::sharded(
            2,
            hetsched_dispatch::SplitterSpec::RoundRobin,
        )
        .with_sync(hetsched_dispatch::SyncSpec::every(500.0).with_latency(50.0));
        let mk = || (0..2).map(|_| SyncedCyclic { next: 0 }).collect();
        let a = Simulation::with_policies(cfg.clone(), mk(), 24)
            .unwrap()
            .run();
        assert!(a.syncs_applied > 10, "applied {}", a.syncs_applied);
        // Deterministic under the same seed, like everything else.
        let b = Simulation::with_policies(cfg.clone(), mk(), 24)
            .unwrap()
            .run();
        assert_eq!(a, b);
        // Policies with nothing mergeable never see a round applied.
        let inert = (0..2).map(|_| Cyclic { next: 0 }).collect();
        let c = Simulation::with_policies(cfg, inert, 24).unwrap().run();
        assert_eq!(c.syncs_applied, 0);
    }

    #[test]
    fn reliable_channels_section_is_invisible() {
        // The PR-7 tentpole invariant: `channels: Some(reliable())` must
        // be bit-identical to `channels: None` on both FEL backends —
        // the runtime is simply never constructed.
        for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
            let mut base_cfg = small_cfg();
            base_cfg.event_list = backend;
            let mut chan_cfg = base_cfg.clone();
            chan_cfg.channels = Some(crate::channel::ChannelSpec::reliable());
            let base = Simulation::new(base_cfg, Cyclic { next: 0 }, 31)
                .unwrap()
                .run();
            let chan = Simulation::new(chan_cfg, Cyclic { next: 0 }, 31)
                .unwrap()
                .run();
            assert_eq!(base, chan, "backend {backend:?}");
            assert_eq!(chan.msgs_lost, 0);
            assert_eq!(chan.retries, 0);
        }
    }

    /// The conservation law every channel configuration must satisfy.
    fn assert_conserved(stats: &RunStats) {
        assert_eq!(
            stats.jobs_counted,
            stats.jobs_finished + stats.jobs_lost + stats.jobs_in_flight,
            "counted {} != finished {} + lost {} + in flight {}",
            stats.jobs_counted,
            stats.jobs_finished,
            stats.jobs_lost,
            stats.jobs_in_flight
        );
    }

    #[test]
    fn fire_and_forget_loses_dispatches() {
        let mut cfg = small_cfg();
        cfg.channels = Some(crate::channel::ChannelSpec {
            dispatch: crate::channel::PlaneSpec::lossy(0.05),
            ..crate::channel::ChannelSpec::default()
        });
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 17).unwrap().run();
        assert!(stats.msgs_lost > 0, "5% loss must drop messages");
        assert!(stats.jobs_lost > 0, "fire-and-forget loses the job");
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.timeouts, 0);
        assert!(stats.servers.iter().map(|s| s.msgs_lost).sum::<u64>() >= stats.msgs_lost / 2);
        assert_conserved(&stats);
    }

    #[test]
    fn retries_recover_lost_dispatches() {
        let lossy = crate::channel::ChannelSpec {
            dispatch: crate::channel::PlaneSpec::lossy(0.05),
            ..crate::channel::ChannelSpec::default()
        };
        let mut ff_cfg = small_cfg();
        ff_cfg.channels = Some(lossy.clone());
        let mut retry_cfg = small_cfg();
        retry_cfg.channels = Some(lossy.with_retry(crate::channel::RetrySpec::after(5.0)));
        let ff = Simulation::new(ff_cfg, Cyclic { next: 0 }, 17)
            .unwrap()
            .run();
        let retried = Simulation::new(retry_cfg, Cyclic { next: 0 }, 17)
            .unwrap()
            .run();
        assert!(retried.timeouts > 0, "lost copies must time out");
        assert!(retried.retries > 0, "timeouts must retransmit");
        assert!(
            retried.jobs_lost < ff.jobs_lost / 4,
            "retries must recover most losses: {} vs {}",
            retried.jobs_lost,
            ff.jobs_lost
        );
        assert_conserved(&retried);
    }

    #[test]
    fn hedging_wins_races_under_loss() {
        let mut cfg = small_cfg();
        cfg.channels = Some(
            crate::channel::ChannelSpec {
                dispatch: crate::channel::PlaneSpec::lossy(0.1),
                ..crate::channel::ChannelSpec::default()
            }
            .with_retry(crate::channel::RetrySpec::after(8.0))
            .with_hedge(crate::channel::HedgeSpec { delay: 2.0 }),
        );
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 19).unwrap().run();
        // A lost first copy sits unacked past the 2 s hedge delay, so the
        // hedge fires well before the 8 s retry timeout and usually wins.
        assert!(stats.hedges_won > 0, "hedge copies must win some races");
        assert_conserved(&stats);
    }

    #[test]
    fn chaotic_channels_conserve_jobs_and_stay_deterministic() {
        // Loss + duplication + jitter + partitions on every plane, with
        // retries and hedging, across seeds: the conservation law holds
        // and equal seeds agree exactly.
        for seed in [1, 2, 3, 4, 5] {
            let mut cfg = small_cfg();
            cfg.faults = Some(
                crate::faults::FaultSpec::exponential(4_000.0, 300.0)
                    .with_semantics(crate::faults::JobFaultSemantics::Resubmit),
            );
            cfg.channels = Some(
                crate::channel::ChannelSpec {
                    dispatch: crate::channel::PlaneSpec {
                        loss: 0.05,
                        duplicate: 0.05,
                        jitter: 0.5,
                        partitions: vec![(6_000.0, 6_500.0)],
                    },
                    load: crate::channel::PlaneSpec {
                        loss: 0.2,
                        duplicate: 0.1,
                        jitter: 1.0,
                        partitions: vec![],
                    },
                    sync: crate::channel::PlaneSpec::lossy(0.3),
                    retry: None,
                    hedge: None,
                }
                .with_retry(crate::channel::RetrySpec::after(3.0))
                .with_hedge(crate::channel::HedgeSpec { delay: 1.0 }),
            );
            let a = Simulation::new(cfg.clone(), Cyclic { next: 0 }, seed)
                .unwrap()
                .run();
            let b = Simulation::new(cfg, Cyclic { next: 0 }, seed)
                .unwrap()
                .run();
            assert_eq!(a, b, "seed {seed}");
            assert_conserved(&a);
            assert!(a.msgs_lost > 0);
        }
    }

    #[test]
    fn lossy_sync_plane_drops_rounds() {
        let mut cfg = small_cfg();
        cfg.dispatch = hetsched_dispatch::DispatchSpec::sharded(
            2,
            hetsched_dispatch::SplitterSpec::RoundRobin,
        )
        .with_sync(hetsched_dispatch::SyncSpec::every(500.0).with_latency(50.0));
        let mk = || (0..2).map(|_| SyncedCyclic { next: 0 }).collect();
        let reliable = Simulation::with_policies(cfg.clone(), mk(), 24)
            .unwrap()
            .run();
        cfg.channels = Some(crate::channel::ChannelSpec {
            sync: crate::channel::PlaneSpec::lossy(0.8),
            ..crate::channel::ChannelSpec::default()
        });
        let lossy = Simulation::with_policies(cfg, mk(), 24).unwrap().run();
        assert!(
            lossy.syncs_applied < reliable.syncs_applied,
            "80% sync loss must drop whole rounds: {} vs {}",
            lossy.syncs_applied,
            reliable.syncs_applied
        );
        assert!(lossy.msgs_lost > 0);
    }

    #[test]
    fn targeted_faults_only_crash_their_servers() {
        let mut cfg = small_cfg();
        cfg.faults = Some(crate::faults::FaultSpec::exponential(2_000.0, 200.0).with_servers(&[1]));
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 11).unwrap().run();
        assert!(stats.crashes > 0);
        assert_eq!(stats.servers[0].crashes, 0, "server 0 is not targeted");
        assert!(stats.servers[1].crashes > 0);
        assert_eq!(stats.servers[0].availability, 1.0);
    }

    #[test]
    fn deviation_tracking_produces_intervals() {
        let mut cfg = small_cfg();
        cfg.deviation_interval = Some(1000.0);
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 5).unwrap().run();
        assert_eq!(stats.deviations.len(), 20);
        // Cyclic dispatch over equal fractions: tiny deviation everywhere.
        for &d in &stats.deviations {
            assert!(d < 0.01, "cyclic deviation should be small, got {d}");
        }
    }

    /// An allocator policy for tier tests: never consulted for tier
    /// jobs, deterministic fallback otherwise.
    struct HesrptTest;

    impl Policy for HesrptTest {
        fn choose(&mut self, _ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
            0
        }

        fn malleable_allocator(&self) -> Option<crate::malleable::AllocatorKind> {
            Some(crate::malleable::AllocatorKind::Hesrpt)
        }

        fn name(&self) -> String {
            "hesrpt-test".into()
        }
    }

    #[test]
    fn inactive_malleable_section_is_invisible() {
        // The tentpole invariant: an all-rigid or zero-fraction
        // malleable section constructs nothing — no class stream, no
        // accumulators, no tier — so the run is bit-identical to a
        // section-free one on both FEL backends, even when the policy
        // could allocate.
        use crate::malleable::{MalleableClass, MalleableSpec};
        let rigid_class = MalleableSpec {
            fraction: 0.7,
            classes: vec![MalleableClass {
                curve: hetsched_dist::SpeedupCurve::Rigid,
                weight: 1.0,
            }],
        };
        let zero_fraction = MalleableSpec::power_law(0.0, 0.5);
        for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
            for section in [rigid_class.clone(), zero_fraction.clone()] {
                let mut base_cfg = small_cfg();
                base_cfg.event_list = backend;
                let mut mall_cfg = base_cfg.clone();
                mall_cfg.malleable = Some(section);
                let base = Simulation::new(base_cfg, HesrptTest, 33).unwrap().run();
                let mall = Simulation::new(mall_cfg, HesrptTest, 33).unwrap().run();
                assert_eq!(base, mall, "backend {backend:?}");
                assert!(mall.malleable.is_none());
                assert!(mall.classes.is_empty());
                // Slowdown coincides with the response ratio on the
                // rigid path — same jobs, same formula.
                assert_eq!(mall.mean_slowdown, mall.mean_response_ratio);
            }
        }
    }

    #[test]
    fn hesrpt_tier_allocates_and_conserves() {
        let mut cfg = small_cfg();
        cfg.malleable = Some(crate::malleable::MalleableSpec::power_law(0.5, 0.5));
        let stats = Simulation::new(cfg, HesrptTest, 44).unwrap().run();
        assert!(
            stats.jobs_finished > 500,
            "finished {}",
            stats.jobs_finished
        );
        assert_conserved(&stats);
        let m = stats.malleable.as_ref().expect("tier stats present");
        assert!(m.malleable_jobs > 0);
        assert!(m.reallocations > 0);
        assert_eq!(m.fleet_cores, 2.0);
        // Conservation law of the allocation itself.
        assert!(
            m.max_cores_in_use <= m.fleet_cores + 1e-9,
            "allocated {} of {} cores",
            m.max_cores_in_use,
            m.fleet_cores
        );
        assert!(stats.mean_slowdown > 0.0);
        assert!(stats.p99_slowdown >= stats.p95_slowdown);
        // Class table: rigid background + one power-law class.
        assert_eq!(stats.classes.len(), 2);
        assert!(stats.classes[0].count > 0 && stats.classes[1].count > 0);
        let total: u64 = stats.classes.iter().map(|c| c.count).sum();
        assert_eq!(total, stats.jobs_finished);
        // Determinism under the same seed, like every other subsystem.
        let mut cfg2 = small_cfg();
        cfg2.malleable = Some(crate::malleable::MalleableSpec::power_law(0.5, 0.5));
        let again = Simulation::new(cfg2, HesrptTest, 44).unwrap().run();
        assert_eq!(stats, again);
    }

    #[test]
    fn tier_backends_agree_with_faults() {
        for faults in [
            None,
            Some(
                crate::faults::FaultSpec::exponential(2_000.0, 200.0)
                    .with_semantics(crate::faults::JobFaultSemantics::Resubmit),
            ),
        ] {
            let mut heap_cfg = small_cfg();
            heap_cfg.malleable = Some(crate::malleable::MalleableSpec::power_law(0.6, 0.5));
            heap_cfg.faults = faults;
            let mut cal_cfg = heap_cfg.clone();
            cal_cfg.event_list = EventListBackend::Calendar;
            let heap = Simulation::new(heap_cfg, HesrptTest, 45).unwrap().run();
            let cal = Simulation::new(cal_cfg, HesrptTest, 45).unwrap().run();
            assert_eq!(heap, cal);
            assert_conserved(&heap);
        }
    }

    #[test]
    fn stamping_without_allocator_runs_rigidly() {
        // An active section with a non-allocator policy stamps classes
        // (the breakdown table fills in) but dispatches every job
        // rigidly: no tier, no tier stats.
        let mut cfg = small_cfg();
        cfg.malleable = Some(crate::malleable::MalleableSpec::power_law(0.5, 0.5));
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 46).unwrap().run();
        assert!(stats.malleable.is_none());
        assert_eq!(stats.classes.len(), 2);
        assert!(stats.classes[1].count > 0, "stamped jobs completed");
        assert_eq!(stats.mean_slowdown, stats.mean_response_ratio);
        assert_conserved(&stats);
    }

    #[test]
    fn tier_rejects_unreliable_channels() {
        let mut cfg = small_cfg();
        cfg.malleable = Some(crate::malleable::MalleableSpec::power_law(0.5, 0.5));
        cfg.channels = Some(crate::channel::ChannelSpec {
            dispatch: crate::channel::PlaneSpec::lossy(0.05),
            ..crate::channel::ChannelSpec::default()
        });
        let Err(err) = Simulation::new(cfg.clone(), HesrptTest, 1) else {
            panic!("tier + lossy channels must be rejected");
        };
        assert!(err.to_string().contains("reliable channels"), "{err}");
        // A reliable channel section (structurally invisible) is fine.
        cfg.channels = Some(crate::channel::ChannelSpec::reliable());
        assert!(Simulation::new(cfg.clone(), HesrptTest, 1).is_ok());
        // And so is an unreliable one without an allocator policy.
        cfg.channels = Some(crate::channel::ChannelSpec {
            dispatch: crate::channel::PlaneSpec::lossy(0.05),
            ..crate::channel::ChannelSpec::default()
        });
        assert!(Simulation::new(cfg, Cyclic { next: 0 }, 1).is_ok());
    }
}

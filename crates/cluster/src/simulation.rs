//! The simulation: wiring arrivals, the scheduler, servers, and the
//! feedback network to the event engine.
//!
//! Event flow per the paper's model (§4.1–4.2):
//!
//! 1. `Arrival` — the next job reaches the central scheduler. The model
//!    samples its size, asks the [`Policy`] for a destination, admits the
//!    job to that server, and schedules the following arrival.
//! 2. `ServerWake { server, epoch }` — the server's next internal event
//!    (completion or quantum rotation) fires. Stale epochs (superseded by
//!    an arrival) are ignored. Completions are recorded and, for dynamic
//!    policies, kick off the departure-detection → update-message chain.
//! 3. `LoadDetect { server }` — the computer notices its queue changed
//!    (U(0,1) after a departure) and sends an update message.
//! 4. `LoadUpdate { server, queue_len }` — the message reaches the
//!    scheduler after the exponential network delay; the policy's believed
//!    load is refreshed.
//! 5. `WarmupEnd` — counters reset so statistics cover only the steady
//!    state.
//!
//! Determinism: every stochastic component draws from its own
//! seed-derived stream, so two runs with the same seed are identical and
//! runs with different seeds are the paper's "independent runs".

use hetsched_desim::{Actor, Engine, Rng64, Scheduler, SimTime};
use hetsched_dist::{ArrivalProcess, BuiltDist, Sample};
use hetsched_metrics::{DeviationTracker, Histogram, P2Quantile, Welford};

use crate::config::{ArrivalKind, ClusterConfig};
use crate::job::{JobId, JobRecord, JobSlab};
use crate::policy::{DispatchCtx, Policy};
use crate::results::{RunStats, ServerStats};
use crate::server::Server;

/// Events of the cluster model.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A job arrives at the central scheduler.
    Arrival,
    /// A server's next internal event (completion/rotation).
    ServerWake { server: usize, epoch: u64 },
    /// A computer notices a departure and emits an update message.
    LoadDetect { server: usize },
    /// The update message reaches the scheduler.
    LoadUpdate { server: usize, queue_len: usize },
    /// End of the warmup period.
    WarmupEnd,
}

/// A configured, seeded simulation ready to run.
pub struct Simulation<P: Policy> {
    cfg: ClusterConfig,
    policy: P,
    seed: u64,
}

impl<P: Policy> Simulation<P> {
    /// Creates a simulation.
    ///
    /// # Errors
    /// Returns the human-readable validation error of
    /// [`ClusterConfig::validate`].
    pub fn new(cfg: ClusterConfig, policy: P, seed: u64) -> Result<Self, String> {
        cfg.validate()?;
        Ok(Simulation { cfg, policy, seed })
    }

    /// Runs to the horizon and returns the collected statistics.
    pub fn run(self) -> RunStats {
        let Simulation { cfg, policy, seed } = self;
        let lambda = cfg.lambda();
        let servers: Vec<Server> = cfg
            .speeds
            .iter()
            .map(|&s| Server::new(s, cfg.discipline))
            .collect();
        // The deviation tracker compares realized dispatch fractions with
        // the policy's *target* fractions; policies without a target
        // (dynamic ones) are measured against an equal split.
        let deviation = cfg.deviation_interval.map(|iv| {
            let expected = policy
                .expected_fractions()
                .unwrap_or_else(|| vec![1.0 / cfg.speeds.len() as f64; cfg.speeds.len()]);
            DeviationTracker::new(&expected, iv, 0.0)
        });
        let mut model = Model {
            policy,
            servers,
            arrivals: cfg.arrivals.build(lambda),
            sizes: cfg.job_sizes.build(),
            load_updates: cfg.load_updates,
            warmup: cfg.warmup,
            rng_arrival: Rng64::stream(seed, 0),
            rng_size: Rng64::stream(seed, 1),
            rng_dispatch: Rng64::stream(seed, 2),
            rng_net: Rng64::stream(seed, 3),
            slab: JobSlab::with_capacity(64),
            qlen_buf: Vec::new(),
            done_buf: Vec::new(),
            resp_time: Welford::new(),
            resp_ratio: Welford::new(),
            ratio_p95: P2Quantile::new(0.95),
            ratio_p99: P2Quantile::new(0.99),
            ratio_histogram: cfg
                .track_ratio_histogram
                .then(|| Histogram::new(1e-4, 1e6, 1.05)),
            trace: cfg.trace.map(crate::trace::TraceCollector::new),
            deviation,
            jobs_counted: 0,
            speeds: cfg.speeds.clone(),
        };

        let mut engine: Engine<Ev> = Engine::with_capacity(1024);
        let first_gap = model.arrivals.next_interarrival(&mut model.rng_arrival);
        engine.schedule_at(SimTime::new(first_gap), Ev::Arrival);
        if cfg.warmup > 0.0 {
            engine.schedule_at(SimTime::new(cfg.warmup), Ev::WarmupEnd);
        }
        engine.run_until(&mut model, SimTime::new(cfg.horizon));

        model.finalize(cfg.horizon, engine.processed_total())
    }
}

struct Model<P: Policy> {
    policy: P,
    servers: Vec<Server>,
    arrivals: ArrivalKind,
    sizes: BuiltDist,
    load_updates: crate::network::LoadUpdateModel,
    warmup: f64,
    rng_arrival: Rng64,
    rng_size: Rng64,
    rng_dispatch: Rng64,
    rng_net: Rng64,
    slab: JobSlab,
    qlen_buf: Vec<usize>,
    done_buf: Vec<JobId>,
    resp_time: Welford,
    resp_ratio: Welford,
    ratio_p95: P2Quantile,
    ratio_p99: P2Quantile,
    ratio_histogram: Option<Histogram>,
    trace: Option<crate::trace::TraceCollector>,
    deviation: Option<DeviationTracker>,
    jobs_counted: u64,
    speeds: Vec<f64>,
}

impl<P: Policy> Model<P> {
    /// Re-arms the wake timer of `server` after any state change.
    fn reschedule(&mut self, server: usize, sched: &mut Scheduler<'_, Ev>) {
        let epoch = self.servers[server].bump_epoch();
        if let Some(t) = self.servers[server].next_wakeup() {
            // Guard against sub-epsilon drift putting the wake a hair in
            // the past.
            let t = t.max(sched.now().as_secs());
            sched.schedule_at(SimTime::new(t), Ev::ServerWake { server, epoch });
        }
    }

    /// Handles completions gathered in `done_buf` for `server` at `now`.
    fn drain_completions(&mut self, server: usize, now: f64, sched: &mut Scheduler<'_, Ev>) {
        if self.done_buf.is_empty() {
            return;
        }
        let needs_updates = self.policy.needs_load_updates();
        for idx in 0..self.done_buf.len() {
            let id = self.done_buf[idx];
            let rec = self.slab.remove(id);
            debug_assert_eq!(rec.server, server);
            if rec.counted {
                let response = now - rec.arrival;
                self.resp_time.push(response);
                let ratio = response / rec.size;
                self.resp_ratio.push(ratio);
                self.ratio_p95.push(ratio);
                self.ratio_p99.push(ratio);
                if let Some(h) = &mut self.ratio_histogram {
                    h.record(ratio);
                }
                if let Some(tr) = &mut self.trace {
                    tr.record(crate::trace::JobTrace {
                        arrival: rec.arrival,
                        completion: now,
                        size: rec.size,
                        server,
                    });
                }
            }
            if needs_updates {
                let delay = self.load_updates.detection_delay(&mut self.rng_net);
                sched.schedule_in(delay, Ev::LoadDetect { server });
            }
        }
        self.done_buf.clear();
    }

    fn handle_arrival(&mut self, now: f64, sched: &mut Scheduler<'_, Ev>) {
        // Keep the arrival stream flowing.
        let gap = self.arrivals.next_interarrival(&mut self.rng_arrival);
        sched.schedule_in(gap, Ev::Arrival);

        let size = self.sizes.sample(&mut self.rng_size);
        self.qlen_buf.clear();
        self.qlen_buf
            .extend(self.servers.iter().map(|s| s.queue_len()));
        let ctx = DispatchCtx {
            now,
            job_size: size,
            queue_lens: &self.qlen_buf,
            speeds: &self.speeds,
        };
        let target = self.policy.choose(&ctx, &mut self.rng_dispatch);
        debug_assert!(target < self.servers.len(), "policy chose {target}");

        let counted = now >= self.warmup;
        if counted {
            self.jobs_counted += 1;
        }
        if let Some(dev) = &mut self.deviation {
            dev.record(now, target);
        }
        let id = self.slab.insert(JobRecord {
            size,
            arrival: now,
            server: target,
            counted,
        });
        // Catch any boundary-epsilon completion before admitting.
        self.servers[target].advance(now, &mut self.done_buf);
        self.drain_completions(target, now, sched);
        self.servers[target].arrive(now, id, size);
        self.reschedule(target, sched);
    }

    fn handle_wake(&mut self, server: usize, epoch: u64, now: f64, sched: &mut Scheduler<'_, Ev>) {
        if epoch != self.servers[server].epoch() {
            return; // superseded by a later arrival
        }
        self.servers[server].advance(now, &mut self.done_buf);
        self.drain_completions(server, now, sched);
        self.reschedule(server, sched);
    }

    fn finalize(mut self, horizon: f64, events: u64) -> RunStats {
        for s in &mut self.servers {
            s.finalize(horizon);
        }
        if let Some(dev) = &mut self.deviation {
            dev.advance_to(horizon);
        }
        let total_dispatched: u64 = self.servers.iter().map(|s| s.dispatched()).sum();
        let servers: Vec<ServerStats> = self
            .servers
            .iter()
            .map(|s| ServerStats {
                speed: s.speed(),
                dispatched: s.dispatched(),
                completed: s.completed(),
                utilization: s.utilization(),
                mean_queue_len: s.mean_queue_len(),
                dispatch_fraction: if total_dispatched == 0 {
                    0.0
                } else {
                    s.dispatched() as f64 / total_dispatched as f64
                },
            })
            .collect();
        let total_speed: f64 = self.speeds.iter().sum();
        let realized_utilization = self
            .servers
            .iter()
            .map(|s| s.utilization() * s.speed())
            .sum::<f64>()
            / total_speed;
        RunStats {
            policy: self.policy.name(),
            jobs_counted: self.jobs_counted,
            jobs_finished: self.resp_ratio.count(),
            mean_response_time: self.resp_time.mean(),
            mean_response_ratio: self.resp_ratio.mean(),
            fairness: self.resp_ratio.std_dev(),
            p95_response_ratio: self.ratio_p95.estimate().unwrap_or(0.0),
            p99_response_ratio: self.ratio_p99.estimate().unwrap_or(0.0),
            servers,
            deviations: self
                .deviation
                .map(|d| d.deviations().to_vec())
                .unwrap_or_default(),
            ratio_histogram: self.ratio_histogram,
            trace: self.trace,
            events_processed: events,
            realized_utilization,
        }
    }
}

impl<P: Policy> Actor<Ev> for Model<P> {
    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        let t = now.as_secs();
        match event {
            Ev::Arrival => self.handle_arrival(t, sched),
            Ev::ServerWake { server, epoch } => self.handle_wake(server, epoch, t, sched),
            Ev::LoadDetect { server } => {
                let queue_len = self.servers[server].queue_len();
                let delay = self.load_updates.message_delay(&mut self.rng_net);
                sched.schedule_in(delay, Ev::LoadUpdate { server, queue_len });
            }
            Ev::LoadUpdate { server, queue_len } => {
                self.policy.on_load_update(server, queue_len, t);
            }
            Ev::WarmupEnd => {
                for s in &mut self.servers {
                    s.reset_window(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ArrivalSpec;
    use crate::discipline::DisciplineSpec;
    use hetsched_dist::DistSpec;

    /// Round-robin over all servers — simple deterministic test policy.
    struct Cyclic {
        next: usize,
    }

    impl Policy for Cyclic {
        fn choose(&mut self, ctx: &DispatchCtx<'_>, _rng: &mut Rng64) -> usize {
            let pick = self.next;
            self.next = (self.next + 1) % ctx.speeds.len();
            pick
        }

        fn name(&self) -> String {
            "cyclic-test".into()
        }
    }

    fn small_cfg() -> ClusterConfig {
        ClusterConfig {
            speeds: vec![1.0, 1.0],
            utilization: 0.5,
            job_sizes: DistSpec::Exponential { mean: 10.0 },
            arrivals: ArrivalSpec::Poisson,
            discipline: DisciplineSpec::ProcessorSharing,
            load_updates: crate::network::LoadUpdateModel::default(),
            horizon: 20_000.0,
            warmup: 2_000.0,
            deviation_interval: None,
            track_ratio_histogram: false,
            trace: None,
        }
    }

    #[test]
    fn runs_and_produces_sane_stats() {
        let sim = Simulation::new(small_cfg(), Cyclic { next: 0 }, 42).unwrap();
        let stats = sim.run();
        assert!(stats.jobs_counted > 500, "counted {}", stats.jobs_counted);
        assert!(stats.jobs_finished > 0);
        assert!(stats.jobs_finished <= stats.jobs_counted);
        assert!(stats.mean_response_time > 0.0);
        // Response ratio is at least 1 for every job (a job cannot beat
        // its own size on a speed-1 machine).
        assert!(stats.mean_response_ratio >= 1.0);
        assert!(stats.fairness >= 0.0);
        assert_eq!(stats.policy, "cyclic-test");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = Simulation::new(small_cfg(), Cyclic { next: 0 }, 7)
            .unwrap()
            .run();
        let b = Simulation::new(small_cfg(), Cyclic { next: 0 }, 7)
            .unwrap()
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(small_cfg(), Cyclic { next: 0 }, 1)
            .unwrap()
            .run();
        let b = Simulation::new(small_cfg(), Cyclic { next: 0 }, 2)
            .unwrap()
            .run();
        assert_ne!(a.mean_response_ratio, b.mean_response_ratio);
    }

    #[test]
    fn realized_utilization_tracks_configured() {
        let mut cfg = small_cfg();
        cfg.horizon = 200_000.0;
        cfg.warmup = 20_000.0;
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 3).unwrap().run();
        assert!(
            (stats.realized_utilization - 0.5).abs() < 0.05,
            "realized {} vs configured 0.5",
            stats.realized_utilization
        );
    }

    #[test]
    fn cyclic_dispatch_splits_evenly() {
        let stats = Simulation::new(small_cfg(), Cyclic { next: 0 }, 4)
            .unwrap()
            .run();
        let f = stats.dispatch_fractions();
        assert!((f[0] - 0.5).abs() < 0.01, "{f:?}");
    }

    #[test]
    fn rejects_invalid_config() {
        let mut cfg = small_cfg();
        cfg.utilization = 2.0;
        assert!(Simulation::new(cfg, Cyclic { next: 0 }, 0).is_err());
    }

    #[test]
    fn ratio_histogram_collects_when_enabled() {
        let mut cfg = small_cfg();
        cfg.track_ratio_histogram = true;
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 6).unwrap().run();
        let h = stats.ratio_histogram.as_ref().expect("histogram present");
        assert_eq!(h.count(), stats.jobs_finished);
        // The histogram's median should sit near the mean ratio for this
        // mildly loaded system.
        let median = h.quantile(0.5).expect("non-empty");
        assert!(
            median > 0.5 && median < 2.0 * stats.mean_response_ratio,
            "median {median}"
        );
        // Disabled by default.
        let stats2 = Simulation::new(small_cfg(), Cyclic { next: 0 }, 6)
            .unwrap()
            .run();
        assert!(stats2.ratio_histogram.is_none());
    }

    #[test]
    fn trace_capture_collects_jobs() {
        let mut cfg = small_cfg();
        cfg.trace = Some(crate::trace::TraceSpec {
            sample_every: 3,
            max_records: 100_000,
        });
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 8).unwrap().run();
        let tr = stats.trace.as_ref().expect("trace present");
        assert_eq!(tr.seen(), stats.jobs_finished);
        // Every third finished job is retained.
        assert_eq!(tr.records().len() as u64, stats.jobs_finished.div_ceil(3));
        for r in tr.records() {
            assert!(r.completion >= r.arrival);
            assert!(r.arrival >= 2_000.0, "only counted jobs are traced");
            assert!(r.server < 2);
        }
        // The traced mean ratio approximates the run's mean ratio.
        let mean_ratio: f64 = tr.records().iter().map(|r| r.response_ratio()).sum::<f64>()
            / tr.records().len() as f64;
        assert!(
            (mean_ratio - stats.mean_response_ratio).abs() / stats.mean_response_ratio < 0.1,
            "traced mean {mean_ratio} vs run mean {}",
            stats.mean_response_ratio
        );
    }

    #[test]
    fn deviation_tracking_produces_intervals() {
        let mut cfg = small_cfg();
        cfg.deviation_interval = Some(1000.0);
        let stats = Simulation::new(cfg, Cyclic { next: 0 }, 5).unwrap().run();
        assert_eq!(stats.deviations.len(), 20);
        // Cyclic dispatch over equal fractions: tiny deviation everywhere.
        for &d in &stats.deviations {
            assert!(d < 0.01, "cyclic deviation should be small, got {d}");
        }
    }
}

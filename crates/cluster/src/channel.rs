//! Unreliable message planes and the recovery machinery on top of them.
//!
//! Every message the simulation exchanges travels one of three logical
//! planes:
//!
//! 1. **dispatch** — dispatcher → server job handoff;
//! 2. **load** — server → dispatcher load-index updates (§4.2's
//!    feedback path, [`crate::network::LoadUpdateModel`]);
//! 3. **sync** — the shard state-sync plane (`hetsched-dispatch`).
//!
//! A [`ChannelSpec`] makes any subset of those planes unreliable: each
//! plane gets an independent loss probability, duplication probability,
//! reordering jitter, and optional scheduled partition windows. All
//! channel randomness lives on dedicated RNG streams at
//! [`CHANNEL_STREAM_BASE`] so enabling a knob never perturbs the
//! arrival/size/dispatch/network streams, and per-shard sub-streams keep
//! the parallel engine bit-identical at every thread count.
//!
//! The recovery machinery is configured here too: [`RetrySpec`] turns
//! fire-and-forget dispatch into ack-based dispatch with deterministic
//! timeout, exponential backoff, and bounded retries; [`HedgeSpec`]
//! additionally duplicates a not-yet-acked dispatch to a second server
//! after a hedge delay (first ack wins, the loser is cancelled through
//! the O(1)-cancel future-event list).
//!
//! The house invariant: [`ChannelSpec::reliable()`] (and `channels:
//! null`, the serde default) is **bit-identical** to the seed engine on
//! both FEL backends and at every `--sim-threads` count — the runtime is
//! simply not constructed when the spec is reliable.

use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

/// Reserved RNG stream base for channel randomness.
///
/// Classic engine: `base + 0/1/2` = dispatch/load/sync planes. The
/// parallel engine gives shard `s` the disjoint block
/// `base + 16 + 4·s + {0, 1, 2}` so results stay invariant across
/// shard-to-thread placements.
pub const CHANNEL_STREAM_BASE: u64 = 1 << 42;

/// Unreliability model for one message plane.
///
/// The all-zero default is a perfectly reliable plane; every field is
/// serde-defaulted so partial JSON (`{"loss": 0.01}`) parses.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlaneSpec {
    /// Probability that a message is silently dropped.
    #[serde(default)]
    pub loss: f64,
    /// Probability that a delivered message is delivered twice (the
    /// duplicate takes an independent jitter draw, so copies reorder).
    #[serde(default)]
    pub duplicate: f64,
    /// Mean of an exponential extra delay added to each delivered
    /// message (0 = no reordering; messages keep their natural order).
    #[serde(default)]
    pub jitter: f64,
    /// Scheduled partition windows `(start, end)` in simulated seconds:
    /// every message sent while `start <= t < end` is dropped,
    /// deterministically and without consuming randomness.
    #[serde(default)]
    pub partitions: Vec<(f64, f64)>,
}

impl PlaneSpec {
    /// A plane that only drops messages, with probability `loss`.
    pub fn lossy(loss: f64) -> Self {
        PlaneSpec {
            loss,
            ..PlaneSpec::default()
        }
    }

    /// Whether the plane is the reliable no-op (nothing to simulate).
    pub fn is_reliable(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && self.jitter == 0.0
            && self.partitions.is_empty()
    }

    /// Whether `t` falls inside a scheduled partition window.
    pub fn in_partition(&self, t: f64) -> bool {
        self.partitions.iter().any(|&(s, e)| t >= s && t < e)
    }

    /// Validates the plane's knobs.
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] naming the offending field.
    pub fn validate(&self, plane: &str) -> Result<(), HetschedError> {
        for (name, p) in [("loss", self.loss), ("duplicate", self.duplicate)] {
            if !(p.is_finite() && (0.0..1.0).contains(&p)) {
                return Err(HetschedError::InvalidConfig(format!(
                    "{plane} plane {name} probability must lie in [0, 1), got {p}"
                )));
            }
        }
        if !(self.jitter.is_finite() && self.jitter >= 0.0) {
            return Err(HetschedError::InvalidConfig(format!(
                "{plane} plane jitter must be a non-negative mean delay, got {}",
                self.jitter
            )));
        }
        for &(s, e) in &self.partitions {
            if !(s.is_finite() && e.is_finite() && s >= 0.0 && e > s) {
                return Err(HetschedError::InvalidConfig(format!(
                    "{plane} plane partition windows need 0 <= start < end, got ({s}, {e})"
                )));
            }
        }
        Ok(())
    }
}

fn default_backoff() -> f64 {
    2.0
}

fn default_max_retries() -> u32 {
    3
}

/// Ack-based dispatch with timeout, exponential backoff, and bounded
/// retries.
///
/// Attempt `k` (0-based) arms a retransmit timer at
/// `timeout · backoff^k`; after `max_retries` retransmissions the job is
/// declared lost (orphan detection — the slab entry is reclaimed and the
/// loss counted).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrySpec {
    /// Seconds before an unacked dispatch is retransmitted.
    pub timeout: f64,
    /// Multiplier applied to the timeout per retransmission (≥ 1).
    #[serde(default = "default_backoff")]
    pub backoff: f64,
    /// Retransmissions allowed before the job is declared lost.
    #[serde(default = "default_max_retries")]
    pub max_retries: u32,
}

impl RetrySpec {
    /// A retry policy with the given base timeout, 2× backoff, and 3
    /// retransmissions.
    pub fn after(timeout: f64) -> Self {
        RetrySpec {
            timeout,
            backoff: default_backoff(),
            max_retries: default_max_retries(),
        }
    }

    /// The timer delay armed by attempt `k` (0-based).
    pub fn delay_for_attempt(&self, attempt: u32) -> f64 {
        self.timeout * self.backoff.powi(attempt.min(30) as i32)
    }

    /// Validates the retry knobs.
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), HetschedError> {
        if !(self.timeout.is_finite() && self.timeout > 0.0) {
            return Err(HetschedError::InvalidConfig(format!(
                "retry timeout must be positive, got {}",
                self.timeout
            )));
        }
        if !(self.backoff.is_finite() && self.backoff >= 1.0) {
            return Err(HetschedError::InvalidConfig(format!(
                "retry backoff must be >= 1, got {}",
                self.backoff
            )));
        }
        Ok(())
    }
}

/// Hedged dispatch: if the first attempt is still unacked after `delay`
/// seconds, duplicate the job to a second server; the first ack wins and
/// the loser is cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgeSpec {
    /// Seconds of unacked silence before the hedge fires.
    pub delay: f64,
}

impl HedgeSpec {
    /// Validates the hedge knobs.
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] when the delay is out of range.
    pub fn validate(&self) -> Result<(), HetschedError> {
        if !(self.delay.is_finite() && self.delay > 0.0) {
            return Err(HetschedError::InvalidConfig(format!(
                "hedge delay must be positive, got {}",
                self.delay
            )));
        }
        Ok(())
    }
}

/// The full unreliable-messaging configuration
/// (`ClusterConfig::channels`).
///
/// The default — every plane reliable, no retries, no hedging — is
/// structurally invisible: the simulation constructs no channel runtime,
/// draws no channel randomness, and schedules no timer events, so
/// results are bit-identical to a configuration without the section.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Dispatcher → server job handoff plane.
    #[serde(default)]
    pub dispatch: PlaneSpec,
    /// Server → dispatcher load-update plane.
    #[serde(default)]
    pub load: PlaneSpec,
    /// Shard state-sync plane.
    #[serde(default)]
    pub sync: PlaneSpec,
    /// Ack-based dispatch with timeout/backoff/bounded retries; `None`
    /// leaves dispatch fire-and-forget (a lost dispatch loses the job).
    #[serde(default)]
    pub retry: Option<RetrySpec>,
    /// Hedged dispatch after a delay; requires `retry` (the hedge rides
    /// the same ack machinery).
    #[serde(default)]
    pub hedge: Option<HedgeSpec>,
}

impl ChannelSpec {
    /// The reliable no-op spec — bit-identical to no `channels:` section.
    pub fn reliable() -> Self {
        ChannelSpec::default()
    }

    /// Every plane drops messages with the same probability `loss`.
    pub fn uniform_loss(loss: f64) -> Self {
        ChannelSpec {
            dispatch: PlaneSpec::lossy(loss),
            load: PlaneSpec::lossy(loss),
            sync: PlaneSpec::lossy(loss),
            retry: None,
            hedge: None,
        }
    }

    /// Same spec with ack-based retries enabled.
    #[must_use]
    pub fn with_retry(mut self, retry: RetrySpec) -> Self {
        self.retry = Some(retry);
        self
    }

    /// Same spec with hedged dispatch enabled.
    #[must_use]
    pub fn with_hedge(mut self, hedge: HedgeSpec) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// Whether the whole section is the structurally invisible no-op.
    pub fn is_reliable(&self) -> bool {
        self.dispatch.is_reliable()
            && self.load.is_reliable()
            && self.sync.is_reliable()
            && self.retry.is_none()
            && self.hedge.is_none()
    }

    /// Validates every knob.
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), HetschedError> {
        self.dispatch.validate("dispatch")?;
        self.load.validate("load")?;
        self.sync.validate("sync")?;
        if let Some(retry) = &self.retry {
            retry.validate()?;
        }
        if let Some(hedge) = &self.hedge {
            hedge.validate()?;
            if self.retry.is_none() {
                return Err(HetschedError::InvalidConfig(
                    "hedged dispatch requires a retry spec (the hedge rides the ack machinery)"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_reliable_and_valid() {
        let spec = ChannelSpec::default();
        assert!(spec.is_reliable());
        assert_eq!(spec, ChannelSpec::reliable());
        spec.validate().unwrap();
    }

    #[test]
    fn uniform_loss_builders_compose() {
        let spec = ChannelSpec::uniform_loss(0.01)
            .with_retry(RetrySpec::after(5.0))
            .with_hedge(HedgeSpec { delay: 20.0 });
        assert!(!spec.is_reliable());
        assert_eq!(spec.dispatch.loss, 0.01);
        assert_eq!(spec.load.loss, 0.01);
        assert_eq!(spec.sync.loss, 0.01);
        let retry = spec.retry.unwrap();
        assert_eq!(retry.timeout, 5.0);
        assert_eq!(retry.backoff, 2.0);
        assert_eq!(retry.max_retries, 3);
        spec.validate().unwrap();
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let retry = RetrySpec::after(4.0);
        assert_eq!(retry.delay_for_attempt(0), 4.0);
        assert_eq!(retry.delay_for_attempt(1), 8.0);
        assert_eq!(retry.delay_for_attempt(2), 16.0);
    }

    #[test]
    fn partition_windows_are_half_open() {
        let plane = PlaneSpec {
            partitions: vec![(10.0, 20.0), (50.0, 60.0)],
            ..PlaneSpec::default()
        };
        assert!(!plane.is_reliable());
        assert!(!plane.in_partition(9.9));
        assert!(plane.in_partition(10.0));
        assert!(plane.in_partition(19.9));
        assert!(!plane.in_partition(20.0));
        assert!(plane.in_partition(55.0));
        plane.validate("load").unwrap();
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(ChannelSpec {
            dispatch: PlaneSpec::lossy(1.0),
            ..ChannelSpec::default()
        }
        .validate()
        .is_err());
        assert!(ChannelSpec {
            load: PlaneSpec::lossy(-0.1),
            ..ChannelSpec::default()
        }
        .validate()
        .is_err());
        assert!(ChannelSpec {
            sync: PlaneSpec {
                jitter: f64::NAN,
                ..PlaneSpec::default()
            },
            ..ChannelSpec::default()
        }
        .validate()
        .is_err());
        assert!(ChannelSpec {
            load: PlaneSpec {
                partitions: vec![(30.0, 10.0)],
                ..PlaneSpec::default()
            },
            ..ChannelSpec::default()
        }
        .validate()
        .is_err());
        assert!(ChannelSpec::reliable()
            .with_retry(RetrySpec {
                timeout: 0.0,
                backoff: 2.0,
                max_retries: 3
            })
            .validate()
            .is_err());
        assert!(ChannelSpec::reliable()
            .with_retry(RetrySpec {
                timeout: 1.0,
                backoff: 0.5,
                max_retries: 3
            })
            .validate()
            .is_err());
        // Hedging without the ack machinery is rejected.
        assert!(ChannelSpec::reliable()
            .with_hedge(HedgeSpec { delay: 5.0 })
            .validate()
            .is_err());
        assert!(ChannelSpec::reliable()
            .with_retry(RetrySpec::after(1.0))
            .with_hedge(HedgeSpec { delay: 0.0 })
            .validate()
            .is_err());
    }

    #[test]
    fn serde_round_trip_and_partial_json() {
        let spec = ChannelSpec::uniform_loss(0.05).with_retry(RetrySpec::after(10.0));
        let json = serde_json::to_string(&spec).unwrap();
        let back: ChannelSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);

        // Partial JSON fills every omitted knob with the reliable default.
        let sparse: ChannelSpec = serde_json::from_str(r#"{"dispatch": {"loss": 0.01}}"#).unwrap();
        assert_eq!(sparse.dispatch.loss, 0.01);
        assert!(sparse.load.is_reliable());
        assert!(sparse.sync.is_reliable());
        assert!(sparse.retry.is_none());

        // An empty object is the reliable spec.
        let empty: ChannelSpec = serde_json::from_str("{}").unwrap();
        assert!(empty.is_reliable());

        // Retry sub-defaults apply.
        let retry: RetrySpec = serde_json::from_str(r#"{"timeout": 2.5}"#).unwrap();
        assert_eq!(retry.backoff, 2.0);
        assert_eq!(retry.max_retries, 3);
    }
}

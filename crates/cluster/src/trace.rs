//! Per-job trace capture.
//!
//! For debugging a policy or analysing a run beyond aggregate statistics
//! it is invaluable to see individual jobs: when each arrived, where it
//! went, how large it was, when it finished. A paper-scale run has 1–2
//! million jobs, so the collector supports *sampling* (keep every k-th
//! counted job) and a hard cap, keeping memory bounded while remaining
//! statistically representative.
//!
//! Enabled via [`crate::ClusterConfig::trace`]; records land in
//! [`crate::RunStats::trace`] and can be exported as JSON lines for
//! external tooling.

use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

/// Sampling configuration for the trace collector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Keep every `sample_every`-th counted job (1 = every job).
    pub sample_every: u64,
    /// Hard cap on retained records (oldest-first truncation: collection
    /// simply stops once full, keeping the record set contiguous in
    /// time).
    pub max_records: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            sample_every: 1,
            max_records: 1_000_000,
        }
    }
}

impl TraceSpec {
    /// Validates the spec.
    ///
    /// # Errors
    /// [`HetschedError::InvalidConfig`] when a field is out of range.
    pub fn validate(&self) -> Result<(), HetschedError> {
        if self.sample_every == 0 {
            return Err(HetschedError::InvalidConfig(
                "trace sample_every must be ≥ 1".into(),
            ));
        }
        if self.max_records == 0 {
            return Err(HetschedError::InvalidConfig(
                "trace max_records must be ≥ 1".into(),
            ));
        }
        Ok(())
    }
}

/// One traced job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    /// Arrival time at the scheduler (seconds).
    pub arrival: f64,
    /// Completion time (seconds).
    pub completion: f64,
    /// Job size in speed-1 seconds.
    pub size: f64,
    /// Server the job ran on.
    pub server: usize,
}

impl JobTrace {
    /// Response time `completion − arrival`.
    pub fn response_time(&self) -> f64 {
        self.completion - self.arrival
    }

    /// Response ratio `response_time / size`.
    pub fn response_ratio(&self) -> f64 {
        self.response_time() / self.size
    }
}

/// Collects sampled job traces during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceCollector {
    spec: TraceSpec,
    seen: u64,
    records: Vec<JobTrace>,
    dropped: u64,
}

impl TraceCollector {
    /// Creates a collector.
    ///
    /// # Errors
    /// Propagates the [`HetschedError::InvalidConfig`] from
    /// [`TraceSpec::validate`] instead of panicking, so a bad spec
    /// surfaces as a typed error at simulation construction.
    pub fn new(spec: TraceSpec) -> Result<Self, HetschedError> {
        spec.validate()?;
        Ok(TraceCollector {
            spec,
            seen: 0,
            records: Vec::new(),
            dropped: 0,
        })
    }

    /// Offers one completed counted job to the collector.
    pub fn record(&mut self, trace: JobTrace) {
        self.seen += 1;
        if !(self.seen - 1).is_multiple_of(self.spec.sample_every) {
            return;
        }
        if self.records.len() >= self.spec.max_records {
            self.dropped += 1;
            return;
        }
        self.records.push(trace);
    }

    /// The retained records, in completion order.
    pub fn records(&self) -> &[JobTrace] {
        &self.records
    }

    /// Jobs offered to the collector (sampled or not).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Sampled jobs that were dropped because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Folds another collector's records into this one, preserving the
    /// other collector's record order and this collector's cap. Used by
    /// the parallel engine to combine per-shard collectors in
    /// deterministic shard order.
    pub fn absorb(&mut self, other: TraceCollector) {
        self.seen += other.seen;
        self.dropped += other.dropped;
        for r in other.records {
            if self.records.len() >= self.spec.max_records {
                self.dropped += 1;
            } else {
                self.records.push(r);
            }
        }
    }

    /// Serializes the records as JSON lines.
    ///
    /// # Errors
    /// [`HetschedError::Serialization`] when a record fails to encode
    /// (effectively unreachable for this plain-old-data record type).
    pub fn to_jsonl(&self) -> Result<String, HetschedError> {
        let mut out = String::with_capacity(self.records.len() * 96);
        for r in &self.records {
            let line = serde_json::to_string(r)
                .map_err(|e| HetschedError::Serialization(e.to_string()))?;
            out.push_str(&line);
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(arrival: f64, completion: f64) -> JobTrace {
        JobTrace {
            arrival,
            completion,
            size: 2.0,
            server: 0,
        }
    }

    #[test]
    fn records_everything_by_default() {
        let mut c = TraceCollector::new(TraceSpec::default()).unwrap();
        for i in 0..100 {
            c.record(t(i as f64, i as f64 + 1.0));
        }
        assert_eq!(c.records().len(), 100);
        assert_eq!(c.seen(), 100);
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn sampling_keeps_every_kth() {
        let mut c = TraceCollector::new(TraceSpec {
            sample_every: 10,
            max_records: 1000,
        })
        .unwrap();
        for i in 0..100 {
            c.record(t(i as f64, i as f64 + 1.0));
        }
        assert_eq!(c.records().len(), 10);
        // The first job is always kept.
        assert_eq!(c.records()[0].arrival, 0.0);
        assert_eq!(c.records()[1].arrival, 10.0);
    }

    #[test]
    fn cap_stops_collection() {
        let mut c = TraceCollector::new(TraceSpec {
            sample_every: 1,
            max_records: 5,
        })
        .unwrap();
        for i in 0..10 {
            c.record(t(i as f64, i as f64 + 1.0));
        }
        assert_eq!(c.records().len(), 5);
        assert_eq!(c.dropped(), 5);
        // The retained prefix is contiguous in time.
        assert_eq!(c.records()[4].arrival, 4.0);
    }

    #[test]
    fn derived_metrics() {
        let j = JobTrace {
            arrival: 10.0,
            completion: 16.0,
            size: 2.0,
            server: 3,
        };
        assert_eq!(j.response_time(), 6.0);
        assert_eq!(j.response_ratio(), 3.0);
    }

    #[test]
    fn jsonl_round_trips() {
        let mut c = TraceCollector::new(TraceSpec::default()).unwrap();
        c.record(t(1.0, 2.0));
        c.record(t(3.0, 5.0));
        let jsonl = c.to_jsonl().unwrap();
        let lines: Vec<&str> = jsonl.trim().lines().collect();
        assert_eq!(lines.len(), 2);
        let back: JobTrace = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(back, t(1.0, 2.0));
    }

    #[test]
    fn spec_validation() {
        assert!(TraceSpec {
            sample_every: 0,
            max_records: 1
        }
        .validate()
        .is_err());
        assert!(TraceSpec {
            sample_every: 1,
            max_records: 0
        }
        .validate()
        .is_err());
        assert!(TraceSpec::default().validate().is_ok());
    }

    #[test]
    fn collector_rejects_bad_spec_with_typed_error() {
        let err = TraceCollector::new(TraceSpec {
            sample_every: 0,
            max_records: 1,
        })
        .unwrap_err();
        assert!(matches!(err, HetschedError::InvalidConfig(_)));
        assert!(err.to_string().contains("sample_every"));
    }
}

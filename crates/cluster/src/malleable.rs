//! Malleable job classes and the heSRPT-style server-allocation tier.
//!
//! The paper's model is *rigid*: every job occupies exactly one server.
//! This module adds the malleable extension studied by Berg, Vesilo &
//! Harchol-Balter (heSRPT) and Berg & Moseley (multiple parallelizable
//! job classes): an arrival is stamped with a **job class** carrying a
//! concave speedup curve `s(k)`, and a cluster-wide **allocation tier**
//! lets one job hold `k` (possibly fractional) servers at once,
//! preemptively reallocating the whole fleet at every arrival,
//! completion, crash, and repair.
//!
//! Activation is structural, mirroring the fault/channel/dispatch
//! layers: a config without a [`MalleableSpec`] — or one whose classes
//! are all [`SpeedupCurve::Rigid`] — builds none of this machinery,
//! draws from no extra RNG stream, and schedules no events, so such
//! runs are bit-identical to the pre-malleable seed path
//! (`tests/malleable_differential.rs` enforces it).
//!
//! The allocation itself is the heSRPT closed form: with `M` jobs
//! ranked ascending by remaining work (rank `r = 1` is the smallest),
//! job `r` receives the share
//!
//! ```text
//! θ_r ∝ (M − r + 1)^{1/p} − (M − r)^{1/p}
//! ```
//!
//! which telescopes to the full capacity and, for `p < 1`, gives the
//! smallest job the largest share — the SRPT bias softened by the
//! concavity of the speedup curve. [`hesrpt_shares`] implements the
//! form with per-job elasticities and per-job core caps (a rigid job
//! caps at one core), redistributing capped-off cores by water-filling.

use hetsched_dist::SpeedupCurve;
use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

/// Relative tolerance under which a tier job counts as finished: the
/// wake event fires exactly at the predicted completion time, but the
/// `remaining -= rate · dt` arithmetic can leave an O(ulp) residue.
const FINISH_RTOL: f64 = 1e-9;

fn default_weight() -> f64 {
    1.0
}

/// One malleable job class: a speedup curve plus its share of the
/// malleable arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalleableClass {
    /// Speedup curve `s(k)` for jobs of this class (default rigid).
    #[serde(default)]
    pub curve: SpeedupCurve,
    /// Relative arrival weight within the malleable fraction
    /// (default 1; weights are normalized across classes).
    #[serde(default = "default_weight")]
    pub weight: f64,
}

impl MalleableClass {
    /// A power-law class `s(k) = k^p` with unit weight.
    pub fn power_law(p: f64) -> Self {
        MalleableClass {
            curve: SpeedupCurve::PowerLaw { p },
            weight: 1.0,
        }
    }
}

/// The cluster's malleability section (`ClusterConfig::malleable`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalleableSpec {
    /// Fraction of arrivals stamped malleable, in `[0, 1]`.
    pub fraction: f64,
    /// The malleable job classes; weights partition the malleable
    /// fraction of the arrival stream.
    pub classes: Vec<MalleableClass>,
}

impl MalleableSpec {
    /// A single power-law class covering `fraction` of arrivals.
    pub fn power_law(fraction: f64, p: f64) -> Self {
        MalleableSpec {
            fraction,
            classes: vec![MalleableClass::power_law(p)],
        }
    }

    /// Checks the section eagerly at config-validation time.
    ///
    /// # Errors
    /// Returns [`HetschedError::InvalidConfig`] for a fraction outside
    /// `[0, 1]`, an empty class list with a positive fraction,
    /// non-positive weights, or invalid speedup-curve parameters.
    pub fn validate(&self) -> Result<(), HetschedError> {
        if !self.fraction.is_finite() || !(0.0..=1.0).contains(&self.fraction) {
            return Err(HetschedError::InvalidConfig(format!(
                "malleable fraction must lie in [0, 1], got {}",
                self.fraction
            )));
        }
        if self.fraction > 0.0 && self.classes.is_empty() {
            return Err(HetschedError::InvalidConfig(
                "malleable fraction is positive but no classes are defined".into(),
            ));
        }
        if self.classes.len() > usize::from(u16::MAX - 1) {
            return Err(HetschedError::InvalidConfig(format!(
                "at most {} malleable classes are supported, got {}",
                u16::MAX - 1,
                self.classes.len()
            )));
        }
        for (i, class) in self.classes.iter().enumerate() {
            if !(class.weight.is_finite() && class.weight > 0.0) {
                return Err(HetschedError::InvalidConfig(format!(
                    "malleable class {i} weight must be positive, got {}",
                    class.weight
                )));
            }
            class
                .curve
                .validate()
                .map_err(|e| e.context(format!("malleable class {i}")))?;
        }
        Ok(())
    }

    /// True when the section changes anything at all: a positive
    /// malleable fraction with at least one genuinely elastic class.
    /// All-rigid sections are structurally invisible — no class stream
    /// is constructed and no job is stamped, keeping such runs
    /// bit-identical to the seed path.
    pub fn active(&self) -> bool {
        self.fraction > 0.0 && self.classes.iter().any(|c| !c.curve.is_rigid())
    }

    /// Maps one uniform draw `u ∈ [0, 1)` to a class id: `0` is the
    /// rigid background stream (probability `1 − fraction`), class `c`
    /// covers a `fraction · w_c / Σw` slice.
    pub fn stamp(&self, u: f64) -> u16 {
        if u >= self.fraction || self.classes.is_empty() {
            return 0;
        }
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut x = u / self.fraction * total;
        for (i, class) in self.classes.iter().enumerate() {
            if x < class.weight {
                return (i + 1) as u16;
            }
            x -= class.weight;
        }
        self.classes.len() as u16
    }

    /// The speedup curve for a stamped class id (`0` = rigid).
    pub fn curve(&self, class: u16) -> &SpeedupCurve {
        if class == 0 {
            &RIGID
        } else {
            &self.classes[usize::from(class) - 1].curve
        }
    }

    /// Long-run arrival probability of each class id `0..=K`, used by
    /// the static per-class allocator as its offline (Algorithm-1-like)
    /// share targets.
    pub fn arrival_shares(&self) -> Vec<f64> {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut shares = Vec::with_capacity(self.classes.len() + 1);
        shares.push(1.0 - self.fraction);
        for class in &self.classes {
            shares.push(self.fraction * class.weight / total);
        }
        shares
    }
}

static RIGID: SpeedupCurve = SpeedupCurve::Rigid;

/// Which allocation rule the tier runs; advertised by a policy through
/// `Policy::malleable_allocator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocatorKind {
    /// Size-ordered water-filling per the heSRPT closed form,
    /// re-evaluated at every tier event.
    Hesrpt,
    /// Static per-class shares proportional to each class's arrival
    /// probability (EQUI within a class) — the Algorithm-1-comparable
    /// baseline from Berg & Moseley.
    StaticClass,
}

/// One job's allocation request, the input row of [`hesrpt_shares`].
#[derive(Debug, Clone, Copy)]
pub struct AllocJob {
    /// Remaining inherent work.
    pub remaining: f64,
    /// Sublinearity exponent `p ∈ (0, 1]` of the job's speedup curve.
    pub elasticity: f64,
    /// Largest useful allocation (1 for a rigid job).
    pub cap: f64,
    /// Admission sequence number, the deterministic tie-break.
    pub seq: u64,
}

/// The heSRPT closed-form allocation with per-job caps.
///
/// Jobs are ranked ascending by `(remaining, seq)`; rank `r` (1-based)
/// receives a share proportional to
/// `(M − r + 1)^{1/p_r} − (M − r)^{1/p_r}`, normalized to `cores`.
/// Shares above a job's cap are clamped there and the freed cores are
/// water-filled over the uncapped jobs; cores nobody can use stay idle.
/// The returned vector is indexed like `jobs` and sums to at most
/// `cores` (exactly `cores` when no cap binds).
pub fn hesrpt_shares(jobs: &[AllocJob], cores: f64) -> Vec<f64> {
    let m = jobs.len();
    let mut share = vec![0.0; m];
    if m == 0 || cores <= 0.0 {
        return share;
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .remaining
            .total_cmp(&jobs[b].remaining)
            .then(jobs[a].seq.cmp(&jobs[b].seq))
    });
    let mut raw = vec![0.0; m];
    for (r, &i) in order.iter().enumerate() {
        let inv_p = 1.0 / jobs[i].elasticity.clamp(1e-6, 1.0);
        let hi = (m - r) as f64;
        let lo = (m - r - 1) as f64;
        raw[i] = hi.powf(inv_p) - lo.powf(inv_p);
    }
    let mut capped = vec![false; m];
    let mut free = cores;
    loop {
        let raw_sum: f64 = (0..m).filter(|&i| !capped[i]).map(|i| raw[i]).sum();
        if raw_sum <= 0.0 || free <= 0.0 {
            break;
        }
        // Clamp the first violator (in rank order, so the fixed point is
        // deterministic) and redistribute; at most M passes.
        let mut clamped = false;
        for &i in &order {
            if capped[i] {
                continue;
            }
            if free * raw[i] / raw_sum > jobs[i].cap {
                share[i] = jobs[i].cap;
                capped[i] = true;
                free -= jobs[i].cap;
                clamped = true;
                break;
            }
        }
        if !clamped {
            for &i in &order {
                if !capped[i] {
                    share[i] = free * raw[i] / raw_sum;
                }
            }
            break;
        }
    }
    share
}

/// Equal split of `budget` cores over jobs with the given caps,
/// redistributing capped-off cores among the rest (EQUI with caps).
fn equi_shares(caps: &[f64], budget: f64) -> Vec<f64> {
    let m = caps.len();
    let mut share = vec![0.0; m];
    if m == 0 || budget <= 0.0 {
        return share;
    }
    let mut capped = vec![false; m];
    let mut free = budget;
    loop {
        let open = capped.iter().filter(|&&c| !c).count();
        if open == 0 || free <= 0.0 {
            break;
        }
        let each = free / open as f64;
        let mut clamped = false;
        for i in 0..m {
            if !capped[i] && each > caps[i] {
                share[i] = caps[i];
                capped[i] = true;
                free -= caps[i];
                clamped = true;
                break;
            }
        }
        if !clamped {
            for s in 0..m {
                if !capped[s] {
                    share[s] = each;
                }
            }
            break;
        }
    }
    share
}

/// One job held by the allocation tier.
#[derive(Debug, Clone)]
pub struct TierJob {
    /// The simulation's slab key for the job.
    pub id: usize,
    /// Stamped class id (0 = rigid background).
    pub class: u16,
    /// Inherent size at admission.
    pub inherent: f64,
    /// Remaining inherent work.
    pub remaining: f64,
    /// Current core allocation.
    pub share: f64,
    /// Current service rate `s(share) · c̄` (inherent work per second).
    pub rate: f64,
    /// Admission sequence number (deterministic heSRPT tie-break).
    pub seq: u64,
}

/// Per-class allocation parameters, precomputed from the spec.
#[derive(Debug, Clone)]
struct ClassInfo {
    curve: SpeedupCurve,
    elasticity: f64,
    cap: f64,
    /// Offline arrival share, the static allocator's class budget.
    arrival_share: f64,
}

/// The live allocation tier: jobs holding fractional server shares,
/// advanced and re-allocated at every tier event.
///
/// The tier homogenizes the fleet: with `N_up` servers up at aggregate
/// speed `Σ s_i`, a job holding `k` cores runs at `s(k) · Σs_i / N_up`.
/// All bookkeeping is deterministic — ties break on the admission
/// sequence number — so a sharded run reproduces bitwise on both
/// engines.
#[derive(Debug)]
pub struct MalleableRuntime {
    kind: AllocatorKind,
    classes: Vec<ClassInfo>,
    jobs: Vec<TierJob>,
    seq: u64,
    last_t: f64,
    /// Reallocation passes performed (post-warmup windows are not
    /// distinguished; this is a lifetime counter).
    pub reallocations: u64,
    /// High-water mark of simultaneously allocated cores, the
    /// conservation-law witness (`≤` fleet cores at all times).
    pub max_cores_in_use: f64,
}

impl MalleableRuntime {
    /// Builds the tier for a spec and an allocation rule.
    pub fn new(kind: AllocatorKind, spec: &MalleableSpec) -> Self {
        let shares = spec.arrival_shares();
        let mut classes = Vec::with_capacity(spec.classes.len() + 1);
        classes.push(ClassInfo {
            curve: SpeedupCurve::Rigid,
            elasticity: 1.0,
            cap: 1.0,
            arrival_share: shares[0],
        });
        for (i, class) in spec.classes.iter().enumerate() {
            classes.push(ClassInfo {
                curve: class.curve.clone(),
                elasticity: class.curve.elasticity(),
                cap: class.curve.max_useful_cores(),
                arrival_share: shares[i + 1],
            });
        }
        MalleableRuntime {
            kind,
            classes,
            jobs: Vec::new(),
            seq: 0,
            last_t: 0.0,
            reallocations: 0,
            max_cores_in_use: 0.0,
        }
    }

    /// Jobs currently held by the tier.
    pub fn jobs(&self) -> &[TierJob] {
        &self.jobs
    }

    /// Cores currently allocated across all tier jobs.
    pub fn cores_in_use(&self) -> f64 {
        self.jobs.iter().map(|j| j.share).sum()
    }

    /// Progresses every job to `now` at its current rate.
    pub fn advance(&mut self, now: f64) {
        let dt = now - self.last_t;
        if dt > 0.0 {
            for job in &mut self.jobs {
                job.remaining = (job.remaining - job.rate * dt).max(0.0);
            }
        }
        self.last_t = now;
    }

    /// Admits one job (advance to `now` first).
    pub fn admit(&mut self, id: usize, class: u16, size: f64) {
        let seq = self.seq;
        self.seq += 1;
        self.jobs.push(TierJob {
            id,
            class,
            inherent: size,
            remaining: size,
            share: 0.0,
            rate: 0.0,
            seq,
        });
    }

    /// Removes and returns every finished job, in admission order
    /// (advance to `now` first).
    ///
    /// A job is finished when its remaining work is inside the relative
    /// tolerance — or when its completion can no longer advance the f64
    /// clock (`last_t + remaining/rate` rounds to `last_t`). The second
    /// clause closes a Zeno loop: an arrival landing within one
    /// representable tick of a predicted completion would otherwise
    /// leave a residue above the tolerance whose wake re-fires at the
    /// same timestamp forever, with `dt = 0` draining nothing.
    pub fn reap(&mut self) -> Vec<TierJob> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.jobs.len() {
            let j = &self.jobs[i];
            let finished = j.remaining <= j.inherent * FINISH_RTOL
                || (j.rate > 0.0 && self.last_t + j.remaining / j.rate <= self.last_t);
            if finished {
                done.push(self.jobs.remove(i));
            } else {
                i += 1;
            }
        }
        done
    }

    /// Recomputes every job's share and rate for the current capacity:
    /// `cores` whole-server units at mean per-core speed `core_speed`.
    pub fn reallocate(&mut self, cores: f64, core_speed: f64) {
        if self.jobs.is_empty() {
            return;
        }
        let shares = match self.kind {
            AllocatorKind::Hesrpt => {
                let reqs: Vec<AllocJob> = self
                    .jobs
                    .iter()
                    .map(|j| {
                        let info = &self.classes[usize::from(j.class)];
                        AllocJob {
                            remaining: j.remaining,
                            elasticity: info.elasticity,
                            cap: info.cap.min(cores),
                            seq: j.seq,
                        }
                    })
                    .collect();
                hesrpt_shares(&reqs, cores)
            }
            AllocatorKind::StaticClass => self.static_shares(cores),
        };
        for (job, share) in self.jobs.iter_mut().zip(&shares) {
            job.share = *share;
            job.rate = self.classes[usize::from(job.class)].curve.speedup(*share) * core_speed;
        }
        self.reallocations += 1;
        let in_use: f64 = shares.iter().sum();
        if in_use > self.max_cores_in_use {
            self.max_cores_in_use = in_use;
        }
    }

    /// Static per-class allocation: each class with live jobs gets a
    /// budget proportional to its offline arrival share, split EQUI
    /// (with caps) among its jobs. Renormalizes over present classes so
    /// an absent class's cores are not wasted.
    fn static_shares(&self, cores: f64) -> Vec<f64> {
        let present: f64 = self
            .classes
            .iter()
            .enumerate()
            .filter(|(c, _)| self.jobs.iter().any(|j| usize::from(j.class) == *c))
            .map(|(_, info)| info.arrival_share)
            .sum();
        let mut shares = vec![0.0; self.jobs.len()];
        if present <= 0.0 {
            return shares;
        }
        for (c, info) in self.classes.iter().enumerate() {
            let members: Vec<usize> = self
                .jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| usize::from(j.class) == c)
                .map(|(i, _)| i)
                .collect();
            if members.is_empty() {
                continue;
            }
            let budget = cores * info.arrival_share / present;
            let caps: Vec<f64> = members.iter().map(|_| info.cap.min(cores)).collect();
            for (idx, share) in members.iter().zip(equi_shares(&caps, budget)) {
                shares[*idx] = share;
            }
        }
        shares
    }

    /// The absolute time of the next tier completion at current rates,
    /// or `None` when no job is progressing (e.g. total outage).
    pub fn next_completion(&self) -> Option<f64> {
        self.jobs
            .iter()
            .filter(|j| j.rate > 0.0)
            .map(|j| self.last_t + j.remaining / j.rate)
            .min_by(f64::total_cmp)
    }
}

/// Per-class completion statistics, the breakdown table of the
/// human-readable report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassStats {
    /// Stamped class id (0 = rigid background).
    pub class: u16,
    /// Counted completions of the class.
    pub count: u64,
    /// Mean slowdown (`response / inherent size`).
    pub mean_slowdown: f64,
    /// Mean response time.
    pub mean_response: f64,
}

/// Tier-level counters exported with the run results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MalleableStats {
    /// Counted completions that were stamped malleable (class > 0).
    pub malleable_jobs: u64,
    /// Allocation passes performed by the tier (0 when only stamping
    /// ran, i.e. under a non-allocating policy like ORR).
    pub reallocations: u64,
    /// High-water mark of simultaneously allocated cores.
    pub max_cores_in_use: f64,
    /// Whole-server core capacity of the fleet (the conservation bound).
    pub fleet_cores: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(fraction: f64, p: f64) -> MalleableSpec {
        MalleableSpec::power_law(fraction, p)
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        spec(0.5, 0.5).validate().unwrap();
        spec(0.0, 0.5).validate().unwrap();
        MalleableSpec {
            fraction: 0.0,
            classes: vec![],
        }
        .validate()
        .unwrap();
        for bad in [
            spec(-0.1, 0.5),
            spec(1.5, 0.5),
            spec(f64::NAN, 0.5),
            spec(0.5, 0.0),
            spec(0.5, 1.5),
            MalleableSpec {
                fraction: 0.5,
                classes: vec![],
            },
            MalleableSpec {
                fraction: 0.5,
                classes: vec![MalleableClass {
                    curve: SpeedupCurve::Rigid,
                    weight: 0.0,
                }],
            },
        ] {
            let err = bad.validate().expect_err(&format!("{bad:?}"));
            assert!(
                matches!(err.root_cause(), HetschedError::InvalidConfig(_)),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn activation_requires_an_elastic_class() {
        assert!(spec(1.0, 0.5).active());
        assert!(!spec(0.0, 0.5).active());
        let all_rigid = MalleableSpec {
            fraction: 1.0,
            classes: vec![MalleableClass {
                curve: SpeedupCurve::Rigid,
                weight: 1.0,
            }],
        };
        assert!(!all_rigid.active());
    }

    #[test]
    fn stamping_partitions_the_unit_interval() {
        let s = MalleableSpec {
            fraction: 0.5,
            classes: vec![
                MalleableClass {
                    curve: SpeedupCurve::PowerLaw { p: 0.5 },
                    weight: 3.0,
                },
                MalleableClass {
                    curve: SpeedupCurve::PowerLaw { p: 0.8 },
                    weight: 1.0,
                },
            ],
        };
        // [0, 0.375) -> class 1, [0.375, 0.5) -> class 2, [0.5, 1) -> 0.
        assert_eq!(s.stamp(0.0), 1);
        assert_eq!(s.stamp(0.374), 1);
        assert_eq!(s.stamp(0.376), 2);
        assert_eq!(s.stamp(0.499), 2);
        assert_eq!(s.stamp(0.5), 0);
        assert_eq!(s.stamp(0.99), 0);
        let shares = s.arrival_shares();
        assert_eq!(shares, vec![0.5, 0.375, 0.125]);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    fn req(remaining: f64, p: f64, cap: f64, seq: u64) -> AllocJob {
        AllocJob {
            remaining,
            elasticity: p,
            cap,
            seq,
        }
    }

    #[test]
    fn hesrpt_matches_the_closed_form() {
        // M = 2, p = 0.5: ranks get (2² − 1²)/2² = 3/4 and 1/4 of the
        // cores; the smaller job takes the larger share.
        let jobs = [
            req(10.0, 0.5, f64::INFINITY, 0),
            req(2.0, 0.5, f64::INFINITY, 1),
        ];
        let s = hesrpt_shares(&jobs, 8.0);
        assert!((s[1] - 6.0).abs() < 1e-12, "{s:?}");
        assert!((s[0] - 2.0).abs() < 1e-12, "{s:?}");
        assert!((s.iter().sum::<f64>() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn hesrpt_shares_telescope_to_capacity() {
        let jobs: Vec<AllocJob> = (0..7)
            .map(|i| req(1.0 + i as f64, 0.7, f64::INFINITY, i as u64))
            .collect();
        let s = hesrpt_shares(&jobs, 12.0);
        assert!((s.iter().sum::<f64>() - 12.0).abs() < 1e-9, "{s:?}");
        // Ascending size ⇒ descending share.
        for w in s.windows(2) {
            assert!(w[0] >= w[1], "{s:?}");
        }
    }

    #[test]
    fn hesrpt_ties_break_on_sequence() {
        let jobs = [
            req(5.0, 0.5, f64::INFINITY, 7),
            req(5.0, 0.5, f64::INFINITY, 3),
        ];
        let s = hesrpt_shares(&jobs, 4.0);
        // seq 3 ranks first and takes the larger share.
        assert!(s[1] > s[0], "{s:?}");
    }

    #[test]
    fn hesrpt_respects_caps_and_conservation() {
        // A rigid job caps at one core; the freed cores go to the others.
        let jobs = [
            req(1.0, 1.0, 1.0, 0),
            req(5.0, 0.5, f64::INFINITY, 1),
            req(9.0, 0.5, f64::INFINITY, 2),
        ];
        let s = hesrpt_shares(&jobs, 10.0);
        assert!(s[0] <= 1.0 + 1e-12, "{s:?}");
        assert!((s.iter().sum::<f64>() - 10.0).abs() < 1e-9, "{s:?}");

        // All rigid: one core each, the rest idle.
        let rigid = [req(1.0, 1.0, 1.0, 0), req(2.0, 1.0, 1.0, 1)];
        let s = hesrpt_shares(&rigid, 10.0);
        assert_eq!(s, vec![1.0, 1.0]);
    }

    #[test]
    fn hesrpt_handles_degenerate_inputs() {
        assert!(hesrpt_shares(&[], 4.0).is_empty());
        let jobs = [req(1.0, 0.5, f64::INFINITY, 0)];
        assert_eq!(hesrpt_shares(&jobs, 0.0), vec![0.0]);
        assert_eq!(hesrpt_shares(&jobs, 6.0), vec![6.0]);
    }

    #[test]
    fn equi_redistributes_capped_cores() {
        let s = equi_shares(&[1.0, f64::INFINITY, f64::INFINITY], 7.0);
        assert_eq!(s[0], 1.0);
        assert!((s[1] - 3.0).abs() < 1e-12 && (s[2] - 3.0).abs() < 1e-12);
    }

    fn runtime(kind: AllocatorKind) -> MalleableRuntime {
        MalleableRuntime::new(kind, &spec(0.5, 0.5))
    }

    #[test]
    fn runtime_advances_and_reaps_at_predicted_times() {
        let mut rt = runtime(AllocatorKind::Hesrpt);
        rt.admit(11, 1, 4.0);
        rt.reallocate(4.0, 1.0);
        // One power-law job on 4 cores: rate √4 = 2, finishes at t = 2.
        let t = rt.next_completion().unwrap();
        assert!((t - 2.0).abs() < 1e-12);
        rt.advance(t);
        let done = rt.reap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 11);
        assert!(rt.jobs().is_empty());
        assert_eq!(rt.reallocations, 1);
        assert!((rt.max_cores_in_use - 4.0).abs() < 1e-12);
    }

    #[test]
    fn runtime_preempts_for_a_smaller_job() {
        let mut rt = runtime(AllocatorKind::Hesrpt);
        rt.admit(0, 1, 8.0);
        rt.reallocate(4.0, 1.0);
        rt.advance(1.0);
        rt.admit(1, 1, 1.0);
        rt.reallocate(4.0, 1.0);
        let jobs = rt.jobs();
        // The small newcomer outranks the half-done large job.
        assert!(jobs[1].share > jobs[0].share);
        assert!((rt.cores_in_use() - 4.0).abs() < 1e-12);
        // Next completion is the small job's.
        let t = rt.next_completion().unwrap();
        rt.advance(t);
        let done = rt.reap();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, 1);
    }

    #[test]
    fn reap_closes_the_zeno_residue_loop() {
        // A residue above the relative tolerance whose completion time
        // rounds to the current clock: late in a run (t = 1e6, ulp
        // ~1.2e-10) a fast-running job is left with 2e-9 of work —
        // above `inherent * FINISH_RTOL` = 1e-9, but 2e-11 seconds
        // from done, which f64 time cannot represent. Without the
        // no-progress clause its wake would re-fire at t forever.
        let mut rt = runtime(AllocatorKind::StaticClass);
        rt.admit(0, 1, 1.0);
        rt.reallocate(8.0, 1.0);
        rt.advance(1.0e6);
        let job = &mut rt.jobs[0];
        job.remaining = 2.0e-9;
        job.rate = 100.0;
        assert_eq!(
            rt.next_completion(),
            Some(1.0e6),
            "the completion must round onto the current clock for this \
             scenario to exercise the guard"
        );
        let done = rt.reap();
        assert_eq!(done.len(), 1, "the un-advanceable residue must reap");
        // A genuinely unfinished job at the same clock still survives.
        rt.admit(1, 1, 1.0);
        rt.reallocate(8.0, 1.0);
        assert!(rt.reap().is_empty());
    }

    #[test]
    fn runtime_zero_capacity_stalls_without_wake() {
        let mut rt = runtime(AllocatorKind::Hesrpt);
        rt.admit(0, 1, 4.0);
        rt.reallocate(0.0, 0.0);
        assert_eq!(rt.next_completion(), None);
        rt.advance(100.0);
        assert!(rt.reap().is_empty(), "no progress at zero capacity");
    }

    #[test]
    fn static_allocator_splits_by_arrival_share() {
        let s = MalleableSpec {
            fraction: 0.5,
            classes: vec![
                MalleableClass {
                    curve: SpeedupCurve::PowerLaw { p: 0.5 },
                    weight: 1.0,
                },
                MalleableClass {
                    curve: SpeedupCurve::PowerLaw { p: 0.5 },
                    weight: 1.0,
                },
            ],
        };
        let mut rt = MalleableRuntime::new(AllocatorKind::StaticClass, &s);
        // Two class-1 jobs and one class-2 job; no rigid jobs present,
        // so the budgets renormalize to 1/2 of the cores per class.
        rt.admit(0, 1, 10.0);
        rt.admit(1, 1, 10.0);
        rt.admit(2, 2, 10.0);
        rt.reallocate(8.0, 1.0);
        let jobs = rt.jobs();
        assert!((jobs[0].share - 2.0).abs() < 1e-12, "{jobs:?}");
        assert!((jobs[1].share - 2.0).abs() < 1e-12, "{jobs:?}");
        assert!((jobs[2].share - 4.0).abs() < 1e-12, "{jobs:?}");
    }

    #[test]
    fn serde_round_trips_and_defaults() {
        let s = spec(0.5, 0.5);
        let json = serde_json::to_string(&s).unwrap();
        let back: MalleableSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // Omitted curve and weight default to rigid / 1.0.
        let class: MalleableClass = serde_json::from_str("{}").unwrap();
        assert_eq!(class.curve, SpeedupCurve::Rigid);
        assert_eq!(class.weight, 1.0);
    }
}

//! # hetsched-parallel — scoped-thread work pool for replication sweeps
//!
//! Every data point in the paper is "the average result of 10 independent
//! runs with different random number streams" (§4.1), and the figures
//! sweep a parameter over many points — hundreds of embarrassingly
//! parallel simulation runs. This crate provides a deliberately small
//! parallel map built on `std::thread::scope`:
//!
//! * work is pulled from a shared atomic counter (dynamic load balancing —
//!   runs at high utilization take much longer than runs at low
//!   utilization, so static chunking would straggle);
//! * results land in their input's slot, so output order equals input
//!   order and determinism is preserved no matter how threads interleave;
//! * slots are **write-once**: the atomic counter hands each index to
//!   exactly one worker, so results are stored through a plain
//!   `UnsafeCell` with no per-slot lock on the hot path;
//! * [`parallel_map_in_order`] additionally accepts a *pull order*, so a
//!   sweep harness can start its expected-longest tasks (high-utilization
//!   points) first and keep every core busy until the very end;
//! * worker panics are propagated to the caller (a failed replication
//!   must not silently produce a truncated average).
//!
//! The crate is dependency-free: scoped threads come from the standard
//! library, so the sweep pool cannot drift with third-party versions.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A write-once result slot.
///
/// Workers claim indices through an atomic counter, so each slot is
/// written by exactly one worker and read only after every worker has
/// been joined — the counter, not a lock, provides the exclusion.
struct Slot<R>(UnsafeCell<Option<R>>);

impl<R> Slot<R> {
    fn empty() -> Self {
        Slot(UnsafeCell::new(None))
    }
}

// SAFETY: each slot index is claimed by exactly one worker (a unique
// `fetch_add` ticket), giving that worker exclusive write access; the
// main thread reads only after joining all workers, which synchronizes
// the writes.
unsafe impl<R: Send> Sync for Slot<R> {}

/// Maps `f` over `items` using up to `threads` worker threads, returning
/// results in input order.
///
/// `f` must be `Sync` (shared by reference across workers); items are
/// taken by reference. With `threads <= 1` or a single item the map runs
/// inline on the caller's thread.
///
/// # Panics
/// Propagates the first worker panic.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    pool_map(items, threads, None, f)
}

/// Like [`parallel_map`], but workers *pull* tasks in the sequence given
/// by `order` (a permutation of `0..items.len()`; `order[0]` is started
/// first). Results are still returned in **input** order, so reordering
/// affects only wall-clock scheduling, never the output.
///
/// Sweep harnesses use this to start their expected-longest tasks first:
/// a straggler that begins at `t = 0` hides behind the rest of the sweep
/// instead of running alone at the end.
///
/// # Panics
/// Panics if `order` is not a permutation of the item indices; propagates
/// the first worker panic.
pub fn parallel_map_in_order<T, R, F>(items: &[T], threads: usize, order: &[usize], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert_eq!(
        order.len(),
        items.len(),
        "order must be a permutation of the item indices"
    );
    let mut seen = vec![false; items.len()];
    for &idx in order {
        assert!(
            idx < items.len() && !seen[idx],
            "order must be a permutation of the item indices"
        );
        seen[idx] = true;
    }
    pool_map(items, threads, Some(order), f)
}

/// Shared implementation: a counter hands out *tickets*; `order` (if any)
/// maps tickets to item indices.
fn pool_map<T, R, F>(items: &[T], threads: usize, order: Option<&[usize]>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let idx_of = |ticket: usize| order.map_or(ticket, |o| o[ticket]);
    let workers = threads.max(1).min(items.len());
    if workers == 1 {
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for ticket in 0..items.len() {
            let idx = idx_of(ticket);
            out[idx] = Some(f(&items[idx]));
        }
        return out
            .into_iter()
            .map(|r| r.expect("every slot filled"))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Slot<R>> = (0..items.len()).map(|_| Slot::empty()).collect();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let ticket = next.fetch_add(1, Ordering::Relaxed);
                    if ticket >= items.len() {
                        break;
                    }
                    let idx = idx_of(ticket);
                    let r = f(&items[idx]);
                    // SAFETY: this worker holds the unique ticket for
                    // `idx`, so no other thread accesses this slot until
                    // after the join below.
                    unsafe { *slots[idx].0.get() = Some(r) };
                })
            })
            .collect();
        for h in handles {
            if h.join().is_err() {
                panic!("worker thread panicked");
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("every slot filled"))
        .collect()
}

/// Number of worker threads to use by default: the available parallelism,
/// capped at 16 (simulation runs are memory-light; beyond ~16 threads the
/// marginal return on a laptop/CI box is noise).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Resolves a user-facing thread knob: `0` means "auto"
/// ([`default_threads`]), anything else is taken literally.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        default_threads()
    } else {
        requested
    }
}

/// Plans a two-level thread split: `outer` replication workers, each of
/// which may itself run `inner` simulation threads (the conservative
/// parallel engine's per-shard kernels). Returns the effective outer
/// worker count so that `outer × inner` stays within a sane multiple of
/// the machine budget, instead of letting the two knobs multiply into
/// hundreds of threads.
///
/// `outer` and `budget` follow the usual knob convention (`0` = auto:
/// [`default_threads`] for both); `inner` below 1 is treated as 1.
/// The cap is soft — oversubscription up to 4× the budget is allowed
/// (threads blocked on epoch barriers don't saturate a core) — but the
/// effective outer count is scaled down so `outer_eff × inner ≤ budget`
/// whenever `inner > 1`.
///
/// # Errors
/// Returns a message when the combination is absurd: `inner` alone
/// exceeding 4× the budget, or an explicit `outer` whose product with
/// a nested `inner > 1` exceeds 4× the budget (with `inner = 1` the
/// classic flat replication pool applies and `outer` is taken as
/// given). Absurd combinations are almost always
/// a units mistake in a config file, and silently clamping them would
/// hide it.
pub fn plan_nested(outer: usize, inner: usize, budget: usize) -> Result<usize, String> {
    let budget = if budget == 0 {
        default_threads()
    } else {
        budget
    };
    let inner_eff = inner.max(1);
    if inner_eff > 4 * budget {
        return Err(format!(
            "sim_threads = {inner_eff} exceeds 4× the machine budget ({budget} threads); \
             cap it at the shard count or the core count"
        ));
    }
    // inner = 1 is the classic engine: plain replication threading has
    // always been allowed to exceed the core count (workers are
    // independent and time-slice cleanly), so only police the product
    // when the run actually nests.
    if inner_eff > 1 && outer > 0 && outer * inner_eff > 4 * budget {
        return Err(format!(
            "threads × sim_threads = {outer} × {inner_eff} exceeds 4× the machine budget \
             ({budget} threads); lower one of the knobs (0 = auto)"
        ));
    }
    let outer_eff = if inner_eff > 1 {
        resolve_threads(outer).min((budget / inner_eff).max(1))
    } else {
        resolve_threads(outer)
    };
    Ok(outer_eff)
}

/// Runs `f(seed)` for seeds `0..replications` in parallel — the paper's
/// "10 independent runs with different random number streams".
pub fn replicate<R, F>(replications: u64, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds: Vec<u64> = (0..replications).collect();
    parallel_map(&seeds, threads, |&s| f(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, 2 * i as u64);
        }
    }

    #[test]
    fn single_thread_inline() {
        let items = [1, 2, 3];
        let out = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        let out = parallel_map(&items, 4, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs; dynamic pulling must still
        // produce correct, ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |&x| {
            let mut acc = 0u64;
            let spin = if x % 7 == 0 { 200_000 } else { 10 };
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn replicate_passes_distinct_seeds() {
        let out = replicate(10, 4, |seed| seed * seed);
        assert_eq!(out.len(), 10);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[1, 2], 32, |&x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }

    #[test]
    fn resolve_threads_zero_is_auto() {
        assert_eq!(resolve_threads(0), default_threads());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panic_propagates() {
        parallel_map(&[1, 2, 3, 4], 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn ordered_map_returns_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let order: Vec<usize> = (0..100).rev().collect();
        let out = parallel_map_in_order(&items, 4, &order, |&x| x * 3);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, 3 * i as u64);
        }
    }

    #[test]
    fn ordered_map_single_thread_follows_pull_order() {
        let items: Vec<usize> = (0..8).collect();
        let order = [5, 3, 7, 1, 0, 2, 4, 6];
        let log = Mutex::new(Vec::new());
        let out = parallel_map_in_order(&items, 1, &order, |&x| {
            log.lock().unwrap().push(x);
            x
        });
        assert_eq!(out, items);
        assert_eq!(*log.lock().unwrap(), order.to_vec());
    }

    #[test]
    fn ordered_map_with_many_threads() {
        let items: Vec<u64> = (0..257).collect();
        let order: Vec<usize> = (0..257).rev().collect();
        let out = parallel_map_in_order(&items, 16, &order, |&x| x + 1);
        assert_eq!(out.len(), 257);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, i as u64 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "order must be a permutation")]
    fn ordered_map_rejects_wrong_length() {
        parallel_map_in_order(&[1, 2, 3], 2, &[0, 1], |&x| x);
    }

    #[test]
    #[should_panic(expected = "order must be a permutation")]
    fn ordered_map_rejects_duplicates() {
        parallel_map_in_order(&[1, 2, 3], 2, &[0, 1, 1], |&x| x);
    }

    #[test]
    fn nested_plan_caps_the_product() {
        // inner = 1: the classic path, outer untouched.
        assert_eq!(plan_nested(6, 1, 8).unwrap(), 6);
        assert_eq!(plan_nested(6, 0, 8).unwrap(), 6);
        // inner > 1: outer scaled so outer × inner ≤ budget.
        assert_eq!(plan_nested(8, 4, 8).unwrap(), 2);
        assert_eq!(plan_nested(0, 8, 8).unwrap(), 1);
        // Auto outer resolves before capping.
        let auto = plan_nested(0, 2, 8).unwrap();
        assert!((1..=4).contains(&auto));
    }

    #[test]
    fn nested_plan_rejects_absurd_combinations() {
        assert!(plan_nested(1, 64, 4).is_err());
        assert!(plan_nested(16, 4, 4).is_err());
        let msg = plan_nested(16, 4, 4).unwrap_err();
        assert!(msg.contains("16 × 4"), "got: {msg}");
    }

    #[test]
    fn nested_plan_always_returns_at_least_one_worker() {
        assert_eq!(plan_nested(1, 16, 8).unwrap(), 1);
    }

    #[test]
    fn results_with_drop_types_are_not_leaked() {
        // Strings exercise the Option drop path of unclaimed/claimed slots.
        let items: Vec<u32> = (0..64).collect();
        let out = parallel_map(&items, 4, |&x| format!("v{x}"));
        assert_eq!(out[63], "v63");
    }
}

//! # hetsched-parallel — scoped-thread replication runner
//!
//! Every data point in the paper is "the average result of 10 independent
//! runs with different random number streams" (§4.1), and the figures
//! sweep a parameter over many points — hundreds of embarrassingly
//! parallel simulation runs. This crate provides a deliberately small
//! parallel map built on `crossbeam::scope`:
//!
//! * work is pulled from a shared atomic counter (dynamic load balancing —
//!   runs at high utilization take much longer than runs at low
//!   utilization, so static chunking would straggle);
//! * results land in their input's slot, so output order equals input
//!   order and determinism is preserved no matter how threads interleave;
//! * worker panics are propagated to the caller (a failed replication
//!   must not silently produce a truncated average).
//!
//! The sanctioned `crossbeam` dependency is confined to this crate.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Maps `f` over `items` using up to `threads` worker threads, returning
/// results in input order.
///
/// `f` must be `Sync` (shared by reference across workers); items are
/// taken by reference. With `threads <= 1` or a single item the map runs
/// inline on the caller's thread.
///
/// # Panics
/// Propagates the first worker panic.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let workers = threads.max(1).min(items.len());
    if workers == 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= items.len() {
                    break;
                }
                let r = f(&items[idx]);
                *slots[idx].lock() = Some(r);
            });
        }
    })
    .expect("worker thread panicked");

    slots
        .into_iter()
        .map(|m| m.into_inner().expect("every slot filled"))
        .collect()
}

/// Number of worker threads to use by default: the available parallelism,
/// capped at 16 (simulation runs are memory-light; beyond ~16 threads the
/// marginal return on a laptop/CI box is noise).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Runs `f(seed)` for seeds `0..replications` in parallel — the paper's
/// "10 independent runs with different random number streams".
pub fn replicate<R, F>(replications: u64, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds: Vec<u64> = (0..replications).collect();
    parallel_map(&seeds, threads, |&s| f(s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map(&[] as &[i32], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, 2 * i as u64);
        }
    }

    #[test]
    fn single_thread_inline() {
        let items = [1, 2, 3];
        let out = parallel_map(&items, 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..500).collect();
        let out = parallel_map(&items, 4, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 500);
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs; dynamic pulling must still
        // produce correct, ordered output.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 8, |&x| {
            let mut acc = 0u64;
            let spin = if x % 7 == 0 { 200_000 } else { 10 };
            for i in 0..spin {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn replicate_passes_distinct_seeds() {
        let out = replicate(10, 4, |seed| seed * seed);
        assert_eq!(out.len(), 10);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * i) as u64);
        }
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map(&[1, 2], 32, |&x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        let t = default_threads();
        assert!((1..=16).contains(&t));
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn worker_panic_propagates() {
        parallel_map(&[1, 2, 3, 4], 2, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }
}

//! Macrobenchmark: whole-simulator throughput.
//!
//! Simulated-seconds-per-wall-second of the full cluster simulation on
//! the Table-3 base configuration, for the cheapest (WRAN) and the most
//! stateful (Dynamic Least-Load, with its message traffic) policies.
//! This is the number that determines how long the paper-fidelity
//! reproduction takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched::cluster::Simulation;
use hetsched::prelude::*;

fn run_once(policy: PolicySpec, horizon: f64, seed: u64) -> u64 {
    let mut cfg = ClusterConfig::paper_default(&scenarios::table3_speeds());
    cfg.horizon = horizon;
    cfg.warmup = horizon / 4.0;
    let p = policy.build(&cfg).expect("valid policy");
    let sim = Simulation::new(cfg, p, seed).expect("valid config");
    sim.run().jobs_finished
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let horizon = 50_000.0; // ≈ 15k jobs on the base configuration
    for policy in [
        PolicySpec::wran(),
        PolicySpec::orr(),
        PolicySpec::DynamicLeastLoad,
    ] {
        group.bench_with_input(
            BenchmarkId::new("table3_50ksec", policy.label()),
            &policy,
            |b, &policy| b.iter(|| run_once(policy, std::hint::black_box(horizon), 3)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);

//! Macrobenchmark: sweep-pool throughput vs per-point barriers.
//!
//! A figure-style sweep (utilization swept over several points, a few
//! replications each) executed two ways with the same thread budget:
//!
//! * `per_point_barrier` — the pre-pool runner: one `Experiment::run`
//!   per point, each with its own fork/join barrier, so the straggling
//!   high-utilization replication leaves cores idle at every point
//!   boundary;
//! * `sweep_pool` — `Sweep::run`: all `(point, replication)` tasks
//!   through one pool, longest-expected-first.
//!
//! Both produce bit-identical `ExperimentResult`s; the difference is
//! pure wall-clock. Criterion's `Throughput::Elements` reports
//! tasks/sec; the pool's own `SweepStats` (asserted on below) carries
//! simulated events/sec.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hetsched::prelude::*;

const THREADS: usize = 4;
const REPS: u64 = 4;

/// The benchmark sweep: a load sweep with a deliberately heavy tail
/// point, the shape where per-point barriers hurt most.
fn sweep_points() -> Vec<Experiment> {
    [0.3, 0.5, 0.7, 0.9]
        .iter()
        .map(|&rho| {
            let mut cfg = ClusterConfig::paper_default(&[1.0, 1.0, 2.0, 4.0]).with_utilization(rho);
            cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
            cfg.horizon = 30_000.0;
            cfg.warmup = 3_000.0;
            let mut e = Experiment::new(format!("rho={rho}"), cfg, PolicySpec::orr());
            e.replications = REPS;
            e.threads = THREADS;
            e
        })
        .collect()
}

fn bench_sweep(c: &mut Criterion) {
    let points = sweep_points();
    let tasks = points.iter().map(|p| p.replications).sum::<u64>();

    // Sanity: the pool must reproduce the barrier runner bit-for-bit and
    // report throughput counters, otherwise the comparison is void.
    let pooled = Sweep::new(points.clone())
        .with_threads(THREADS)
        .run()
        .expect("valid sweep");
    for (p, r) in points.iter().zip(&pooled.results) {
        assert_eq!(&p.run().expect("valid point"), r);
    }
    assert!(pooled.stats.events_per_sec > 0.0);

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tasks));
    group.bench_function("per_point_barrier", |b| {
        b.iter(|| {
            points
                .iter()
                .map(|p| p.run().expect("valid point"))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("sweep_pool", |b| {
        let sweep = Sweep::new(points.clone()).with_threads(THREADS);
        b.iter(|| sweep.run().expect("valid sweep"))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);

//! Microbenchmark: per-job dispatch decision cost.
//!
//! Algorithm 2 runs once per arriving job on the central scheduler — at
//! the paper's λ it must sustain hundreds of thousands of decisions per
//! second. Compares the round-robin scan (O(n) per decision) with random
//! dispatching (O(log n) CDF search) and Dynamic Least-Load's argmin.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched::cluster::{DispatchCtx, Policy};
use hetsched::desim::Rng64;
use hetsched::policies::{LeastLoadPolicy, RandomDispatch, RoundRobinDispatch};
use hetsched::queueing::closed_form::optimized_allocation_for;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    for &n in &[4usize, 16, 64, 256] {
        let mut rng = Rng64::from_seed(7);
        let speeds: Vec<f64> = (0..n).map(|_| 0.5 + rng.next_f64() * 9.5).collect();
        let fractions = optimized_allocation_for(&speeds, 0.7);
        let qlens = vec![0usize; n];

        let mut rr = RoundRobinDispatch::new(&fractions, "RR");
        group.bench_with_input(BenchmarkId::new("round_robin", n), &(), |b, _| {
            let mut rng = Rng64::from_seed(1);
            b.iter(|| {
                let ctx = DispatchCtx {
                    now: 0.0,
                    job_size: 1.0,
                    queue_lens: &qlens,
                    speeds: &speeds,
                    true_load_index: None,
                };
                rr.choose(std::hint::black_box(&ctx), &mut rng)
            })
        });

        let mut ran = RandomDispatch::new(&fractions, "RAN");
        group.bench_with_input(BenchmarkId::new("random", n), &(), |b, _| {
            let mut rng = Rng64::from_seed(2);
            b.iter(|| {
                let ctx = DispatchCtx {
                    now: 0.0,
                    job_size: 1.0,
                    queue_lens: &qlens,
                    speeds: &speeds,
                    true_load_index: None,
                };
                ran.choose(std::hint::black_box(&ctx), &mut rng)
            })
        });

        let mut dynamic = LeastLoadPolicy::new(&speeds);
        group.bench_with_input(BenchmarkId::new("least_load", n), &(), |b, _| {
            let mut rng = Rng64::from_seed(3);
            b.iter(|| {
                let ctx = DispatchCtx {
                    now: 0.0,
                    job_size: 1.0,
                    queue_lens: &qlens,
                    speeds: &speeds,
                    true_load_index: None,
                };
                dynamic.choose(std::hint::black_box(&ctx), &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);

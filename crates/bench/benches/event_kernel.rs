//! Microbenchmark: the event-kernel overhaul.
//!
//! Races the pre-overhaul `LegacyEventQueue` (payload-in-entry heap with
//! a `HashSet` cancellation probe on every pop) against the current
//! generation-stamped backends under three mixes:
//!
//! * `pop_heavy_no_cancel` — the hold model with zero cancellations, the
//!   common case the rewrite optimizes: the legacy queue still pays a
//!   hash probe per pop here, the new heap pays two integer compares.
//! * `cancel_mix` — cancel-and-replace on every pop (dynamic-timer
//!   churn).
//! * `schedule_drain` — bulk schedule then drain, stressing insertion.
//!
//! The acceptance bar for the overhaul is ≥20% on
//! `pop_heavy_no_cancel/heap` versus `pop_heavy_no_cancel/legacy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched::desim::{CalendarQueue, EventQueue, FutureEventList, Rng64, SimTime};
use hetsched_bench::legacy_queue::LegacyEventQueue;

const HOLD_OPS: usize = 10_000;

fn hold_fel<Q: FutureEventList<u64>>(mut q: Q, size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(5);
    for i in 0..size {
        q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
    }
    acc
}

fn hold_legacy(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(5);
    let mut q: LegacyEventQueue<u64> = LegacyEventQueue::with_capacity(size);
    for i in 0..size {
        q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let (time, payload) = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(payload);
        q.schedule(time.after(rng.next_f64() * 100.0), payload);
    }
    acc
}

fn cancel_fel<Q: FutureEventList<u64>>(mut q: Q, size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(6);
    let mut ids = Vec::with_capacity(size);
    for i in 0..size {
        ids.push(q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64));
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        let id = q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
        let idx = (ev.payload as usize) % ids.len();
        q.cancel(ids[idx]);
        ids[idx] = id;
        ids.push(q.schedule(ev.time.after(rng.next_f64() * 50.0), ev.payload));
        if ids.len() > 2 * size {
            ids.truncate(size);
        }
    }
    acc
}

fn cancel_legacy(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(6);
    let mut q: LegacyEventQueue<u64> = LegacyEventQueue::with_capacity(size);
    let mut ids = Vec::with_capacity(size);
    for i in 0..size {
        ids.push(q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64));
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let (time, payload) = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(payload);
        let id = q.schedule(time.after(rng.next_f64() * 100.0), payload);
        let idx = (payload as usize) % ids.len();
        q.cancel(ids[idx]);
        ids[idx] = id;
        ids.push(q.schedule(time.after(rng.next_f64() * 50.0), payload));
        if ids.len() > 2 * size {
            ids.truncate(size);
        }
    }
    acc
}

fn drain_fel<Q: FutureEventList<u64>>(mut q: Q, n: usize) -> u64 {
    let mut rng = Rng64::from_seed(7);
    for i in 0..n {
        q.schedule(SimTime::new(rng.next_f64() * 1000.0), i as u64);
    }
    let mut acc = 0u64;
    while let Some(ev) = q.pop() {
        acc = acc.wrapping_add(ev.payload);
    }
    acc
}

fn drain_legacy(n: usize) -> u64 {
    let mut rng = Rng64::from_seed(7);
    let mut q: LegacyEventQueue<u64> = LegacyEventQueue::with_capacity(n);
    for i in 0..n {
        q.schedule(SimTime::new(rng.next_f64() * 1000.0), i as u64);
    }
    let mut acc = 0u64;
    while let Some((_, payload)) = q.pop() {
        acc = acc.wrapping_add(payload);
    }
    acc
}

fn bench_event_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_kernel");
    for &size in &[1024usize, 16384] {
        group.bench_with_input(
            BenchmarkId::new("pop_heavy_no_cancel/legacy", size),
            &size,
            |b, &size| b.iter(|| hold_legacy(size, HOLD_OPS)),
        );
        group.bench_with_input(
            BenchmarkId::new("pop_heavy_no_cancel/heap", size),
            &size,
            |b, &size| b.iter(|| hold_fel(EventQueue::with_capacity(size), size, HOLD_OPS)),
        );
        group.bench_with_input(
            BenchmarkId::new("pop_heavy_no_cancel/calendar", size),
            &size,
            |b, &size| b.iter(|| hold_fel(CalendarQueue::with_capacity(size), size, HOLD_OPS)),
        );
        group.bench_with_input(
            BenchmarkId::new("cancel_mix/legacy", size),
            &size,
            |b, &size| b.iter(|| cancel_legacy(size, HOLD_OPS)),
        );
        group.bench_with_input(
            BenchmarkId::new("cancel_mix/heap", size),
            &size,
            |b, &size| b.iter(|| cancel_fel(EventQueue::with_capacity(size), size, HOLD_OPS)),
        );
        group.bench_with_input(
            BenchmarkId::new("cancel_mix/calendar", size),
            &size,
            |b, &size| b.iter(|| cancel_fel(CalendarQueue::with_capacity(size), size, HOLD_OPS)),
        );
        group.bench_with_input(
            BenchmarkId::new("schedule_drain/legacy", size),
            &size,
            |b, &size| b.iter(|| drain_legacy(size)),
        );
        group.bench_with_input(
            BenchmarkId::new("schedule_drain/heap", size),
            &size,
            |b, &size| b.iter(|| drain_fel(EventQueue::with_capacity(size), size)),
        );
        group.bench_with_input(
            BenchmarkId::new("schedule_drain/calendar", size),
            &size,
            |b, &size| b.iter(|| drain_fel(CalendarQueue::with_capacity(size), size)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_kernel);
criterion_main!(benches);

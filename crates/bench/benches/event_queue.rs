//! Microbenchmark: the future-event list.
//!
//! Schedule/pop throughput under the classic hold model (pop one, push
//! one at a random future offset) at several queue sizes, plus the cost
//! of lazy cancellation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched::desim::{CalendarQueue, EventQueue, Rng64, SimTime};

fn hold_model(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(5);
    let mut q: EventQueue<u64> = EventQueue::with_capacity(size);
    for i in 0..size {
        q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
    }
    acc
}

fn hold_with_cancellation(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(6);
    let mut q: EventQueue<u64> = EventQueue::with_capacity(size);
    let mut ids = Vec::with_capacity(size);
    for i in 0..size {
        ids.push(q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64));
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        // Cancel-and-replace: the epoch-free pattern dynamic timers use.
        let id = q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
        let idx = (ev.payload as usize) % ids.len();
        let victim = ids[idx];
        q.cancel(victim);
        ids[idx] = id;
        let replacement = q.schedule(ev.time.after(rng.next_f64() * 50.0), ev.payload);
        ids.push(replacement);
        if ids.len() > 2 * size {
            ids.truncate(size);
        }
    }
    acc
}

fn hold_model_calendar(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(5);
    let mut q: CalendarQueue<u64> = CalendarQueue::new();
    for i in 0..size {
        q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &size in &[64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("heap_hold", size), &size, |b, &size| {
            b.iter(|| hold_model(size, 10_000))
        });
        group.bench_with_input(
            BenchmarkId::new("calendar_hold", size),
            &size,
            |b, &size| b.iter(|| hold_model_calendar(size, 10_000)),
        );
        group.bench_with_input(
            BenchmarkId::new("heap_hold_cancel", size),
            &size,
            |b, &size| b.iter(|| hold_with_cancellation(size, 10_000)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);

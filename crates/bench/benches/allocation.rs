//! Microbenchmark: the optimized-allocation solvers.
//!
//! Algorithm 1 is meant to run online whenever the utilization estimate
//! is refreshed, so its cost matters. Compares the closed form
//! (O(n log n): sort + binary-search cutoff) against the dual-bisection
//! numeric solver across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched::desim::Rng64;
use hetsched::queueing::{closed_form, numeric, HetSystem};

fn random_speeds(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng64::from_seed(seed);
    (0..n).map(|_| 0.5 + rng.next_f64() * 19.5).collect()
}

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    for &n in &[4usize, 16, 64, 256, 1024] {
        let speeds = random_speeds(n, 42);
        let sys = HetSystem::from_utilization(&speeds, 0.7).expect("valid system");
        group.bench_with_input(BenchmarkId::new("closed_form", n), &sys, |b, sys| {
            b.iter(|| closed_form::optimized_allocation(std::hint::black_box(sys)))
        });
        group.bench_with_input(BenchmarkId::new("numeric_bisection", n), &sys, |b, sys| {
            b.iter(|| numeric::optimized_allocation_numeric(std::hint::black_box(sys), 1e-10))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);

//! Microbenchmark: processor-sharing server implementations.
//!
//! The O(log n) virtual-time PS against the O(n) reference, driving each
//! with the same synthetic arrival schedule at several concurrency
//! levels. Justifies shipping the BTreeSet implementation as the
//! default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetsched::cluster::{Discipline, DisciplineSpec, JobRecord, JobSlab};
use hetsched::desim::Rng64;

/// Drives one busy period with `jobs` overlapping jobs through `spec`.
fn run_busy_period(spec: DisciplineSpec, jobs: usize, seed: u64) -> usize {
    let mut rng = Rng64::from_seed(seed);
    let mut slab = JobSlab::with_capacity(jobs);
    let mut disc = spec.build(2.0);
    let mut done = Vec::with_capacity(jobs);
    let mut t = 0.0;
    for _ in 0..jobs {
        // Dense arrivals keep many jobs concurrently in service.
        t += rng.exponential(10.0);
        disc.advance(t, &mut done);
        let id = slab.insert(JobRecord {
            size: 1.0,
            arrival: t,
            server: 0,
            counted: true,
            degraded: false,
            class: 0,
        });
        disc.arrive(t, id, 0.5 + rng.next_f64());
    }
    while let Some(w) = disc.next_wakeup() {
        disc.advance(w, &mut done);
    }
    for &id in &done {
        slab.remove(id);
    }
    done.len()
}

fn bench_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("ps_server");
    for &jobs in &[64usize, 512, 4096] {
        group.bench_with_input(BenchmarkId::new("virtual_time", jobs), &jobs, |b, &jobs| {
            b.iter(|| run_busy_period(DisciplineSpec::ProcessorSharing, jobs, 11))
        });
        group.bench_with_input(BenchmarkId::new("naive", jobs), &jobs, |b, &jobs| {
            b.iter(|| run_busy_period(DisciplineSpec::PsReference, jobs, 11))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_server);
criterion_main!(benches);

//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--full` — the paper's fidelity: 4·10⁶-second horizon, 10
//!   replications per data point (minutes of wall time for the sweeps);
//! * `--quick` — smoke-test fidelity: 2% horizon, 2 replications;
//! * `--scale X` / `--reps N` — custom fidelity;
//! * `--threads N` — worker threads for the sweep pool (0 = auto; the
//!   `HETSCHED_THREADS` environment variable sets the default);
//! * `--sim-threads N` — run every point through the conservative
//!   parallel engine with up to `N` worker threads per run (0 = the
//!   classic sequential engine; results are bit-identical either way);
//! * `--json PATH` — archive the structured results as pretty JSON;
//! * `--bench-json PATH` — archive the sweep pool's throughput counters
//!   (events/sec, per-point busy time) as machine-readable JSON;
//! * `--event-list heap|calendar` — override the simulator's future-event
//!   list backend (results are bit-identical either way; this knob exists
//!   for perf comparisons);
//! * `--obs PATH` — enable the run-level observability probes (default
//!   120 s windows) and archive one representative run's time series as
//!   JSONL. Probes never perturb results.
//!
//! The default sits between `--quick` and `--full` (25% horizon, 5
//! replications): good enough for every ranking in the paper to be
//! visible, fast enough to run all binaries in a few minutes on a laptop.
//!
//! Sweep binaries run their whole grid through one [`Sweep`] pool (no
//! per-point fork/join barrier) via [`Mode::run_sweep`]; single data
//! points still use [`Mode::run`].

use std::fmt::Write as _;
use std::path::PathBuf;

use hetsched::experiment::{Experiment, ExperimentResult};
use hetsched::prelude::*;
use hetsched::PointStats;
use serde::Serialize;

pub mod legacy_queue;

/// Fidelity and output options parsed from the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Mode {
    /// Horizon/warmup scale relative to the paper's 4·10⁶ s.
    pub scale: f64,
    /// Replications per data point (the paper uses 10).
    pub reps: u64,
    /// Worker threads for the sweep pool (0 = auto).
    pub threads: usize,
    /// Parallel-engine worker threads per run (0 = classic sequential
    /// engine).
    pub sim_threads: usize,
    /// Optional JSON archive path.
    pub json: Option<PathBuf>,
    /// Optional sweep-throughput JSON path (`BENCH_sweep.json` style).
    pub bench_json: Option<PathBuf>,
    /// Future-event list backend override (`None` = whatever the preset
    /// config says, i.e. the heap default).
    pub event_list: Option<EventListBackend>,
    /// If set, enable the observability probes on every run and archive
    /// one representative run's time series as JSONL at this path.
    pub obs: Option<PathBuf>,
}

impl Default for Mode {
    fn default() -> Self {
        Mode {
            scale: 0.25,
            reps: 5,
            threads: 0,
            sim_threads: 0,
            json: None,
            bench_json: None,
            event_list: None,
            obs: None,
        }
    }
}

impl Mode {
    /// Parses flags from an iterator of arguments (usually
    /// `std::env::args().skip(1)`), with `env_threads` supplying the
    /// `HETSCHED_THREADS` default that `--threads` overrides.
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or malformed values —
    /// appropriate for a CLI entry point.
    pub fn parse_with_env(
        args: impl IntoIterator<Item = String>,
        env_threads: Option<&str>,
    ) -> Mode {
        let mut mode = Mode::default();
        if let Some(v) = env_threads {
            mode.threads = v
                .trim()
                .parse()
                .expect("HETSCHED_THREADS must be a thread count (0 = auto)");
        }
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => {
                    mode.scale = 1.0;
                    mode.reps = 10;
                }
                "--quick" => {
                    mode.scale = 0.02;
                    mode.reps = 2;
                }
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    mode.scale = v.parse().expect("--scale needs a number");
                }
                "--reps" => {
                    let v = it.next().expect("--reps needs a value");
                    mode.reps = v.parse().expect("--reps needs an integer");
                }
                "--threads" => {
                    let v = it.next().expect("--threads needs a value");
                    mode.threads = v.parse().expect("--threads needs an integer (0 = auto)");
                }
                "--sim-threads" => {
                    let v = it.next().expect("--sim-threads needs a value");
                    mode.sim_threads = v
                        .parse()
                        .expect("--sim-threads needs an integer (0 = classic engine)");
                }
                "--json" => {
                    let v = it.next().expect("--json needs a path");
                    mode.json = Some(PathBuf::from(v));
                }
                "--bench-json" => {
                    let v = it.next().expect("--bench-json needs a path");
                    mode.bench_json = Some(PathBuf::from(v));
                }
                "--event-list" => {
                    let v = it.next().expect("--event-list needs 'heap' or 'calendar'");
                    mode.event_list = Some(
                        v.parse::<EventListBackend>()
                            .unwrap_or_else(|e| panic!("{e}")),
                    );
                }
                "--obs" => {
                    let v = it.next().expect("--obs needs a path");
                    mode.obs = Some(PathBuf::from(v));
                }
                other => panic!(
                    "unknown flag {other}; use --full | --quick | --scale X | --reps N | \
                     --threads N | --sim-threads N | --json PATH | --bench-json PATH | \
                     --event-list heap|calendar | --obs PATH"
                ),
            }
        }
        assert!(
            mode.scale > 0.0 && mode.scale <= 1.0,
            "scale must be in (0,1]"
        );
        assert!(mode.reps >= 1, "need at least one replication");
        mode
    }

    /// Parses flags without consulting the environment.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Mode {
        Mode::parse_with_env(args, None)
    }

    /// Parses the process's own arguments (and `HETSCHED_THREADS`).
    pub fn from_env() -> Mode {
        let env_threads = std::env::var("HETSCHED_THREADS").ok();
        Mode::parse_with_env(std::env::args().skip(1), env_threads.as_deref())
    }

    /// Builds the experiment for one data point at this fidelity.
    fn experiment(&self, name: &str, mut cfg: ClusterConfig, policy: PolicySpec) -> Experiment {
        if let Some(backend) = self.event_list {
            cfg.event_list = backend;
        }
        if self.obs.is_some() && cfg.obs.is_none() {
            cfg.obs = Some(ObsSpec::default());
        }
        let mut exp = Experiment::new(name, cfg, policy).quick(self.scale, self.reps);
        exp.threads = self.threads;
        exp.sim_threads = self.sim_threads;
        exp
    }

    /// Runs one data point: `policy` on `cfg` at this fidelity.
    ///
    /// # Panics
    /// Panics on invalid configurations — the presets are trusted.
    pub fn run(&self, name: &str, cfg: ClusterConfig, policy: PolicySpec) -> ExperimentResult {
        let exp = self.experiment(name, cfg, policy);
        exp.run()
            .unwrap_or_else(|e| panic!("experiment {name}: {e}"))
    }

    /// Runs a whole grid of data points through **one** sweep pool — no
    /// per-point barrier; results come back in input order,
    /// bit-identical to running each point via [`Mode::run`].
    ///
    /// # Panics
    /// Panics on invalid configurations — the presets are trusted.
    pub fn run_sweep(
        &self,
        points: Vec<(String, ClusterConfig, PolicySpec)>,
    ) -> (Vec<ExperimentResult>, SweepStats) {
        let experiments = points
            .into_iter()
            .map(|(name, cfg, policy)| self.experiment(&name, cfg, policy))
            .collect();
        let sweep = Sweep::new(experiments).with_threads(self.threads);
        let SweepOutcome { results, stats } = sweep.run().unwrap_or_else(|e| panic!("sweep: {e}"));
        eprintln!(
            "sweep pool: {} tasks over {} points on {} threads — {:.1}s wall, {:.0} events/s",
            stats.tasks, stats.points, stats.threads, stats.wall_s, stats.events_per_sec
        );
        (results, stats)
    }

    /// Archives results if `--json` was given.
    pub fn archive<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            hetsched::report::save_json(path, value).expect("archiving results");
        }
    }

    /// Archives one representative run's observability time series as
    /// JSONL if `--obs` was given (the probes were enabled on every run
    /// the iterator covers).
    ///
    /// # Panics
    /// Panics when `--obs` was given but no run carries a report, or on
    /// IO/serialization failures — appropriate for a CLI entry point.
    pub fn archive_obs<'a>(&self, runs: impl IntoIterator<Item = &'a RunStats>) {
        if let Some(path) = &self.obs {
            let report = runs
                .into_iter()
                .find_map(|r| r.obs.as_ref())
                .expect("--obs runs carry an observability report");
            let jsonl = report.to_jsonl().expect("obs series serializes");
            std::fs::write(path, jsonl).expect("archiving obs series");
            eprintln!(
                "obs time series ({} windows) -> {}",
                report.len(),
                path.display()
            );
        }
    }

    /// Archives the sweep pool's throughput counters if `--bench-json`
    /// was given: one [`BenchReport`] merging every sweep the binary ran.
    pub fn archive_bench(&self, bin: &str, sweeps: &[SweepStats]) {
        if let Some(path) = &self.bench_json {
            let report = BenchReport::new(bin, self, sweeps);
            std::fs::write(path, report.to_json_string()).expect("archiving sweep bench");
            eprintln!("sweep bench counters -> {}", path.display());
        }
    }
}

/// Formats an `f64` for a JSON document: finite values verbatim,
/// non-finite ones (which JSON cannot express) as `0`.
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn point_stats_json(p: &PointStats, pad: &str) -> String {
    format!(
        "{pad}{{ \"name\": {}, \"policy\": {}, \"utilization\": {}, \
         \"replications\": {}, \"events\": {}, \"busy_s\": {} }}",
        json_str(&p.name),
        json_str(&p.policy),
        json_num(p.utilization),
        p.replications,
        p.events,
        json_num(p.busy_s),
    )
}

fn sweep_stats_json(s: &SweepStats, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let points = if s.point_stats.is_empty() {
        "[]".to_string()
    } else {
        let rows: Vec<String> = s
            .point_stats
            .iter()
            .map(|p| point_stats_json(p, &" ".repeat(indent + 4)))
            .collect();
        format!("[\n{}\n{inner}]", rows.join(",\n"))
    };
    format!(
        "{{\n{inner}\"threads\": {},\n{inner}\"points\": {},\n{inner}\"tasks\": {},\n\
         {inner}\"wall_s\": {},\n{inner}\"total_events\": {},\n\
         {inner}\"events_per_sec\": {},\n{inner}\"point_stats\": {points}\n{pad}}}",
        s.threads,
        s.points,
        s.tasks,
        json_num(s.wall_s),
        s.total_events,
        json_num(s.events_per_sec),
    )
}

/// Machine-readable perf-trajectory record (`BENCH_sweep.json`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchReport {
    /// The binary that produced the record.
    pub bin: String,
    /// Horizon scale the sweeps ran at.
    pub scale: f64,
    /// Replications per data point.
    pub reps: u64,
    /// Pool thread knob (0 = auto).
    pub threads_requested: usize,
    /// The future-event list backend the runs used.
    pub event_list: String,
    /// Totals across every sweep the binary ran.
    pub totals: SweepStats,
    /// One entry per sweep pool execution.
    pub sweeps: Vec<SweepStats>,
}

impl BenchReport {
    /// Merges `sweeps` into one trajectory record for `bin`.
    pub fn new(bin: &str, mode: &Mode, sweeps: &[SweepStats]) -> Self {
        BenchReport {
            bin: bin.to_string(),
            scale: mode.scale,
            reps: mode.reps,
            threads_requested: mode.threads,
            event_list: mode.event_list.unwrap_or_default().label().to_string(),
            totals: SweepStats::merged(sweeps),
            sweeps: sweeps.to_vec(),
        }
    }

    /// Renders the report as pretty JSON without going through serde —
    /// the perf-trajectory artifacts must be writable even when the
    /// workspace is built against the offline serde stubs.
    pub fn to_json_string(&self) -> String {
        let sweeps = if self.sweeps.is_empty() {
            "[]".to_string()
        } else {
            let rows: Vec<String> = self
                .sweeps
                .iter()
                .map(|s| format!("    {}", sweep_stats_json(s, 4)))
                .collect();
            format!("[\n{}\n  ]", rows.join(",\n"))
        };
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bin\": {},", json_str(&self.bin));
        let _ = writeln!(out, "  \"scale\": {},", json_num(self.scale));
        let _ = writeln!(out, "  \"reps\": {},", self.reps);
        let _ = writeln!(out, "  \"threads_requested\": {},", self.threads_requested);
        let _ = writeln!(out, "  \"event_list\": {},", json_str(&self.event_list));
        let _ = writeln!(out, "  \"totals\": {},", sweep_stats_json(&self.totals, 2));
        let _ = writeln!(out, "  \"sweeps\": {sweeps}");
        out.push_str("}\n");
        out
    }
}

/// Formats a CI summary compactly for table cells.
pub fn ci(s: &hetsched::metrics::CiSummary) -> String {
    format!("{:.3}±{:.3}", s.mean, s.half_width)
}

/// Formats a plain number for table cells.
pub fn num(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Mode {
        Mode::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_mode() {
        let m = parse(&[]);
        assert_eq!(m, Mode::default());
    }

    #[test]
    fn full_and_quick() {
        assert_eq!(parse(&["--full"]).scale, 1.0);
        assert_eq!(parse(&["--full"]).reps, 10);
        assert_eq!(parse(&["--quick"]).reps, 2);
    }

    #[test]
    fn custom_scale_reps_json() {
        let m = parse(&["--scale", "0.5", "--reps", "3", "--json", "out.json"]);
        assert_eq!(m.scale, 0.5);
        assert_eq!(m.reps, 3);
        assert_eq!(m.json, Some(PathBuf::from("out.json")));
    }

    #[test]
    fn threads_flag_and_env() {
        assert_eq!(parse(&["--threads", "7"]).threads, 7);
        // The environment supplies the default …
        let m = Mode::parse_with_env(std::iter::empty(), Some("4"));
        assert_eq!(m.threads, 4);
        // … and the flag overrides it.
        let m = Mode::parse_with_env(["--threads".to_string(), "2".to_string()], Some("4"));
        assert_eq!(m.threads, 2);
    }

    #[test]
    fn sim_threads_flag() {
        assert_eq!(parse(&[]).sim_threads, 0);
        assert_eq!(parse(&["--sim-threads", "4"]).sim_threads, 4);
    }

    #[test]
    fn sim_threads_is_bit_identical() {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
        let classic = parse(&["--quick"]).run("p", cfg.clone(), PolicySpec::orr());
        let pdes = parse(&["--quick", "--sim-threads", "2"]).run("p", cfg, PolicySpec::orr());
        assert_eq!(classic, pdes);
    }

    #[test]
    fn bench_json_flag() {
        let m = parse(&["--bench-json", "BENCH_sweep.json"]);
        assert_eq!(m.bench_json, Some(PathBuf::from("BENCH_sweep.json")));
    }

    #[test]
    #[should_panic(expected = "HETSCHED_THREADS")]
    fn rejects_bad_env_threads() {
        Mode::parse_with_env(std::iter::empty(), Some("lots"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn rejects_bad_scale() {
        parse(&["--scale", "2.0"]);
    }

    #[test]
    fn run_executes_a_point() {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
        let m = parse(&["--quick"]);
        let r = m.run("point", cfg, PolicySpec::wrr());
        assert_eq!(r.runs.len(), 2);
    }

    #[test]
    fn run_sweep_matches_per_point_run() {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
        let m = parse(&["--quick", "--threads", "4"]);
        let points = vec![
            ("a".to_string(), cfg.clone(), PolicySpec::wrr()),
            ("b".to_string(), cfg.clone(), PolicySpec::orr()),
        ];
        let (results, stats) = m.run_sweep(points);
        assert_eq!(results.len(), 2);
        assert_eq!(stats.tasks, 4);
        assert_eq!(results[0], m.run("a", cfg.clone(), PolicySpec::wrr()));
        assert_eq!(results[1], m.run("b", cfg, PolicySpec::orr()));
    }

    #[test]
    fn bench_report_merges_sweeps() {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
        let m = parse(&["--quick"]);
        let (_, s1) = m.run_sweep(vec![("a".into(), cfg.clone(), PolicySpec::wrr())]);
        let (_, s2) = m.run_sweep(vec![("b".into(), cfg, PolicySpec::orr())]);
        let report = BenchReport::new("test", &m, &[s1.clone(), s2.clone()]);
        assert_eq!(report.totals.tasks, s1.tasks + s2.tasks);
        assert_eq!(report.sweeps.len(), 2);
        assert_eq!(report.event_list, "heap");
        let json = report.to_json_string();
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"event_list\": \"heap\""));
    }

    #[test]
    fn event_list_flag() {
        assert_eq!(parse(&[]).event_list, None);
        assert_eq!(
            parse(&["--event-list", "calendar"]).event_list,
            Some(EventListBackend::Calendar)
        );
        assert_eq!(
            parse(&["--event-list", "heap"]).event_list,
            Some(EventListBackend::Heap)
        );
    }

    #[test]
    #[should_panic(expected = "unknown event-list backend")]
    fn rejects_bad_event_list() {
        parse(&["--event-list", "splay"]);
    }

    #[test]
    fn obs_flag() {
        assert_eq!(parse(&[]).obs, None);
        assert_eq!(
            parse(&["--obs", "series.jsonl"]).obs,
            Some(PathBuf::from("series.jsonl"))
        );
    }

    #[test]
    fn obs_probes_do_not_perturb_bench_runs() {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
        let plain = parse(&["--quick"]);
        let mut with_obs = plain.clone();
        with_obs.obs = Some(PathBuf::from("unused.jsonl"));
        let baseline = plain.run("p", cfg.clone(), PolicySpec::orr());
        let mut observed = with_obs.run("p", cfg, PolicySpec::orr());
        for run in &mut observed.runs {
            let report = run.obs.take().expect("--obs enables probes on every run");
            assert!(!report.is_empty());
        }
        assert_eq!(observed, baseline);
    }

    #[test]
    fn json_helpers_escape_and_guard() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "0");
        assert_eq!(json_num(f64::INFINITY), "0");
    }

    #[test]
    fn event_list_override_is_bit_identical() {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
        let heap = parse(&["--quick"]).run("p", cfg.clone(), PolicySpec::orr());
        let cal = parse(&["--quick", "--event-list", "calendar"]).run("p", cfg, PolicySpec::orr());
        assert_eq!(heap, cal);
    }
}

//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--full` — the paper's fidelity: 4·10⁶-second horizon, 10
//!   replications per data point (minutes of wall time for the sweeps);
//! * `--quick` — smoke-test fidelity: 2% horizon, 2 replications;
//! * `--scale X` / `--reps N` — custom fidelity;
//! * `--json PATH` — archive the structured results as pretty JSON.
//!
//! The default sits between `--quick` and `--full` (25% horizon, 5
//! replications): good enough for every ranking in the paper to be
//! visible, fast enough to run all binaries in a few minutes on a laptop.

use std::path::PathBuf;

use hetsched::experiment::{Experiment, ExperimentResult};
use hetsched::prelude::*;

/// Fidelity and output options parsed from the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Mode {
    /// Horizon/warmup scale relative to the paper's 4·10⁶ s.
    pub scale: f64,
    /// Replications per data point (the paper uses 10).
    pub reps: u64,
    /// Optional JSON archive path.
    pub json: Option<PathBuf>,
}

impl Default for Mode {
    fn default() -> Self {
        Mode {
            scale: 0.25,
            reps: 5,
            json: None,
        }
    }
}

impl Mode {
    /// Parses flags from an iterator of arguments (usually
    /// `std::env::args().skip(1)`).
    ///
    /// # Panics
    /// Panics with a usage message on unknown flags or malformed values —
    /// appropriate for a CLI entry point.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Mode {
        let mut mode = Mode::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => {
                    mode.scale = 1.0;
                    mode.reps = 10;
                }
                "--quick" => {
                    mode.scale = 0.02;
                    mode.reps = 2;
                }
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    mode.scale = v.parse().expect("--scale needs a number");
                }
                "--reps" => {
                    let v = it.next().expect("--reps needs a value");
                    mode.reps = v.parse().expect("--reps needs an integer");
                }
                "--json" => {
                    let v = it.next().expect("--json needs a path");
                    mode.json = Some(PathBuf::from(v));
                }
                other => panic!(
                    "unknown flag {other}; use --full | --quick | --scale X | --reps N | --json PATH"
                ),
            }
        }
        assert!(
            mode.scale > 0.0 && mode.scale <= 1.0,
            "scale must be in (0,1]"
        );
        assert!(mode.reps >= 1, "need at least one replication");
        mode
    }

    /// Parses the process's own arguments.
    pub fn from_env() -> Mode {
        Mode::parse(std::env::args().skip(1))
    }

    /// Runs one data point: `policy` on `cfg` at this fidelity.
    ///
    /// # Panics
    /// Panics on invalid configurations — the presets are trusted.
    pub fn run(&self, name: &str, cfg: ClusterConfig, policy: PolicySpec) -> ExperimentResult {
        let exp = Experiment::new(name, cfg, policy).quick(self.scale, self.reps);
        exp.run()
            .unwrap_or_else(|e| panic!("experiment {name}: {e}"))
    }

    /// Archives results if `--json` was given.
    pub fn archive<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            hetsched::report::save_json(path, value).expect("archiving results");
        }
    }
}

/// Formats a CI summary compactly for table cells.
pub fn ci(s: &hetsched::metrics::CiSummary) -> String {
    format!("{:.3}±{:.3}", s.mean, s.half_width)
}

/// Formats a plain number for table cells.
pub fn num(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Mode {
        Mode::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn default_mode() {
        let m = parse(&[]);
        assert_eq!(m, Mode::default());
    }

    #[test]
    fn full_and_quick() {
        assert_eq!(parse(&["--full"]).scale, 1.0);
        assert_eq!(parse(&["--full"]).reps, 10);
        assert_eq!(parse(&["--quick"]).reps, 2);
    }

    #[test]
    fn custom_scale_reps_json() {
        let m = parse(&["--scale", "0.5", "--reps", "3", "--json", "out.json"]);
        assert_eq!(m.scale, 0.5);
        assert_eq!(m.reps, 3);
        assert_eq!(m.json, Some(PathBuf::from("out.json")));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        parse(&["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn rejects_bad_scale() {
        parse(&["--scale", "2.0"]);
    }

    #[test]
    fn run_executes_a_point() {
        let mut cfg = ClusterConfig::paper_default(&[1.0, 2.0]);
        cfg.job_sizes = DistSpec::Exponential { mean: 10.0 };
        let m = parse(&["--quick"]);
        let r = m.run("point", cfg, PolicySpec::wrr());
        assert_eq!(r.runs.len(), 2);
    }
}

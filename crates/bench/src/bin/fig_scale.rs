//! Scale-axis figure: dispatch-decision latency and whole-sim
//! throughput as the fleet grows from 10 to 10,000 servers.
//!
//! The paper's experiments stop at 5–10 machines, where an O(N) scan
//! per dispatch decision is free. This harness measures what happens on
//! four decades of fleet size and what the scale-axis machinery buys:
//!
//! * **decision microbench** — nanoseconds per `choose()` call for the
//!   scan DYNAMIC baseline vs the tournament-tree DYNAMIC-IDX, plus the
//!   O(d)/O(1) POD(2)-HET and JIQ policies, at every N. At N = 10,000
//!   the indexed policy must be ≥ 10× faster than the scan (asserted at
//!   bench time and recorded as `speedup_at_10000`);
//! * **whole-sim sweep** — ORR, DYNAMIC, DYNAMIC-IDX, POD(2),
//!   POD(2)-HET, and JIQ across N ∈ {10, 100, 1000, 10000} on a skewed
//!   four-tier fleet (50% at speed 1, 30% at 2, 10% at 5, 10% at 10),
//!   with the horizon scaled inversely with N so every point processes
//!   a comparable event count. Per-point events/sec comes from the
//!   sweep pool's counters;
//! * the **bit-identity guarantee**, checked at bench time: DYNAMIC-IDX
//!   reproduces scan DYNAMIC and JSQ-IDX reproduces JSQ-FULL
//!   decision-for-decision (identical `RunStats` up to the policy
//!   name) at every N;
//! * a **robustness pass** — POD(2)-HET and JIQ at every N under
//!   crash/repair faults, a 4-way sharded dispatch tier, and the
//!   conservative parallel engine, proving the scalable policies
//!   compose with the whole failure/parallelism stack.
//!
//! Results are archived into `BENCH_scale.json` (override with
//! `--bench-json PATH`).

use std::time::Instant;

use hetsched::cluster::{DispatchCtx, FleetGroup, Policy};
use hetsched::desim::Rng64;
use hetsched::prelude::*;
use hetsched_bench::{ci, json_num, json_str, Mode};

/// Fleet sizes swept — four decades.
const FLEET_SIZES: [usize; 4] = [10, 100, 1000, 10_000];

/// The speed-1 : speed-2 : speed-5 : speed-10 population mix (50% /
/// 30% / 10% / 10%), echoing the paper's skew at every scale.
fn fleet_groups(n: usize) -> Vec<FleetGroup> {
    let slow = n / 2;
    let mid = 3 * n / 10;
    let fast = n / 10;
    let fastest = n - slow - mid - fast;
    vec![
        FleetGroup {
            count: slow,
            speed: 1.0,
        },
        FleetGroup {
            count: mid,
            speed: 2.0,
        },
        FleetGroup {
            count: fast,
            speed: 5.0,
        },
        FleetGroup {
            count: fastest,
            speed: 10.0,
        },
    ]
}

/// The config for one fleet size: paper defaults over the four-tier
/// mix, horizon scaled inversely with N (total speed — and so the
/// arrival rate — grows linearly with N, so this keeps the event count
/// per run roughly constant across the sweep).
fn scale_config(n: usize) -> ClusterConfig {
    let factor = (10.0 / n as f64).min(1.0);
    ClusterConfig::paper_default_fleet(&fleet_groups(n)).scaled(factor)
}

/// The whole-sim roster crossed with each fleet size.
fn sweep_policies() -> [PolicySpec; 6] {
    [
        PolicySpec::orr(),
        PolicySpec::DynamicLeastLoad,
        PolicySpec::IndexedDynamic,
        PolicySpec::PowerOfD {
            d: 2,
            het_aware: false,
        },
        PolicySpec::PowerOfD {
            d: 2,
            het_aware: true,
        },
        PolicySpec::Jiq,
    ]
}

/// One decision-microbench row.
struct DecisionRow {
    n: usize,
    policy: String,
    ns_per_decision: f64,
}

/// Times `choose()` in a tight loop with a realistic update mix: one
/// believed-load update per eight decisions, rotating across the fleet.
/// The checksum keeps the optimizer honest.
fn ns_per_decision(spec: PolicySpec, cfg: &ClusterConfig, iters: u64) -> f64 {
    let mut policy = spec.build(cfg).expect("microbench policy builds");
    let n = cfg.speeds.len();
    let queue_lens = vec![0usize; n];
    let mut rng = Rng64::from_seed(0xBEEF);
    let mut checksum = 0usize;
    // Warm the caches and any lazy per-policy state before timing.
    for i in 0..iters / 10 + 1 {
        let ctx = DispatchCtx {
            now: i as f64,
            job_size: 1.0,
            queue_lens: &queue_lens,
            speeds: &cfg.speeds,
            true_load_index: None,
        };
        checksum ^= policy.choose(&ctx, &mut rng);
    }
    let start = Instant::now();
    for i in 0..iters {
        if i % 8 == 0 {
            policy.on_load_update((i as usize * 31) % n, (i % 5) as usize, i as f64);
        }
        let ctx = DispatchCtx {
            now: i as f64,
            job_size: 1.0,
            queue_lens: &queue_lens,
            speeds: &cfg.speeds,
            true_load_index: None,
        };
        checksum ^= policy.choose(&ctx, &mut rng);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(checksum);
    elapsed.as_nanos() as f64 / iters as f64
}

/// The bit-identity guarantee: the indexed policy reproduces its scan
/// twin's full `RunStats` (up to the policy name) on replication 0 at
/// every fleet size.
fn assert_bit_identity(mode: &Mode) -> bool {
    for &n in &FLEET_SIZES {
        for (scan, indexed) in [
            (PolicySpec::DynamicLeastLoad, PolicySpec::IndexedDynamic),
            (PolicySpec::JsqFull, PolicySpec::IndexedJsq),
        ] {
            let exp_scan = Experiment::new("fig_scale_ident", scale_config(n), scan)
                .quick(mode.scale, mode.reps);
            let exp_idx = Experiment::new("fig_scale_ident", scale_config(n), indexed)
                .quick(mode.scale, mode.reps);
            let mut a = exp_scan.run_single(0).expect("scan run");
            let mut b = exp_idx.run_single(0).expect("indexed run");
            let (name_a, name_b) = (a.policy.clone(), b.policy.clone());
            a.policy = String::new();
            b.policy = String::new();
            assert_eq!(
                a, b,
                "{name_b} diverged from {name_a} at N={n} — the indexed \
                 policy must be decision-for-decision identical to the scan"
            );
        }
        println!("  N={n}: DYNAMIC-IDX == DYNAMIC, JSQ-IDX == JSQ-FULL");
    }
    true
}

/// One robustness row: a scalable policy under faults + sharded
/// dispatch + the parallel engine.
struct RobustRow {
    n: usize,
    policy: String,
    mean_response_ratio: f64,
    jobs_counted: u64,
    crashes: bool,
}

/// POD(2)-HET and JIQ at every N under crash/repair faults, a 4-way
/// sharded dispatch tier, and the conservative parallel engine.
fn robustness_pass(mode: &Mode) -> Vec<RobustRow> {
    let mut rows = Vec::new();
    for &n in &FLEET_SIZES {
        let mut cfg = scale_config(n);
        // Fault timescales in final sim-seconds: a handful of
        // crash/repair cycles per machine inside the measured span.
        let horizon = cfg.horizon * mode.scale;
        cfg.faults = Some(FaultSpec::exponential(horizon / 4.0, horizon / 40.0));
        cfg.dispatch.dispatchers = 4;
        for spec in [
            PolicySpec::PowerOfD {
                d: 2,
                het_aware: true,
            },
            PolicySpec::Jiq,
        ] {
            let mut exp =
                Experiment::new("fig_scale_robust", cfg.clone(), spec).quick(mode.scale, mode.reps);
            exp.sim_threads = 2;
            let stats = exp.run_single(0).expect("robustness run");
            assert!(
                stats.jobs_counted > 0,
                "{} completed no jobs at N={n} under faults + shards + parallel engine",
                stats.policy
            );
            rows.push(RobustRow {
                n,
                policy: stats.policy.clone(),
                mean_response_ratio: stats.mean_response_ratio,
                jobs_counted: stats.jobs_counted,
                crashes: stats.crashes > 0,
            });
        }
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn report_json(
    mode: &Mode,
    decision_rows: &[DecisionRow],
    sweep_rows: &[(usize, ExperimentResult, f64)],
    robust_rows: &[RobustRow],
    bit_identical: bool,
    speedup_at_10000: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bin\": {},\n", json_str("fig_scale")));
    out.push_str(&format!("  \"scale\": {},\n", json_num(mode.scale)));
    out.push_str(&format!("  \"reps\": {},\n", mode.reps));
    out.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    out.push_str(&format!(
        "  \"speedup_at_10000\": {},\n",
        json_num(speedup_at_10000)
    ));
    let decisions: Vec<String> = decision_rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"n\": {}, \"policy\": {}, \"ns_per_decision\": {} }}",
                r.n,
                json_str(&r.policy),
                json_num(r.ns_per_decision)
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"decision_bench\": [\n{}\n  ],\n",
        decisions.join(",\n")
    ));
    let sweep: Vec<String> = sweep_rows
        .iter()
        .map(|(n, result, events_per_sec)| {
            format!(
                "    {{ \"n\": {}, \"policy\": {}, \"mean_response_ratio\": {}, \
                 \"ci_half_width\": {}, \"events_per_sec\": {} }}",
                n,
                json_str(&result.policy),
                json_num(result.mean_response_ratio.mean),
                json_num(result.mean_response_ratio.half_width),
                json_num(*events_per_sec)
            )
        })
        .collect();
    out.push_str(&format!("  \"sweep\": [\n{}\n  ],\n", sweep.join(",\n")));
    let robust: Vec<String> = robust_rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"n\": {}, \"policy\": {}, \"mean_response_ratio\": {}, \
                 \"jobs_counted\": {}, \"saw_crashes\": {} }}",
                r.n,
                json_str(&r.policy),
                json_num(r.mean_response_ratio),
                r.jobs_counted,
                r.crashes
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"robustness\": [\n{}\n  ]\n",
        robust.join(",\n")
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mode = Mode::from_env();

    println!("\nScale axis: indexed-vs-scan bit-identity check");
    let bit_identical = assert_bit_identity(&mode);
    println!("indexed policies bit-identical to their scan twins: {bit_identical}");

    println!("\nDispatch-decision microbench (ns per choose())");
    let micro_specs = [
        PolicySpec::DynamicLeastLoad,
        PolicySpec::IndexedDynamic,
        PolicySpec::PowerOfD {
            d: 2,
            het_aware: true,
        },
        PolicySpec::Jiq,
    ];
    let mut decision_rows = Vec::new();
    let mut t = Table::new(["N", "policy", "ns/decision"]);
    for &n in &FLEET_SIZES {
        let cfg = scale_config(n);
        // The scan's cost grows with N; shrink the iteration count so
        // the N = 10,000 row still finishes in under a second.
        let iters = (2_000_000 / n as u64).max(20_000);
        for spec in micro_specs {
            let ns = ns_per_decision(spec, &cfg, iters);
            t.row([format!("{n}"), spec.label(), format!("{ns:.1}")]);
            decision_rows.push(DecisionRow {
                n,
                policy: spec.label(),
                ns_per_decision: ns,
            });
        }
    }
    t.print();

    let ns_of = |n: usize, policy: &str| -> f64 {
        decision_rows
            .iter()
            .find(|r| r.n == n && r.policy == policy)
            .map(|r| r.ns_per_decision)
            .expect("row present")
    };
    let speedup_at_10000 = ns_of(10_000, "DYNAMIC") / ns_of(10_000, "DYNAMIC-IDX");
    println!("DYNAMIC-IDX speedup over scan DYNAMIC at N=10000: {speedup_at_10000:.1}x");
    assert!(
        speedup_at_10000 >= 10.0,
        "indexed DYNAMIC must be >=10x faster per decision than the scan \
         at N=10000, measured {speedup_at_10000:.1}x"
    );

    println!("\nWhole-sim sweep: response ratio and events/sec vs N");
    let points: Vec<(String, ClusterConfig, PolicySpec)> = FLEET_SIZES
        .iter()
        .flat_map(|&n| {
            sweep_policies()
                .into_iter()
                .map(move |p| (format!("fig_scale N={n}"), scale_config(n), p))
        })
        .collect();
    let grid: Vec<usize> = FLEET_SIZES
        .iter()
        .flat_map(|&n| std::iter::repeat_n(n, sweep_policies().len()))
        .collect();
    let (results, stats) = mode.run_sweep(points);
    let mut sweep_rows = Vec::new();
    let mut t = Table::new(["N", "policy", "mean response ratio", "events/s"]);
    for ((n, result), point) in grid.iter().zip(&results).zip(&stats.point_stats) {
        let events_per_sec = if point.busy_s > 0.0 {
            point.events as f64 / point.busy_s
        } else {
            0.0
        };
        t.row([
            format!("{n}"),
            result.policy.clone(),
            ci(&result.mean_response_ratio),
            format!("{events_per_sec:.0}"),
        ]);
        sweep_rows.push((*n, result.clone(), events_per_sec));
    }
    t.print();

    println!("\nRobustness: POD(2)-HET and JIQ under faults + 4 shards + parallel engine");
    let robust_rows = robustness_pass(&mode);
    let mut t = Table::new(["N", "policy", "mean response ratio", "jobs", "crashes"]);
    for r in &robust_rows {
        t.row([
            format!("{}", r.n),
            r.policy.clone(),
            format!("{:.3}", r.mean_response_ratio),
            format!("{}", r.jobs_counted),
            format!("{}", r.crashes),
        ]);
    }
    t.print();

    mode.archive(&results);

    let path = mode
        .bench_json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_scale.json"));
    let json = report_json(
        &mode,
        &decision_rows,
        &sweep_rows,
        &robust_rows,
        bit_identical,
        speedup_at_10000,
    );
    std::fs::write(&path, json).expect("writing scale bench json");
    println!("scale sweep -> {}", path.display());
}

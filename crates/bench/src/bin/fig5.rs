//! Figure 5 — effect of system load.
//!
//! The Table-3 base configuration (15 computers, aggregate speed 44) with
//! utilization swept from 0.3 to 0.9. Panels: (a) mean response ratio,
//! (b) fairness.
//!
//! Shapes the paper reports: ORR wins among static schemes everywhere; at
//! low/moderate load the optimized schemes ride close to Dynamic
//! Least-Load; at 90% load ORR's response ratio is ~24% below WRR and
//! ~34% below WRAN; the round-robin advantage over random grows with
//! load; the Dynamic gap widens at heavy load.

use hetsched::experiment::ExperimentResult;
use hetsched::metrics::CiSummary;
use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

/// Panel accessor: picks one CI metric out of an experiment result.
type Metric = fn(&ExperimentResult) -> &CiSummary;

fn main() {
    let mode = Mode::from_env();
    let policies = scenarios::headline_policies();
    let sweep = scenarios::fig5_sweep();

    let mut points = Vec::new();
    for &rho in &sweep {
        for &policy in &policies {
            points.push((
                format!("fig5 rho={rho} {}", policy.label()),
                scenarios::fig5_config(rho),
                policy,
            ));
        }
    }
    eprintln!("fig5: {} points through one sweep pool", points.len());
    let (results, stats) = mode.run_sweep(points);
    let grid: Vec<Vec<ExperimentResult>> = results
        .chunks(policies.len())
        .map(|row| row.to_vec())
        .collect();

    let panels: [(&str, Metric); 2] = [
        ("(a) mean response ratio", |r| &r.mean_response_ratio),
        ("(b) fairness", |r| &r.fairness),
    ];
    for (title, get) in panels {
        println!("\nFigure 5{title} vs utilization (Table-3 base configuration)");
        let mut t = Table::new(
            std::iter::once("rho".to_string())
                .chain(policies.iter().map(|p| p.label()))
                .collect::<Vec<_>>(),
        );
        for (i, &rho) in sweep.iter().enumerate() {
            let mut row = vec![format!("{rho:.1}")];
            row.extend(grid[i].iter().map(|r| ci(get(r))));
            t.row(row);
        }
        t.print();
    }

    let mut chart = Chart::new("Figure 5(a): mean response ratio vs utilization", 64, 16);
    for (pi, policy) in policies.iter().enumerate() {
        let pts: Vec<(f64, f64)> = sweep
            .iter()
            .enumerate()
            .map(|(i, &rho)| (rho, grid[i][pi].mean_response_ratio.mean))
            .collect();
        chart.series(policy.label(), &pts);
    }
    println!();
    chart.print();

    // Shape check at rho = 0.9: ORR vs WRR and WRAN.
    let last = grid.last().expect("non-empty sweep");
    let wran = &last[0].mean_response_ratio;
    let wrr = &last[2].mean_response_ratio;
    let orr = &last[3].mean_response_ratio;
    println!(
        "\nshape check at rho=0.9: ORR below WRR by {:.0}% (paper ~24%), below WRAN by {:.0}% (paper ~34%)",
        100.0 * (wrr.mean - orr.mean) / wrr.mean,
        100.0 * (wran.mean - orr.mean) / wran.mean,
    );
    mode.archive(&grid);
    mode.archive_bench("fig5", &[stats]);
}

//! Figure 6 — sensitivity of ORR to load estimation errors.
//!
//! The Table-3 base configuration with utilization swept 0.3–0.9, running
//! ORR with the utilization estimate deliberately off by ±5/10/15%.
//! Panel (a): underestimation; panel (b): overestimation. WRR and exact
//! ORR are references.
//!
//! Shapes the paper reports: underestimation is harmless at light load
//! but catastrophic at heavy load (ORR(−15%) can fall behind WRR and
//! destabilize — the fast machines get overloaded); overestimation is
//! nearly free (the allocation just drifts toward weighted). Note
//! ORR(+15%) at ρ = 0.9 estimates 103.5% utilization and therefore
//! degenerates to WRR exactly (the paper's footnote 7).

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let sweep = scenarios::fig5_sweep();
    let under = [-0.05, -0.10, -0.15];
    let over = [0.05, 0.10, 0.15];

    let panel_policies = |errors: [f64; 3]| -> Vec<PolicySpec> {
        std::iter::once(PolicySpec::orr())
            .chain(errors.iter().map(|&e| PolicySpec::orr_with_error(e)))
            .chain(std::iter::once(PolicySpec::wrr()))
            .collect()
    };
    let panels = [
        ("(a) underestimation", panel_policies(under)),
        ("(b) overestimation", panel_policies(over)),
    ];

    // Flatten both panels into one sweep pool, in (panel, rho, policy)
    // order so the archive layout matches the printed tables.
    let mut points = Vec::new();
    for (_, policies) in &panels {
        for &rho in &sweep {
            for &policy in policies {
                points.push((
                    format!("fig6 rho={rho} {}", policy.label()),
                    scenarios::fig5_config(rho),
                    policy,
                ));
            }
        }
    }
    eprintln!("fig6: {} points through one sweep pool", points.len());
    let (archive, stats) = mode.run_sweep(points);

    let mut results = archive.iter();
    for (panel, policies) in &panels {
        println!("\nFigure 6{panel}: mean response ratio vs utilization");
        let mut t = Table::new(
            std::iter::once("rho".to_string())
                .chain(policies.iter().map(|p| p.label()))
                .collect::<Vec<_>>(),
        );
        for &rho in &sweep {
            let mut row = vec![format!("{rho:.1}")];
            for _ in policies {
                let r = results.next().expect("one result per grid cell");
                row.push(ci(&r.mean_response_ratio));
            }
            t.row(row);
        }
        t.print();
    }
    println!(
        "\nshape check: at rho=0.9 the underestimating variants should degrade\nsharply (overloaded fast machines) while the overestimating ones stay\nclose to exact ORR."
    );
    mode.archive(&archive);
    mode.archive_bench("fig6", &[stats]);
}

//! Fault ablation — how each scheduling family degrades under churn.
//!
//! ORR (static, failure-aware dispatching), WRR (static, speed-weighted)
//! and Dynamic Least-Load (the paper's yardstick) on the Table-3 base
//! configuration at ρ = 0.7, with the failure rate swept from "none"
//! through "frequent". Reported per cell: mean response ratio, jobs lost
//! per run, and the churn-conditioned (degraded) response time — the
//! mean over jobs that arrived during an outage or were bounced by a
//! crash.
//!
//! Fault time-scales are multiplied by the fidelity scale alongside the
//! horizon, so every fidelity sees the same expected crash count.

use hetsched::experiment::ExperimentResult;
use hetsched::prelude::*;
use hetsched_bench::{ci, num, Mode};

/// Failure regimes: label and mean time between failures in
/// paper-fidelity seconds (`None` = faults disabled).
const REGIMES: [(&str, Option<f64>); 4] = [
    ("none", None),
    ("rare", Some(400_000.0)),
    ("moderate", Some(100_000.0)),
    ("frequent", Some(40_000.0)),
];
/// Mean time to repair (paper-fidelity seconds).
const MTTR: f64 = 20_000.0;

fn main() {
    let mode = Mode::from_env();
    let policies = [
        PolicySpec::orr(),
        PolicySpec::wrr(),
        PolicySpec::DynamicLeastLoad,
    ];

    let mut points = Vec::new();
    for &(label, mtbf) in &REGIMES {
        for &policy in &policies {
            let cfg = match mtbf {
                Some(m) => scenarios::faults_config(0.7, m * mode.scale, MTTR * mode.scale),
                None => scenarios::fig5_config(0.7),
            };
            points.push((format!("faults {label} {}", policy.label()), cfg, policy));
        }
    }
    eprintln!(
        "ablation_faults: {} points through one sweep pool",
        points.len()
    );
    let (results, stats) = mode.run_sweep(points);
    let grid: Vec<Vec<ExperimentResult>> = results
        .chunks(policies.len())
        .map(|row| row.to_vec())
        .collect();

    let avail = |r: &ExperimentResult| {
        r.runs.iter().map(|x| x.availability).sum::<f64>() / r.runs.len() as f64
    };
    let lost = |r: &ExperimentResult| {
        r.runs.iter().map(|x| x.jobs_lost).sum::<u64>() as f64 / r.runs.len() as f64
    };
    let degraded = |r: &ExperimentResult| {
        r.runs
            .iter()
            .map(|x| x.mean_degraded_response_time)
            .sum::<f64>()
            / r.runs.len() as f64
    };

    println!("\nFault ablation at rho=0.7 (Table-3 base configuration, MTTR={MTTR} s)");
    for (metric, get) in [
        ("mean response ratio", None::<fn(&ExperimentResult) -> f64>),
        (
            "jobs lost per run",
            Some(lost as fn(&ExperimentResult) -> f64),
        ),
        ("degraded response time", Some(degraded)),
    ] {
        println!("\n{metric}:");
        let mut t = Table::new(
            std::iter::once("failure regime".to_string())
                .chain(std::iter::once("avail".to_string()))
                .chain(policies.iter().map(|p| p.label()))
                .collect::<Vec<_>>(),
        );
        for (i, &(label, _)) in REGIMES.iter().enumerate() {
            let mut row = vec![label.to_string(), num(avail(&grid[i][0]))];
            for r in &grid[i] {
                row.push(match get {
                    None => ci(&r.mean_response_ratio),
                    Some(f) => num(f(r)),
                });
            }
            t.row(row);
        }
        t.print();
    }

    // Sanity lines for the log: faults off ⇒ nothing lost, full uptime.
    let baseline = &grid[0];
    assert!(
        baseline.iter().all(|r| lost(r) == 0.0),
        "fault-free regime must lose no jobs"
    );
    assert!(
        baseline.iter().all(|r| (avail(r) - 1.0).abs() < 1e-12),
        "fault-free regime must have availability 1"
    );
    mode.archive(&grid);
    mode.archive_bench("ablation_faults", &[stats]);
}

//! Figure 3 — effect of speed skewness.
//!
//! 18 computers: 16 slow (speed 1) and 2 fast, with the fast speed swept
//! from 1 (homogeneous) to 20 (highly skewed) at utilization 0.7. Panels:
//! (a) mean response time, (b) mean response ratio, (c) fairness, for
//! WRAN/ORAN/WRR/ORR and Dynamic Least-Load.
//!
//! Shapes the paper reports: optimized allocation beats weighted once the
//! system is heterogeneous and the gap grows with the skew (≈ 42%
//! ORR-vs-WRR at 20:1 on response ratio); round-robin beats random
//! everywhere; near homogeneity WRR beats ORAN, at high skew ORAN beats
//! WRR; ORR approaches Dynamic Least-Load at extreme skew.

use hetsched::experiment::ExperimentResult;
use hetsched::metrics::CiSummary;
use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

/// Panel accessor: picks one CI metric out of an experiment result.
type Metric = fn(&ExperimentResult) -> &CiSummary;

fn main() {
    let mode = Mode::from_env();
    let policies = scenarios::headline_policies();
    let sweep = scenarios::fig3_sweep();

    // Run the whole grid through one sweep pool (no per-point barrier).
    let mut points = Vec::new();
    for &fast in &sweep {
        for &policy in &policies {
            points.push((
                format!("fig3 fast={fast} {}", policy.label()),
                scenarios::fig3_config(fast),
                policy,
            ));
        }
    }
    eprintln!("fig3: {} points through one sweep pool", points.len());
    let (results, stats) = mode.run_sweep(points);
    let grid: Vec<Vec<ExperimentResult>> = results
        .chunks(policies.len())
        .map(|row| row.to_vec())
        .collect();

    let panels: [(&str, Metric); 3] = [
        ("(a) mean response time", |r| &r.mean_response_time),
        ("(b) mean response ratio", |r| &r.mean_response_ratio),
        ("(c) fairness", |r| &r.fairness),
    ];
    for (title, get) in panels {
        println!("\nFigure 3{title} vs fast-machine speed, rho = 0.70");
        let mut t = Table::new(
            std::iter::once("fast speed".to_string())
                .chain(policies.iter().map(|p| p.label()))
                .collect::<Vec<_>>(),
        );
        for (i, &fast) in sweep.iter().enumerate() {
            let mut row = vec![format!("{fast}")];
            row.extend(grid[i].iter().map(|r| ci(get(r))));
            t.row(row);
        }
        t.print();
    }

    // Draw panel (b) as a terminal chart.
    let mut chart = Chart::new(
        "Figure 3(b): mean response ratio vs fast-machine speed",
        64,
        16,
    );
    for (pi, policy) in policies.iter().enumerate() {
        let pts: Vec<(f64, f64)> = sweep
            .iter()
            .enumerate()
            .map(|(i, &fast)| (fast, grid[i][pi].mean_response_ratio.mean))
            .collect();
        chart.series(policy.label(), &pts);
    }
    println!();
    chart.print();

    // Headline shape: the ORR/WRR response-ratio gap at the 20:1 point.
    let last = grid.last().expect("non-empty sweep");
    let wrr = &last[2].mean_response_ratio;
    let orr = &last[3].mean_response_ratio;
    println!(
        "\nshape check at fast=20: ORR improves mean response ratio over WRR by {:.0}% (paper: ~42%)",
        100.0 * (wrr.mean - orr.mean) / wrr.mean
    );
    mode.archive(&grid);
    mode.archive_bench("fig3", &[stats]);
}

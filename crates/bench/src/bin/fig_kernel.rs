//! Event-kernel throughput harness.
//!
//! Two measurements, both archived into `BENCH_kernel.json` (override
//! with `--bench-json PATH`):
//!
//! 1. **Whole-model**: a fig2-shaped cluster (8 computers, paper
//!    workload, 120 s deviation tracking) driven end-to-end through each
//!    future-event-list backend, replications run *sequentially* so the
//!    wall-clock numbers measure the kernel rather than the thread pool.
//!    The run panics if the backends disagree on any statistic — the
//!    perf comparison is only meaningful while results stay
//!    bit-identical.
//! 2. **Micro-kernel**: hold-model loops against the queues alone —
//!    the pre-overhaul `LegacyEventQueue` versus the current heap and
//!    calendar backends, with and without cancellation churn.
//! 3. **Shard scaling**: a 64-computer model (the fig2 speed profile
//!    tiled 8×) split across D ∈ {1, 2, 4, 8} dispatch shards and run
//!    through the conservative parallel engine. Each shard count is
//!    verified bit-identical against the classic sequential engine and
//!    against itself at D real worker threads; throughput is then
//!    *projected* from the single-threaded critical path (arrival
//!    pre-generation + slowest shard + merge), so the numbers are
//!    meaningful even on a single-core CI box. The JSON records the
//!    detected core count and a `projected` flag alongside the rows.
//!
//! `--quick` keeps the whole thing under a few seconds for CI.

use std::time::Instant;

use hetsched::cluster::pdes::{shard_config, shard_ranges};
use hetsched::cluster::{ParallelSimulation, Policy, Simulation};
use hetsched::desim::{CalendarQueue, EventQueue, FutureEventList, Rng64, SimTime};
use hetsched::prelude::*;
use hetsched_bench::legacy_queue::LegacyEventQueue;
use hetsched_bench::{json_num, json_str, Mode};

/// One backend's whole-model measurement.
struct BackendRow {
    backend: &'static str,
    runs: u64,
    events: u64,
    wall_s: f64,
}

impl BackendRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
}

/// One micro-kernel measurement.
struct MicroRow {
    case: &'static str,
    queue: &'static str,
    size: usize,
    ops: usize,
    wall_s: f64,
}

impl MicroRow {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_s.max(1e-9)
    }
}

/// The fig2-shaped cluster: 8 computers with a strongly skewed speed
/// profile (the paper's fractions {.35, .22, .15, .12, .04 × 4} arise
/// from a mix like this) and the deviation tracker on.
fn kernel_config() -> ClusterConfig {
    let speeds = [5.0, 3.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0];
    let mut cfg = ClusterConfig::paper_default(&speeds);
    cfg.deviation_interval = Some(120.0);
    cfg
}

/// Runs every replication of `exp` sequentially, returning the per-run
/// stats and the summed event count.
fn run_sequential(exp: &Experiment) -> (Vec<RunStats>, u64) {
    let mut runs = Vec::with_capacity(exp.replications as usize);
    let mut events = 0u64;
    for rep in 0..exp.replications {
        let stats = exp
            .run_single(rep)
            .unwrap_or_else(|e| panic!("replication {rep}: {e}"));
        events += stats.events_processed;
        runs.push(stats);
    }
    (runs, events)
}

fn measure_backend(mode: &Mode, backend: EventListBackend) -> (BackendRow, Vec<RunStats>) {
    let mut cfg = kernel_config();
    cfg.event_list = backend;
    if mode.obs.is_some() {
        cfg.obs = Some(ObsSpec::default());
    }
    let exp = Experiment::new("fig_kernel", cfg, PolicySpec::orr()).quick(mode.scale, mode.reps);
    let start = Instant::now();
    let (runs, events) = run_sequential(&exp);
    let wall_s = start.elapsed().as_secs_f64();
    (
        BackendRow {
            backend: backend.label(),
            runs: mode.reps,
            events,
            wall_s,
        },
        runs,
    )
}

/// Hold model (pop one, push one later) with no cancellation — the
/// common case the generation-stamped rewrite optimizes for.
fn hold_fel<Q: FutureEventList<u64>>(mut q: Q, size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(5);
    for i in 0..size {
        q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
    }
    acc
}

fn hold_legacy(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(5);
    let mut q: LegacyEventQueue<u64> = LegacyEventQueue::with_capacity(size);
    for i in 0..size {
        q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let (time, payload) = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(payload);
        q.schedule(time.after(rng.next_f64() * 100.0), payload);
    }
    acc
}

/// Hold model with a cancel-and-replace on every pop — the dynamic-timer
/// pattern that exercises the cancellation path.
fn cancel_fel<Q: FutureEventList<u64>>(mut q: Q, size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(6);
    let mut ids = Vec::with_capacity(size);
    for i in 0..size {
        ids.push(q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64));
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        let id = q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
        let idx = (ev.payload as usize) % ids.len();
        q.cancel(ids[idx]);
        ids[idx] = id;
        ids.push(q.schedule(ev.time.after(rng.next_f64() * 50.0), ev.payload));
        if ids.len() > 2 * size {
            ids.truncate(size);
        }
    }
    acc
}

fn cancel_legacy(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(6);
    let mut q: LegacyEventQueue<u64> = LegacyEventQueue::with_capacity(size);
    let mut ids = Vec::with_capacity(size);
    for i in 0..size {
        ids.push(q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64));
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let (time, payload) = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(payload);
        let id = q.schedule(time.after(rng.next_f64() * 100.0), payload);
        let idx = (payload as usize) % ids.len();
        q.cancel(ids[idx]);
        ids[idx] = id;
        ids.push(q.schedule(time.after(rng.next_f64() * 50.0), payload));
        if ids.len() > 2 * size {
            ids.truncate(size);
        }
    }
    acc
}

/// One shard count's scaling measurement.
struct ScaleRow {
    shards: usize,
    threads_checked: usize,
    events: u64,
    pregen_s: f64,
    max_shard_s: f64,
    merge_s: f64,
    critical_s: f64,
}

impl ScaleRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.critical_s.max(1e-9)
    }
}

/// The classic sequential baseline plus the projected parallel rows.
struct ScalingReport {
    cores_detected: usize,
    classic_events: u64,
    classic_wall_s: f64,
    rows: Vec<ScaleRow>,
    identical: bool,
}

impl ScalingReport {
    fn classic_events_per_sec(&self) -> f64 {
        self.classic_events as f64 / self.classic_wall_s.max(1e-9)
    }

    /// Projected speedup of the widest shard count over the classic
    /// sequential engine.
    fn peak_speedup(&self) -> f64 {
        self.rows
            .last()
            .map(|r| r.events_per_sec() / self.classic_events_per_sec())
            .unwrap_or(1.0)
    }
}

/// The scaling model: the fig2 speed profile tiled 8× (64 computers),
/// split across `d` dispatch shards by i.i.d. random routing with the
/// sync plane off — the shards are fully independent (unbounded
/// lookahead), and `d = 1` reproduces the classic single-scheduler
/// model exactly.
fn scaling_config(d: usize, scale: f64) -> ClusterConfig {
    let base = [5.0, 3.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0];
    let speeds: Vec<f64> = base.iter().copied().cycle().take(64).collect();
    let mut cfg = ClusterConfig::paper_default(&speeds).scaled(scale);
    if d > 1 {
        cfg.dispatch = DispatchSpec::sharded(d, SplitterSpec::IidRandom);
    }
    cfg
}

/// One ORR policy instance per shard, each planned over its shard's
/// server slice.
fn scaling_policies(cfg: &ClusterConfig) -> Vec<Box<dyn Policy>> {
    let d = cfg.dispatch.dispatchers.max(1);
    if d == 1 {
        return vec![PolicySpec::orr().build(cfg).expect("policy builds")];
    }
    shard_ranges(cfg.speeds.len(), d)
        .iter()
        .map(|r| {
            PolicySpec::orr()
                .build(&shard_config(cfg, r))
                .expect("policy builds")
        })
        .collect()
}

/// Measures the shard-scaling table and verifies bit-identity along the
/// way (classic engine vs the parallel engine at one shard; one worker
/// thread vs `d` real worker threads at every shard count).
fn measure_scaling(mode: &Mode) -> ScalingReport {
    const SEED: u64 = 0x00C0_FFEE;
    // The model is 8× the fig2 cluster, so shrink the horizon further to
    // keep the whole sweep a few seconds at the default fidelity.
    let scale = (mode.scale * 0.2).max(0.002);
    let cores_detected = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Classic sequential baseline: the same model through the classic
    // single-kernel engine.
    let base_cfg = scaling_config(1, scale);
    let policy = PolicySpec::orr()
        .build(&base_cfg)
        .expect("baseline policy builds");
    let start = Instant::now();
    let classic = Simulation::new(base_cfg.clone(), policy, SEED)
        .expect("baseline simulation builds")
        .run();
    let classic_wall_s = start.elapsed().as_secs_f64();
    let classic_events = classic.events_processed;

    let mut rows = Vec::new();
    let mut identical = true;
    for d in [1usize, 2, 4, 8] {
        let cfg = scaling_config(d, scale);
        // Timed pass: single worker thread, per-shard wall clock.
        let sim = ParallelSimulation::new(cfg.clone(), scaling_policies(&cfg), SEED, 1)
            .expect("parallel simulation builds");
        let (stats, timing) = sim.run_timed();
        // Identity pass: d real worker threads must reproduce the
        // single-threaded run bit for bit.
        let threaded = ParallelSimulation::new(cfg.clone(), scaling_policies(&cfg), SEED, d)
            .expect("parallel simulation builds")
            .run();
        identical &= stats == threaded;
        if d == 1 {
            identical &= stats == classic;
        }
        let max_shard_s = timing.shard_s.iter().copied().fold(0.0_f64, f64::max);
        rows.push(ScaleRow {
            shards: d,
            threads_checked: d,
            events: timing.events,
            pregen_s: timing.pregen_s,
            max_shard_s,
            merge_s: timing.merge_s,
            critical_s: timing.critical_path_s(),
        });
    }
    ScalingReport {
        cores_detected,
        classic_events,
        classic_wall_s,
        rows,
        identical,
    }
}

fn time_micro(
    case: &'static str,
    queue: &'static str,
    size: usize,
    ops: usize,
    f: impl FnOnce() -> u64,
) -> MicroRow {
    let start = Instant::now();
    let acc = f();
    let wall_s = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    MicroRow {
        case,
        queue,
        size,
        ops,
        wall_s,
    }
}

fn micro_suite(scale: f64) -> Vec<MicroRow> {
    let size = 4096usize;
    // Scale the op count with fidelity so --quick stays CI-friendly but
    // still long enough (tens of ms) for a stable ratio.
    let ops = ((800_000.0 * scale) as usize).max(50_000);
    let mut rows = Vec::new();
    rows.push(time_micro(
        "pop_heavy_no_cancel",
        "legacy",
        size,
        ops,
        || hold_legacy(size, ops),
    ));
    rows.push(time_micro("pop_heavy_no_cancel", "heap", size, ops, || {
        hold_fel(EventQueue::with_capacity(size), size, ops)
    }));
    rows.push(time_micro(
        "pop_heavy_no_cancel",
        "calendar",
        size,
        ops,
        || hold_fel(CalendarQueue::with_capacity(size), size, ops),
    ));
    rows.push(time_micro("cancel_mix", "legacy", size, ops, || {
        cancel_legacy(size, ops)
    }));
    rows.push(time_micro("cancel_mix", "heap", size, ops, || {
        cancel_fel(EventQueue::with_capacity(size), size, ops)
    }));
    rows.push(time_micro("cancel_mix", "calendar", size, ops, || {
        cancel_fel(CalendarQueue::with_capacity(size), size, ops)
    }));
    rows
}

fn scaling_json(s: &ScalingReport) -> String {
    let rows: Vec<String> = s
        .rows
        .iter()
        .map(|r| {
            format!(
                "    {{ \"shards\": {}, \"threads_checked\": {}, \"events\": {}, \
                 \"pregen_s\": {}, \"max_shard_s\": {}, \"merge_s\": {}, \
                 \"critical_path_s\": {}, \"events_per_sec\": {}, \"speedup_vs_classic\": {} }}",
                r.shards,
                r.threads_checked,
                r.events,
                json_num(r.pregen_s),
                json_num(r.max_shard_s),
                json_num(r.merge_s),
                json_num(r.critical_s),
                json_num(r.events_per_sec()),
                json_num(r.events_per_sec() / s.classic_events_per_sec()),
            )
        })
        .collect();
    format!(
        "{{\n  \"model\": {},\n  \"cores_detected\": {},\n  \"projected\": true,\n  \
         \"identical_results\": {},\n  \"classic\": {{ \"events\": {}, \"wall_s\": {}, \
         \"events_per_sec\": {} }},\n  \"peak_speedup\": {},\n  \"rows\": [\n{}\n  ]\n  }}",
        json_str("fig2x8_64computers_orr"),
        s.cores_detected,
        s.identical,
        s.classic_events,
        json_num(s.classic_wall_s),
        json_num(s.classic_events_per_sec()),
        json_num(s.peak_speedup()),
        rows.join(",\n"),
    )
}

fn report_json(
    mode: &Mode,
    backends: &[BackendRow],
    micro: &[MicroRow],
    scaling: &ScalingReport,
    identical: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bin\": {},\n", json_str("fig_kernel")));
    out.push_str(&format!("  \"scale\": {},\n", json_num(mode.scale)));
    out.push_str(&format!("  \"reps\": {},\n", mode.reps));
    out.push_str(&format!("  \"identical_results\": {identical},\n"));
    let rows: Vec<String> = backends
        .iter()
        .map(|b| {
            format!(
                "    {{ \"backend\": {}, \"runs\": {}, \"events\": {}, \
                 \"wall_s\": {}, \"events_per_sec\": {} }}",
                json_str(b.backend),
                b.runs,
                b.events,
                json_num(b.wall_s),
                json_num(b.events_per_sec()),
            )
        })
        .collect();
    out.push_str(&format!("  \"backends\": [\n{}\n  ],\n", rows.join(",\n")));
    let rows: Vec<String> = micro
        .iter()
        .map(|m| {
            format!(
                "    {{ \"case\": {}, \"queue\": {}, \"size\": {}, \"ops\": {}, \
                 \"wall_s\": {}, \"ops_per_sec\": {} }}",
                json_str(m.case),
                json_str(m.queue),
                m.size,
                m.ops,
                json_num(m.wall_s),
                json_num(m.ops_per_sec()),
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"kernel_micro\": [\n{}\n  ],\n",
        rows.join(",\n")
    ));
    out.push_str(&format!("  \"shard_scaling\": {}\n", scaling_json(scaling)));
    out.push_str("}\n");
    out
}

fn main() {
    let mode = Mode::from_env();

    println!("\nEvent-kernel bench: fig2-shaped model through both backends");
    let (heap_row, heap_runs) = measure_backend(&mode, EventListBackend::Heap);
    let (cal_row, cal_runs) = measure_backend(&mode, EventListBackend::Calendar);
    // Everything in a run — including the obs time series, when `--obs`
    // is on — must match across backends, except `kernel.resizes`, which
    // only the calendar queue increments by design.
    let comparable = |runs: &[RunStats]| -> Vec<RunStats> {
        runs.iter()
            .cloned()
            .map(|mut r| {
                if let Some(obs) = &mut r.obs {
                    obs.kernel.resizes = 0;
                }
                r
            })
            .collect()
    };
    let identical = comparable(&heap_runs) == comparable(&cal_runs);
    assert!(
        identical,
        "backends diverged: heap and calendar runs must be bit-identical"
    );
    mode.archive_obs(heap_runs.iter());

    let mut t = Table::new(["backend", "runs", "events", "wall s", "events/s"]);
    for row in [&heap_row, &cal_row] {
        t.row([
            row.backend.to_string(),
            format!("{}", row.runs),
            format!("{}", row.events),
            format!("{:.3}", row.wall_s),
            format!("{:.0}", row.events_per_sec()),
        ]);
    }
    t.print();
    println!("results bit-identical across backends: {identical}");

    println!("\nMicro-kernel: hold model, size 4096");
    let micro = micro_suite(mode.scale);
    let mut t = Table::new(["case", "queue", "ops", "wall s", "ops/s"]);
    for m in &micro {
        t.row([
            m.case.to_string(),
            m.queue.to_string(),
            format!("{}", m.ops),
            format!("{:.3}", m.wall_s),
            format!("{:.0}", m.ops_per_sec()),
        ]);
    }
    t.print();
    let ratio = |q: &str, case: &str| {
        let legacy = micro
            .iter()
            .find(|m| m.queue == "legacy" && m.case == case)
            .expect("legacy row");
        let new = micro
            .iter()
            .find(|m| m.queue == q && m.case == case)
            .expect("backend row");
        new.ops_per_sec() / legacy.ops_per_sec()
    };
    println!(
        "speedup vs legacy (pop-heavy): heap {:.2}x, calendar {:.2}x",
        ratio("heap", "pop_heavy_no_cancel"),
        ratio("calendar", "pop_heavy_no_cancel"),
    );
    println!(
        "speedup vs legacy (cancel mix): heap {:.2}x, calendar {:.2}x",
        ratio("heap", "cancel_mix"),
        ratio("calendar", "cancel_mix"),
    );

    println!("\nShard scaling: 64-computer model, conservative parallel engine");
    let scaling = measure_scaling(&mode);
    assert!(
        scaling.identical,
        "parallel engine diverged: classic, 1-thread, and d-thread runs \
         must be bit-identical at every shard count"
    );
    let mut t = Table::new([
        "shards",
        "events",
        "pregen s",
        "max shard s",
        "merge s",
        "critical s",
        "events/s",
        "speedup",
    ]);
    for r in &scaling.rows {
        t.row([
            format!("{}", r.shards),
            format!("{}", r.events),
            format!("{:.3}", r.pregen_s),
            format!("{:.3}", r.max_shard_s),
            format!("{:.3}", r.merge_s),
            format!("{:.3}", r.critical_s),
            format!("{:.0}", r.events_per_sec()),
            format!(
                "{:.2}x",
                r.events_per_sec() / scaling.classic_events_per_sec()
            ),
        ]);
    }
    t.print();
    println!(
        "classic sequential baseline: {} events in {:.3} s ({:.0} events/s)",
        scaling.classic_events,
        scaling.classic_wall_s,
        scaling.classic_events_per_sec()
    );
    println!(
        "projected speedup at {} shards: {:.2}x on {} detected core(s) \
         (critical path = pregen + slowest shard + merge); results bit-identical: {}",
        scaling.rows.last().map_or(0, |r| r.shards),
        scaling.peak_speedup(),
        scaling.cores_detected,
        scaling.identical
    );

    let path = mode
        .bench_json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_kernel.json"));
    let json = report_json(&mode, &[heap_row, cal_row], &micro, &scaling, identical);
    std::fs::write(&path, json).expect("writing kernel bench json");
    println!("kernel bench counters -> {}", path.display());
}

//! Event-kernel throughput harness.
//!
//! Two measurements, both archived into `BENCH_kernel.json` (override
//! with `--bench-json PATH`):
//!
//! 1. **Whole-model**: a fig2-shaped cluster (8 computers, paper
//!    workload, 120 s deviation tracking) driven end-to-end through each
//!    future-event-list backend, replications run *sequentially* so the
//!    wall-clock numbers measure the kernel rather than the thread pool.
//!    The run panics if the backends disagree on any statistic — the
//!    perf comparison is only meaningful while results stay
//!    bit-identical.
//! 2. **Micro-kernel**: hold-model loops against the queues alone —
//!    the pre-overhaul `LegacyEventQueue` versus the current heap and
//!    calendar backends, with and without cancellation churn.
//!
//! `--quick` keeps the whole thing under a few seconds for CI.

use std::time::Instant;

use hetsched::desim::{CalendarQueue, EventQueue, FutureEventList, Rng64, SimTime};
use hetsched::prelude::*;
use hetsched_bench::legacy_queue::LegacyEventQueue;
use hetsched_bench::{json_num, json_str, Mode};

/// One backend's whole-model measurement.
struct BackendRow {
    backend: &'static str,
    runs: u64,
    events: u64,
    wall_s: f64,
}

impl BackendRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(1e-9)
    }
}

/// One micro-kernel measurement.
struct MicroRow {
    case: &'static str,
    queue: &'static str,
    size: usize,
    ops: usize,
    wall_s: f64,
}

impl MicroRow {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.wall_s.max(1e-9)
    }
}

/// The fig2-shaped cluster: 8 computers with a strongly skewed speed
/// profile (the paper's fractions {.35, .22, .15, .12, .04 × 4} arise
/// from a mix like this) and the deviation tracker on.
fn kernel_config() -> ClusterConfig {
    let speeds = [5.0, 3.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0];
    let mut cfg = ClusterConfig::paper_default(&speeds);
    cfg.deviation_interval = Some(120.0);
    cfg
}

/// Runs every replication of `exp` sequentially, returning the per-run
/// stats and the summed event count.
fn run_sequential(exp: &Experiment) -> (Vec<RunStats>, u64) {
    let mut runs = Vec::with_capacity(exp.replications as usize);
    let mut events = 0u64;
    for rep in 0..exp.replications {
        let stats = exp
            .run_single(rep)
            .unwrap_or_else(|e| panic!("replication {rep}: {e}"));
        events += stats.events_processed;
        runs.push(stats);
    }
    (runs, events)
}

fn measure_backend(mode: &Mode, backend: EventListBackend) -> (BackendRow, Vec<RunStats>) {
    let mut cfg = kernel_config();
    cfg.event_list = backend;
    if mode.obs.is_some() {
        cfg.obs = Some(ObsSpec::default());
    }
    let exp = Experiment::new("fig_kernel", cfg, PolicySpec::orr()).quick(mode.scale, mode.reps);
    let start = Instant::now();
    let (runs, events) = run_sequential(&exp);
    let wall_s = start.elapsed().as_secs_f64();
    (
        BackendRow {
            backend: backend.label(),
            runs: mode.reps,
            events,
            wall_s,
        },
        runs,
    )
}

/// Hold model (pop one, push one later) with no cancellation — the
/// common case the generation-stamped rewrite optimizes for.
fn hold_fel<Q: FutureEventList<u64>>(mut q: Q, size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(5);
    for i in 0..size {
        q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
    }
    acc
}

fn hold_legacy(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(5);
    let mut q: LegacyEventQueue<u64> = LegacyEventQueue::with_capacity(size);
    for i in 0..size {
        q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64);
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let (time, payload) = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(payload);
        q.schedule(time.after(rng.next_f64() * 100.0), payload);
    }
    acc
}

/// Hold model with a cancel-and-replace on every pop — the dynamic-timer
/// pattern that exercises the cancellation path.
fn cancel_fel<Q: FutureEventList<u64>>(mut q: Q, size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(6);
    let mut ids = Vec::with_capacity(size);
    for i in 0..size {
        ids.push(q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64));
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let ev = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(ev.payload);
        let id = q.schedule(ev.time.after(rng.next_f64() * 100.0), ev.payload);
        let idx = (ev.payload as usize) % ids.len();
        q.cancel(ids[idx]);
        ids[idx] = id;
        ids.push(q.schedule(ev.time.after(rng.next_f64() * 50.0), ev.payload));
        if ids.len() > 2 * size {
            ids.truncate(size);
        }
    }
    acc
}

fn cancel_legacy(size: usize, ops: usize) -> u64 {
    let mut rng = Rng64::from_seed(6);
    let mut q: LegacyEventQueue<u64> = LegacyEventQueue::with_capacity(size);
    let mut ids = Vec::with_capacity(size);
    for i in 0..size {
        ids.push(q.schedule(SimTime::new(rng.next_f64() * 100.0), i as u64));
    }
    let mut acc = 0u64;
    for _ in 0..ops {
        let (time, payload) = q.pop().expect("queue stays full");
        acc = acc.wrapping_add(payload);
        let id = q.schedule(time.after(rng.next_f64() * 100.0), payload);
        let idx = (payload as usize) % ids.len();
        q.cancel(ids[idx]);
        ids[idx] = id;
        ids.push(q.schedule(time.after(rng.next_f64() * 50.0), payload));
        if ids.len() > 2 * size {
            ids.truncate(size);
        }
    }
    acc
}

fn time_micro(
    case: &'static str,
    queue: &'static str,
    size: usize,
    ops: usize,
    f: impl FnOnce() -> u64,
) -> MicroRow {
    let start = Instant::now();
    let acc = f();
    let wall_s = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    MicroRow {
        case,
        queue,
        size,
        ops,
        wall_s,
    }
}

fn micro_suite(scale: f64) -> Vec<MicroRow> {
    let size = 4096usize;
    // Scale the op count with fidelity so --quick stays CI-friendly but
    // still long enough (tens of ms) for a stable ratio.
    let ops = ((800_000.0 * scale) as usize).max(50_000);
    let mut rows = Vec::new();
    rows.push(time_micro(
        "pop_heavy_no_cancel",
        "legacy",
        size,
        ops,
        || hold_legacy(size, ops),
    ));
    rows.push(time_micro("pop_heavy_no_cancel", "heap", size, ops, || {
        hold_fel(EventQueue::with_capacity(size), size, ops)
    }));
    rows.push(time_micro(
        "pop_heavy_no_cancel",
        "calendar",
        size,
        ops,
        || hold_fel(CalendarQueue::with_capacity(size), size, ops),
    ));
    rows.push(time_micro("cancel_mix", "legacy", size, ops, || {
        cancel_legacy(size, ops)
    }));
    rows.push(time_micro("cancel_mix", "heap", size, ops, || {
        cancel_fel(EventQueue::with_capacity(size), size, ops)
    }));
    rows.push(time_micro("cancel_mix", "calendar", size, ops, || {
        cancel_fel(CalendarQueue::with_capacity(size), size, ops)
    }));
    rows
}

fn report_json(
    mode: &Mode,
    backends: &[BackendRow],
    micro: &[MicroRow],
    identical: bool,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bin\": {},\n", json_str("fig_kernel")));
    out.push_str(&format!("  \"scale\": {},\n", json_num(mode.scale)));
    out.push_str(&format!("  \"reps\": {},\n", mode.reps));
    out.push_str(&format!("  \"identical_results\": {identical},\n"));
    let rows: Vec<String> = backends
        .iter()
        .map(|b| {
            format!(
                "    {{ \"backend\": {}, \"runs\": {}, \"events\": {}, \
                 \"wall_s\": {}, \"events_per_sec\": {} }}",
                json_str(b.backend),
                b.runs,
                b.events,
                json_num(b.wall_s),
                json_num(b.events_per_sec()),
            )
        })
        .collect();
    out.push_str(&format!("  \"backends\": [\n{}\n  ],\n", rows.join(",\n")));
    let rows: Vec<String> = micro
        .iter()
        .map(|m| {
            format!(
                "    {{ \"case\": {}, \"queue\": {}, \"size\": {}, \"ops\": {}, \
                 \"wall_s\": {}, \"ops_per_sec\": {} }}",
                json_str(m.case),
                json_str(m.queue),
                m.size,
                m.ops,
                json_num(m.wall_s),
                json_num(m.ops_per_sec()),
            )
        })
        .collect();
    out.push_str(&format!(
        "  \"kernel_micro\": [\n{}\n  ]\n",
        rows.join(",\n")
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mode = Mode::from_env();

    println!("\nEvent-kernel bench: fig2-shaped model through both backends");
    let (heap_row, heap_runs) = measure_backend(&mode, EventListBackend::Heap);
    let (cal_row, cal_runs) = measure_backend(&mode, EventListBackend::Calendar);
    // Everything in a run — including the obs time series, when `--obs`
    // is on — must match across backends, except `kernel.resizes`, which
    // only the calendar queue increments by design.
    let comparable = |runs: &[RunStats]| -> Vec<RunStats> {
        runs.iter()
            .cloned()
            .map(|mut r| {
                if let Some(obs) = &mut r.obs {
                    obs.kernel.resizes = 0;
                }
                r
            })
            .collect()
    };
    let identical = comparable(&heap_runs) == comparable(&cal_runs);
    assert!(
        identical,
        "backends diverged: heap and calendar runs must be bit-identical"
    );
    mode.archive_obs(heap_runs.iter());

    let mut t = Table::new(["backend", "runs", "events", "wall s", "events/s"]);
    for row in [&heap_row, &cal_row] {
        t.row([
            row.backend.to_string(),
            format!("{}", row.runs),
            format!("{}", row.events),
            format!("{:.3}", row.wall_s),
            format!("{:.0}", row.events_per_sec()),
        ]);
    }
    t.print();
    println!("results bit-identical across backends: {identical}");

    println!("\nMicro-kernel: hold model, size 4096");
    let micro = micro_suite(mode.scale);
    let mut t = Table::new(["case", "queue", "ops", "wall s", "ops/s"]);
    for m in &micro {
        t.row([
            m.case.to_string(),
            m.queue.to_string(),
            format!("{}", m.ops),
            format!("{:.3}", m.wall_s),
            format!("{:.0}", m.ops_per_sec()),
        ]);
    }
    t.print();
    let ratio = |q: &str, case: &str| {
        let legacy = micro
            .iter()
            .find(|m| m.queue == "legacy" && m.case == case)
            .expect("legacy row");
        let new = micro
            .iter()
            .find(|m| m.queue == q && m.case == case)
            .expect("backend row");
        new.ops_per_sec() / legacy.ops_per_sec()
    };
    println!(
        "speedup vs legacy (pop-heavy): heap {:.2}x, calendar {:.2}x",
        ratio("heap", "pop_heavy_no_cancel"),
        ratio("calendar", "pop_heavy_no_cancel"),
    );
    println!(
        "speedup vs legacy (cancel mix): heap {:.2}x, calendar {:.2}x",
        ratio("heap", "cancel_mix"),
        ratio("calendar", "cancel_mix"),
    );

    let path = mode
        .bench_json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_kernel.json"));
    let json = report_json(&mode, &[heap_row, cal_row], &micro, identical);
    std::fs::write(&path, json).expect("writing kernel bench json");
    println!("kernel bench counters -> {}", path.display());
}

//! Ablation (extension): arrival burstiness.
//!
//! The paper fixes the inter-arrival CV at 3 (§4.1, citing Zhou's trace
//! with CV 2.64). This ablation sweeps the CV from 1 (Poisson) to 5 and
//! adds a correlated MMPP arrival process, measuring how the round-robin
//! dispatcher's advantage over random dispatching depends on burstiness
//! — the paper's §5.3 observation that "burstiness in job arrivals does
//! little harm when system utilization is low" is probed here on arrival
//! shape instead of load.

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let arrivals: Vec<(String, ArrivalSpec)> = vec![
        ("poisson (cv=1)".into(), ArrivalSpec::Poisson),
        ("hyperexp cv=2".into(), ArrivalSpec::Hyperexp { cv: 2.0 }),
        (
            "hyperexp cv=3 (paper)".into(),
            ArrivalSpec::Hyperexp { cv: 3.0 },
        ),
        ("hyperexp cv=5".into(), ArrivalSpec::Hyperexp { cv: 5.0 }),
        (
            "mmpp 10x burst".into(),
            ArrivalSpec::Mmpp {
                burst_factor: 10.0,
                frac_bursty: 0.1,
                cycle: 500.0,
            },
        ),
    ];
    let policies = [PolicySpec::oran(), PolicySpec::orr()];

    println!("\nAblation: arrival burstiness (Table-3 base config, rho = 0.70)");
    let mut t = Table::new([
        "arrivals",
        "policy",
        "mean resp ratio",
        "fairness",
        "RR gain",
    ]);
    let mut points = Vec::new();
    for (label, arr) in &arrivals {
        for &policy in &policies {
            let mut cfg = scenarios::fig5_config(0.7);
            cfg.arrivals = *arr;
            points.push((format!("burst {label} {}", policy.label()), cfg, policy));
        }
    }
    eprintln!(
        "ablation_burstiness: {} points through one sweep pool",
        points.len()
    );
    let (archive, stats) = mode.run_sweep(points);
    for ((label, _), pair) in arrivals.iter().zip(archive.chunks(policies.len())) {
        let oran_ratio = pair[0].mean_response_ratio.mean;
        for (i, (policy, r)) in policies.iter().zip(pair).enumerate() {
            let gain = if i == 1 {
                format!(
                    "{:.1}%",
                    100.0 * (oran_ratio - r.mean_response_ratio.mean) / oran_ratio
                )
            } else {
                String::new()
            };
            t.row([
                label.clone(),
                policy.label(),
                ci(&r.mean_response_ratio),
                ci(&r.fairness),
                gain,
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: round-robin dispatching (ORR) beats random dispatching\n(ORAN) for every arrival process; smoother arrivals shrink the gap."
    );
    mode.archive(&archive);
    mode.archive_bench("ablation_burstiness", &[stats]);
}

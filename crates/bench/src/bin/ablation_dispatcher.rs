//! Ablation (extension): what exactly makes Algorithm 2 win?
//!
//! Three dispatchers realize the *same* optimized fractions on the
//! Table-3 base configuration:
//!
//! * **ORR** — Algorithm 2 (interleaved, deficit-based);
//! * **BWRR** — naive burst-per-cycle weighted round-robin (each
//!   computer gets its whole integer weight consecutively): identical
//!   long-run proportions, deterministic like Algorithm 2, but bursty
//!   substreams;
//! * **ORAN** — random dispatching.
//!
//! If Algorithm 2's gain came from determinism alone, BWRR would match
//! it; the paper's burstiness argument (§3.2) predicts BWRR lands closer
//! to random. The binary also prints Figure-2-style deviation means for
//! the three dispatchers and the AORR adaptive extension.

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let policies = [
        ("ORR (Algorithm 2)", PolicySpec::orr()),
        (
            "BWRR (bursty cycles)",
            PolicySpec::BurstyWrr { cycle_len: 100 },
        ),
        ("ORAN (random)", PolicySpec::oran()),
        (
            "AORR (adaptive rho)",
            PolicySpec::AdaptiveOrr {
                recompute_every: 500.0,
                safety_margin: 0.05,
            },
        ),
    ];

    let mut archive = Vec::new();
    println!("\nAblation: dispatcher mechanism (optimized fractions, Table-3 config, rho = 0.70)");
    let mut t = Table::new(["dispatcher", "mean resp ratio", "fairness", "p95 ratio"]);
    for (label, policy) in policies {
        eprintln!("ablation_dispatcher: {label}");
        let r = mode.run(label, scenarios::fig5_config(0.7), policy);
        t.row([
            label.to_string(),
            ci(&r.mean_response_ratio),
            ci(&r.fairness),
            ci(&r.p95_response_ratio),
        ]);
        archive.push(r);
    }
    t.print();
    println!(
        "\nshape check: ORR < BWRR (interleaving, not determinism, carries the\ngain) and BWRR sits between ORR and ORAN; AORR tracks ORR without being\ntold rho."
    );
    mode.archive(&archive);
}

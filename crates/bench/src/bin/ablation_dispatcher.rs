//! Ablation (extension): what exactly makes Algorithm 2 win?
//!
//! Three dispatchers realize the *same* optimized fractions on the
//! Table-3 base configuration:
//!
//! * **ORR** — Algorithm 2 (interleaved, deficit-based);
//! * **BWRR** — naive burst-per-cycle weighted round-robin (each
//!   computer gets its whole integer weight consecutively): identical
//!   long-run proportions, deterministic like Algorithm 2, but bursty
//!   substreams;
//! * **ORAN** — random dispatching.
//!
//! If Algorithm 2's gain came from determinism alone, BWRR would match
//! it; the paper's burstiness argument (§3.2) predicts BWRR lands closer
//! to random. The binary also prints Figure-2-style deviation means for
//! the three dispatchers and the AORR adaptive extension.

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let policies = [
        ("ORR (Algorithm 2)", PolicySpec::orr()),
        (
            "BWRR (bursty cycles)",
            PolicySpec::BurstyWrr { cycle_len: 100 },
        ),
        ("ORAN (random)", PolicySpec::oran()),
        (
            "AORR (adaptive rho)",
            PolicySpec::AdaptiveOrr {
                recompute_every: 500.0,
                safety_margin: 0.05,
            },
        ),
    ];

    println!("\nAblation: dispatcher mechanism (optimized fractions, Table-3 config, rho = 0.70)");
    let mut t = Table::new(["dispatcher", "mean resp ratio", "fairness", "p95 ratio"]);
    let points = policies
        .iter()
        .map(|&(label, policy)| (label.to_string(), scenarios::fig5_config(0.7), policy))
        .collect();
    eprintln!(
        "ablation_dispatcher: {} points through one sweep pool",
        policies.len()
    );
    let (archive, stats) = mode.run_sweep(points);
    for ((label, _), r) in policies.iter().zip(&archive) {
        t.row([
            label.to_string(),
            ci(&r.mean_response_ratio),
            ci(&r.fairness),
            ci(&r.p95_response_ratio),
        ]);
    }
    t.print();
    println!(
        "\nshape check: ORR < BWRR (interleaving, not determinism, carries the\ngain) and BWRR sits between ORR and ORAN; AORR tracks ORR without being\ntold rho."
    );
    mode.archive(&archive);
    mode.archive_bench("ablation_dispatcher", &[stats]);
}

//! Malleable-class slowdown figure: heSRPT allocation vs dispatching.
//!
//! The paper's schemes assign each job to exactly one computer; the
//! malleable extension lets the allocation tier divide a shard's
//! servers among its in-flight jobs by the heSRPT closed form. This
//! harness measures what that buys on the *mean slowdown* objective:
//!
//! * **fraction × exponent sweep** — ORR, DYNAMIC, HESRPT, and
//!   HESRPT-STATIC over malleable arrival fractions
//!   `{0.25, 0.5, 0.75, 1.0}` and power-law speedup exponents
//!   `p ∈ {0.5, 0.8}`. The dispatch policies treat malleable jobs as
//!   rigid (the degenerate baseline); the allocator policies hold
//!   every job in the tier. The headline claim is that HESRPT's
//!   slowdown advantage over ORR grows with the malleable fraction,
//!   and HESRPT-STATIC isolates how much of it is *size ordering*
//!   rather than mere space sharing (recorded as `hesrpt_beats_orr`);
//! * the **rigid bit-identity** guarantee, checked at bench time: an
//!   *inactive* malleable section (zero fraction, or all-rigid
//!   classes) is byte-identical to no section at all, on both
//!   event-list backends and on both the classic and the
//!   conservative-parallel engines.
//!
//! Results are archived into `BENCH_malleable.json` (override with
//! `--bench-json PATH`).

use hetsched::prelude::*;
use hetsched_bench::{ci, json_num, json_str, Mode};

/// Malleable arrival fractions swept (0 is covered by the bit-identity
/// check: an inactive section runs the seed path).
const FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

/// Power-law speedup exponents: 0.5 (square-root, strongly concave —
/// parallelism pays little) and 0.8 (close to linear — parallelism
/// pays a lot).
const EXPONENTS: [f64; 2] = [0.5, 0.8];

/// One cell of the sweep.
struct Cell {
    fraction: f64,
    exponent: f64,
    policy: String,
    result: ExperimentResult,
    /// Mean per-replication tier counters (0 for dispatch policies).
    malleable_jobs: f64,
    reallocations: f64,
}

/// The fig_dispatch fleet: 8 computers with a strongly skewed speed
/// profile, so the allocation question is non-trivial.
fn base_config() -> ClusterConfig {
    let speeds = [5.0, 3.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0];
    ClusterConfig::paper_default(&speeds)
}

/// The roster each (fraction, exponent) point crosses: two dispatchers
/// that ignore malleability and the two tier allocators.
fn policies() -> [PolicySpec; 4] {
    [
        PolicySpec::orr(),
        PolicySpec::DynamicLeastLoad,
        PolicySpec::Hesrpt,
        PolicySpec::HesrptStatic,
    ]
}

fn run_cell(mode: &Mode, fraction: f64, exponent: f64, policy: PolicySpec) -> Cell {
    let mut cfg = base_config();
    cfg.malleable = Some(MalleableSpec::power_law(fraction, exponent));
    let result = mode.run("fig_malleable", cfg, policy);
    let n = result.runs.len() as f64;
    let mean = |f: &dyn Fn(&RunStats) -> f64| -> f64 { result.runs.iter().map(f).sum::<f64>() / n };
    Cell {
        fraction,
        exponent,
        policy: result.policy.clone(),
        malleable_jobs: mean(&|r| {
            r.malleable
                .as_ref()
                .map_or(0.0, |m| m.malleable_jobs as f64)
        }),
        reallocations: mean(&|r| r.malleable.as_ref().map_or(0.0, |m| m.reallocations as f64)),
        result,
    }
}

/// The tentpole guarantee, checked at bench time: an inactive malleable
/// section (zero fraction, or a section whose only class is rigid)
/// reproduces a section-free run byte-for-byte on both event-list
/// backends and on both engines.
fn assert_rigid_bit_identity(mode: &Mode) -> bool {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        for sim_threads in [0usize, 4] {
            let mut cfg = base_config();
            cfg.event_list = backend;
            let mut plain = Experiment::new("fig_malleable", cfg, PolicySpec::orr())
                .quick(mode.scale, mode.reps);
            plain.sim_threads = sim_threads;
            let mut zero_fraction = plain.clone();
            zero_fraction.cluster.malleable = Some(MalleableSpec::power_law(0.0, 0.5));
            let mut rigid_class = plain.clone();
            rigid_class.cluster.malleable = Some(MalleableSpec {
                fraction: 1.0,
                classes: vec![MalleableClass {
                    curve: SpeedupCurve::Rigid,
                    weight: 1.0,
                }],
            });
            for rep in 0..mode.reps.min(2) {
                let a = plain.run_single(rep).expect("plain run");
                let b = zero_fraction.run_single(rep).expect("zero-fraction run");
                let c = rigid_class.run_single(rep).expect("rigid-class run");
                assert_eq!(
                    a,
                    b,
                    "a zero-fraction malleable section diverged from the \
                     section-free path ({} backend, sim_threads={sim_threads})",
                    backend.label()
                );
                assert_eq!(
                    a,
                    c,
                    "an all-rigid malleable section diverged from the \
                     section-free path ({} backend, sim_threads={sim_threads})",
                    backend.label()
                );
            }
        }
    }
    true
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{ \"fraction\": {}, \"speedup_exp\": {}, \"policy\": {}, \
         \"mean_slowdown\": {}, \"slowdown_ci_half_width\": {}, \
         \"mean_response_ratio\": {}, \"malleable_jobs\": {}, \
         \"reallocations\": {} }}",
        json_num(c.fraction),
        json_num(c.exponent),
        json_str(&c.policy),
        json_num(c.result.mean_slowdown.mean),
        json_num(c.result.mean_slowdown.half_width),
        json_num(c.result.mean_response_ratio.mean),
        json_num(c.malleable_jobs),
        json_num(c.reallocations),
    )
}

fn report_json(mode: &Mode, cells: &[Cell], identical: bool, hesrpt_beats_orr: bool) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bin\": {},\n", json_str("fig_malleable")));
    out.push_str(&format!("  \"scale\": {},\n", json_num(mode.scale)));
    out.push_str(&format!("  \"reps\": {},\n", mode.reps));
    out.push_str(&format!("  \"rigid_bit_identical\": {identical},\n"));
    out.push_str(&format!("  \"hesrpt_beats_orr\": {hesrpt_beats_orr},\n"));
    let rows: Vec<String> = cells.iter().map(cell_json).collect();
    out.push_str(&format!("  \"sweep\": [\n{}\n  ]\n", rows.join(",\n")));
    out.push_str("}\n");
    out
}

fn main() {
    let mode = Mode::from_env();

    println!("\nMalleable classes: rigid bit-identity check");
    println!("(both backends x classic/parallel engines)");
    let identical = assert_rigid_bit_identity(&mode);
    println!("inactive malleable sections bit-identical to the seed path: {identical}");

    println!("\nMean slowdown: allocation tier vs dispatching");
    let mut cells = Vec::new();
    for &p in &EXPONENTS {
        for &f in &FRACTIONS {
            for policy in policies() {
                cells.push(run_cell(&mode, f, p, policy));
            }
        }
    }
    let mut t = Table::new([
        "speedup exp",
        "fraction",
        "policy",
        "mean slowdown",
        "mean response ratio",
        "reallocations",
    ]);
    for c in &cells {
        t.row([
            format!("{}", c.exponent),
            format!("{}", c.fraction),
            c.policy.clone(),
            ci(&c.result.mean_slowdown),
            format!("{:.4}", c.result.mean_response_ratio.mean),
            format!("{:.0}", c.reallocations),
        ]);
    }
    t.print();

    // The headline claim: at full malleability and the square-root
    // speedup curve, heSRPT allocation beats the paper's best
    // dispatcher on mean slowdown.
    let slowdown_of = |policy: &str| -> f64 {
        cells
            .iter()
            .find(|c| c.policy == policy && c.fraction == 1.0 && c.exponent == 0.5)
            .map(|c| c.result.mean_slowdown.mean)
            .expect("swept cell")
    };
    let hesrpt_beats_orr = slowdown_of("HESRPT") < slowdown_of("ORR");
    println!("\nHESRPT beats ORR on mean slowdown at fraction 1.0, p = 0.5: {hesrpt_beats_orr}");

    if let Some(path) = &mode.json {
        let results: Vec<&ExperimentResult> = cells.iter().map(|c| &c.result).collect();
        hetsched::report::save_json(path.to_str().expect("utf-8 path"), &results)
            .expect("archiving results");
        println!("results -> {}", path.display());
    }

    let path = mode
        .bench_json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_malleable.json"));
    let json = report_json(&mode, &cells, identical, hesrpt_beats_orr);
    std::fs::write(&path, json).expect("writing malleable bench json");
    println!("malleable sweep -> {}", path.display());
}

//! Runs every table/figure regeneration binary's workload in sequence.
//!
//! `cargo run --release -p hetsched-bench --bin repro_all -- [--full|--quick|…]`
//!
//! This is a convenience front door: it shells out to nothing, it simply
//! invokes the same library presets the individual binaries use, printing
//! a one-line summary per artifact. Use the dedicated binaries for the
//! full tables.

use hetsched::prelude::*;
use hetsched::scenarios::{fig2_deviations, Fig2Dispatcher};
use hetsched_bench::Mode;

fn main() {
    let mode = Mode::from_env();
    println!(
        "reproduction sweep at scale {} with {} reps\n",
        mode.scale, mode.reps
    );

    // Table 1.
    let t1 = mode.run(
        "table1",
        ClusterConfig::paper_default(&scenarios::table1_speeds()),
        PolicySpec::DynamicLeastLoad,
    );
    let f = &t1.dispatch_fractions;
    println!(
        "table1  dynamic least-load fractions: slowest {:.2}% … fastest {:.2}% (paper 0.29% … 30.9%)",
        100.0 * f[0],
        100.0 * f[f.len() - 1]
    );

    // Figure 2.
    let rr = fig2_deviations(Fig2Dispatcher::RoundRobin, 1);
    let ran = fig2_deviations(Fig2Dispatcher::Random, 1);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "fig2    deviation means: round-robin {:.5} vs random {:.5}",
        mean(&rr),
        mean(&ran)
    );

    // Figure 3 at the extreme point.
    let orr = mode.run("fig3", scenarios::fig3_config(20.0), PolicySpec::orr());
    let wrr = mode.run("fig3", scenarios::fig3_config(20.0), PolicySpec::wrr());
    println!(
        "fig3    fast=20: ORR ratio {:.3} vs WRR {:.3} ({:.0}% better; paper ~42%)",
        orr.mean_response_ratio.mean,
        wrr.mean_response_ratio.mean,
        100.0 * (wrr.mean_response_ratio.mean - orr.mean_response_ratio.mean)
            / wrr.mean_response_ratio.mean
    );

    // Figure 4 at the largest size.
    let orr = mode.run("fig4", scenarios::fig4_config(20), PolicySpec::orr());
    let wran = mode.run("fig4", scenarios::fig4_config(20), PolicySpec::wran());
    println!(
        "fig4    n=20: ORR ratio {:.3} vs WRAN {:.3} ({:.0}% better; paper 35-40%)",
        orr.mean_response_ratio.mean,
        wran.mean_response_ratio.mean,
        100.0 * (wran.mean_response_ratio.mean - orr.mean_response_ratio.mean)
            / wran.mean_response_ratio.mean
    );

    // Figure 5 at heavy load.
    let orr = mode.run("fig5", scenarios::fig5_config(0.9), PolicySpec::orr());
    let wrr = mode.run("fig5", scenarios::fig5_config(0.9), PolicySpec::wrr());
    println!(
        "fig5    rho=0.9: ORR ratio {:.3} vs WRR {:.3} ({:.0}% better; paper ~24%)",
        orr.mean_response_ratio.mean,
        wrr.mean_response_ratio.mean,
        100.0 * (wrr.mean_response_ratio.mean - orr.mean_response_ratio.mean)
            / wrr.mean_response_ratio.mean
    );

    // Figure 6's two edges at heavy load.
    let under = mode.run(
        "fig6",
        scenarios::fig5_config(0.9),
        PolicySpec::orr_with_error(-0.10),
    );
    let over = mode.run(
        "fig6",
        scenarios::fig5_config(0.9),
        PolicySpec::orr_with_error(0.10),
    );
    println!(
        "fig6    rho=0.9: ORR(-10%) ratio {:.3} (should blow up past WRR {:.3}); ORR(+10%) {:.3} (should stay close to ORR {:.3})",
        under.mean_response_ratio.mean,
        wrr.mean_response_ratio.mean,
        over.mean_response_ratio.mean,
        orr.mean_response_ratio.mean
    );

    println!("\nFor the full tables run the dedicated binaries: table1 table2 table3 fig2 fig3 fig4 fig5 fig6");
}

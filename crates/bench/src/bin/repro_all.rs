//! Runs every table/figure regeneration binary's workload in sequence.
//!
//! `cargo run --release -p hetsched-bench --bin repro_all -- [--full|--quick|…]`
//!
//! This is a convenience front door: it shells out to nothing, it simply
//! invokes the same library presets the individual binaries use, printing
//! a one-line summary per artifact. Use the dedicated binaries for the
//! full tables.
//!
//! Every simulation point across all artifacts runs through **one**
//! sweep pool (no per-figure barrier), and the pool's throughput
//! counters are archived as `BENCH_sweep.json` (override with
//! `--bench-json PATH`) — the repo's machine-readable perf trajectory.

use hetsched::prelude::*;
use hetsched::scenarios::{fig2_deviations, Fig2Dispatcher};
use hetsched_bench::Mode;

fn main() {
    let mut mode = Mode::from_env();
    if mode.bench_json.is_none() {
        mode.bench_json = Some("BENCH_sweep.json".into());
    }
    println!(
        "reproduction sweep at scale {} with {} reps\n",
        mode.scale, mode.reps
    );

    // Every experiment point of every artifact, one pool, no barriers.
    let points = vec![
        (
            "table1".to_string(),
            ClusterConfig::paper_default(&scenarios::table1_speeds()),
            PolicySpec::DynamicLeastLoad,
        ),
        (
            "fig3 ORR".to_string(),
            scenarios::fig3_config(20.0),
            PolicySpec::orr(),
        ),
        (
            "fig3 WRR".to_string(),
            scenarios::fig3_config(20.0),
            PolicySpec::wrr(),
        ),
        (
            "fig4 ORR".to_string(),
            scenarios::fig4_config(20),
            PolicySpec::orr(),
        ),
        (
            "fig4 WRAN".to_string(),
            scenarios::fig4_config(20),
            PolicySpec::wran(),
        ),
        (
            "fig5 ORR".to_string(),
            scenarios::fig5_config(0.9),
            PolicySpec::orr(),
        ),
        (
            "fig5 WRR".to_string(),
            scenarios::fig5_config(0.9),
            PolicySpec::wrr(),
        ),
        (
            "fig6 ORR(-10%)".to_string(),
            scenarios::fig5_config(0.9),
            PolicySpec::orr_with_error(-0.10),
        ),
        (
            "fig6 ORR(+10%)".to_string(),
            scenarios::fig5_config(0.9),
            PolicySpec::orr_with_error(0.10),
        ),
    ];
    let (results, stats) = mode.run_sweep(points);
    let [t1, fig3_orr, fig3_wrr, fig4_orr, fig4_wran, fig5_orr, fig5_wrr, fig6_under, fig6_over] =
        &results[..]
    else {
        unreachable!("one result per point");
    };

    // Table 1.
    let f = &t1.dispatch_fractions;
    println!(
        "table1  dynamic least-load fractions: slowest {:.2}% … fastest {:.2}% (paper 0.29% … 30.9%)",
        100.0 * f[0],
        100.0 * f[f.len() - 1]
    );

    // Figure 2 (dispatch-only harness, no simulation pool involved).
    let rr = fig2_deviations(Fig2Dispatcher::RoundRobin, 1);
    let ran = fig2_deviations(Fig2Dispatcher::Random, 1);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "fig2    deviation means: round-robin {:.5} vs random {:.5}",
        mean(&rr),
        mean(&ran)
    );

    // Figure 3 at the extreme point.
    println!(
        "fig3    fast=20: ORR ratio {:.3} vs WRR {:.3} ({:.0}% better; paper ~42%)",
        fig3_orr.mean_response_ratio.mean,
        fig3_wrr.mean_response_ratio.mean,
        100.0 * (fig3_wrr.mean_response_ratio.mean - fig3_orr.mean_response_ratio.mean)
            / fig3_wrr.mean_response_ratio.mean
    );

    // Figure 4 at the largest size.
    println!(
        "fig4    n=20: ORR ratio {:.3} vs WRAN {:.3} ({:.0}% better; paper 35-40%)",
        fig4_orr.mean_response_ratio.mean,
        fig4_wran.mean_response_ratio.mean,
        100.0 * (fig4_wran.mean_response_ratio.mean - fig4_orr.mean_response_ratio.mean)
            / fig4_wran.mean_response_ratio.mean
    );

    // Figure 5 at heavy load.
    println!(
        "fig5    rho=0.9: ORR ratio {:.3} vs WRR {:.3} ({:.0}% better; paper ~24%)",
        fig5_orr.mean_response_ratio.mean,
        fig5_wrr.mean_response_ratio.mean,
        100.0 * (fig5_wrr.mean_response_ratio.mean - fig5_orr.mean_response_ratio.mean)
            / fig5_wrr.mean_response_ratio.mean
    );

    // Figure 6's two edges at heavy load.
    println!(
        "fig6    rho=0.9: ORR(-10%) ratio {:.3} (should blow up past WRR {:.3}); ORR(+10%) {:.3} (should stay close to ORR {:.3})",
        fig6_under.mean_response_ratio.mean,
        fig5_wrr.mean_response_ratio.mean,
        fig6_over.mean_response_ratio.mean,
        fig5_orr.mean_response_ratio.mean
    );

    println!(
        "\nsweep pool: {} tasks on {} threads — {:.1}s wall, {:.0} simulated events/s",
        stats.tasks, stats.threads, stats.wall_s, stats.events_per_sec
    );
    mode.archive_bench("repro_all", &[stats]);

    println!("\nFor the full tables run the dedicated binaries: table1 table2 table3 fig2 fig3 fig4 fig5 fig6");
}

//! Table 2 — the 2×2 taxonomy of static schemes, verified live.
//!
//! WRAN/ORAN/WRR/ORR are the combinations of {weighted, optimized}
//! allocation with {random, round-robin} dispatching. This binary builds
//! all four on a small heterogeneous system, runs them briefly, and
//! prints the taxonomy with each policy's measured mean response ratio —
//! confirming every cell is wired to distinct machinery.

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let cfg = ClusterConfig::paper_default(&[1.0, 1.0, 4.0, 8.0]);

    println!("\nTable 2: job dispatching × workload allocation (mean response ratio)");
    let mut t = Table::new(["dispatching", "weighted", "optimized"]);
    // All four taxonomy cells through one sweep pool.
    let mut points = Vec::new();
    for dispatcher in [DispatcherSpec::Random, DispatcherSpec::RoundRobin] {
        for allocation in [AllocationSpec::Weighted, AllocationSpec::optimized()] {
            let spec = PolicySpec::Static {
                allocation,
                dispatcher,
            };
            points.push((spec.label(), cfg.clone(), spec));
        }
    }
    let (results, stats) = mode.run_sweep(points);
    for (pair, dispatcher) in results.chunks(2).zip(["random", "round-robin"]) {
        let mut row = vec![dispatcher.to_string()];
        for r in pair {
            row.push(format!("{} = {}", r.policy, ci(&r.mean_response_ratio)));
        }
        t.row(row);
    }
    t.print();
    mode.archive(&results);
    mode.archive_bench("table2", &[stats]);
}

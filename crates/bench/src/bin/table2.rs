//! Table 2 — the 2×2 taxonomy of static schemes, verified live.
//!
//! WRAN/ORAN/WRR/ORR are the combinations of {weighted, optimized}
//! allocation with {random, round-robin} dispatching. This binary builds
//! all four on a small heterogeneous system, runs them briefly, and
//! prints the taxonomy with each policy's measured mean response ratio —
//! confirming every cell is wired to distinct machinery.

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let cfg = ClusterConfig::paper_default(&[1.0, 1.0, 4.0, 8.0]);

    println!("\nTable 2: job dispatching × workload allocation (mean response ratio)");
    let mut t = Table::new(["dispatching", "weighted", "optimized"]);
    let mut results = Vec::new();
    let mut cells = Vec::new();
    for dispatcher in [DispatcherSpec::Random, DispatcherSpec::RoundRobin] {
        let mut row = vec![match dispatcher {
            DispatcherSpec::Random => "random".to_string(),
            DispatcherSpec::RoundRobin => "round-robin".to_string(),
        }];
        for allocation in [AllocationSpec::Weighted, AllocationSpec::optimized()] {
            let spec = PolicySpec::Static {
                allocation,
                dispatcher,
            };
            let r = mode.run(&spec.label(), cfg.clone(), spec);
            row.push(format!("{} = {}", spec.label(), ci(&r.mean_response_ratio)));
            results.push(r);
        }
        cells.push(row);
    }
    for row in cells {
        t.row(row);
    }
    t.print();
    mode.archive(&results);
}

//! Figure 4 — effect of system size.
//!
//! The system grows from 2 to 20 computers, half at speed 10 and half at
//! speed 1, at utilization 0.7. Panels: (a) mean response ratio,
//! (b) fairness.
//!
//! Shapes the paper reports: ORR cuts 35–40% off WRAN's response ratio
//! beyond 6 computers; the ORR-vs-Dynamic gap *grows* with size (dynamic
//! exploits instantaneous load across more machines); round-robin
//! policies improve with size (smoother per-machine substreams) while
//! random ones improve less.

use hetsched::experiment::ExperimentResult;
use hetsched::metrics::CiSummary;
use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

/// Panel accessor: picks one CI metric out of an experiment result.
type Metric = fn(&ExperimentResult) -> &CiSummary;

fn main() {
    let mode = Mode::from_env();
    let policies = scenarios::headline_policies();
    let sweep = scenarios::fig4_sweep();

    let mut points = Vec::new();
    for &n in &sweep {
        for &policy in &policies {
            points.push((
                format!("fig4 n={n} {}", policy.label()),
                scenarios::fig4_config(n),
                policy,
            ));
        }
    }
    eprintln!("fig4: {} points through one sweep pool", points.len());
    let (results, stats) = mode.run_sweep(points);
    let grid: Vec<Vec<ExperimentResult>> = results
        .chunks(policies.len())
        .map(|row| row.to_vec())
        .collect();

    let panels: [(&str, Metric); 2] = [
        ("(a) mean response ratio", |r| &r.mean_response_ratio),
        ("(b) fairness", |r| &r.fairness),
    ];
    for (title, get) in panels {
        println!("\nFigure 4{title} vs system size, rho = 0.70");
        let mut t = Table::new(
            std::iter::once("computers".to_string())
                .chain(policies.iter().map(|p| p.label()))
                .collect::<Vec<_>>(),
        );
        for (i, &n) in sweep.iter().enumerate() {
            let mut row = vec![format!("{n}")];
            row.extend(grid[i].iter().map(|r| ci(get(r))));
            t.row(row);
        }
        t.print();
    }

    let mut chart = Chart::new("Figure 4(a): mean response ratio vs system size", 64, 16);
    for (pi, policy) in policies.iter().enumerate() {
        let pts: Vec<(f64, f64)> = sweep
            .iter()
            .enumerate()
            .map(|(i, &n)| (n as f64, grid[i][pi].mean_response_ratio.mean))
            .collect();
        chart.series(policy.label(), &pts);
    }
    println!();
    chart.print();

    // Shape check: ORR's gain over WRAN at the largest size.
    let last = grid.last().expect("non-empty sweep");
    let wran = &last[0].mean_response_ratio;
    let orr = &last[3].mean_response_ratio;
    println!(
        "\nshape check at n=20: ORR improves mean response ratio over WRAN by {:.0}% (paper: 35-40%)",
        100.0 * (wran.mean - orr.mean) / wran.mean
    );
    mode.archive(&grid);
    mode.archive_bench("fig4", &[stats]);
}

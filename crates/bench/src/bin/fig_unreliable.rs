//! Unreliable-messaging degradation figure.
//!
//! The paper assumes every message plane is perfect: dispatched jobs
//! always arrive, load updates always come back. This harness measures
//! what a lossy fabric costs and what the recovery machinery buys:
//!
//! * **loss sweep** — ORR, DYNAMIC, DYNAMIC-SA, and ReORR under uniform
//!   message loss `p ∈ {0, 0.1%, 1%, 5%}` on all three planes, with
//!   ack-based retransmission (timeout + exponential backoff) armed, so
//!   the figure shows *residual* degradation after recovery;
//! * **fire-and-forget vs retry vs hedge** — ORR at the highest loss
//!   rate with the recovery ladder applied one rung at a time: no
//!   retries (lost dispatches lose the job), retries, retries + hedged
//!   dispatch (duplicate to a backup server after a short un-acked
//!   silence, first landing wins);
//! * **load-plane blackouts** — periodic partition windows on the
//!   server → dispatcher update plane only. Naive DYNAMIC keeps
//!   steering the whole stream by its frozen load snapshot; DYNAMIC-SA
//!   decays stale indices toward the optimized static prior, which is
//!   the regime where staleness-aware degradation must beat naive
//!   Dynamic (recorded as `sa_beats_naive`);
//! * the **reliable bit-identity** guarantee, checked at bench time: an
//!   explicit `ChannelSpec::reliable()` section is byte-identical to no
//!   channel section at all, on both event-list backends and on both
//!   the classic and the conservative-parallel engines.
//!
//! Results are archived into `BENCH_unreliable.json` (override with
//! `--bench-json PATH`).

use hetsched::prelude::*;
use hetsched_bench::{ci, json_num, json_str, Mode};

/// Uniform per-message loss probabilities swept (0 = the paper's
/// perfect fabric, run without any channel section).
const LOSS_RATES: [f64; 4] = [0.0, 0.001, 0.01, 0.05];

/// Ack timeout (seconds) for the retransmission sweep; backoff and the
/// retry budget stay at the [`RetrySpec`] defaults (×2, 3 retries).
const RETRY_TIMEOUT: f64 = 30.0;

/// Un-acked silence (seconds) before a hedge duplicate fires.
const HEDGE_DELAY: f64 = 5.0;

/// DYNAMIC-SA confidence window (seconds): a load index older than this
/// starts decaying toward the static prior.
const CONFIDENCE_WINDOW: f64 = 30.0;

/// One cell of a sweep.
struct Cell {
    label: String,
    policy: String,
    result: ExperimentResult,
    /// Mean per-replication counters.
    jobs_lost: f64,
    msgs_lost: f64,
    retries: f64,
    timeouts: f64,
    hedges_won: f64,
    stale_decisions: f64,
}

/// The fig_dispatch fleet: 8 computers with a strongly skewed speed
/// profile, where the optimized and weighted allocations differ most.
fn base_config() -> ClusterConfig {
    let speeds = [5.0, 3.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0];
    ClusterConfig::paper_default(&speeds)
}

/// The roster the loss sweep crosses with each loss rate.
fn policies() -> [PolicySpec; 4] {
    [
        PolicySpec::orr(),
        PolicySpec::DynamicLeastLoad,
        PolicySpec::stale_aware_dynamic(CONFIDENCE_WINDOW),
        PolicySpec::reopt_orr(),
    ]
}

fn run_cell(mode: &Mode, label: &str, channels: Option<ChannelSpec>, policy: PolicySpec) -> Cell {
    let mut cfg = base_config();
    cfg.channels = channels;
    let result = mode.run("fig_unreliable", cfg, policy);
    let n = result.runs.len() as f64;
    let mean = |f: &dyn Fn(&RunStats) -> u64| -> f64 {
        result.runs.iter().map(|r| f(r) as f64).sum::<f64>() / n
    };
    Cell {
        label: label.to_string(),
        policy: result.policy.clone(),
        jobs_lost: mean(&|r| r.jobs_lost),
        msgs_lost: mean(&|r| r.msgs_lost),
        retries: mean(&|r| r.retries),
        timeouts: mean(&|r| r.timeouts),
        hedges_won: mean(&|r| r.hedges_won),
        stale_decisions: mean(&|r| r.stale_decisions),
        result,
    }
}

/// The channel spec for one loss-sweep cell: `None` at `p = 0` (the
/// seed path), uniform loss with retransmission otherwise.
fn loss_channels(p: f64) -> Option<ChannelSpec> {
    if p == 0.0 {
        None
    } else {
        Some(ChannelSpec::uniform_loss(p).with_retry(RetrySpec::after(RETRY_TIMEOUT)))
    }
}

/// Periodic blackout windows on the load plane: the second half of each
/// of 16 equal cycles spanning warmup → horizon is dark. Windows are in
/// simulated seconds of the *scaled* run, so they are computed against
/// the same `scaled()` horizon the experiment will use.
fn blackout_channels(scale: f64) -> ChannelSpec {
    let cfg = base_config().scaled(scale);
    let span = cfg.horizon - cfg.warmup;
    let period = span / 16.0;
    let partitions: Vec<(f64, f64)> = (0..16)
        .map(|k| {
            let start = cfg.warmup + k as f64 * period;
            (start + 0.5 * period, start + period)
        })
        .collect();
    let mut spec = ChannelSpec::reliable();
    spec.load.partitions = partitions;
    spec
}

/// The tentpole guarantee, checked at bench time: an explicit
/// `ChannelSpec::reliable()` section reproduces a channel-free run
/// byte-for-byte on both event-list backends and on both engines
/// (classic sequential and conservative-parallel).
fn assert_reliable_bit_identity(mode: &Mode) -> bool {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        for sim_threads in [0usize, 4] {
            let mut cfg = base_config();
            cfg.event_list = backend;
            let mut plain = Experiment::new("fig_unreliable", cfg, PolicySpec::orr())
                .quick(mode.scale, mode.reps);
            plain.sim_threads = sim_threads;
            let mut shimmed = plain.clone();
            shimmed.cluster.channels = Some(ChannelSpec::reliable());
            for rep in 0..mode.reps.min(2) {
                let a = plain.run_single(rep).expect("plain run");
                let b = shimmed.run_single(rep).expect("reliable-channel run");
                assert_eq!(
                    a,
                    b,
                    "reliable channels diverged from the channel-free path \
                     ({} backend, sim_threads={sim_threads})",
                    backend.label()
                );
            }
        }
    }
    true
}

fn cell_json(c: &Cell, baseline: f64) -> String {
    let orr = c.result.mean_response_ratio.mean;
    format!(
        "    {{ \"cell\": {}, \"policy\": {}, \"mean_response_ratio\": {}, \
         \"ci_half_width\": {}, \"degradation_pct\": {}, \"jobs_lost\": {}, \
         \"msgs_lost\": {}, \"retries\": {}, \"timeouts\": {}, \
         \"hedges_won\": {}, \"stale_decisions\": {} }}",
        json_str(&c.label),
        json_str(&c.policy),
        json_num(orr),
        json_num(c.result.mean_response_ratio.half_width),
        json_num(if baseline > 0.0 {
            100.0 * (orr - baseline) / baseline
        } else {
            0.0
        }),
        json_num(c.jobs_lost),
        json_num(c.msgs_lost),
        json_num(c.retries),
        json_num(c.timeouts),
        json_num(c.hedges_won),
        json_num(c.stale_decisions),
    )
}

fn report_json(
    mode: &Mode,
    loss_cells: &[Cell],
    ladder_cells: &[Cell],
    blackout_cells: &[Cell],
    identical: bool,
    sa_beats_naive: bool,
) -> String {
    let baseline_of = |cells: &[Cell], policy: &str| -> f64 {
        cells
            .iter()
            .find(|c| c.policy == policy && c.label.ends_with("loss 0"))
            .map(|c| c.result.mean_response_ratio.mean)
            .unwrap_or(0.0)
    };
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bin\": {},\n", json_str("fig_unreliable")));
    out.push_str(&format!("  \"scale\": {},\n", json_num(mode.scale)));
    out.push_str(&format!("  \"reps\": {},\n", mode.reps));
    out.push_str(&format!("  \"reliable_bit_identical\": {identical},\n"));
    out.push_str(&format!(
        "  \"sa_beats_naive_in_blackouts\": {sa_beats_naive},\n"
    ));
    let loss_rows: Vec<String> = loss_cells
        .iter()
        .map(|c| cell_json(c, baseline_of(loss_cells, &c.policy)))
        .collect();
    out.push_str(&format!(
        "  \"loss_sweep\": [\n{}\n  ],\n",
        loss_rows.join(",\n")
    ));
    let ladder_rows: Vec<String> = ladder_cells.iter().map(|c| cell_json(c, 0.0)).collect();
    out.push_str(&format!(
        "  \"recovery_ladder\": [\n{}\n  ],\n",
        ladder_rows.join(",\n")
    ));
    let blackout_rows: Vec<String> = blackout_cells.iter().map(|c| cell_json(c, 0.0)).collect();
    out.push_str(&format!(
        "  \"load_blackouts\": [\n{}\n  ]\n",
        blackout_rows.join(",\n")
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mode = Mode::from_env();

    println!("\nUnreliable channels: reliable() bit-identity check");
    println!("(both backends x classic/parallel engines)");
    let identical = assert_reliable_bit_identity(&mode);
    println!("reliable channels bit-identical to the channel-free path: {identical}");

    println!("\nPolicy degradation under uniform message loss (retries armed)");
    let mut loss_cells = Vec::new();
    for &p in &LOSS_RATES {
        for policy in policies() {
            let label = format!(
                "loss {}",
                if p == 0.0 { "0".into() } else { format!("{p}") }
            );
            loss_cells.push(run_cell(&mode, &label, loss_channels(p), policy));
        }
    }
    let mut t = Table::new([
        "loss",
        "policy",
        "mean response ratio",
        "jobs lost",
        "msgs lost",
        "retries",
    ]);
    for c in &loss_cells {
        t.row([
            c.label.clone(),
            c.policy.clone(),
            ci(&c.result.mean_response_ratio),
            format!("{:.1}", c.jobs_lost),
            format!("{:.0}", c.msgs_lost),
            format!("{:.0}", c.retries),
        ]);
    }
    t.print();

    println!("\nRecovery ladder at loss {} (ORR)", LOSS_RATES[3]);
    let p = LOSS_RATES[3];
    let ladder_cells = vec![
        run_cell(
            &mode,
            "fire-and-forget",
            Some(ChannelSpec::uniform_loss(p)),
            PolicySpec::orr(),
        ),
        run_cell(&mode, "retry", loss_channels(p), PolicySpec::orr()),
        run_cell(
            &mode,
            "retry+hedge",
            Some(
                ChannelSpec::uniform_loss(p)
                    .with_retry(RetrySpec::after(RETRY_TIMEOUT))
                    .with_hedge(HedgeSpec { delay: HEDGE_DELAY }),
            ),
            PolicySpec::orr(),
        ),
    ];
    let mut t = Table::new([
        "recovery",
        "mean response ratio",
        "jobs lost",
        "timeouts",
        "hedges won",
    ]);
    for c in &ladder_cells {
        t.row([
            c.label.clone(),
            ci(&c.result.mean_response_ratio),
            format!("{:.1}", c.jobs_lost),
            format!("{:.0}", c.timeouts),
            format!("{:.0}", c.hedges_won),
        ]);
    }
    t.print();

    println!("\nLoad-plane blackouts (periodic partitions, 50% duty)");
    let blackout = blackout_channels(mode.scale);
    let blackout_cells = vec![
        run_cell(
            &mode,
            "blackout",
            Some(blackout.clone()),
            PolicySpec::DynamicLeastLoad,
        ),
        run_cell(
            &mode,
            "blackout",
            Some(blackout.clone()),
            PolicySpec::stale_aware_dynamic(CONFIDENCE_WINDOW),
        ),
        run_cell(&mode, "blackout", Some(blackout), PolicySpec::orr()),
    ];
    let mut t = Table::new([
        "policy",
        "mean response ratio",
        "stale decisions",
        "p95 ratio",
    ]);
    for c in &blackout_cells {
        t.row([
            c.policy.clone(),
            ci(&c.result.mean_response_ratio),
            format!("{:.0}", c.stale_decisions),
            format!("{:.3}", c.result.p95_response_ratio.mean),
        ]);
    }
    t.print();
    let sa_beats_naive = blackout_cells[1].result.mean_response_ratio.mean
        < blackout_cells[0].result.mean_response_ratio.mean;
    println!("DYNAMIC-SA beats naive DYNAMIC under blackouts: {sa_beats_naive}");

    if let Some(path) = &mode.json {
        let results: Vec<&ExperimentResult> = loss_cells
            .iter()
            .chain(&ladder_cells)
            .chain(&blackout_cells)
            .map(|c| &c.result)
            .collect();
        hetsched::report::save_json(path.to_str().expect("utf-8 path"), &results)
            .expect("archiving results");
        println!("results -> {}", path.display());
    }

    let path = mode
        .bench_json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_unreliable.json"));
    let json = report_json(
        &mode,
        &loss_cells,
        &ladder_cells,
        &blackout_cells,
        identical,
        sa_beats_naive,
    );
    std::fs::write(&path, json).expect("writing unreliable bench json");
    println!("unreliable sweep -> {}", path.display());
}

//! Fault extension — static α versus re-optimized α under churn.
//!
//! The Table-3 base configuration at ρ = 0.7 with exponential
//! crash/repair processes: mean time to repair fixed, mean time between
//! failures swept downward (left to right the cluster gets less
//! reliable). Two policies: plain ORR, whose Algorithm-1 allocation was
//! computed offline for the full machine set, and ReORR, which re-solves
//! Algorithm 1 over the survivors on every membership change. Both skip
//! believed-down machines; the gap between them isolates the value of
//! re-optimizing the allocation itself.
//!
//! Fault time-scales are multiplied by the fidelity scale alongside the
//! horizon, so every fidelity sees the same expected crash count per
//! run and the same availability.

use hetsched::experiment::ExperimentResult;
use hetsched::prelude::*;
use hetsched_bench::{ci, num, Mode};

/// Mean times between failures swept (paper-fidelity seconds).
const MTBF_SWEEP: [f64; 5] = [800_000.0, 400_000.0, 200_000.0, 100_000.0, 50_000.0];
/// Mean time to repair (paper-fidelity seconds).
const MTTR: f64 = 20_000.0;

fn main() {
    let mode = Mode::from_env();
    let policies = [PolicySpec::orr(), PolicySpec::reopt_orr()];

    let mut points = Vec::new();
    for &mtbf in &MTBF_SWEEP {
        for &policy in &policies {
            // Scale the fault process with the horizon so the expected
            // number of crashes per run is fidelity-invariant.
            let cfg = scenarios::faults_config(0.7, mtbf * mode.scale, MTTR * mode.scale);
            points.push((
                format!("faults mtbf={mtbf} {}", policy.label()),
                cfg,
                policy,
            ));
        }
    }
    eprintln!("fig_faults: {} points through one sweep pool", points.len());
    let (results, stats) = mode.run_sweep(points);
    let grid: Vec<Vec<ExperimentResult>> = results
        .chunks(policies.len())
        .map(|row| row.to_vec())
        .collect();

    // Run-level fault aggregates (mean over replications).
    let avail = |r: &ExperimentResult| {
        r.runs.iter().map(|x| x.availability).sum::<f64>() / r.runs.len() as f64
    };
    let lost = |r: &ExperimentResult| {
        r.runs.iter().map(|x| x.jobs_lost).sum::<u64>() as f64 / r.runs.len() as f64
    };
    let crashes = |r: &ExperimentResult| {
        r.runs.iter().map(|x| x.crashes).sum::<u64>() as f64 / r.runs.len() as f64
    };

    println!("\nFault sweep: ORR (static α) vs ReORR (re-optimized α), rho=0.7, MTTR={MTTR} s");
    let mut t = Table::new([
        "MTBF (s)",
        "avail",
        "crashes",
        "ORR ratio",
        "ORR lost",
        "ReORR ratio",
        "ReORR lost",
    ]);
    for (i, &mtbf) in MTBF_SWEEP.iter().enumerate() {
        let orr = &grid[i][0];
        let reorr = &grid[i][1];
        t.row([
            format!("{mtbf:.0}"),
            num(avail(orr)),
            num(crashes(orr)),
            ci(&orr.mean_response_ratio),
            num(lost(orr)),
            ci(&reorr.mean_response_ratio),
            num(lost(reorr)),
        ]);
    }
    t.print();

    // The headline gap at the least reliable point.
    let last = grid.last().expect("non-empty sweep");
    let orr = last[0].mean_response_ratio.mean;
    let reorr = last[1].mean_response_ratio.mean;
    println!(
        "\nshape check at MTBF={}: ReORR response ratio {:.3} vs static ORR {:.3} ({:+.1}% gap), availability {:.3}",
        MTBF_SWEEP[MTBF_SWEEP.len() - 1],
        reorr,
        orr,
        100.0 * (reorr - orr) / orr,
        avail(&last[0]),
    );
    mode.archive(&grid);
    mode.archive_bench("fig_faults", &[stats]);
    mode.archive_obs(results.iter().flat_map(|r| r.runs.iter()));
}

//! Dispatch-tier degradation figure.
//!
//! The paper's ORR assumes ONE central scheduler running Algorithm 2
//! over the whole arrival stream. This harness measures what sharding
//! that front end costs — and what coordinated sharding buys back. The
//! global stream is split i.i.d.-randomly across `D` dispatchers, each
//! running a private ORR instance, and the mean response ratio is swept
//! over `D ∈ {1, 2, 4, 8, 16}`:
//!
//! * **naive** cells: uncoordinated shards, once with no sync and once
//!   per periodic credit-mean sync setting;
//! * **phase_preserving** cells: the coordinated tier — the splitter
//!   stamps every arrival with a global sequence number, shards replay
//!   their peers' gaps as virtual rotation steps, and sync rounds (when
//!   enabled) reconcile credit *levels* instead of overwriting phases.
//!
//! What this figure documents:
//!
//! * naive degradation grows with `D`: each shard equalizes gaps in its
//!   *own* substream, so the superposed per-computer streams lose the
//!   global spacing Algorithm 2 exists to provide;
//! * the naive credit-mean sync is NOT a repair: forcing every shard
//!   onto the tier-mean `next` vector phase-locks the shards — right
//!   after a merge all `D` dispatchers favor the same computer, and a
//!   tight interval re-locks them before they decorrelate. The sweep
//!   keeps both intervals precisely to archive that effect;
//! * the coordinated tier closes the gap: sequence-stamped replay
//!   reconstructs the single-dispatcher global sequence, so `D = 16`
//!   lands within noise of `D = 1`, with or without the sync plane;
//! * `D = 1` with the tier compiled in is **bit-identical** to the
//!   plain single-dispatcher simulation on both event-list backends
//!   (asserted, not just eyeballed — the sweep is only meaningful if
//!   the tier itself costs nothing).
//!
//! A second scenario measures the dispatch × fault interaction: under
//! sticky `source_hash` splitting every source is pinned to one shard,
//! so when the fastest machine is killed mid-run the resubmitted
//! backlog and the lost capacity hit the tier unevenly; the scenario
//! records the response-ratio penalty against a no-fault baseline (the
//! `fault_interaction` key of the JSON report) — and the *repaired*
//! variant, where the coordinated tier's rate-carrying sync lets ReORR
//! re-solve Algorithm 1 at the measured post-crash utilization.
//!
//! Results are archived into `BENCH_dispatch.json` (override with
//! `--bench-json PATH`). `--quick` keeps the whole thing CI-friendly.

use hetsched::prelude::*;
use hetsched_bench::{ci, json_num, json_str, Mode};

/// Dispatcher shard counts swept (1 is the paper's central scheduler).
const SHARD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// The sync settings swept per shard count in naive mode. `None` is the
/// uncoordinated tier; the intervals are simulated seconds between
/// credit merges, all with a constant 5 s one-way latency.
const SYNC_SETTINGS: [(&str, Option<f64>); 3] = [
    ("none", None),
    ("every 500 s", Some(500.0)),
    ("every 5000 s", Some(5000.0)),
];

/// Sync settings swept in coordinated mode: the stamp replay needs no
/// sync plane at all, and the 500 s plane shows the level merge is
/// harmless (instead of harmful, as the naive overwrite is).
const COORD_SYNC_SETTINGS: [(&str, Option<f64>); 2] =
    [("none", None), ("every 500 s", Some(500.0))];

/// One (D, coordination, sync) cell of the sweep.
struct Cell {
    dispatchers: usize,
    coordination: Coordination,
    sync_label: &'static str,
    result: ExperimentResult,
    /// Mean applied sync rounds per replication.
    syncs_applied: f64,
    /// Largest per-shard deviation from the splitter's *expected*
    /// arrival share (uniform for i.i.d.-random; the exact hash
    /// partition for source_hash).
    max_share_dev: f64,
}

/// The fig2-shaped cluster: 8 computers with a strongly skewed speed
/// profile, the same base the kernel bench uses.
fn dispatch_config() -> ClusterConfig {
    let speeds = [5.0, 3.0, 2.0, 1.5, 1.0, 1.0, 1.0, 1.0];
    ClusterConfig::paper_default(&speeds)
}

fn experiment(
    mode: &Mode,
    dispatchers: usize,
    sync: Option<f64>,
    coordination: Coordination,
) -> Experiment {
    let mut cfg = dispatch_config();
    cfg.dispatch = DispatchSpec::sharded(dispatchers, SplitterSpec::IidRandom);
    cfg.dispatch.coordination = coordination;
    if let Some(interval) = sync {
        cfg.dispatch.sync = Some(SyncSpec::every(interval).with_latency(5.0));
    }
    if let Some(backend) = mode.event_list {
        cfg.event_list = backend;
    }
    let mut exp =
        Experiment::new("fig_dispatch", cfg, PolicySpec::orr()).quick(mode.scale, mode.reps);
    exp.threads = mode.threads;
    exp
}

fn run_cell(
    mode: &Mode,
    dispatchers: usize,
    coordination: Coordination,
    sync_label: &'static str,
    sync: Option<f64>,
) -> Cell {
    let exp = experiment(mode, dispatchers, sync, coordination);
    // The per-cell share accounting measures against the splitter's own
    // expected partition, so a hash splitter's intentionally uneven
    // shares do not read as routing bugs.
    let expected = exp.cluster.dispatch.splitter.expected_shares(dispatchers);
    let result = exp.run().unwrap_or_else(|e| {
        panic!(
            "D={dispatchers}, {} sync {sync_label}: {e}",
            coordination.label()
        )
    });
    let n = result.runs.len() as f64;
    let syncs_applied = result
        .runs
        .iter()
        .map(|r| r.syncs_applied as f64)
        .sum::<f64>()
        / n;
    let max_share_dev = result
        .runs
        .iter()
        .flat_map(|r| {
            r.shards
                .iter()
                .zip(&expected)
                .map(|(s, &e)| (s.share - e).abs())
        })
        .fold(0.0f64, f64::max);
    Cell {
        dispatchers,
        coordination,
        sync_label,
        result,
        syncs_applied,
        max_share_dev,
    }
}

/// The tentpole guarantee, checked at bench time: an explicit `D = 1`
/// tier — naive *or* coordinated — reproduces the implicit
/// (default-config) single dispatcher bit-for-bit on both event-list
/// backends. `obs.kernel.resizes` is backend-dependent by design and
/// never populated here (no `--obs`), so plain equality is the right
/// comparison.
fn assert_d1_bit_identity(mode: &Mode) -> bool {
    for backend in [EventListBackend::Heap, EventListBackend::Calendar] {
        for coordination in [Coordination::Naive, Coordination::PhasePreserving] {
            let mut tiered_mode = mode.clone();
            tiered_mode.event_list = Some(backend);
            let tiered = experiment(&tiered_mode, 1, None, coordination);
            let mut plain = tiered.clone();
            plain.cluster.dispatch = Default::default();
            for rep in 0..mode.reps.min(2) {
                let a = tiered.run_single(rep).expect("tiered run");
                let b = plain.run_single(rep).expect("plain run");
                assert_eq!(
                    a,
                    b,
                    "D=1 {} tier diverged from the single-dispatcher path on the {} backend",
                    coordination.label(),
                    backend.label()
                );
            }
        }
    }
    true
}

/// The dispatch × fault interaction scenario: `D = 8` shards under
/// sticky source-hash splitting, with the fastest machine (index 0,
/// speed 5 of a total 15.5) deterministically killed 40% into the run
/// and never repaired. In-flight and queued jobs resubmit through the
/// tier after a 10 s notice delay. Three variants: the no-fault
/// baseline, the sticky ORR tier eating the crash, and the repaired
/// tier — coordinated sharding plus rate-aware ReORR re-solving
/// Algorithm 1 at the measured post-crash utilization.
struct FaultInteraction {
    kill_at: f64,
    baseline: ExperimentResult,
    faulty: ExperimentResult,
    repaired: ExperimentResult,
}

fn fault_interaction(mode: &Mode) -> FaultInteraction {
    let kill_at = 0.4 * dispatch_config().scaled(mode.scale).horizon;
    let mut cfg = dispatch_config();
    cfg.dispatch = DispatchSpec::sharded(8, SplitterSpec::SourceHash { sources: 64 });
    if let Some(backend) = mode.event_list {
        cfg.event_list = backend;
    }
    let mut faulty_cfg = cfg.clone();
    faulty_cfg.faults = Some(FaultSpec {
        up_time: DistSpec::Deterministic { value: kill_at },
        down_time: DistSpec::Deterministic { value: 1.0e12 },
        on_crash: JobFaultSemantics::Resubmit,
        notice_delay_mean: 10.0,
        servers: Some(vec![0]),
    });
    let mut repaired_cfg = faulty_cfg.clone();
    repaired_cfg.dispatch = repaired_cfg
        .dispatch
        .coordinated()
        .with_sync(SyncSpec::every(500.0).with_latency(5.0));
    let run = |cfg: ClusterConfig, policy: PolicySpec, name: &str| -> ExperimentResult {
        let mut exp = Experiment::new(name, cfg, policy).quick(mode.scale, mode.reps);
        exp.threads = mode.threads;
        exp.run().unwrap_or_else(|e| panic!("{name}: {e}"))
    };
    FaultInteraction {
        kill_at,
        baseline: run(cfg, PolicySpec::orr(), "fig_dispatch_fault_baseline"),
        faulty: run(faulty_cfg, PolicySpec::orr(), "fig_dispatch_fault_kill"),
        repaired: run(
            repaired_cfg,
            PolicySpec::reopt_orr(),
            "fig_dispatch_fault_repaired",
        ),
    }
}

fn fault_interaction_json(fi: &FaultInteraction) -> String {
    let base = fi.baseline.mean_response_ratio.mean;
    let hit = fi.faulty.mean_response_ratio.mean;
    let fixed = fi.repaired.mean_response_ratio.mean;
    let n = fi.faulty.runs.len() as f64;
    let mean =
        |f: &dyn Fn(&RunStats) -> f64| -> f64 { fi.faulty.runs.iter().map(f).sum::<f64>() / n };
    let max_share: f64 = fi
        .faulty
        .runs
        .iter()
        .flat_map(|r| r.shards.iter().map(|s| s.share))
        .fold(0.0f64, f64::max);
    format!(
        "{{ \"splitter\": \"source_hash\", \"dispatchers\": 8, \"kill_time\": {}, \
         \"baseline_mean_response_ratio\": {}, \"faulty_mean_response_ratio\": {}, \
         \"penalty_pct\": {}, \"repaired_mean_response_ratio\": {}, \
         \"repaired_penalty_pct\": {}, \"crashes\": {}, \"jobs_resubmitted\": {}, \
         \"availability\": {}, \"max_shard_share\": {} }}",
        json_num(fi.kill_at),
        json_num(base),
        json_num(hit),
        json_num(100.0 * (hit - base) / base),
        json_num(fixed),
        json_num(100.0 * (fixed - base) / base),
        json_num(mean(&|r| r.crashes as f64)),
        json_num(mean(&|r| r.jobs_resubmitted as f64)),
        json_num(mean(&|r| r.availability)),
        json_num(max_share),
    )
}

fn report_json(
    mode: &Mode,
    cells: &[Cell],
    baseline_orr: f64,
    identical: bool,
    fi: &FaultInteraction,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"bin\": {},\n", json_str("fig_dispatch")));
    out.push_str(&format!("  \"scale\": {},\n", json_num(mode.scale)));
    out.push_str(&format!("  \"reps\": {},\n", mode.reps));
    out.push_str(&format!("  \"d1_bit_identical\": {identical},\n"));
    out.push_str(&format!(
        "  \"baseline_mean_response_ratio\": {},\n",
        json_num(baseline_orr)
    ));
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            let orr = c.result.mean_response_ratio.mean;
            format!(
                "    {{ \"dispatchers\": {}, \"coordination\": {}, \"sync\": {}, \
                 \"mean_response_ratio\": {}, \"ci_half_width\": {}, \
                 \"degradation_pct\": {}, \"syncs_applied\": {}, \
                 \"max_share_dev\": {} }}",
                c.dispatchers,
                json_str(c.coordination.label()),
                json_str(c.sync_label),
                json_num(orr),
                json_num(c.result.mean_response_ratio.half_width),
                json_num(100.0 * (orr - baseline_orr) / baseline_orr),
                json_num(c.syncs_applied),
                json_num(c.max_share_dev),
            )
        })
        .collect();
    out.push_str(&format!("  \"cells\": [\n{}\n  ],\n", rows.join(",\n")));
    out.push_str(&format!(
        "  \"fault_interaction\": {}\n",
        fault_interaction_json(fi)
    ));
    out.push_str("}\n");
    out
}

fn main() {
    let mode = Mode::from_env();

    println!("\nDispatch tier: D=1 bit-identity check (both backends, both modes)");
    let identical = assert_d1_bit_identity(&mode);
    println!("D=1 tier bit-identical to the single-dispatcher path: {identical}");

    println!("\nORR degradation under front-end sharding (i.i.d.-random splitter)");
    let mut cells = Vec::new();
    for &d in &SHARD_COUNTS {
        for &(label, sync) in &SYNC_SETTINGS {
            if d == 1 && sync.is_some() {
                continue; // one shard has no peer to sync with
            }
            cells.push(run_cell(&mode, d, Coordination::Naive, label, sync));
        }
        if d > 1 {
            for &(label, sync) in &COORD_SYNC_SETTINGS {
                cells.push(run_cell(
                    &mode,
                    d,
                    Coordination::PhasePreserving,
                    label,
                    sync,
                ));
            }
        }
    }
    let baseline_orr = cells
        .iter()
        .find(|c| c.dispatchers == 1)
        .expect("D=1 cell present")
        .result
        .mean_response_ratio
        .mean;

    let mut t = Table::new([
        "D",
        "coordination",
        "sync",
        "mean response ratio",
        "degradation",
        "syncs/run",
        "max share dev",
    ]);
    for c in &cells {
        let orr = c.result.mean_response_ratio.mean;
        t.row([
            format!("{}", c.dispatchers),
            c.coordination.label().to_string(),
            c.sync_label.to_string(),
            ci(&c.result.mean_response_ratio),
            format!("{:+.2}%", 100.0 * (orr - baseline_orr) / baseline_orr),
            format!("{:.0}", c.syncs_applied),
            format!("{:.4}", c.max_share_dev),
        ]);
    }
    t.print();
    if let Some(c) = cells.iter().find(|c| {
        c.dispatchers == 16
            && c.coordination == Coordination::PhasePreserving
            && c.sync_label == "none"
    }) {
        let orr = c.result.mean_response_ratio.mean;
        println!(
            "headline: coordinated D=16 degradation {:+.2}% vs D=1",
            100.0 * (orr - baseline_orr) / baseline_orr
        );
    }

    println!("\nDispatch x faults: kill the fastest machine under source-hash splitting");
    let fi = fault_interaction(&mode);
    let base = fi.baseline.mean_response_ratio.mean;
    let hit = fi.faulty.mean_response_ratio.mean;
    let fixed = fi.repaired.mean_response_ratio.mean;
    let mut t = Table::new([
        "scenario",
        "mean response ratio",
        "resubmitted",
        "availability",
    ]);
    let n = fi.faulty.runs.len() as f64;
    t.row([
        "no fault".to_string(),
        ci(&fi.baseline.mean_response_ratio),
        "0".to_string(),
        "1.000".to_string(),
    ]);
    t.row([
        format!("kill fastest @ {:.0} s (sticky ORR)", fi.kill_at),
        ci(&fi.faulty.mean_response_ratio),
        format!(
            "{:.0}",
            fi.faulty
                .runs
                .iter()
                .map(|r| r.jobs_resubmitted as f64)
                .sum::<f64>()
                / n
        ),
        format!(
            "{:.3}",
            fi.faulty.runs.iter().map(|r| r.availability).sum::<f64>() / n
        ),
    ]);
    t.row([
        "same kill (coordinated ReORR)".to_string(),
        ci(&fi.repaired.mean_response_ratio),
        format!(
            "{:.0}",
            fi.repaired
                .runs
                .iter()
                .map(|r| r.jobs_resubmitted as f64)
                .sum::<f64>()
                / n
        ),
        format!(
            "{:.3}",
            fi.repaired.runs.iter().map(|r| r.availability).sum::<f64>() / n
        ),
    ]);
    t.print();
    println!(
        "response-ratio penalty: sticky {:+.1}%, repaired {:+.1}%",
        100.0 * (hit - base) / base,
        100.0 * (fixed - base) / base
    );

    if let Some(path) = &mode.json {
        let results: Vec<&ExperimentResult> = cells.iter().map(|c| &c.result).collect();
        hetsched::report::save_json(path.to_str().expect("utf-8 path"), &results)
            .expect("archiving results");
        println!("results -> {}", path.display());
    }

    let path = mode
        .bench_json
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_dispatch.json"));
    let json = report_json(&mode, &cells, baseline_orr, identical, &fi);
    std::fs::write(&path, json).expect("writing dispatch bench json");
    println!("dispatch sweep -> {}", path.display());
}

//! Table 3 — the base system configuration used by §5.3–§5.4.
//!
//! Prints the configuration together with the allocations the two
//! schemes compute for it at ρ = 0.7, making the "disproportionately
//! high share to fast machines" effect concrete.

use hetsched::prelude::*;
use hetsched_bench::Mode;

fn main() {
    let mode = Mode::from_env();
    let speeds = scenarios::table3_speeds();
    println!("\nTable 3: base system configuration (15 computers, aggregate speed 44)");
    let mut t = Table::new([
        "speed",
        "number",
        "weighted α (each)",
        "optimized α (each, rho=0.7)",
    ]);
    let sys = HetSystem::from_utilization(&speeds, 0.7).unwrap();
    let weighted = sys.weighted_allocation();
    let optimized = closed_form::optimized_allocation(&sys);

    // Group by distinct speed, as the paper's table does.
    let mut distinct: Vec<f64> = Vec::new();
    for &s in &speeds {
        if !distinct.contains(&s) {
            distinct.push(s);
        }
    }
    for &s in &distinct {
        let idx: Vec<usize> = (0..speeds.len()).filter(|&i| speeds[i] == s).collect();
        t.row([
            format!("{s}"),
            format!("{}", idx.len()),
            format!("{:.4}", weighted[idx[0]]),
            format!("{:.4}", optimized[idx[0]]),
        ]);
    }
    t.print();
    let total_opt_fast: f64 = (0..speeds.len())
        .filter(|&i| speeds[i] >= 5.0)
        .map(|i| optimized[i])
        .sum();
    println!(
        "\nThe three fastest machines (27/44 = {:.0}% of capacity) receive {:.0}% of\nthe jobs under the optimized scheme at rho = 0.7.",
        100.0 * 27.0 / 44.0,
        100.0 * total_opt_fast
    );
    mode.archive(&(speeds, weighted, optimized));
}

//! Extension: clairvoyant baselines around ORR.
//!
//! Situates the paper's static schemes between stronger and weaker
//! information regimes on the Table-3 base configuration:
//!
//! * WRAN/ORR — the paper's static range;
//! * DYNAMIC — delayed load feedback (the paper's yardstick);
//! * JSQ(2)/JSQ(4) — instantaneous load, sampled;
//! * SITA-E — clairvoyant job sizes, static routing.

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let policies = [
        PolicySpec::wran(),
        PolicySpec::wrr(),
        PolicySpec::oran(),
        PolicySpec::orr(),
        PolicySpec::SitaE,
        PolicySpec::DynamicLeastLoad,
        PolicySpec::Jsq { d: 2 },
        PolicySpec::Jsq { d: 4 },
    ];

    println!("\nExtra baselines (Table-3 base config, rho = 0.70)");
    let mut t = Table::new([
        "policy",
        "information",
        "mean resp ratio",
        "fairness",
        "p95 ratio",
    ]);
    let info = [
        "speeds",
        "speeds",
        "speeds+rho",
        "speeds+rho",
        "job sizes (clairvoyant)",
        "delayed queue lengths",
        "2 live queue probes",
        "4 live queue probes",
    ];
    let points = policies
        .iter()
        .map(|policy| (policy.label(), scenarios::fig5_config(0.7), *policy))
        .collect();
    eprintln!(
        "extra_baselines: {} policies through one sweep pool",
        policies.len()
    );
    let (results, stats) = mode.run_sweep(points);
    for ((policy, info), r) in policies.iter().zip(info).zip(&results) {
        t.row([
            policy.label(),
            info.to_string(),
            ci(&r.mean_response_ratio),
            ci(&r.fairness),
            ci(&r.p95_response_ratio),
        ]);
    }
    t.print();
    println!(
        "\nshape check: more information helps — static < delayed-dynamic <\nlive-probe policies; ORR should be the best of the static rows."
    );
    mode.archive(&results);
    mode.archive_bench("extra_baselines", &[stats]);
}

//! Figure 2 — comparison of job dispatching strategies.
//!
//! 8 computers with workload fractions {.35, .22, .15, .12, .04, .04,
//! .04, .04}; hyperexponential arrivals with mean inter-arrival 2.2 s
//! (CV 3); the workload allocation deviation `Σ (α_i − α'_i)²` is
//! reported for 30 consecutive 120-second intervals. Round-robin based
//! dispatching should be far below random based dispatching and fluctuate
//! far less.

use hetsched::prelude::*;
use hetsched::scenarios::{fig2_deviations, Fig2Dispatcher};
use hetsched_bench::Mode;

fn main() {
    let mode = Mode::from_env();
    // The seed plays the role of the paper's random number stream; the
    // figure shows one representative trace.
    let seed = 1;
    let rr = fig2_deviations(Fig2Dispatcher::RoundRobin, seed);
    let ran = fig2_deviations(Fig2Dispatcher::Random, seed);

    println!("\nFigure 2: workload allocation deviation per 120 s interval");
    let mut t = Table::new(["interval", "round-robin", "random"]);
    for (i, (a, b)) in rr.iter().zip(&ran).enumerate() {
        t.row([format!("{}", i + 1), format!("{a:.5}"), format!("{b:.5}")]);
    }
    t.print();

    let mut chart = Chart::new(
        "Figure 2: allocation deviation per interval (lower = smoother)",
        64,
        14,
    );
    let as_pts = |v: &[f64]| -> Vec<(f64, f64)> {
        v.iter()
            .enumerate()
            .map(|(i, &d)| ((i + 1) as f64, d))
            .collect()
    };
    chart.series("round-robin", &as_pts(&rr));
    chart.series("random", &as_pts(&ran));
    println!();
    chart.print();

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let max = |v: &[f64]| v.iter().copied().fold(0.0f64, f64::max);
    println!(
        "\nround-robin: mean {:.5}, max {:.5}\nrandom:      mean {:.5}, max {:.5}",
        mean(&rr),
        max(&rr),
        mean(&ran),
        max(&ran)
    );
    println!(
        "shape check: round-robin mean is {:.1}x below random",
        mean(&ran) / mean(&rr)
    );
    mode.archive(&(rr, ran));
}

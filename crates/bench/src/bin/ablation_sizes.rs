//! Ablation (extension): job-size variability.
//!
//! The paper fixes Bounded Pareto `B(10, 21600, 1.0)`. This ablation
//! sweeps the tail index α and swaps in exponential / lognormal / Weibull
//! sizes with the same mean, verifying the ORR-over-WRR ranking is a
//! property of the scheduling, not of one particular size distribution
//! (PS insensitivity predicts exactly this for the *mean* ratio).

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let mean = 76.8;
    let sizes: Vec<(String, DistSpec)> = vec![
        (
            "BP alpha=0.7".into(),
            DistSpec::BoundedPareto {
                k: 10.0,
                p: 21600.0,
                alpha: 0.7,
            },
        ),
        ("BP alpha=1.0 (paper)".into(), DistSpec::paper_job_sizes()),
        (
            "BP alpha=1.3".into(),
            DistSpec::BoundedPareto {
                k: 10.0,
                p: 21600.0,
                alpha: 1.3,
            },
        ),
        (
            "BP alpha=1.9".into(),
            DistSpec::BoundedPareto {
                k: 10.0,
                p: 21600.0,
                alpha: 1.9,
            },
        ),
        ("exponential".into(), DistSpec::Exponential { mean }),
        (
            "lognormal cv=3".into(),
            DistSpec::LogNormal { mean, cv: 3.0 },
        ),
        (
            "weibull k=0.5".into(),
            DistSpec::Weibull { mean, shape: 0.5 },
        ),
    ];
    let policies = [PolicySpec::wrr(), PolicySpec::orr()];

    println!("\nAblation: job-size distribution (Table-3 base config, rho = 0.70)");
    let mut t = Table::new(["sizes", "policy", "mean resp ratio", "fairness", "ORR gain"]);
    let mut points = Vec::new();
    for (label, dist) in &sizes {
        for &policy in &policies {
            let mut cfg = scenarios::fig5_config(0.7);
            cfg.job_sizes = *dist;
            points.push((format!("sizes {label} {}", policy.label()), cfg, policy));
        }
    }
    eprintln!(
        "ablation_sizes: {} points through one sweep pool",
        points.len()
    );
    let (archive, stats) = mode.run_sweep(points);
    for ((label, _), pair) in sizes.iter().zip(archive.chunks(policies.len())) {
        let wrr_ratio = pair[0].mean_response_ratio.mean;
        for (i, (policy, r)) in policies.iter().zip(pair).enumerate() {
            let gain = if i == 1 {
                format!(
                    "{:.0}%",
                    100.0 * (wrr_ratio - r.mean_response_ratio.mean) / wrr_ratio
                )
            } else {
                String::new()
            };
            t.row([
                label.clone(),
                policy.label(),
                ci(&r.mean_response_ratio),
                ci(&r.fairness),
                gain,
            ]);
        }
    }
    t.print();
    println!("\nshape check: ORR beats WRR for every size distribution.");
    mode.archive(&archive);
    mode.archive_bench("ablation_sizes", &[stats]);
}

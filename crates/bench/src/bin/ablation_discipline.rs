//! Ablation (extension): service discipline.
//!
//! The paper's analysis assumes processor sharing; its simulator runs
//! "preemptive round-robin processor scheduling". This ablation runs ORR
//! and WRR on the Table-3 base configuration under exact PS, quantum
//! round-robin with several quanta, and FCFS, showing (a) finite quanta
//! reproduce PS for realistic quantum sizes, and (b) FCFS is the odd one
//! out under heavy-tailed sizes (huge jobs block small ones, inflating
//! the response ratio and wrecking fairness).

use hetsched::prelude::*;
use hetsched_bench::{ci, Mode};

fn main() {
    let mode = Mode::from_env();
    let disciplines = [
        ("PS (exact)", DisciplineSpec::ProcessorSharing),
        (
            "RR q=0.01s",
            DisciplineSpec::QuantumRoundRobin { quantum: 0.01 },
        ),
        (
            "RR q=0.1s",
            DisciplineSpec::QuantumRoundRobin { quantum: 0.1 },
        ),
        (
            "RR q=1s",
            DisciplineSpec::QuantumRoundRobin { quantum: 1.0 },
        ),
        ("FCFS", DisciplineSpec::Fcfs),
    ];
    let policies = [PolicySpec::wrr(), PolicySpec::orr()];

    println!("\nAblation: service discipline (Table-3 base config, rho = 0.70)");
    let mut t = Table::new(["discipline", "policy", "mean resp ratio", "fairness"]);
    let mut points = Vec::new();
    for &(label, disc) in &disciplines {
        for &policy in &policies {
            let mut cfg = scenarios::fig5_config(0.7);
            cfg.discipline = disc;
            points.push((format!("disc {label} {}", policy.label()), cfg, policy));
        }
    }
    eprintln!(
        "ablation_discipline: {} points through one sweep pool",
        points.len()
    );
    let (archive, stats) = mode.run_sweep(points);
    for ((label, _), pair) in disciplines.iter().zip(archive.chunks(policies.len())) {
        for (policy, r) in policies.iter().zip(pair) {
            t.row([
                label.to_string(),
                policy.label(),
                ci(&r.mean_response_ratio),
                ci(&r.fairness),
            ]);
        }
    }
    t.print();
    println!(
        "\nshape check: the three RR quanta should track PS closely; FCFS should\nshow a far larger response ratio and fairness (head-of-line blocking by\nheavy-tailed jobs)."
    );
    mode.archive(&archive);
    mode.archive_bench("ablation_discipline", &[stats]);
}

//! The pre-overhaul future-event list, preserved as a perf baseline.
//!
//! This is the binary-heap queue the kernel shipped with before the
//! generation-stamped rewrite: payloads live *inside* the heap entries,
//! and cancellation goes through a `HashSet<LegacyEventId>` that every
//! single `pop` must consult — even in runs that never cancel anything.
//! The criterion bench (`benches/event_kernel.rs`) and the `fig_kernel`
//! binary race it against the current backends so the speedup claimed in
//! the perf trajectory stays measurable instead of anecdotal.
//!
//! Frozen on purpose: do not "fix" or optimize this module.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use hetsched::desim::SimTime;

/// Identifier of an event scheduled on the legacy queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LegacyEventId(u64);

struct Entry<E> {
    time: SimTime,
    seq: u64,
    id: LegacyEventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) is the greatest element.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The old future-event list: heap entries own their payloads and
/// cancellation is a `HashSet` probe on every pop.
pub struct LegacyEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<LegacyEventId>,
    next_seq: u64,
}

impl<E> Default for LegacyEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> LegacyEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LegacyEventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with pre-allocated heap capacity.
    pub fn with_capacity(cap: usize) -> Self {
        LegacyEventQueue {
            heap: BinaryHeap::with_capacity(cap),
            ..Self::new()
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> LegacyEventId {
        let id = LegacyEventId(self.next_seq);
        self.heap.push(Entry {
            time,
            seq: self.next_seq,
            id,
            payload,
        });
        self.next_seq += 1;
        id
    }

    /// Lazily cancels a scheduled event; the entry is discarded when it
    /// surfaces at the heap top.
    pub fn cancel(&mut self, id: LegacyEventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Removes and returns the earliest live `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.id) {
                continue;
            }
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Number of entries in the heap, including not-yet-purged cancelled
    /// ones — the legacy stored-count semantics.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = LegacyEventQueue::new();
        q.schedule(SimTime::new(2.0), "late");
        q.schedule(SimTime::new(1.0), "a");
        q.schedule(SimTime::new(1.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, ["a", "b", "late"]);
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = LegacyEventQueue::new();
        let id = q.schedule(SimTime::new(1.0), 1u32);
        q.schedule(SimTime::new(2.0), 2u32);
        assert!(q.cancel(id));
        assert_eq!(q.pop(), Some((SimTime::new(2.0), 2)));
        assert_eq!(q.pop(), None);
    }
}

//! Two-stage hyperexponential distribution `H2`.
//!
//! The paper models job inter-arrival times as a two-stage hyperexponential
//! with CV = 3.0 (§4.1), citing Zhou's trace whose inter-arrival CV is 2.64
//! — "far from Poisson". An `H2` draw picks branch 1 with probability `p`
//! (exponential with rate `r1`), otherwise branch 2 (rate `r2`); with two
//! rates it can realize any CV ≥ 1.
//!
//! [`Hyperexp2::from_mean_cv`] uses the standard *balanced-means*
//! construction (each branch contributes half the mean, cf. Kleinrock):
//!
//! ```text
//! p  = (1 + sqrt((c² − 1) / (c² + 1))) / 2
//! r1 = 2p / m,   r2 = 2(1 − p) / m
//! ```
//!
//! which yields exactly mean `m` and coefficient of variation `c`.

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{Moments, Sample};

/// Two-stage hyperexponential: branch 1 w.p. `p` (rate `r1`), else branch 2
/// (rate `r2`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hyperexp2 {
    p: f64,
    r1: f64,
    r2: f64,
}

impl Hyperexp2 {
    /// From explicit branch parameters.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1` and both rates are positive and finite.
    pub fn new(p: f64, r1: f64, r2: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "branch probability {p} ∉ [0,1]");
        assert!(
            r1.is_finite() && r1 > 0.0 && r2.is_finite() && r2 > 0.0,
            "branch rates must be positive and finite, got {r1}, {r2}"
        );
        Hyperexp2 { p, r1, r2 }
    }

    /// Balanced-means construction for a target mean and CV.
    ///
    /// # Panics
    /// Panics unless `mean > 0` and `cv ≥ 1` (an H2 cannot realize CV < 1).
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive and finite, got {mean}"
        );
        assert!(
            cv.is_finite() && cv >= 1.0,
            "hyperexponential requires cv >= 1, got {cv}"
        );
        let c2 = cv * cv;
        let delta = ((c2 - 1.0) / (c2 + 1.0)).sqrt();
        let p = 0.5 * (1.0 + delta);
        // For cv == 1 this degenerates to p = 1/2 with equal rates — an
        // ordinary exponential.
        Hyperexp2 {
            p,
            r1: 2.0 * p / mean,
            r2: 2.0 * (1.0 - p) / mean,
        }
    }

    /// Branch-1 probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Branch rates `(r1, r2)`.
    pub fn rates(&self) -> (f64, f64) {
        (self.r1, self.r2)
    }
}

impl Sample for Hyperexp2 {
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        let rate = if rng.chance(self.p) { self.r1 } else { self.r2 };
        rng.exponential(rate)
    }
}

impl Moments for Hyperexp2 {
    fn mean(&self) -> f64 {
        self.p / self.r1 + (1.0 - self.p) / self.r2
    }

    fn second_moment(&self) -> f64 {
        2.0 * self.p / (self.r1 * self.r1) + 2.0 * (1.0 - self.p) / (self.r2 * self.r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_moments;
    use proptest::prelude::*;

    #[test]
    fn balanced_means_hits_targets() {
        for &(m, c) in &[(2.2, 3.0), (1.0, 1.0), (76.8, 2.64), (10.0, 5.0)] {
            let d = Hyperexp2::from_mean_cv(m, c);
            assert!((d.mean() - m).abs() / m < 1e-12, "mean for ({m}, {c})");
            assert!((d.cv() - c).abs() / c < 1e-12, "cv for ({m}, {c})");
        }
    }

    #[test]
    fn paper_arrival_distribution() {
        // §3.2 example: hyperexponential arrivals, mean 2.2 s; §4.1: CV 3.
        let d = Hyperexp2::from_mean_cv(2.2, 3.0);
        assert!((d.mean() - 2.2).abs() < 1e-12);
        assert!((d.cv() - 3.0).abs() < 1e-12);
        // Each branch carries half the mean (balanced means).
        let (r1, r2) = d.rates();
        let half1 = d.p() / r1;
        let half2 = (1.0 - d.p()) / r2;
        assert!((half1 - 1.1).abs() < 1e-12);
        assert!((half2 - 1.1).abs() < 1e-12);
    }

    #[test]
    fn cv_one_is_exponential() {
        let d = Hyperexp2::from_mean_cv(4.0, 1.0);
        let (r1, r2) = d.rates();
        assert!((r1 - r2).abs() < 1e-12, "rates should coincide at cv=1");
        assert!((r1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_moments() {
        // High CV needs many samples for the CV estimate to settle.
        check_moments(&Hyperexp2::from_mean_cv(2.2, 3.0), 202, 400_000, 0.02, 0.05);
    }

    #[test]
    fn explicit_constructor_moments() {
        let d = Hyperexp2::new(0.3, 2.0, 0.5);
        let mean = 0.3 / 2.0 + 0.7 / 0.5;
        assert!((d.mean() - mean).abs() < 1e-12);
        let m2 = 2.0 * 0.3 / 4.0 + 2.0 * 0.7 / 0.25;
        assert!((d.second_moment() - m2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cv >= 1")]
    fn rejects_cv_below_one() {
        Hyperexp2::from_mean_cv(1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "∉ [0,1]")]
    fn rejects_bad_probability() {
        Hyperexp2::new(1.5, 1.0, 1.0);
    }

    proptest! {
        /// The balanced-means construction hits (mean, cv) across the
        /// parameter space relevant to the experiments.
        #[test]
        fn construction_is_exact(m in 0.01f64..1e4, c in 1.0f64..10.0) {
            let d = Hyperexp2::from_mean_cv(m, c);
            prop_assert!((d.mean() - m).abs() / m < 1e-9);
            prop_assert!((d.cv() - c).abs() / c < 1e-9);
            prop_assert!((0.0..=1.0).contains(&d.p()));
        }
    }
}

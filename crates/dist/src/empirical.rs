//! Empirical distribution: replay measured data.
//!
//! The paper motivates its hyperexponential arrivals with Zhou's measured
//! trace; a production scheduler would calibrate against *its own*
//! measurements. [`Empirical`] wraps a sample of observations (e.g. job
//! sizes exported from a `hetsched-cluster` trace capture, or real
//! accounting logs) and samples from the piecewise-linear
//! interpolation of its empirical CDF — a continuous distribution whose
//! moments converge to the sample's.

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{Moments, Sample};

/// A continuous distribution fitted to observed data (linearly
/// interpolated empirical CDF).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Empirical {
    /// Sorted observations.
    sorted: Vec<f64>,
    mean: f64,
    second_moment: f64,
}

impl Empirical {
    /// Fits the distribution to `data`.
    ///
    /// # Panics
    /// Panics if `data` has fewer than 2 points or contains non-finite /
    /// negative values (workload quantities are non-negative).
    pub fn fit(data: &[f64]) -> Self {
        assert!(data.len() >= 2, "need at least 2 observations");
        assert!(
            data.iter().all(|&x| x.is_finite() && x >= 0.0),
            "observations must be finite and non-negative"
        );
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len() as f64;
        let mean = sorted.iter().sum::<f64>() / n;
        let second_moment = sorted.iter().map(|x| x * x).sum::<f64>() / n;
        Empirical {
            sorted,
            mean,
            second_moment,
        }
    }

    /// Number of fitted observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a fitted instance).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile of the interpolated CDF, `0 ≤ q ≤ 1`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let n = self.sorted.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }
}

impl Sample for Empirical {
    /// Inverse-CDF sampling with linear interpolation between order
    /// statistics.
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        self.quantile(rng.next_f64())
    }
}

impl Moments for Empirical {
    fn mean(&self) -> f64 {
        self.mean
    }

    fn second_moment(&self) -> f64 {
        self.second_moment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::testutil::check_moments;

    #[test]
    fn fits_and_reports_sample_moments() {
        let e = Empirical::fit(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.mean(), 2.5);
        assert_eq!(e.second_moment(), 7.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let e = Empirical::fit(&[0.0, 10.0]);
        assert_eq!(e.quantile(0.0), 0.0);
        assert_eq!(e.quantile(0.5), 5.0);
        assert_eq!(e.quantile(1.0), 10.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let e = Empirical::fit(&[3.0, 1.0, 2.0]);
        assert_eq!(e.quantile(0.0), 1.0);
        assert_eq!(e.quantile(1.0), 3.0);
    }

    #[test]
    fn samples_stay_within_range() {
        let e = Empirical::fit(&[5.0, 7.0, 9.0]);
        let mut rng = Rng64::from_seed(1);
        for _ in 0..10_000 {
            let x = e.sample(&mut rng);
            assert!((5.0..=9.0).contains(&x));
        }
    }

    #[test]
    fn sampling_matches_sample_moments() {
        // Fit against a big exponential sample; the empirical
        // distribution's draws must reproduce the fitted moments.
        let mut rng = Rng64::from_seed(2);
        let gen = Exponential::from_mean(3.0);
        let data: Vec<f64> = (0..20_000).map(|_| gen.sample(&mut rng)).collect();
        let e = Empirical::fit(&data);
        assert!((e.mean() - 3.0).abs() < 0.1);
        check_moments(&e, 3, 200_000, 0.02, 0.05);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_sample() {
        Empirical::fit(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_data() {
        Empirical::fit(&[1.0, -2.0]);
    }
}

//! Arrival processes: stateful generators of inter-arrival times.
//!
//! The paper's simulator uses an i.i.d. (renewal) hyperexponential arrival
//! process with CV = 3. [`IidArrivals`] wraps any [`Sample`]+[`Moments`]
//! distribution into such a process. [`MmppArrivals`] is a two-state
//! Markov-modulated Poisson process used by the burstiness ablation — it
//! models an "on/off" load pattern closer to Zhou's measured trace, with
//! *correlated* inter-arrival times, something no renewal process can
//! express.

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{Moments, Sample};

/// A stream of inter-arrival gaps.
pub trait ArrivalProcess {
    /// Draws the gap until the next arrival.
    fn next_interarrival(&mut self, rng: &mut Rng64) -> f64;

    /// Long-run arrival rate (jobs per second).
    fn mean_rate(&self) -> f64;
}

/// Renewal process: gaps drawn i.i.d. from `D`.
#[derive(Debug, Clone)]
pub struct IidArrivals<D> {
    dist: D,
}

impl<D: Sample + Moments> IidArrivals<D> {
    /// Wraps a distribution into a renewal arrival process.
    pub fn new(dist: D) -> Self {
        IidArrivals { dist }
    }

    /// The underlying gap distribution.
    pub fn dist(&self) -> &D {
        &self.dist
    }
}

impl<D: Sample + Moments> ArrivalProcess for IidArrivals<D> {
    #[inline]
    fn next_interarrival(&mut self, rng: &mut Rng64) -> f64 {
        self.dist.sample(rng)
    }

    fn mean_rate(&self) -> f64 {
        1.0 / self.dist.mean()
    }
}

/// Two-state Markov-modulated Poisson process.
///
/// The process alternates between a *calm* state 0 and a *bursty* state 1.
/// In state `s` arrivals are Poisson with rate `arrival_rate[s]`, and the
/// sojourn in the state is exponential with rate `switch_rate[s]`. The
/// stationary probability of state `s` is proportional to the mean sojourn
/// `1 / switch_rate[s]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MmppArrivals {
    arrival_rate: [f64; 2],
    switch_rate: [f64; 2],
    state: usize,
}

impl MmppArrivals {
    /// Creates an MMPP from per-state arrival and switch rates, starting in
    /// the calm state.
    ///
    /// # Panics
    /// Panics unless all rates are positive and finite.
    pub fn new(arrival_rate: [f64; 2], switch_rate: [f64; 2]) -> Self {
        for &r in arrival_rate.iter().chain(switch_rate.iter()) {
            assert!(
                r.is_finite() && r > 0.0,
                "MMPP rates must be positive and finite, got {r}"
            );
        }
        MmppArrivals {
            arrival_rate,
            switch_rate,
            state: 0,
        }
    }

    /// Builds a bursty process with a target overall rate.
    ///
    /// `burst_factor > 1` is the ratio of the bursty state's rate to the
    /// calm state's rate; `frac_bursty ∈ (0, 1)` is the stationary fraction
    /// of time spent bursting; `cycle` is the mean calm+burst cycle length
    /// in seconds (controls correlation time).
    pub fn with_rate(rate: f64, burst_factor: f64, frac_bursty: f64, cycle: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(burst_factor > 1.0, "burst_factor must exceed 1");
        assert!(
            (0.0..1.0).contains(&frac_bursty) && frac_bursty > 0.0,
            "frac_bursty must lie in (0,1), got {frac_bursty}"
        );
        assert!(cycle > 0.0 && cycle.is_finite(), "cycle must be positive");
        // rate = (1−f)·r0 + f·b·r0  ⇒  r0 = rate / (1 − f + f·b)
        let r0 = rate / (1.0 - frac_bursty + frac_bursty * burst_factor);
        let r1 = burst_factor * r0;
        // Mean sojourns: calm (1−f)·cycle, bursty f·cycle.
        let q0 = 1.0 / ((1.0 - frac_bursty) * cycle);
        let q1 = 1.0 / (frac_bursty * cycle);
        MmppArrivals::new([r0, r1], [q0, q1])
    }

    /// Current modulation state (0 = calm, 1 = bursty).
    pub fn state(&self) -> usize {
        self.state
    }
}

impl ArrivalProcess for MmppArrivals {
    fn next_interarrival(&mut self, rng: &mut Rng64) -> f64 {
        // Competing exponentials: in the current state, the next arrival
        // races the next state switch; accumulate switch epochs until an
        // arrival wins.
        let mut gap = 0.0;
        loop {
            let t_arr = rng.exponential(self.arrival_rate[self.state]);
            let t_sw = rng.exponential(self.switch_rate[self.state]);
            if t_arr <= t_sw {
                return gap + t_arr;
            }
            gap += t_sw;
            self.state ^= 1;
        }
    }

    fn mean_rate(&self) -> f64 {
        // Stationary weights ∝ mean sojourn times.
        let w0 = 1.0 / self.switch_rate[0];
        let w1 = 1.0 / self.switch_rate[1];
        (w0 * self.arrival_rate[0] + w1 * self.arrival_rate[1]) / (w0 + w1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use crate::hyperexp::Hyperexp2;

    fn empirical_rate_and_cv(proc_: &mut dyn ArrivalProcess, seed: u64, n: usize) -> (f64, f64) {
        let mut rng = Rng64::from_seed(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let g = proc_.next_interarrival(&mut rng);
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = (sumsq / n as f64 - mean * mean).max(0.0);
        (1.0 / mean, var.sqrt() / mean)
    }

    #[test]
    fn iid_exponential_rate() {
        let mut p = IidArrivals::new(Exponential::from_mean(2.0));
        assert_eq!(p.mean_rate(), 0.5);
        let (rate, cv) = empirical_rate_and_cv(&mut p, 1, 200_000);
        assert!((rate - 0.5).abs() < 0.01, "rate {rate}");
        assert!((cv - 1.0).abs() < 0.02, "cv {cv}");
    }

    #[test]
    fn iid_hyperexp_has_target_cv() {
        let mut p = IidArrivals::new(Hyperexp2::from_mean_cv(2.2, 3.0));
        let (rate, cv) = empirical_rate_and_cv(&mut p, 2, 500_000);
        assert!((rate - 1.0 / 2.2).abs() / (1.0 / 2.2) < 0.02, "rate {rate}");
        assert!((cv - 3.0).abs() < 0.15, "cv {cv}");
    }

    #[test]
    fn mmpp_hits_target_rate() {
        let mut p = MmppArrivals::with_rate(0.5, 10.0, 0.2, 100.0);
        assert!((p.mean_rate() - 0.5).abs() < 1e-12);
        let (rate, _) = empirical_rate_and_cv(&mut p, 3, 500_000);
        assert!((rate - 0.5).abs() / 0.5 < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        let mut p = MmppArrivals::with_rate(0.5, 20.0, 0.1, 200.0);
        let (_, cv) = empirical_rate_and_cv(&mut p, 4, 500_000);
        assert!(cv > 1.3, "MMPP inter-arrival CV should exceed 1, got {cv}");
    }

    #[test]
    fn mmpp_state_switches() {
        let mut p = MmppArrivals::with_rate(1.0, 5.0, 0.3, 10.0);
        let mut rng = Rng64::from_seed(5);
        let mut seen = [false; 2];
        for _ in 0..10_000 {
            p.next_interarrival(&mut rng);
            seen[p.state()] = true;
        }
        assert!(seen[0] && seen[1], "both states should be visited");
    }

    #[test]
    #[should_panic(expected = "burst_factor must exceed 1")]
    fn mmpp_rejects_flat_burst() {
        MmppArrivals::with_rate(1.0, 1.0, 0.5, 10.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn mmpp_rejects_zero_rate() {
        MmppArrivals::new([0.0, 1.0], [1.0, 1.0]);
    }
}

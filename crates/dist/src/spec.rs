//! Serializable distribution specifications.
//!
//! Experiment configurations (and the JSON reports the bench harness
//! emits) need to name distributions declaratively. [`DistSpec`] is the
//! serde-friendly description; [`DistSpec::build`] turns it into a
//! [`BuiltDist`] that implements [`Sample`] and [`Moments`] by enum
//! dispatch — no trait objects, so the hot sampling path stays inlinable.

use hetsched_desim::Rng64;
use hetsched_error::HetschedError;
use serde::{Deserialize, Serialize};

use crate::{
    BoundedPareto, Deterministic, Exponential, Hyperexp2, LogNormal, Moments, Sample, Uniform,
    Weibull,
};

/// Declarative description of a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DistSpec {
    /// Exponential with the given mean.
    Exponential {
        /// Mean value.
        mean: f64,
    },
    /// Two-stage hyperexponential with the given mean and CV ≥ 1
    /// (balanced means).
    Hyperexp2 {
        /// Mean value.
        mean: f64,
        /// Coefficient of variation (≥ 1).
        cv: f64,
    },
    /// Bounded Pareto `B(k, p, α)`.
    BoundedPareto {
        /// Lower bound of the support.
        k: f64,
        /// Upper bound of the support.
        p: f64,
        /// Tail index.
        alpha: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Point mass.
    Deterministic {
        /// The constant value.
        value: f64,
    },
    /// Weibull with target mean and shape.
    Weibull {
        /// Mean value.
        mean: f64,
        /// Shape parameter (shape < 1 is sub-exponential).
        shape: f64,
    },
    /// Lognormal with target mean and CV.
    LogNormal {
        /// Mean value.
        mean: f64,
        /// Coefficient of variation.
        cv: f64,
    },
}

impl DistSpec {
    /// The paper's default job-size distribution (§4.1).
    pub fn paper_job_sizes() -> Self {
        DistSpec::BoundedPareto {
            k: 10.0,
            p: 21600.0,
            alpha: 1.0,
        }
    }

    /// Materializes the spec into a sampler with analytic moments.
    ///
    /// # Panics
    /// Panics if the parameters are invalid (delegated to the constructor
    /// of the concrete distribution).
    pub fn build(self) -> BuiltDist {
        match self {
            DistSpec::Exponential { mean } => BuiltDist::Exponential(Exponential::from_mean(mean)),
            DistSpec::Hyperexp2 { mean, cv } => {
                BuiltDist::Hyperexp2(Hyperexp2::from_mean_cv(mean, cv))
            }
            DistSpec::BoundedPareto { k, p, alpha } => {
                BuiltDist::BoundedPareto(BoundedPareto::new(k, p, alpha))
            }
            DistSpec::Uniform { lo, hi } => BuiltDist::Uniform(Uniform::new(lo, hi)),
            DistSpec::Deterministic { value } => {
                BuiltDist::Deterministic(Deterministic::new(value))
            }
            DistSpec::Weibull { mean, shape } => {
                BuiltDist::Weibull(Weibull::from_mean_shape(mean, shape))
            }
            DistSpec::LogNormal { mean, cv } => {
                BuiltDist::LogNormal(LogNormal::from_mean_cv(mean, cv))
            }
        }
    }
}

/// A materialized [`DistSpec`]: concrete distribution behind enum dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuiltDist {
    /// See [`Exponential`].
    Exponential(Exponential),
    /// See [`Hyperexp2`].
    Hyperexp2(Hyperexp2),
    /// See [`BoundedPareto`].
    BoundedPareto(BoundedPareto),
    /// See [`Uniform`].
    Uniform(Uniform),
    /// See [`Deterministic`].
    Deterministic(Deterministic),
    /// See [`Weibull`].
    Weibull(Weibull),
    /// See [`LogNormal`].
    LogNormal(LogNormal),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            BuiltDist::Exponential($inner) => $body,
            BuiltDist::Hyperexp2($inner) => $body,
            BuiltDist::BoundedPareto($inner) => $body,
            BuiltDist::Uniform($inner) => $body,
            BuiltDist::Deterministic($inner) => $body,
            BuiltDist::Weibull($inner) => $body,
            BuiltDist::LogNormal($inner) => $body,
        }
    };
}

impl Sample for BuiltDist {
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        dispatch!(self, d => d.sample(rng))
    }
}

impl Moments for BuiltDist {
    fn mean(&self) -> f64 {
        dispatch!(self, d => d.mean())
    }

    fn second_moment(&self) -> f64 {
        dispatch!(self, d => d.second_moment())
    }
}

/// Declarative speedup curve `s(k)` for a malleable job class.
///
/// A malleable job holding `k` (possibly fractional) server cores runs at
/// rate `s(k) · c` where `c` is the per-core speed. Every curve satisfies
/// `s(1) = 1`, and for `k ≤ 1` the job simply gets its fractional share —
/// `s(k) = k` — which is exactly the processor-sharing semantics of the
/// rigid baseline. The serde default is [`SpeedupCurve::Rigid`], so every
/// pre-malleable JSON config loads unchanged.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum SpeedupCurve {
    /// One server, no speedup from extra cores: `s(k) = min(k, 1)`.
    #[default]
    Rigid,
    /// Power law `s(k) = k^p` with sublinearity exponent `p ∈ (0, 1]`.
    PowerLaw {
        /// Sublinearity exponent; `p = 1` is embarrassingly parallel.
        p: f64,
    },
    /// Amdahl's law `s(k) = 1 / (serial + (1 − serial)/k)`.
    Amdahl {
        /// Serial fraction of the work, in `[0, 1]`.
        serial: f64,
    },
    /// Piecewise-linear interpolation through measured `(k, s)` knots.
    ///
    /// Knots must start at `(1, 1)`, be strictly increasing in `k`, and
    /// non-decreasing in `s`; beyond the last knot the curve is flat.
    Empirical {
        /// Measured `(cores, speedup)` knots.
        points: Vec<(f64, f64)>,
    },
}

impl SpeedupCurve {
    /// True for the default curve, under which the malleability machinery
    /// is structurally invisible.
    pub fn is_rigid(&self) -> bool {
        matches!(self, SpeedupCurve::Rigid)
    }

    /// Checks curve parameters eagerly, at config-parse time, so a bad
    /// exponent fails with a typed error instead of a panic (or a NaN)
    /// at the first sample.
    pub fn validate(&self) -> Result<(), HetschedError> {
        match self {
            SpeedupCurve::Rigid => Ok(()),
            SpeedupCurve::PowerLaw { p } => {
                if !p.is_finite() || *p <= 0.0 || *p > 1.0 {
                    return Err(HetschedError::InvalidConfig(format!(
                        "speedup curve power_law requires p in (0, 1], got {p}"
                    )));
                }
                Ok(())
            }
            SpeedupCurve::Amdahl { serial } => {
                if !serial.is_finite() || !(0.0..=1.0).contains(serial) {
                    return Err(HetschedError::InvalidConfig(format!(
                        "speedup curve amdahl requires serial in [0, 1], got {serial}"
                    )));
                }
                Ok(())
            }
            SpeedupCurve::Empirical { points } => {
                let first = points.first().ok_or_else(|| {
                    HetschedError::InvalidConfig(
                        "speedup curve empirical requires at least one (k, s) point".into(),
                    )
                })?;
                if (first.0 - 1.0).abs() > 1e-12 || (first.1 - 1.0).abs() > 1e-12 {
                    return Err(HetschedError::InvalidConfig(format!(
                        "speedup curve empirical must start at (1, 1), got ({}, {})",
                        first.0, first.1
                    )));
                }
                for w in points.windows(2) {
                    let ((k0, s0), (k1, s1)) = (w[0], w[1]);
                    if !k1.is_finite() || !s1.is_finite() {
                        return Err(HetschedError::InvalidConfig(
                            "speedup curve empirical points must be finite".into(),
                        ));
                    }
                    if k1 <= k0 {
                        return Err(HetschedError::InvalidConfig(format!(
                            "speedup curve empirical cores must be strictly increasing: \
                             {k0} then {k1}"
                        )));
                    }
                    if s1 < s0 {
                        return Err(HetschedError::InvalidConfig(format!(
                            "speedup curve empirical speedups must be non-decreasing: \
                             {s0} then {s1}"
                        )));
                    }
                    if s1 > k1 + 1e-9 {
                        return Err(HetschedError::InvalidConfig(format!(
                            "speedup curve empirical is super-linear at k = {k1}: s = {s1}"
                        )));
                    }
                }
                Ok(())
            }
        }
    }

    /// Evaluates `s(k)` for `k ≥ 0`. Assumes [`validate`](Self::validate)
    /// passed; fractional allocations below one core always scale linearly.
    pub fn speedup(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        if k <= 1.0 {
            return k;
        }
        match self {
            SpeedupCurve::Rigid => 1.0,
            SpeedupCurve::PowerLaw { p } => k.powf(*p),
            SpeedupCurve::Amdahl { serial } => 1.0 / (serial + (1.0 - serial) / k),
            SpeedupCurve::Empirical { points } => {
                let last = points.last().expect("validated: non-empty");
                if k >= last.0 {
                    return last.1;
                }
                for w in points.windows(2) {
                    let ((k0, s0), (k1, s1)) = (w[0], w[1]);
                    if k <= k1 {
                        return s0 + (s1 - s0) * (k - k0) / (k1 - k0);
                    }
                }
                last.1
            }
        }
    }

    /// The largest allocation that still adds speed: extra cores past the
    /// cap are pure waste and the allocator never grants them.
    pub fn max_useful_cores(&self) -> f64 {
        match self {
            SpeedupCurve::Rigid => 1.0,
            SpeedupCurve::PowerLaw { .. } => f64::INFINITY,
            SpeedupCurve::Amdahl { serial } => {
                if *serial == 0.0 {
                    f64::INFINITY
                } else {
                    // Past ~99% of the 1/serial asymptote, more cores are noise.
                    (99.0 * (1.0 - serial) / serial).max(1.0)
                }
            }
            SpeedupCurve::Empirical { points } => points.last().map(|&(k, _)| k).unwrap_or(1.0),
        }
    }

    /// Effective sublinearity exponent used by the heSRPT water-filling
    /// closed form, clamped to `(0, 1]`.
    pub fn elasticity(&self) -> f64 {
        match self {
            SpeedupCurve::Rigid => 1.0,
            SpeedupCurve::PowerLaw { p } => p.clamp(1e-6, 1.0),
            SpeedupCurve::Amdahl { serial } => (1.0 - serial).clamp(1e-6, 1.0),
            SpeedupCurve::Empirical { points } => {
                // Log-log slope of the first segment past k = 1.
                match points.iter().find(|&&(k, _)| k > 1.0 + 1e-12) {
                    Some(&(k, s)) if s > 1.0 => (s.ln() / k.ln()).clamp(1e-6, 1.0),
                    _ => 1e-6,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_preserves_moments() {
        let specs = [
            DistSpec::Exponential { mean: 3.0 },
            DistSpec::Hyperexp2 { mean: 2.2, cv: 3.0 },
            DistSpec::paper_job_sizes(),
            DistSpec::Uniform { lo: 1.0, hi: 2.0 },
            DistSpec::Deterministic { value: 7.0 },
            DistSpec::Weibull {
                mean: 5.0,
                shape: 1.5,
            },
            DistSpec::LogNormal { mean: 4.0, cv: 2.0 },
        ];
        for spec in specs {
            let d = spec.build();
            assert!(d.mean() > 0.0, "{spec:?}");
            assert!(d.second_moment() >= d.mean() * d.mean() - 1e-9, "{spec:?}");
        }
    }

    #[test]
    fn paper_job_sizes_mean() {
        let d = DistSpec::paper_job_sizes().build();
        assert!((d.mean() - 76.8).abs() < 0.05);
    }

    #[test]
    fn sampling_through_enum() {
        let d = DistSpec::Deterministic { value: 2.0 }.build();
        let mut rng = Rng64::from_seed(0);
        assert_eq!(d.sample(&mut rng), 2.0);
    }

    #[test]
    fn serde_round_trip() {
        let spec = DistSpec::Hyperexp2 { mean: 2.2, cv: 3.0 };
        let json = serde_json::to_string(&spec).unwrap();
        let back: DistSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn serde_tag_names_are_snake_case() {
        let json = serde_json::to_string(&DistSpec::paper_job_sizes()).unwrap();
        assert!(json.contains("\"kind\":\"bounded_pareto\""), "{json}");
    }

    #[test]
    fn speedup_curve_default_is_rigid() {
        assert_eq!(SpeedupCurve::default(), SpeedupCurve::Rigid);
        assert!(SpeedupCurve::default().is_rigid());
        let json = serde_json::to_string(&SpeedupCurve::Rigid).unwrap();
        assert!(json.contains("\"kind\":\"rigid\""), "{json}");
    }

    #[test]
    fn speedup_curve_serde_round_trip() {
        for curve in [
            SpeedupCurve::Rigid,
            SpeedupCurve::PowerLaw { p: 0.5 },
            SpeedupCurve::Amdahl { serial: 0.1 },
            SpeedupCurve::Empirical {
                points: vec![(1.0, 1.0), (2.0, 1.8), (4.0, 3.0)],
            },
        ] {
            let json = serde_json::to_string(&curve).unwrap();
            let back: SpeedupCurve = serde_json::from_str(&json).unwrap();
            assert_eq!(curve, back, "{json}");
        }
    }

    #[test]
    fn speedup_curve_validation_rejects_bad_parameters() {
        let bad = [
            SpeedupCurve::PowerLaw { p: 0.0 },
            SpeedupCurve::PowerLaw { p: 1.5 },
            SpeedupCurve::PowerLaw { p: f64::NAN },
            SpeedupCurve::Amdahl { serial: -0.1 },
            SpeedupCurve::Amdahl { serial: 1.5 },
            SpeedupCurve::Empirical { points: vec![] },
            // Must start at (1, 1).
            SpeedupCurve::Empirical {
                points: vec![(2.0, 1.0)],
            },
            // Non-monotone cores.
            SpeedupCurve::Empirical {
                points: vec![(1.0, 1.0), (3.0, 2.0), (2.0, 2.5)],
            },
            // Decreasing speedup.
            SpeedupCurve::Empirical {
                points: vec![(1.0, 1.0), (2.0, 1.8), (4.0, 1.5)],
            },
            // Super-linear speedup.
            SpeedupCurve::Empirical {
                points: vec![(1.0, 1.0), (2.0, 3.0)],
            },
        ];
        for curve in bad {
            let err = curve.validate().expect_err(&format!("{curve:?}"));
            assert!(
                matches!(err, HetschedError::InvalidConfig(_)),
                "{curve:?} -> {err}"
            );
        }
        for curve in [
            SpeedupCurve::Rigid,
            SpeedupCurve::PowerLaw { p: 1.0 },
            SpeedupCurve::Amdahl { serial: 0.0 },
            SpeedupCurve::Empirical {
                points: vec![(1.0, 1.0), (4.0, 2.5)],
            },
        ] {
            curve
                .validate()
                .unwrap_or_else(|e| panic!("{curve:?}: {e}"));
        }
    }

    #[test]
    fn speedup_curve_evaluation() {
        // Everything is linear below one core: the PS fractional share.
        for curve in [
            SpeedupCurve::Rigid,
            SpeedupCurve::PowerLaw { p: 0.5 },
            SpeedupCurve::Amdahl { serial: 0.2 },
        ] {
            assert_eq!(curve.speedup(0.25), 0.25, "{curve:?}");
            assert_eq!(curve.speedup(1.0), 1.0, "{curve:?}");
            assert_eq!(curve.speedup(0.0), 0.0, "{curve:?}");
        }
        assert_eq!(SpeedupCurve::Rigid.speedup(8.0), 1.0);
        assert!((SpeedupCurve::PowerLaw { p: 0.5 }.speedup(4.0) - 2.0).abs() < 1e-12);
        // Amdahl: serial 0.2, k → ∞ tends to 5; at k = 4 it's 1/(0.2 + 0.2) = 2.5.
        assert!((SpeedupCurve::Amdahl { serial: 0.2 }.speedup(4.0) - 2.5).abs() < 1e-12);
        let emp = SpeedupCurve::Empirical {
            points: vec![(1.0, 1.0), (2.0, 1.8), (4.0, 3.0)],
        };
        assert!((emp.speedup(1.5) - 1.4).abs() < 1e-12);
        assert!((emp.speedup(3.0) - 2.4).abs() < 1e-12);
        assert_eq!(emp.speedup(16.0), 3.0, "flat past the last knot");
        assert_eq!(emp.max_useful_cores(), 4.0);
        assert_eq!(SpeedupCurve::Rigid.max_useful_cores(), 1.0);
    }

    #[test]
    fn speedup_curve_elasticity() {
        assert_eq!(SpeedupCurve::Rigid.elasticity(), 1.0);
        assert_eq!(SpeedupCurve::PowerLaw { p: 0.5 }.elasticity(), 0.5);
        assert!((SpeedupCurve::Amdahl { serial: 0.25 }.elasticity() - 0.75).abs() < 1e-12);
        let emp = SpeedupCurve::Empirical {
            points: vec![(1.0, 1.0), (4.0, 2.0)],
        };
        // log(2)/log(4) = 0.5
        assert!((emp.elasticity() - 0.5).abs() < 1e-12);
    }
}

//! Serializable distribution specifications.
//!
//! Experiment configurations (and the JSON reports the bench harness
//! emits) need to name distributions declaratively. [`DistSpec`] is the
//! serde-friendly description; [`DistSpec::build`] turns it into a
//! [`BuiltDist`] that implements [`Sample`] and [`Moments`] by enum
//! dispatch — no trait objects, so the hot sampling path stays inlinable.

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{
    BoundedPareto, Deterministic, Exponential, Hyperexp2, LogNormal, Moments, Sample, Uniform,
    Weibull,
};

/// Declarative description of a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DistSpec {
    /// Exponential with the given mean.
    Exponential {
        /// Mean value.
        mean: f64,
    },
    /// Two-stage hyperexponential with the given mean and CV ≥ 1
    /// (balanced means).
    Hyperexp2 {
        /// Mean value.
        mean: f64,
        /// Coefficient of variation (≥ 1).
        cv: f64,
    },
    /// Bounded Pareto `B(k, p, α)`.
    BoundedPareto {
        /// Lower bound of the support.
        k: f64,
        /// Upper bound of the support.
        p: f64,
        /// Tail index.
        alpha: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Point mass.
    Deterministic {
        /// The constant value.
        value: f64,
    },
    /// Weibull with target mean and shape.
    Weibull {
        /// Mean value.
        mean: f64,
        /// Shape parameter (shape < 1 is sub-exponential).
        shape: f64,
    },
    /// Lognormal with target mean and CV.
    LogNormal {
        /// Mean value.
        mean: f64,
        /// Coefficient of variation.
        cv: f64,
    },
}

impl DistSpec {
    /// The paper's default job-size distribution (§4.1).
    pub fn paper_job_sizes() -> Self {
        DistSpec::BoundedPareto {
            k: 10.0,
            p: 21600.0,
            alpha: 1.0,
        }
    }

    /// Materializes the spec into a sampler with analytic moments.
    ///
    /// # Panics
    /// Panics if the parameters are invalid (delegated to the constructor
    /// of the concrete distribution).
    pub fn build(self) -> BuiltDist {
        match self {
            DistSpec::Exponential { mean } => BuiltDist::Exponential(Exponential::from_mean(mean)),
            DistSpec::Hyperexp2 { mean, cv } => {
                BuiltDist::Hyperexp2(Hyperexp2::from_mean_cv(mean, cv))
            }
            DistSpec::BoundedPareto { k, p, alpha } => {
                BuiltDist::BoundedPareto(BoundedPareto::new(k, p, alpha))
            }
            DistSpec::Uniform { lo, hi } => BuiltDist::Uniform(Uniform::new(lo, hi)),
            DistSpec::Deterministic { value } => {
                BuiltDist::Deterministic(Deterministic::new(value))
            }
            DistSpec::Weibull { mean, shape } => {
                BuiltDist::Weibull(Weibull::from_mean_shape(mean, shape))
            }
            DistSpec::LogNormal { mean, cv } => {
                BuiltDist::LogNormal(LogNormal::from_mean_cv(mean, cv))
            }
        }
    }
}

/// A materialized [`DistSpec`]: concrete distribution behind enum dispatch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BuiltDist {
    /// See [`Exponential`].
    Exponential(Exponential),
    /// See [`Hyperexp2`].
    Hyperexp2(Hyperexp2),
    /// See [`BoundedPareto`].
    BoundedPareto(BoundedPareto),
    /// See [`Uniform`].
    Uniform(Uniform),
    /// See [`Deterministic`].
    Deterministic(Deterministic),
    /// See [`Weibull`].
    Weibull(Weibull),
    /// See [`LogNormal`].
    LogNormal(LogNormal),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $body:expr) => {
        match $self {
            BuiltDist::Exponential($inner) => $body,
            BuiltDist::Hyperexp2($inner) => $body,
            BuiltDist::BoundedPareto($inner) => $body,
            BuiltDist::Uniform($inner) => $body,
            BuiltDist::Deterministic($inner) => $body,
            BuiltDist::Weibull($inner) => $body,
            BuiltDist::LogNormal($inner) => $body,
        }
    };
}

impl Sample for BuiltDist {
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        dispatch!(self, d => d.sample(rng))
    }
}

impl Moments for BuiltDist {
    fn mean(&self) -> f64 {
        dispatch!(self, d => d.mean())
    }

    fn second_moment(&self) -> f64 {
        dispatch!(self, d => d.second_moment())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_preserves_moments() {
        let specs = [
            DistSpec::Exponential { mean: 3.0 },
            DistSpec::Hyperexp2 { mean: 2.2, cv: 3.0 },
            DistSpec::paper_job_sizes(),
            DistSpec::Uniform { lo: 1.0, hi: 2.0 },
            DistSpec::Deterministic { value: 7.0 },
            DistSpec::Weibull {
                mean: 5.0,
                shape: 1.5,
            },
            DistSpec::LogNormal { mean: 4.0, cv: 2.0 },
        ];
        for spec in specs {
            let d = spec.build();
            assert!(d.mean() > 0.0, "{spec:?}");
            assert!(d.second_moment() >= d.mean() * d.mean() - 1e-9, "{spec:?}");
        }
    }

    #[test]
    fn paper_job_sizes_mean() {
        let d = DistSpec::paper_job_sizes().build();
        assert!((d.mean() - 76.8).abs() < 0.05);
    }

    #[test]
    fn sampling_through_enum() {
        let d = DistSpec::Deterministic { value: 2.0 }.build();
        let mut rng = Rng64::from_seed(0);
        assert_eq!(d.sample(&mut rng), 2.0);
    }

    #[test]
    fn serde_round_trip() {
        let spec = DistSpec::Hyperexp2 { mean: 2.2, cv: 3.0 };
        let json = serde_json::to_string(&spec).unwrap();
        let back: DistSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn serde_tag_names_are_snake_case() {
        let json = serde_json::to_string(&DistSpec::paper_job_sizes()).unwrap();
        assert!(json.contains("\"kind\":\"bounded_pareto\""), "{json}");
    }
}

//! Small special-function toolbox.
//!
//! Only what the distributions need: `ln Γ(x)` (Lanczos) for Weibull
//! moments, and the error function `erf(x)` (Abramowitz–Stegun 7.1.26) for
//! lognormal CDF checks in tests. Implemented here so the workspace stays
//! free of numerics dependencies.

/// Natural log of the Gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; absolute error below 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The Gamma function `Γ(x)` for `x > 0`.
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Error function, Abramowitz & Stegun 7.1.26 (max abs error 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_at_integers_is_factorial() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in facts.iter().enumerate() {
            let g = gamma((n + 1) as f64);
            assert!(
                (g - f).abs() / f < 1e-10,
                "Γ({}) = {g}, expected {f}",
                n + 1
            );
        }
    }

    #[test]
    fn gamma_half_is_sqrt_pi() {
        let g = gamma(0.5);
        let expected = std::f64::consts::PI.sqrt();
        assert!((g - expected).abs() < 1e-10, "Γ(1/2) = {g}");
    }

    #[test]
    fn gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 2.5, 4.9, 10.1] {
            let lhs = gamma(x + 1.0);
            let rhs = x * gamma(x);
            assert!((lhs - rhs).abs() / rhs < 1e-10, "recurrence fails at {x}");
        }
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn erf_known_values() {
        // A&S 7.1.26 carries ~1.5e-7 absolute error.
        assert!(erf(0.0).abs() < 1e-6);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.1, 0.5, 1.3, 2.2] {
            let s = std_normal_cdf(x) + std_normal_cdf(-x);
            assert!((s - 1.0).abs() < 1e-10);
        }
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_quantile_sanity() {
        // Φ(1.96) ≈ 0.975
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
    }
}

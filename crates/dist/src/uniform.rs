//! Continuous uniform distribution `U(lo, hi)`.
//!
//! Used by the dynamic least-load model: after a job completes, the
//! computer takes `U(0,1)` seconds to notice the load change (§4.2).

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{Moments, Sample};

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates `U(lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "uniform bounds must be finite with lo < hi, got [{lo}, {hi})"
        );
        Uniform { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Sample for Uniform {
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        rng.uniform(self.lo, self.hi)
    }
}

impl Moments for Uniform {
    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    fn second_moment(&self) -> f64 {
        // E[X²] = (hi³ − lo³) / (3(hi − lo))
        (self.hi.powi(3) - self.lo.powi(3)) / (3.0 * (self.hi - self.lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_moments;

    #[test]
    fn unit_uniform_moments() {
        let d = Uniform::new(0.0, 1.0);
        assert_eq!(d.mean(), 0.5);
        assert!((d.variance() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn shifted_uniform_moments() {
        let d = Uniform::new(2.0, 6.0);
        assert_eq!(d.mean(), 4.0);
        assert!((d.variance() - 16.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_moments() {
        check_moments(&Uniform::new(1.0, 3.0), 404, 200_000, 0.005, 0.02);
    }

    #[test]
    fn samples_in_bounds() {
        let d = Uniform::new(-1.0, 1.0);
        let mut rng = Rng64::from_seed(8);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn rejects_empty_interval() {
        Uniform::new(1.0, 1.0);
    }
}

//! # hetsched-dist — workload distributions with analytic moments
//!
//! The simulation model of the paper (§4.1) is built from two stochastic
//! ingredients:
//!
//! * **Job sizes** follow a Bounded Pareto distribution
//!   `B(k = 10 s, p = 21600 s, α = 1.0)` — heavy-tailed, mean ≈ 76.8 s —
//!   reflecting the empirical finding that "a small number of very large
//!   jobs make up a significant fraction of the total load".
//! * **Inter-arrival times** follow a two-stage hyperexponential
//!   distribution with coefficient of variation (CV) 3.0, modelling the
//!   burstiness observed in Zhou's trace (CV ≈ 2.64).
//!
//! Every distribution here exposes both a sampler ([`Sample`]) and its
//! analytic moments ([`Moments`]), because the optimized allocation scheme
//! and the analytic validation tests need exact means/variances, not
//! estimates. Distributions are plain-old-data, `serde`-serializable via
//! [`DistSpec`], and sample exclusively through the deterministic
//! `Rng64` streams of the simulation kernel (`hetsched_desim::rng`).
//!
//! Arrival *processes* (stateful generators of inter-arrival times) live in
//! [`arrivals`]; in addition to i.i.d. renewal processes the module offers
//! a two-state Markov-modulated Poisson process used by the burstiness
//! ablation experiments.

#![warn(missing_docs)]

pub mod arrivals;
pub mod bounded_pareto;
pub mod deterministic;
pub mod empirical;
pub mod exponential;
pub mod hyperexp;
pub mod lognormal;
pub mod math;
pub mod spec;
pub mod uniform;
pub mod weibull;

pub use arrivals::{ArrivalProcess, IidArrivals, MmppArrivals};
pub use bounded_pareto::BoundedPareto;
pub use deterministic::Deterministic;
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use hyperexp::Hyperexp2;
pub use lognormal::LogNormal;
pub use spec::{BuiltDist, DistSpec, SpeedupCurve};
pub use uniform::Uniform;
pub use weibull::Weibull;

use hetsched_desim::Rng64;

/// A distribution that can draw samples.
pub trait Sample {
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng64) -> f64;
}

/// A distribution with known analytic moments.
pub trait Moments {
    /// The mean `E[X]`.
    fn mean(&self) -> f64;

    /// The raw second moment `E[X²]`.
    fn second_moment(&self) -> f64;

    /// The variance `E[X²] − E[X]²`.
    fn variance(&self) -> f64 {
        let m = self.mean();
        (self.second_moment() - m * m).max(0.0)
    }

    /// The coefficient of variation `σ / E[X]`.
    fn cv(&self) -> f64 {
        self.variance().sqrt() / self.mean()
    }

    /// The squared coefficient of variation `σ² / E[X]²`.
    fn scv(&self) -> f64 {
        self.variance() / (self.mean() * self.mean())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Draws `n` samples and checks the empirical mean and CV against the
    /// analytic values within relative tolerances.
    pub fn check_moments<D: Sample + Moments>(
        dist: &D,
        seed: u64,
        n: usize,
        mean_rtol: f64,
        cv_rtol: f64,
    ) {
        let mut rng = Rng64::from_seed(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = dist.sample(&mut rng);
            assert!(x.is_finite(), "sample must be finite");
            sum += x;
            sumsq += x * x;
        }
        let m = sum / n as f64;
        let var = (sumsq / n as f64 - m * m).max(0.0);
        let cv = var.sqrt() / m;
        let em = dist.mean();
        let ecv = dist.cv();
        assert!(
            (m - em).abs() / em < mean_rtol,
            "empirical mean {m} vs analytic {em}"
        );
        if ecv > 0.0 {
            assert!(
                (cv - ecv).abs() / ecv < cv_rtol,
                "empirical cv {cv} vs analytic {ecv}"
            );
        } else {
            assert!(cv < 1e-9, "expected zero cv, got {cv}");
        }
    }
}

//! Weibull distribution.
//!
//! An extension distribution (not used by the paper directly): with shape
//! `< 1` the Weibull is sub-exponential and serves as an alternative
//! heavy-ish-tailed job-size model in the size-variability ablation,
//! probing whether the ORR ranking depends on the exact Bounded Pareto
//! shape.

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::math::gamma;
use crate::{Moments, Sample};

/// Weibull distribution with shape `k` and scale `λ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull with the given shape and scale.
    ///
    /// # Panics
    /// Panics unless both parameters are positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0,
            "Weibull parameters must be positive and finite, got shape={shape}, scale={scale}"
        );
        Weibull { shape, scale }
    }

    /// Chooses the scale so that the mean equals `mean` for the given
    /// shape: `λ = mean / Γ(1 + 1/k)`.
    pub fn from_mean_shape(mean: f64, shape: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive and finite, got {mean}"
        );
        assert!(
            shape.is_finite() && shape > 0.0,
            "shape must be positive and finite, got {shape}"
        );
        let scale = mean / gamma(1.0 + 1.0 / shape);
        Weibull { shape, scale }
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Sample for Weibull {
    /// Inverse-CDF sampling: `x = λ (−ln u)^(1/k)`.
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        let u = rng.next_f64_open();
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }
}

impl Moments for Weibull {
    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }

    fn second_moment(&self) -> f64 {
        self.scale * self.scale * gamma(1.0 + 2.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_moments;

    #[test]
    fn shape_one_is_exponential() {
        let d = Weibull::new(1.0, 4.0);
        assert!((d.mean() - 4.0).abs() < 1e-10);
        assert!((d.cv() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_mean_shape_hits_mean() {
        for &(m, k) in &[(76.8, 0.5), (10.0, 2.0), (1.0, 0.7)] {
            let d = Weibull::from_mean_shape(m, k);
            assert!((d.mean() - m).abs() / m < 1e-10, "mean for ({m}, {k})");
        }
    }

    #[test]
    fn subexponential_shape_has_high_cv() {
        let d = Weibull::from_mean_shape(1.0, 0.5);
        // CV for k = 0.5: sqrt(Γ(5)/Γ(3)² − 1) = sqrt(24/4 − 1) = sqrt(5).
        assert!((d.cv() - 5.0f64.sqrt()).abs() < 1e-9, "cv {}", d.cv());
    }

    #[test]
    fn sampling_matches_moments() {
        check_moments(
            &Weibull::from_mean_shape(3.0, 1.5),
            505,
            300_000,
            0.01,
            0.03,
        );
    }

    #[test]
    fn samples_nonnegative() {
        let d = Weibull::new(0.8, 2.0);
        let mut rng = Rng64::from_seed(12);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_zero_shape() {
        Weibull::new(0.0, 1.0);
    }
}

//! Bounded Pareto distribution `B(k, p, α)`.
//!
//! The paper's job-size distribution (§4.1), following Harchol-Balter,
//! Crovella & Murta. The density is
//!
//! ```text
//! f(x) = α k^α / (1 − (k/p)^α) · x^(−α−1),   k ≤ x ≤ p
//! ```
//!
//! with lower bound `k`, upper bound `p`, and tail index `α` controlling
//! variability. The paper's defaults are `k = 10 s`, `p = 21600 s`,
//! `α = 1.0`, for which the mean is ≈ 76.8 s — a small number of very large
//! jobs carries a large fraction of the load.
//!
//! Moments have removable singularities at `α = 1` (mean) and `α = 2`
//! (second moment); the closed forms below handle all cases explicitly and
//! the tests pin the paper's 76.8 s figure.

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{Moments, Sample};

/// Bounded Pareto `B(k, p, α)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    k: f64,
    p: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Creates `B(k, p, α)`.
    ///
    /// # Panics
    /// Panics unless `0 < k < p` and `α > 0`, all finite.
    pub fn new(k: f64, p: f64, alpha: f64) -> Self {
        assert!(
            k.is_finite() && p.is_finite() && alpha.is_finite(),
            "Bounded Pareto parameters must be finite"
        );
        assert!(k > 0.0, "lower bound k must be positive, got {k}");
        assert!(p > k, "upper bound p={p} must exceed lower bound k={k}");
        assert!(alpha > 0.0, "tail index α must be positive, got {alpha}");
        BoundedPareto { k, p, alpha }
    }

    /// The paper's default job-size distribution: `B(10, 21600, 1.0)`,
    /// mean ≈ 76.8 s.
    pub fn paper_default() -> Self {
        BoundedPareto::new(10.0, 21600.0, 1.0)
    }

    /// Lower bound `k`.
    pub fn lower(&self) -> f64 {
        self.k
    }

    /// Upper bound `p`.
    pub fn upper(&self) -> f64 {
        self.p
    }

    /// Tail index `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// `1 − (k/p)^α`, the truncation normalizer.
    #[inline]
    fn normalizer(&self) -> f64 {
        1.0 - (self.k / self.p).powf(self.alpha)
    }

    /// The CDF `F(x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.k {
            0.0
        } else if x >= self.p {
            1.0
        } else {
            (1.0 - (self.k / x).powf(self.alpha)) / self.normalizer()
        }
    }

    /// The raw moment `E[X^r]` for any real order `r`.
    ///
    /// Closed form with the removable singularity at `r = α` handled via
    /// the logarithmic limit.
    pub fn raw_moment(&self, r: f64) -> f64 {
        let a = self.alpha;
        let norm = self.normalizer();
        if (r - a).abs() < 1e-12 {
            // ∫ x^r f(x) dx with r = α: α k^α ln(p/k) / norm.
            a * self.k.powf(a) * (self.p / self.k).ln() / norm
        } else {
            a * self.k.powf(a) * (self.p.powf(r - a) - self.k.powf(r - a)) / ((r - a) * norm)
        }
    }

    /// Partial expectation `E[X · 1{X ≤ x}]` — the load carried by jobs no
    /// larger than `x`. Used by the SITA-E baseline to equalize load across
    /// size intervals.
    pub fn partial_mean(&self, x: f64) -> f64 {
        let x = x.clamp(self.k, self.p);
        let a = self.alpha;
        let norm = self.normalizer();
        if (1.0 - a).abs() < 1e-12 {
            a * self.k.powf(a) * (x / self.k).ln() / norm
        } else {
            a * self.k.powf(a) * (x.powf(1.0 - a) - self.k.powf(1.0 - a)) / ((1.0 - a) * norm)
        }
    }
}

impl Sample for BoundedPareto {
    /// Inverse-CDF sampling:
    /// `x = k / (1 − u·(1 − (k/p)^α))^(1/α)` with `u ~ U[0,1)`.
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        let u = rng.next_f64();
        let x = self.k / (1.0 - u * self.normalizer()).powf(1.0 / self.alpha);
        // Guard the upper edge against floating-point overshoot.
        x.min(self.p)
    }
}

impl Moments for BoundedPareto {
    fn mean(&self) -> f64 {
        self.raw_moment(1.0)
    }

    fn second_moment(&self) -> f64 {
        self.raw_moment(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_moments;
    use proptest::prelude::*;

    #[test]
    fn paper_default_mean_is_76_8() {
        // §4.1: "Under this setting, the average job size is 76.8 seconds."
        let d = BoundedPareto::paper_default();
        assert!(
            (d.mean() - 76.8).abs() < 0.05,
            "mean {} should be ≈ 76.8 s",
            d.mean()
        );
    }

    #[test]
    fn mean_alpha_one_closed_form() {
        // For α = 1: E[X] = k·ln(p/k) / (1 − k/p).
        let d = BoundedPareto::new(10.0, 21600.0, 1.0);
        let expected = 10.0 * (21600.0f64 / 10.0).ln() / (1.0 - 10.0 / 21600.0);
        assert!((d.mean() - expected).abs() < 1e-9);
    }

    #[test]
    fn second_moment_alpha_two_singularity() {
        // α = 2 hits the removable singularity of E[X²].
        let d = BoundedPareto::new(1.0, 100.0, 2.0);
        // E[X²] = 2·k²·ln(p/k) / (1 − (k/p)²)
        let expected = 2.0 * (100.0f64).ln() / (1.0 - 1e-4);
        assert!(
            (d.second_moment() - expected).abs() / expected < 1e-9,
            "got {}",
            d.second_moment()
        );
    }

    #[test]
    fn cdf_properties() {
        let d = BoundedPareto::paper_default();
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.cdf(10.0), 0.0);
        assert_eq!(d.cdf(30000.0), 1.0);
        assert!(d.cdf(100.0) > d.cdf(50.0));
        // Median sanity for α=1: F(x) = (1−k/x)/norm.
        let norm = 1.0 - 10.0 / 21600.0;
        let median = 10.0 / (1.0 - 0.5 * norm);
        assert!((d.cdf(median) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn samples_are_in_bounds() {
        let d = BoundedPareto::paper_default();
        let mut rng = Rng64::from_seed(7);
        for _ in 0..100_000 {
            let x = d.sample(&mut rng);
            assert!((10.0..=21600.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn sampling_matches_mean() {
        // Heavy tail ⇒ slow CV convergence; check the mean only, with a
        // generous tolerance and many samples.
        check_moments(&BoundedPareto::paper_default(), 303, 2_000_000, 0.03, 0.5);
    }

    #[test]
    fn partial_mean_endpoints() {
        let d = BoundedPareto::paper_default();
        assert!(d.partial_mean(10.0).abs() < 1e-12);
        assert!((d.partial_mean(21600.0) - d.mean()).abs() / d.mean() < 1e-9);
        // Monotone in x.
        assert!(d.partial_mean(100.0) < d.partial_mean(1000.0));
    }

    #[test]
    fn heavy_tail_carries_most_load() {
        // §4.1: "A small number of very large jobs make up a significant
        // fraction of the total load." With α = 1 the top 1% of sizes must
        // carry a large load share.
        let d = BoundedPareto::paper_default();
        let norm = 1.0 - 10.0 / 21600.0;
        let x99 = 10.0 / (1.0 - 0.99 * norm); // 99th percentile size
        let load_below = d.partial_mean(x99) / d.mean();
        assert!(
            load_below < 0.65,
            "99% of jobs should carry < 65% of load, got {load_below}"
        );
    }

    #[test]
    #[should_panic(expected = "must exceed lower bound")]
    fn rejects_inverted_bounds() {
        BoundedPareto::new(10.0, 5.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "α must be positive")]
    fn rejects_zero_alpha() {
        BoundedPareto::new(1.0, 2.0, 0.0);
    }

    proptest! {
        /// Inverse-CDF sampling round-trips through the CDF: the CDF of a
        /// sample is uniform, so its mean over many draws is ≈ 1/2.
        #[test]
        fn probability_integral_transform(
            k in 0.5f64..10.0,
            ratio in 2.0f64..1e4,
            alpha in 0.4f64..3.0,
        ) {
            let d = BoundedPareto::new(k, k * ratio, alpha);
            let mut rng = Rng64::from_seed(99);
            let n = 4000;
            let mean_u: f64 = (0..n)
                .map(|_| d.cdf(d.sample(&mut rng)))
                .sum::<f64>() / n as f64;
            prop_assert!((mean_u - 0.5).abs() < 0.05, "mean CDF {mean_u}");
        }

        /// Analytic mean always lies within the support.
        #[test]
        fn mean_within_support(
            k in 0.5f64..10.0,
            ratio in 1.5f64..1e4,
            alpha in 0.3f64..4.0,
        ) {
            let d = BoundedPareto::new(k, k * ratio, alpha);
            let m = d.mean();
            prop_assert!(m > d.lower() && m < d.upper(), "mean {m}");
        }
    }
}

//! Degenerate (deterministic) distribution.
//!
//! Zero-variance sizes and inter-arrival gaps are invaluable in tests:
//! with deterministic workloads the simulator's trajectories can be
//! verified by hand, and the round-robin dispatcher's interleaving can be
//! checked against the paper's worked example in §3.2.

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{Moments, Sample};

/// A distribution concentrated on a single value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value`.
    ///
    /// # Panics
    /// Panics unless `value` is finite and non-negative (workload
    /// quantities are times).
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "deterministic value must be finite and non-negative, got {value}"
        );
        Deterministic { value }
    }

    /// The constant value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Sample for Deterministic {
    #[inline]
    fn sample(&self, _rng: &mut Rng64) -> f64 {
        self.value
    }
}

impl Moments for Deterministic {
    fn mean(&self) -> f64 {
        self.value
    }

    fn second_moment(&self) -> f64 {
        self.value * self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_are_degenerate() {
        let d = Deterministic::new(5.0);
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.cv(), 0.0);
    }

    #[test]
    fn sampling_returns_constant() {
        let d = Deterministic::new(2.5);
        let mut rng = Rng64::from_seed(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 2.5);
        }
    }

    #[test]
    fn zero_is_allowed() {
        let d = Deterministic::new(0.0);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative() {
        Deterministic::new(-1.0);
    }
}

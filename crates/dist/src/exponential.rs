//! Exponential distribution.
//!
//! The building block of the paper's analytic model: M/M/1 queues assume
//! exponential service and inter-arrival times. In the simulator it serves
//! as the light-tailed reference job-size distribution in the
//! size-variability ablation and as the network-delay model for the dynamic
//! policy's load-update messages (mean 0.05 s, §4.2).

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{Moments, Sample};

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// From the rate parameter.
    ///
    /// # Panics
    /// Panics unless `rate > 0` and finite.
    pub fn from_rate(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "exponential rate must be positive and finite, got {rate}"
        );
        Exponential { rate }
    }

    /// From the mean (`rate = 1/mean`).
    pub fn from_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Sample for Exponential {
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        rng.exponential(self.rate)
    }
}

impl Moments for Exponential {
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn second_moment(&self) -> f64 {
        2.0 / (self.rate * self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_moments;

    #[test]
    fn analytic_moments() {
        let d = Exponential::from_mean(4.0);
        assert_eq!(d.mean(), 4.0);
        assert_eq!(d.variance(), 16.0);
        assert!((d.cv() - 1.0).abs() < 1e-12);
        assert!((d.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_rate_and_mean_agree() {
        let a = Exponential::from_rate(0.5);
        let b = Exponential::from_mean(2.0);
        assert_eq!(a, b);
        assert_eq!(a.rate(), 0.5);
    }

    #[test]
    fn sampling_matches_moments() {
        check_moments(&Exponential::from_mean(3.0), 101, 200_000, 0.01, 0.02);
    }

    #[test]
    fn samples_nonnegative() {
        let d = Exponential::from_mean(1.0);
        let mut rng = Rng64::from_seed(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_zero_rate() {
        Exponential::from_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_negative_mean() {
        Exponential::from_mean(-1.0);
    }
}

//! Lognormal distribution.
//!
//! An extension distribution used by the size-variability ablation: the
//! lognormal is the classic moderately-heavy-tailed alternative to the
//! Bounded Pareto, and [`LogNormal::from_mean_cv`] makes it easy to match
//! the paper's first two size moments while changing the tail shape.

use hetsched_desim::Rng64;
use serde::{Deserialize, Serialize};

use crate::{Moments, Sample};

/// Lognormal: `ln X ~ N(μ, σ²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// From the parameters of the underlying normal.
    ///
    /// # Panics
    /// Panics unless `σ ≥ 0` and both are finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "lognormal parameters must be finite with σ ≥ 0, got μ={mu}, σ={sigma}"
        );
        LogNormal { mu, sigma }
    }

    /// Matches a target mean and coefficient of variation:
    /// `σ² = ln(1 + cv²)`, `μ = ln(mean) − σ²/2`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive and finite, got {mean}"
        );
        assert!(cv.is_finite() && cv >= 0.0, "cv must be ≥ 0, got {cv}");
        let sigma2 = (1.0 + cv * cv).ln();
        LogNormal {
            mu: mean.ln() - 0.5 * sigma2,
            sigma: sigma2.sqrt(),
        }
    }

    /// Location parameter `μ` of `ln X`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `σ` of `ln X`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Sample for LogNormal {
    #[inline]
    fn sample(&self, rng: &mut Rng64) -> f64 {
        (self.mu + self.sigma * rng.standard_normal()).exp()
    }
}

impl Moments for LogNormal {
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    fn second_moment(&self) -> f64 {
        (2.0 * self.mu + 2.0 * self.sigma * self.sigma).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::check_moments;
    use proptest::prelude::*;

    #[test]
    fn from_mean_cv_is_exact() {
        for &(m, c) in &[(76.8, 3.0), (1.0, 0.5), (100.0, 1.0)] {
            let d = LogNormal::from_mean_cv(m, c);
            assert!((d.mean() - m).abs() / m < 1e-12, "mean for ({m}, {c})");
            assert!((d.cv() - c).abs() < 1e-9, "cv for ({m}, {c})");
        }
    }

    #[test]
    fn zero_cv_degenerates() {
        let d = LogNormal::from_mean_cv(5.0, 0.0);
        assert_eq!(d.sigma(), 0.0);
        assert!((d.mean() - 5.0).abs() < 1e-12);
        let mut rng = Rng64::from_seed(3);
        assert!((d.sample(&mut rng) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_moments() {
        check_moments(&LogNormal::from_mean_cv(2.0, 1.0), 606, 400_000, 0.01, 0.05);
    }

    #[test]
    fn samples_positive() {
        let d = LogNormal::from_mean_cv(1.0, 2.0);
        let mut rng = Rng64::from_seed(4);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    proptest! {
        #[test]
        fn construction_round_trips(m in 0.1f64..1e4, c in 0.0f64..5.0) {
            let d = LogNormal::from_mean_cv(m, c);
            prop_assert!((d.mean() - m).abs() / m < 1e-9);
            prop_assert!((d.cv() - c).abs() < 1e-6);
        }
    }
}

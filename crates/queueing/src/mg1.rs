//! M/G/1 analysis: FCFS (Pollaczek–Khinchine) and PS.
//!
//! The paper's analysis uses M/M/1-PS, whose mean response time is
//! insensitive to the job-size distribution. The FCFS ablation needs the
//! general-service formulas to *predict* how badly FCFS degrades under
//! the Bounded Pareto sizes:
//!
//! * **M/G/1-FCFS** (Pollaczek–Khinchine): mean waiting time
//!   `W = λ E[S²] / (2 (1 − ρ))` — driven by the *second* moment, which
//!   is enormous for heavy-tailed sizes;
//! * **M/G/1-PS**: mean response time `E[S] / (1 − ρ)` — identical to
//!   M/M/1-PS with the same mean (the insensitivity property).
//!
//! The ratio of the two quantifies how much processor sharing buys on a
//! heavy-tailed workload, which is exactly what the discipline ablation
//! measures by simulation.

use serde::{Deserialize, Serialize};

/// An M/G/1 queue described by its arrival rate and the first two
/// moments of the service-time distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1 {
    lambda: f64,
    mean_service: f64,
    second_moment_service: f64,
}

impl Mg1 {
    /// Creates an M/G/1 queue.
    ///
    /// # Panics
    /// Panics unless the parameters are positive and finite, the second
    /// moment is consistent (`E[S²] ≥ E[S]²`), and the queue is stable
    /// (`ρ = λ E[S] < 1`).
    pub fn new(lambda: f64, mean_service: f64, second_moment_service: f64) -> Self {
        assert!(
            lambda.is_finite() && lambda > 0.0,
            "arrival rate must be positive, got {lambda}"
        );
        assert!(
            mean_service.is_finite() && mean_service > 0.0,
            "mean service must be positive, got {mean_service}"
        );
        assert!(
            second_moment_service.is_finite()
                && second_moment_service >= mean_service * mean_service,
            "E[S²] = {second_moment_service} inconsistent with E[S] = {mean_service}"
        );
        let rho = lambda * mean_service;
        assert!(rho < 1.0, "queue unstable: ρ = {rho}");
        Mg1 {
            lambda,
            mean_service,
            second_moment_service,
        }
    }

    /// Builds the queue from a service-time distribution's moments.
    pub fn from_moments<D: hetsched_dist::Moments>(lambda: f64, service: &D) -> Self {
        Mg1::new(lambda, service.mean(), service.second_moment())
    }

    /// Utilization `ρ = λ E[S]`.
    pub fn utilization(&self) -> f64 {
        self.lambda * self.mean_service
    }

    /// FCFS mean waiting time (Pollaczek–Khinchine):
    /// `W = λ E[S²] / (2(1 − ρ))`.
    pub fn fcfs_mean_wait(&self) -> f64 {
        self.lambda * self.second_moment_service / (2.0 * (1.0 - self.utilization()))
    }

    /// FCFS mean response time `E[S] + W`.
    pub fn fcfs_mean_response(&self) -> f64 {
        self.mean_service + self.fcfs_mean_wait()
    }

    /// PS mean response time `E[S] / (1 − ρ)` — insensitive to the shape
    /// of the service distribution.
    pub fn ps_mean_response(&self) -> f64 {
        self.mean_service / (1.0 - self.utilization())
    }

    /// How many times worse FCFS's mean response is than PS's on this
    /// workload. Equals 1 at the deterministic extreme minus the idle
    /// factor, grows unboundedly with service variability.
    pub fn fcfs_over_ps(&self) -> f64 {
        self.fcfs_mean_response() / self.ps_mean_response()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetsched_dist::{BoundedPareto, Deterministic, Exponential, Moments};

    #[test]
    fn exponential_service_recovers_mm1() {
        // For exponential service, PK gives W = ρ/(1−ρ)·E[S] and the
        // FCFS mean response equals the M/M/1 value 1/(μ−λ).
        let q = Mg1::from_moments(0.5, &Exponential::from_mean(1.0));
        assert!((q.fcfs_mean_response() - 2.0).abs() < 1e-12);
        assert!((q.ps_mean_response() - 2.0).abs() < 1e-12);
        assert!((q.fcfs_over_ps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_service_halves_the_wait() {
        // M/D/1: W is half the M/M/1 value.
        let md1 = Mg1::from_moments(0.5, &Deterministic::new(1.0));
        let mm1 = Mg1::from_moments(0.5, &Exponential::from_mean(1.0));
        assert!((md1.fcfs_mean_wait() - 0.5 * mm1.fcfs_mean_wait()).abs() < 1e-12);
        // PS is insensitive: same mean response for both.
        assert!((md1.ps_mean_response() - mm1.ps_mean_response()).abs() < 1e-12);
    }

    #[test]
    fn heavy_tail_wrecks_fcfs_but_not_ps() {
        let bp = BoundedPareto::paper_default();
        let lambda = 0.7 / bp.mean(); // ρ = 0.7
        let q = Mg1::from_moments(lambda, &bp);
        assert!((q.utilization() - 0.7).abs() < 1e-12);
        // E[S²] ≈ 2.16·10⁵ s² gives W ≈ 3280 s vs a PS response of
        // 256 s: FCFS/PS ≈ 13.1.
        assert!(
            (q.fcfs_over_ps() - 13.1).abs() < 0.2,
            "FCFS/PS = {} expected ≈ 13.1 for BP(10, 21600, 1) at ρ=0.7",
            q.fcfs_over_ps()
        );
    }

    #[test]
    fn wait_diverges_near_saturation() {
        let a = Mg1::new(0.9, 1.0, 2.0);
        let b = Mg1::new(0.99, 1.0, 2.0);
        assert!(b.fcfs_mean_wait() > 10.0 * a.fcfs_mean_wait() / 2.0);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn rejects_overload() {
        Mg1::new(2.0, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn rejects_impossible_moments() {
        Mg1::new(0.5, 1.0, 0.5);
    }
}

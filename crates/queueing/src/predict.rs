//! Analytic performance predictions for a concrete allocation.
//!
//! Bundles eq. 3's system-level metrics with per-machine detail
//! (utilization, mean response time/ratio of the jobs each machine
//! serves). This powers the capacity-planning example and the
//! analytic-validation test that compares the simulator against the
//! formulas under Poisson/exponential traffic.

use serde::{Deserialize, Serialize};

use crate::objective::{mean_response_ratio, mean_response_time, objective_f};
use crate::system::HetSystem;

/// Per-machine analytic predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachinePrediction {
    /// The machine's relative speed `s_i`.
    pub speed: f64,
    /// Allocated fraction `α_i`.
    pub alpha: f64,
    /// Utilization `ρ_i = α_iλ / (s_iμ)`.
    pub utilization: f64,
    /// Mean response time of jobs served here: `1 / (s_iμ − α_iλ)`
    /// (0 for an unused machine).
    pub mean_response_time: f64,
    /// Mean response ratio of jobs served here: `μ / (s_iμ − α_iλ)`
    /// (0 for an unused machine).
    pub mean_response_ratio: f64,
}

/// Analytic report for an allocation over a system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationReport {
    /// System-wide mean response time (eq. 3).
    pub mean_response_time: f64,
    /// System-wide mean response ratio `μT̄`.
    pub mean_response_ratio: f64,
    /// Objective value `F(α…)`.
    pub objective: f64,
    /// Per-machine detail, in the caller's speed order.
    pub machines: Vec<MachinePrediction>,
}

impl AllocationReport {
    /// Builds the report; `None` if the allocation saturates a machine or
    /// has the wrong length.
    pub fn build(sys: &HetSystem, alphas: &[f64]) -> Option<Self> {
        let t = mean_response_time(sys, alphas)?;
        let r = mean_response_ratio(sys, alphas)?;
        let f = objective_f(sys, alphas)?;
        let machines = alphas
            .iter()
            .zip(sys.speeds())
            .map(|(&a, &s)| {
                let cap = s * sys.mu();
                let denom = cap - a * sys.lambda();
                MachinePrediction {
                    speed: s,
                    alpha: a,
                    utilization: a * sys.lambda() / cap,
                    mean_response_time: if a > 0.0 { 1.0 / denom } else { 0.0 },
                    mean_response_ratio: if a > 0.0 { sys.mu() / denom } else { 0.0 },
                }
            })
            .collect();
        Some(AllocationReport {
            mean_response_time: t,
            mean_response_ratio: r,
            objective: f,
            machines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::optimized_allocation;

    #[test]
    fn report_fields_are_consistent() {
        let sys = HetSystem::from_utilization(&[1.0, 2.0, 4.0], 0.7).unwrap();
        let alphas = optimized_allocation(&sys);
        let rep = AllocationReport::build(&sys, &alphas).unwrap();
        assert!((rep.mean_response_ratio - sys.mu() * rep.mean_response_time).abs() < 1e-12);
        // System T̄ is the α-weighted sum of machine response times.
        let weighted: f64 = rep
            .machines
            .iter()
            .map(|m| m.alpha * m.mean_response_time)
            .sum();
        assert!((weighted - rep.mean_response_time).abs() < 1e-12);
    }

    #[test]
    fn utilizations_below_one() {
        let sys = HetSystem::from_utilization(&[1.0, 1.5, 10.0], 0.9).unwrap();
        let rep = AllocationReport::build(&sys, &optimized_allocation(&sys)).unwrap();
        for m in &rep.machines {
            assert!(m.utilization < 1.0);
            assert!(m.utilization >= 0.0);
        }
    }

    #[test]
    fn optimized_equalizes_nothing_but_beats_weighted() {
        let sys = HetSystem::from_utilization(&[1.0, 10.0], 0.5).unwrap();
        let opt = AllocationReport::build(&sys, &optimized_allocation(&sys)).unwrap();
        let w = AllocationReport::build(&sys, &sys.weighted_allocation()).unwrap();
        assert!(opt.mean_response_ratio < w.mean_response_ratio);
        // Weighted equalizes utilizations; optimized does not.
        assert!((w.machines[0].utilization - w.machines[1].utilization).abs() < 1e-12);
        assert!(opt.machines[0].utilization < opt.machines[1].utilization);
    }

    #[test]
    fn unused_machine_has_zero_metrics() {
        let sys = HetSystem::from_utilization(&[1.0, 1.0, 20.0], 0.2).unwrap();
        let rep = AllocationReport::build(&sys, &optimized_allocation(&sys)).unwrap();
        assert_eq!(rep.machines[0].mean_response_time, 0.0);
        assert_eq!(rep.machines[0].utilization, 0.0);
    }

    #[test]
    fn saturating_allocation_yields_none() {
        let sys = HetSystem::from_utilization(&[1.0, 1.0], 0.9).unwrap();
        assert!(AllocationReport::build(&sys, &[1.0, 0.0]).is_none());
        assert!(AllocationReport::build(&sys, &[0.5]).is_none());
    }
}

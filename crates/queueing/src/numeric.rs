//! Independent numerical solver (dual bisection / water-filling).
//!
//! The KKT stationarity condition for minimizing `F` over the simplex is
//! that every machine with `α_i > 0` has equal marginal cost
//! `∂F/∂α_i = s_iμλ / (s_iμ − α_iλ)² = ν`, and machines pinned at zero
//! have a *higher* marginal. Solving for `α_i` gives
//!
//! ```text
//! α_i(c) = max(0, (s_iμ − c·√(s_iμ)) / λ),   c = √(λ/ν) ≥ 0
//! ```
//!
//! and `Σ_i α_i(c)` is continuous and strictly decreasing in `c` wherever
//! it is positive, so the multiplier `c` solving `Σα_i(c) = 1` is found by
//! bisection. This derivation never references Theorems 1–2, which makes
//! it a genuinely independent cross-check of Algorithm 1 — the property
//! tests require the two solvers to agree to ~1e-10.

use crate::system::HetSystem;
use hetsched_error::HetschedError;

/// Water-filling allocation at multiplier `c`.
fn alphas_at(sys: &HetSystem, c: f64) -> Vec<f64> {
    sys.speeds()
        .iter()
        .map(|&s| {
            let cap = s * sys.mu();
            ((cap - c * cap.sqrt()) / sys.lambda()).max(0.0)
        })
        .collect()
}

/// Total allocated fraction at multiplier `c`.
fn total_at(sys: &HetSystem, c: f64) -> f64 {
    alphas_at(sys, c).iter().sum()
}

/// Solves the allocation problem numerically by bisection on the KKT
/// multiplier. `tol` bounds the absolute error on `Σα − 1` (and hence on
/// each fraction).
///
/// # Panics
/// Panics if `tol` is not a small positive number.
pub fn optimized_allocation_numeric(sys: &HetSystem, tol: f64) -> Vec<f64> {
    assert!(tol > 0.0 && tol < 0.1, "tolerance must be in (0, 0.1)");
    // At c = 0 every machine takes its full capacity: Σα = 1/ρ > 1.
    // For c ≥ max √(s_iμ) every α clamps to 0 (the bracket is widened by
    // a hair so `√(cap)² < cap` rounding cannot leave a sliver positive).
    let mut lo = 0.0;
    let mut hi = sys
        .speeds()
        .iter()
        .map(|&s| (s * sys.mu()).sqrt())
        .fold(0.0f64, f64::max)
        * (1.0 + 1e-9);
    debug_assert!(
        total_at(sys, lo) > 1.0,
        "unsaturated system overallocates at c=0"
    );
    debug_assert!(total_at(sys, hi) < 1.0);

    // 200 halvings shrink the bracket below any representable tolerance,
    // but exit early once the allocation total is within tol.
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        let t = total_at(sys, mid);
        if (t - 1.0).abs() < tol * 1e-3 {
            lo = mid;
            hi = mid;
            break;
        }
        if t > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < f64::EPSILON * hi.max(1.0) {
            break;
        }
    }
    let mut alphas = alphas_at(sys, 0.5 * (lo + hi));
    // Exact renormalization (bisection leaves O(tol) slack).
    let sum: f64 = alphas.iter().sum();
    debug_assert!(
        (sum - 1.0).abs() < tol,
        "bisection did not converge: Σα = {sum}"
    );
    for a in &mut alphas {
        *a /= sum;
    }
    alphas
}

/// Panic-free variant of [`optimized_allocation_numeric`].
///
/// # Errors
/// * [`HetschedError::BadParameter`] — `tol` outside `(0, 0.1)`;
/// * [`HetschedError::Solver`] — the bisection produced a non-finite or
///   badly normalized allocation (defensive; not expected for a valid
///   [`HetSystem`]).
pub fn try_optimized_allocation_numeric(
    sys: &HetSystem,
    tol: f64,
) -> Result<Vec<f64>, HetschedError> {
    if !(tol > 0.0 && tol < 0.1) {
        return Err(HetschedError::BadParameter(format!(
            "tolerance must be in (0, 0.1), got {tol}"
        )));
    }
    let alphas = optimized_allocation_numeric(sys, tol);
    let sum: f64 = alphas.iter().sum();
    if alphas.iter().any(|a| !a.is_finite()) || (sum - 1.0).abs() > 1e-6 {
        return Err(HetschedError::Solver(format!(
            "bisection produced an invalid allocation (Σα = {sum})"
        )));
    }
    Ok(alphas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form::optimized_allocation;
    use crate::objective::objective_f;
    use crate::system::validate_allocation;
    use proptest::prelude::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn agrees_with_closed_form_on_paper_config() {
        // Table 3's base configuration at ρ = 0.7.
        let speeds = [
            1.0, 1.0, 1.0, 1.0, 1.0, 1.5, 1.5, 1.5, 1.5, 2.0, 2.0, 2.0, 5.0, 10.0, 12.0,
        ];
        let sys = HetSystem::from_utilization(&speeds, 0.7).unwrap();
        let a = optimized_allocation(&sys);
        let b = optimized_allocation_numeric(&sys, TOL);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn agrees_when_cutoff_active() {
        let sys = HetSystem::from_utilization(&[1.0, 1.0, 20.0], 0.2).unwrap();
        let a = optimized_allocation(&sys);
        let b = optimized_allocation_numeric(&sys, TOL);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-8, "{a:?} vs {b:?}");
        }
        assert_eq!(b[0], 0.0);
        assert_eq!(b[1], 0.0);
    }

    #[test]
    fn result_is_feasible() {
        let sys = HetSystem::from_utilization(&[1.0, 2.0, 3.0, 4.0], 0.85).unwrap();
        let b = optimized_allocation_numeric(&sys, TOL);
        assert!(validate_allocation(&sys, &b), "{b:?}");
    }

    #[test]
    fn kkt_marginals_are_equal_on_support() {
        let sys = HetSystem::from_utilization(&[1.0, 3.0, 9.0], 0.6).unwrap();
        let a = optimized_allocation_numeric(&sys, TOL);
        let g = crate::objective::objective_gradient(&sys, &a).unwrap();
        let active: Vec<f64> = a
            .iter()
            .zip(&g)
            .filter(|(&ai, _)| ai > 1e-9)
            .map(|(_, &gi)| gi)
            .collect();
        let first = active[0];
        for &gi in &active {
            assert!((gi - first).abs() / first < 1e-5, "marginals differ: {g:?}");
        }
        // Machines at zero must have marginal ≥ the common value.
        for (&ai, &gi) in a.iter().zip(&g) {
            if ai <= 1e-9 {
                assert!(gi >= first - 1e-6, "zero machine with low marginal");
            }
        }
    }

    #[test]
    fn try_variant_rejects_bad_tolerance() {
        let sys = HetSystem::from_utilization(&[1.0, 2.0], 0.5).unwrap();
        assert!(matches!(
            try_optimized_allocation_numeric(&sys, 0.0),
            Err(HetschedError::BadParameter(_))
        ));
        assert!(matches!(
            try_optimized_allocation_numeric(&sys, 0.5),
            Err(HetschedError::BadParameter(_))
        ));
        let a = try_optimized_allocation_numeric(&sys, TOL).unwrap();
        assert_eq!(a, optimized_allocation_numeric(&sys, TOL));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// Closed form and numeric solver agree across the space — the
        /// key cross-validation of Algorithm 1.
        #[test]
        fn solvers_agree(
            speeds in prop::collection::vec(0.1f64..50.0, 1..12),
            rho in 0.02f64..0.98,
        ) {
            let sys = HetSystem::from_utilization(&speeds, rho).unwrap();
            let a = optimized_allocation(&sys);
            let b = optimized_allocation_numeric(&sys, TOL);
            let fa = objective_f(&sys, &a).unwrap();
            let fb = objective_f(&sys, &b).unwrap();
            // Objective values must coincide tightly…
            prop_assert!((fa - fb).abs() / fa < 1e-8, "F: {fa} vs {fb}");
            // …and so must the fractions themselves.
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-6, "{:?} vs {:?}", a, b);
            }
        }
    }
}
